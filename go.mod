module github.com/plutus-gpu/plutus

go 1.22
