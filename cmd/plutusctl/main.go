// Command plutusctl operates the distributed sweep fabric: it runs the
// cluster coordinator, submits and watches sweeps, manages workers, and
// load-tests a cluster.
//
// Usage:
//
//	plutusctl coord   -listen :8095 -workers http://w1:8091,http://w2:8091
//	plutusctl sweep   -coord http://127.0.0.1:8095 -benches bfs,stream -schemes pssm,plutus -seeds 3
//	plutusctl status  -coord http://127.0.0.1:8095 -id sweep-1
//	plutusctl workers -coord http://127.0.0.1:8095 [-add http://w3:8091]
//	plutusctl loadgen -requests 1000000 -out loadgen.json
//
// The coordinator shards each sweep's (benchmark × scheme × seed) grid
// across registered plutusd workers, collects results into a
// content-addressed store keyed by the harness run-cache key, steals
// leases from stragglers (migrating their PLUTSNAP checkpoints), and
// sheds over-quota tenants with 429 — see DESIGN.md §14.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/plutus-gpu/plutus/internal/cluster"
	"github.com/plutus-gpu/plutus/internal/harness"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "coord":
		err = runCoord(os.Args[2:])
	case "sweep":
		err = runSweep(os.Args[2:])
	case "status":
		err = runStatus(os.Args[2:])
	case "workers":
		err = runWorkers(os.Args[2:])
	case "loadgen":
		err = runLoadgen(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "plutusctl: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plutusctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `plutusctl — cluster coordinator and sweep CLI

subcommands:
  coord    run the coordinator daemon
  sweep    submit a sweep and wait for it
  status   show one sweep's progress
  workers  list or register workers
  loadgen  boot an in-process cluster and load-test it
`)
}

// runCoord serves the coordinator API. The harness flags must match the
// workers' configuration — the run-cache key (and so byte identity)
// depends on them.
func runCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	listen := fs.String("listen", ":8095", "coordinator listen address")
	workers := fs.String("workers", "", "comma-separated plutusd base URLs")
	insts := fs.Uint64("insts", 20000, "warp-instruction budget per run (must match workers)")
	ckptEvery := fs.Uint64("checkpoint-every", 0, "workers' checkpoint cadence in cycles (must match workers)")
	storeDir := fs.String("store-dir", "", "persist the content-addressed result store here")
	lease := fs.Duration("lease-timeout", 30*time.Second, "steal a cell from a worker holding it longer than this")
	inflight := fs.Int("tenant-inflight", 0, "max concurrently leased cells per tenant (0 = unlimited)")
	pending := fs.Int("tenant-pending", 0, "max admitted-but-unfinished cells per tenant; beyond it new work is shed with 429 (0 = unlimited)")
	fs.Parse(args)

	cfg := cluster.Config{
		Harness:           harness.Config{MaxInstructions: *insts, CheckpointEvery: *ckptEvery},
		LeaseTimeout:      *lease,
		TenantMaxInflight: *inflight,
		TenantMaxPending:  *pending,
	}
	if *workers != "" {
		cfg.Workers = strings.Split(*workers, ",")
	}
	if *storeDir != "" {
		store, err := openStore(*storeDir)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	co := cluster.New(cfg)
	defer co.Close()
	fmt.Fprintf(os.Stderr, "plutusctl coord listening on %s (%d workers)\n", *listen, len(cfg.Workers))
	return http.ListenAndServe(*listen, co.Handler())
}

// runSweep submits one sweep and polls it to completion.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	coord := fs.String("coord", "http://127.0.0.1:8095", "coordinator base URL")
	benches := fs.String("benches", "stream,bfs", "comma-separated benchmarks")
	schemes := fs.String("schemes", "pssm,plutus", "comma-separated schemes")
	seeds := fs.String("seeds", "0", "comma-separated seeds, or a count N meaning seeds 1..N when prefixed with 'x' (e.g. x3)")
	tenant := fs.String("tenant", "cli", "tenant name for quota accounting")
	fs.Parse(args)

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		return err
	}
	req := cluster.SweepRequest{
		Tenant:     *tenant,
		Benchmarks: strings.Split(*benches, ","),
		Schemes:    strings.Split(*schemes, ","),
		Seeds:      seedList,
	}
	var st cluster.SweepStatus
	if err := postJSON(*coord+"/v1/sweeps", req, &st); err != nil {
		return err
	}
	fmt.Printf("submitted %s: %d cells\n", st.ID, st.Total)
	for {
		if err := getJSON(*coord+"/v1/sweeps/"+st.ID, &st); err != nil {
			return err
		}
		fmt.Printf("%s: %d/%d done, %d failed\n", st.ID, st.Completed+st.Failed, st.Total, st.Failed)
		if st.Done {
			break
		}
		time.Sleep(time.Second)
	}
	printSweep(st)
	if st.Failed > 0 {
		return fmt.Errorf("%d cells failed", st.Failed)
	}
	return nil
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	coord := fs.String("coord", "http://127.0.0.1:8095", "coordinator base URL")
	id := fs.String("id", "", "sweep id (required)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("status: -id is required")
	}
	var st cluster.SweepStatus
	if err := getJSON(*coord+"/v1/sweeps/"+*id, &st); err != nil {
		return err
	}
	printSweep(st)
	return nil
}

func runWorkers(args []string) error {
	fs := flag.NewFlagSet("workers", flag.ExitOnError)
	coord := fs.String("coord", "http://127.0.0.1:8095", "coordinator base URL")
	add := fs.String("add", "", "register this plutusd base URL before listing")
	fs.Parse(args)
	var out struct {
		Workers []cluster.WorkerStatus `json:"workers"`
	}
	if *add != "" {
		if err := postJSON(*coord+"/v1/workers", cluster.WorkerRequest{URL: *add}, &out); err != nil {
			return err
		}
	} else if err := getJSON(*coord+"/v1/workers", &out); err != nil {
		return err
	}
	for _, w := range out.Workers {
		state := "dead"
		if w.Alive {
			state = "alive"
		}
		fmt.Printf("%-40s %-5s inflight %d/%d, completed %d\n", w.URL, state, w.Inflight, w.Capacity, w.Completed)
	}
	return nil
}

func printSweep(st cluster.SweepStatus) {
	cells := append([]cluster.SweepCell(nil), st.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key < cells[j].Key })
	for _, c := range cells {
		mark := "…"
		if c.Done {
			mark = "ok"
			if c.Error != "" {
				mark = "FAIL " + c.Error
			}
		}
		digest := c.Digest
		if len(digest) > 12 {
			digest = digest[:12]
		}
		fmt.Printf("  %-48s %-12s %s\n", c.Key, digest, mark)
	}
}

func parseSeeds(s string) ([]uint64, error) {
	if n, ok := strings.CutPrefix(s, "x"); ok {
		count, err := strconv.Atoi(n)
		if err != nil || count < 1 {
			return nil, fmt.Errorf("bad seed count %q", s)
		}
		seeds := make([]uint64, count)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		return seeds, nil
	}
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

func postJSON(url string, in, out any) error {
	blob, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	return decodeJSON(resp, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeJSON(resp, out)
}

func decodeJSON(resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}
