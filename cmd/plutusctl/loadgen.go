package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/plutus-gpu/plutus/internal/castore"
	"github.com/plutus-gpu/plutus/internal/cluster"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
)

func openStore(dir string) (*castore.Store, error) {
	return castore.Open(dir)
}

// LoadgenSummary is the JSON report loadgen emits; benchsmoke -loadgen
// merges it into the benchmark report as cluster_loadgen.
type LoadgenSummary struct {
	Requests       int                `json:"requests"`
	Clients        int                `json:"clients"`
	Workers        int                `json:"workers"`
	GridCells      int                `json:"grid_cells"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	ThroughputRPS  float64            `json:"throughput_rps"`
	LatencyUS      map[string]float64 `json:"latency_us"`
	Errors         int                `json:"errors"`
	VerifiedCells  int                `json:"verified_cells"`
	StoreHits      uint64             `json:"store_hits"`
}

// runLoadgen boots a 1-coordinator/N-worker cluster in this process,
// warms the full grid through a sweep, fires -requests seeded requests
// at the coordinator's /v1/cells endpoint from -clients concurrent
// clients, verifies every collected cell byte-for-byte against a local
// single-box run, and reports latency percentiles and throughput.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	requests := fs.Int("requests", 1_000_000, "total requests to fire")
	clients := fs.Int("clients", 64, "concurrent client goroutines")
	insts := fs.Uint64("insts", 1500, "warp-instruction budget per run")
	benches := fs.String("benches", "stream,bfs", "comma-separated benchmarks")
	schemes := fs.String("schemes", "pssm,plutus", "comma-separated schemes")
	nseeds := fs.Int("seeds", 4, "seeds 1..N per (benchmark, scheme)")
	seed := fs.Uint64("seed", 1, "request-mix RNG seed")
	workers := fs.Int("workers", 3, "in-process plutusd workers")
	out := fs.String("out", "", "write the JSON summary here (default stdout)")
	fs.Parse(args)

	hcfg := harness.Config{MaxInstructions: *insts, Parallelism: 2}

	// Boot the workers: real plutusd servers on loopback listeners.
	var urls []string
	for i := 0; i < *workers; i++ {
		s := server.New(server.Config{
			Backend:         harness.NewRunner(hcfg),
			Workers:         2,
			QueueDepth:      64,
			MaxInstructions: hcfg.MaxInstructions,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		defer s.Drain()
		urls = append(urls, "http://"+ln.Addr().String())
	}

	co := cluster.New(cluster.Config{Workers: urls, Harness: hcfg})
	defer co.Close()
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	chs := &http.Server{Handler: co.Handler()}
	go chs.Serve(cln)
	defer chs.Close()
	coordURL := "http://" + cln.Addr().String()
	fmt.Fprintf(os.Stderr, "loadgen: coordinator %s, %d workers\n", coordURL, *workers)

	// Warm the grid: one sweep executes every cell once (sharded across
	// the workers); the measurement phase then exercises the steady
	// serving path — coordinator store hits — like a result-consuming
	// fleet would.
	benchList := strings.Split(*benches, ",")
	schemeList := strings.Split(*schemes, ",")
	seeds := make([]uint64, *nseeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	warmStart := time.Now()
	sw, err := co.SubmitSweep("loadgen", benchList, schemeList, seeds)
	if err != nil {
		return err
	}
	if err := sw.Wait(context.Background()); err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}
	st := sw.Status()
	fmt.Fprintf(os.Stderr, "loadgen: grid warm (%d cells in %.1fs)\n", st.Total, time.Since(warmStart).Seconds())

	// Fire. Each client owns a deterministic PCG stream (seed, client
	// index) so a rerun replays the same request mix.
	type cellSpec struct {
		bench, scheme string
		seed          uint64
	}
	var grid []cellSpec
	for _, b := range benchList {
		for _, s := range schemeList {
			for _, sd := range seeds {
				grid = append(grid, cellSpec{b, s, sd})
			}
		}
	}
	perClient := *requests / *clients
	total := perClient * *clients
	latencies := make([][]int64, *clients)
	errCounts := make([]int, *clients)
	var wg sync.WaitGroup
	fireStart := time.Now()
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(ci)))
			hc := &http.Client{}
			lats := make([]int64, 0, perClient)
			for i := 0; i < perClient; i++ {
				spec := grid[rng.IntN(len(grid))]
				body, _ := json.Marshal(cluster.CellRequest{
					Tenant: "loadgen", Benchmark: spec.bench, Scheme: spec.scheme, Seed: spec.seed,
				})
				t0 := time.Now()
				resp, err := hc.Post(coordURL+"/v1/cells", "application/json", bytes.NewReader(body))
				if err != nil {
					errCounts[ci]++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCounts[ci]++
					continue
				}
				lats = append(lats, time.Since(t0).Microseconds())
			}
			latencies[ci] = lats
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(fireStart)

	var all []int64
	var errorsTotal int
	for ci := range latencies {
		all = append(all, latencies[ci]...)
		errorsTotal += errCounts[ci]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx])
	}

	// Verify: every collected cell must be byte-identical to a local
	// single-box run of the same run-cache key.
	verified := 0
	for _, cell := range st.Cells {
		content, _, err := co.Store().Get(cell.Key)
		if err != nil {
			return fmt.Errorf("verify: store missing %s: %v", cell.Key, err)
		}
		want, err := localCell(hcfg, cell.Benchmark, cell.Scheme, cell.Seed)
		if err != nil {
			return fmt.Errorf("verify: local oracle %s: %v", cell.Key, err)
		}
		if !bytes.Equal(content, want) {
			return fmt.Errorf("verify: cell %s differs from single-box run", cell.Key)
		}
		verified++
	}

	summary := LoadgenSummary{
		Requests:       total,
		Clients:        *clients,
		Workers:        *workers,
		GridCells:      len(grid),
		ElapsedSeconds: elapsed.Seconds(),
		ThroughputRPS:  float64(len(all)) / elapsed.Seconds(),
		LatencyUS: map[string]float64{
			"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99), "max": pct(1.0),
		},
		Errors:        errorsTotal,
		VerifiedCells: verified,
		StoreHits:     co.Counters().StoreHits,
	}
	blob, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(blob)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests in %.1fs (%.0f rps), p50 %.0fµs p99 %.0fµs, %d cells verified\n",
		total, elapsed.Seconds(), summary.ThroughputRPS, summary.LatencyUS["p50"], summary.LatencyUS["p99"], verified)
	if errorsTotal > 0 {
		return fmt.Errorf("%d of %d requests failed", errorsTotal, total)
	}
	return nil
}

// localCell renders one cell's canonical JSON on a fresh single-box
// runner — the oracle the cluster's bytes are verified against.
func localCell(hcfg harness.Config, bench, scheme string, seed uint64) ([]byte, error) {
	r := harness.NewRunner(hcfg)
	sc, err := secmem.ByName(scheme, r.Config().ProtectedBytes)
	if err != nil {
		return nil, err
	}
	st, err := r.RunSeeded(bench, sc, seed)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if err := harness.WriteRunJSON(&b, st); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}
