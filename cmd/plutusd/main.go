// Command plutusd serves Plutus simulations as a service: an HTTP/JSON
// API over the shared harness runner, with a bounded job queue, a
// worker pool, server-sent-event progress streams, and a run cache
// shared across all clients — submitting the same (benchmark, scheme)
// twice simulates once.
//
// Usage:
//
//	plutusd -addr :8091 -workers 4 -queue 64 -insts 20000
//
// Then, from any client:
//
//	plutussim -bench bfs -scheme plutus -remote http://127.0.0.1:8091
//	curl -s -X POST localhost:8091/v1/runs \
//	    -d '{"benchmark":"bfs","scheme":"plutus"}'
//
// On SIGTERM/SIGINT the daemon drains: it stops accepting new runs
// (503), finishes every accepted job, keeps serving status/result reads
// for a short linger window so waiting clients can collect, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8091", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size (concurrent simulations)")
		queue    = flag.Int("queue", 64, "queued-job bound; a full queue rejects submissions with 429")
		insts    = flag.Uint64("insts", 20000, "warp-instruction budget per run")
		volta    = flag.Bool("volta", false, "full 80-SM/32-partition Volta config (slow)")
		parallel = flag.Bool("parallel", false, "run memory partitions on parallel goroutines (bit-identical results)")
		linger   = flag.Duration("linger", 2*time.Second, "how long to keep serving reads after the drain finishes")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *insts, *volta, *parallel, *linger); err != nil {
		fmt.Fprintln(os.Stderr, "plutusd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, insts uint64, volta, parallel bool, linger time.Duration) error {
	const protected = 128 << 20
	runner := harness.NewRunner(harness.Config{
		ProtectedBytes:     protected,
		MaxInstructions:    insts,
		Parallelism:        workers,
		FullVolta:          volta,
		ParallelPartitions: parallel,
	})
	s := server.New(server.Config{
		Backend:         runner,
		Workers:         workers,
		QueueDepth:      queue,
		MaxInstructions: runner.Config().MaxInstructions,
		ProtectedBytes:  protected,
	})

	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	log.Printf("plutusd listening on %s (%d workers, queue %d, %d insts/run)",
		addr, workers, queue, runner.Config().MaxInstructions)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new submissions, carry every accepted job
	// to a settled result, linger so in-flight clients can fetch it,
	// then close the listener.
	log.Print("plutusd: signal received; draining (new submissions get 503)")
	s.Drain()
	log.Printf("plutusd: drain complete; lingering %s for result pickup", linger)
	time.Sleep(linger)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}
