// Command plutusd serves Plutus simulations as a service: an HTTP/JSON
// API over the shared harness runner, with a bounded job queue, a
// worker pool, server-sent-event progress streams, and a run cache
// shared across all clients — submitting the same (benchmark, scheme)
// twice simulates once.
//
// Usage:
//
//	plutusd -addr :8091 -workers 4 -queue 64 -insts 20000
//
// Then, from any client:
//
//	plutussim -bench bfs -scheme plutus -remote http://127.0.0.1:8091
//	curl -s -X POST localhost:8091/v1/runs \
//	    -d '{"benchmark":"bfs","scheme":"plutus"}'
//
// On SIGTERM/SIGINT the daemon drains: it stops accepting new runs
// (503), finishes every accepted job, keeps serving status/result reads
// for a short linger window so waiting clients can collect, then exits.
//
// With -state-dir the daemon survives harder deaths than SIGTERM: every
// job is persisted to disk, finished results keep being served after a
// restart, and jobs that were queued or running when the daemon died
// are re-enqueued on boot. Add -checkpoint-every to snapshot running
// simulations so the re-enqueued jobs resume mid-run instead of
// restarting, and -preempt-slice to bound how long any one job may hold
// a worker before it is parked at a checkpoint and requeued:
//
//	plutusd -state-dir /var/lib/plutusd -checkpoint-every 100000 -preempt-slice 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/server"
)

// options collects the flag values run needs.
type options struct {
	addr         string
	workers      int
	queue        int
	insts        uint64
	volta        bool
	parallel     bool
	linger       time.Duration
	stateDir     string
	ckptEvery    uint64
	preemptSlice time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8091", "listen address")
	flag.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "worker-pool size (concurrent simulations)")
	flag.IntVar(&o.queue, "queue", 64, "queued-job bound; a full queue rejects submissions with 429")
	flag.Uint64Var(&o.insts, "insts", 20000, "warp-instruction budget per run")
	flag.BoolVar(&o.volta, "volta", false, "full 80-SM/32-partition Volta config (slow)")
	flag.BoolVar(&o.parallel, "parallel", false, "run memory partitions on parallel goroutines (bit-identical results)")
	flag.DurationVar(&o.linger, "linger", 2*time.Second, "how long to keep serving reads after the drain finishes")
	flag.StringVar(&o.stateDir, "state-dir", "", "persist jobs and run snapshots here; a restarted daemon recovers them")
	flag.Uint64Var(&o.ckptEvery, "checkpoint-every", 0, "snapshot running simulations every N cycles (requires -state-dir)")
	flag.DurationVar(&o.preemptSlice, "preempt-slice", 0, "max time one job may hold a worker before being parked at a checkpoint and requeued (requires -checkpoint-every)")
	flag.Parse()
	if o.ckptEvery > 0 && o.stateDir == "" {
		fmt.Fprintln(os.Stderr, "plutusd: -checkpoint-every requires -state-dir")
		os.Exit(1)
	}
	if o.preemptSlice > 0 && o.ckptEvery == 0 {
		fmt.Fprintln(os.Stderr, "plutusd: -preempt-slice requires -checkpoint-every (preemption parks jobs at checkpoints)")
		os.Exit(1)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "plutusd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	const protected = 128 << 20
	hcfg := harness.Config{
		ProtectedBytes:     protected,
		MaxInstructions:    o.insts,
		Parallelism:        o.workers,
		FullVolta:          o.volta,
		ParallelPartitions: o.parallel,
	}
	scfg := server.Config{
		Workers:        o.workers,
		QueueDepth:     o.queue,
		ProtectedBytes: protected,
		PreemptSlice:   o.preemptSlice,
	}
	if o.stateDir != "" {
		scfg.StateDir = filepath.Join(o.stateDir, "jobs")
		if o.ckptEvery > 0 {
			hcfg.CheckpointEvery = o.ckptEvery
			hcfg.CheckpointDir = filepath.Join(o.stateDir, "checkpoints")
			hcfg.Resume = true
			if err := os.MkdirAll(hcfg.CheckpointDir, 0o755); err != nil {
				return fmt.Errorf("checkpoint dir: %w", err)
			}
		}
	}
	runner := harness.NewRunner(hcfg)
	scfg.Backend = runner
	scfg.MaxInstructions = runner.Config().MaxInstructions
	s := server.New(scfg)

	hs := &http.Server{Addr: o.addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	log.Printf("plutusd listening on %s (%d workers, queue %d, %d insts/run)",
		o.addr, o.workers, o.queue, runner.Config().MaxInstructions)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new submissions, carry every accepted job
	// to a settled result, linger so in-flight clients can fetch it,
	// then close the listener.
	log.Print("plutusd: signal received; draining (new submissions get 503)")
	s.Drain()
	log.Printf("plutusd: drain complete; lingering %s for result pickup", o.linger)
	time.Sleep(o.linger)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}
