// Command benchsmoke is the CI benchmark smoke-check: it sweeps a small
// benchmark × scheme matrix at a tiny instruction budget in both
// sequential and parallel-partition mode, verifies the two modes produce
// bit-identical statistics, and writes a machine-readable summary
// (wall-clock per mode, speedup, per-run stats) to a JSON file that the
// CI pipeline uploads as an artifact.
//
// Exit status is nonzero if any run diverges between modes, or — when
// -minspeedup is set — if the parallel sweep fails to beat sequential by
// that factor.
//
// Usage:
//
//	benchsmoke -insts 1500 -out BENCH_ci.json
//	benchsmoke -benchmarks bfs,sgemm -schemes pssm,plutus -minspeedup 1.15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

const protected = 128 << 20

// run is one (benchmark, scheme) comparison in the report.
type run struct {
	Benchmark    string      `json:"benchmark"`
	Scheme       string      `json:"scheme"`
	Match        bool        `json:"match"`
	SequentialNs int64       `json:"sequential_ns"`
	ParallelNs   int64       `json:"parallel_ns"`
	Stats        stats.Stats `json:"stats"`
}

// report is the BENCH_ci.json schema.
type report struct {
	GOMAXPROCS      int     `json:"gomaxprocs"`
	MaxInstructions uint64  `json:"max_instructions"`
	Runs            []run   `json:"runs"`
	SequentialNs    int64   `json:"total_sequential_ns"`
	ParallelNs      int64   `json:"total_parallel_ns"`
	Speedup         float64 `json:"speedup"`
	AllMatch        bool    `json:"all_match"`
}

func main() {
	var (
		insts    = flag.Uint64("insts", 1500, "warp-instruction budget per run")
		out      = flag.String("out", "BENCH_ci.json", "summary output path")
		benches  = flag.String("benchmarks", "bfs,hotspot,sgemm,pagerank", "comma-separated benchmarks")
		schemes  = flag.String("schemes", "nosec,pssm,plutus", "comma-separated schemes")
		minSpeed = flag.Float64("minspeedup", 0, "fail unless parallel beats sequential by this factor (0 = report only)")
	)
	flag.Parse()

	var scs []secmem.Config
	for _, name := range strings.Split(*schemes, ",") {
		sc, err := secmem.ByName(name, protected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke:", err)
			os.Exit(1)
		}
		scs = append(scs, sc)
	}
	benchList := strings.Split(*benches, ",")

	// Parallelism 1 isolates the variable under test: the only difference
	// between the two sweeps is partition sharding inside each simulation.
	mkRunner := func(parallel bool) *harness.Runner {
		return harness.NewRunner(harness.Config{
			ProtectedBytes:     protected,
			MaxInstructions:    *insts,
			Benchmarks:         benchList,
			Parallelism:        1,
			ParallelPartitions: parallel,
		})
	}
	seqR, parR := mkRunner(false), mkRunner(true)

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0), MaxInstructions: *insts, AllMatch: true}
	sweep := func(r *harness.Runner, bench string, sc secmem.Config) (*stats.Stats, int64) {
		start := time.Now()
		st, err := r.Run(bench, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke:", err)
			os.Exit(1)
		}
		return st, time.Since(start).Nanoseconds()
	}
	for _, bench := range benchList {
		for _, sc := range scs {
			seq, seqNs := sweep(seqR, bench, sc)
			par, parNs := sweep(parR, bench, sc)
			match := *seq == *par
			rep.Runs = append(rep.Runs, run{
				Benchmark: bench, Scheme: sc.Scheme, Match: match,
				SequentialNs: seqNs, ParallelNs: parNs, Stats: *seq,
			})
			rep.SequentialNs += seqNs
			rep.ParallelNs += parNs
			if !match {
				rep.AllMatch = false
				fmt.Fprintf(os.Stderr, "benchsmoke: DIVERGENCE %s/%s:\nseq: %+v\npar: %+v\n",
					bench, sc.Scheme, *seq, *par)
			}
		}
	}
	if rep.ParallelNs > 0 {
		rep.Speedup = float64(rep.SequentialNs) / float64(rep.ParallelNs)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
	fmt.Printf("benchsmoke: %d runs, seq %.2fs, par %.2fs, speedup %.2fx, match=%v -> %s\n",
		len(rep.Runs), float64(rep.SequentialNs)/1e9, float64(rep.ParallelNs)/1e9,
		rep.Speedup, rep.AllMatch, *out)

	if !rep.AllMatch {
		os.Exit(1)
	}
	if *minSpeed > 0 && rep.Speedup < *minSpeed {
		fmt.Fprintf(os.Stderr, "benchsmoke: speedup %.2fx below required %.2fx\n", rep.Speedup, *minSpeed)
		os.Exit(1)
	}
}
