// Command benchsmoke is the CI benchmark smoke-check: it sweeps a small
// benchmark × scheme matrix at a tiny instruction budget in both
// sequential and parallel-partition mode, verifies the two modes produce
// bit-identical statistics, and writes a machine-readable summary
// (wall-clock per mode, speedup, per-run stats) to a JSON file that the
// CI pipeline uploads as an artifact.
//
// The summary also carries a checkpoint micro-benchmark: one run is
// snapshotted mid-flight, resumed from its last snapshot, and required
// to reproduce the checkpointed reference exactly; the snapshot's
// encoded size and the save/restore latencies are recorded so the cost
// of the checkpoint subsystem is tracked run over run.
//
// The summary additionally reports two committed-trajectory metrics:
// sim_cycles_per_sec (simulated cycles retired per wall-clock second of
// the sequential sweep) and event_loop_allocs_per_op (heap allocations
// per schedule+dispatch pair of the event engine in steady state,
// measured testing.AllocsPerRun-style). With -baseline the current run
// is gated against a committed BENCH_*.json: the throughput may not
// regress by more than -maxregress and the event loop may not allocate
// more than the baseline does.
//
// Exit status is nonzero if any run diverges between modes, if the
// resumed run diverges from its reference, if a -baseline gate fails,
// or — when -minspeedup is set — if the parallel sweep fails to beat
// sequential by that factor.
//
// Usage:
//
//	benchsmoke -insts 1500 -out BENCH_ci.json
//	benchsmoke -benchmarks bfs,sgemm -schemes pssm,plutus -minspeedup 1.15
//	benchsmoke -baseline BENCH_0006.json -maxregress 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/prof"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/tamper"
	"github.com/plutus-gpu/plutus/internal/trace"
	"github.com/plutus-gpu/plutus/internal/workload"
)

const protected = 128 << 20

// run is one (benchmark, scheme) comparison in the report.
type run struct {
	Benchmark    string      `json:"benchmark"`
	Scheme       string      `json:"scheme"`
	Match        bool        `json:"match"`
	SequentialNs int64       `json:"sequential_ns"`
	ParallelNs   int64       `json:"parallel_ns"`
	Stats        stats.Stats `json:"stats"`
}

// checkpointReport records the snapshot subsystem's cost on one run:
// encoded size, atomic-write and restore latency, and whether the run
// resumed from the last snapshot reproduced the checkpointed reference
// bit for bit (the replay guarantee).
type checkpointReport struct {
	Benchmark     string `json:"benchmark"`
	Scheme        string `json:"scheme"`
	EveryCycles   uint64 `json:"every_cycles"`
	Snapshots     int    `json:"snapshots"`
	SnapshotBytes int    `json:"snapshot_bytes"` // last snapshot's encoded size
	SaveNs        int64  `json:"save_ns"`        // mean atomic-write latency per snapshot
	RestoreNs     int64  `json:"restore_ns"`     // ResumeSnapshot latency from the last snapshot
	ResumeMatch   bool   `json:"resume_match"`
}

// tamperReport records the fault-injection subsystem's cost and outcome
// on one attacked run: plan expansion latency, how many ops landed, what
// the scheme's verdict counters said, and whether sequential and
// parallel partition execution replayed the attack bit-identically.
type tamperReport struct {
	Benchmark        string `json:"benchmark"`
	Scheme           string `json:"scheme"`
	PlanFingerprint  string `json:"plan_fingerprint"`
	Ops              int    `json:"ops"`
	ExpandNs         int64  `json:"expand_ns"`
	Injected         uint64 `json:"injected"`
	TaintedReads     uint64 `json:"tainted_reads"`
	Detected         uint64 `json:"detected"` // MAC + tree verdicts
	SilentCorruption uint64 `json:"silent_corruption"`
	SeqParMatch      bool   `json:"seq_par_match"`
}

// traceReport records the trace pipeline's cost on one captured run:
// trace size on disk, capture overhead versus the plain sweep, the
// streaming reader's resident-record high-water mark, replay
// throughput, and whether the replayed run reproduced the capture
// run's statistics exactly (the replay guarantee).
type traceReport struct {
	Benchmark           string  `json:"benchmark"`
	Scheme              string  `json:"scheme"`
	TraceBytes          int64   `json:"trace_bytes"`
	Records             uint64  `json:"records"`
	CaptureNs           int64   `json:"capture_ns"`
	ReplayNs            int64   `json:"replay_ns"`
	ReplayRecordsPerSec float64 `json:"replay_records_per_sec"`
	MaxResidentRecords  int     `json:"max_resident_records"`
	ReplayMatch         bool    `json:"replay_match"`
}

// report is the BENCH_ci.json schema.
type report struct {
	// Note is free-text provenance for committed baselines: what the
	// file pins and the trajectory it belongs to (-note flag).
	Note            string  `json:"note,omitempty"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	MaxInstructions uint64  `json:"max_instructions"`
	Runs            []run   `json:"runs"`
	SequentialNs    int64   `json:"total_sequential_ns"`
	ParallelNs      int64   `json:"total_parallel_ns"`
	Speedup         float64 `json:"speedup"`
	AllMatch        bool    `json:"all_match"`
	// SimCyclesPerSec is the sweep's simulation throughput: simulated
	// cycles retired per wall-clock second across the sequential runs.
	// This is the committed-trajectory headline number the -baseline
	// gate protects.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	// EventLoopAllocsPerOp is the event engine's steady-state heap
	// allocation count per schedule+dispatch pair. The calendar-queue
	// scheduler is pooled end to end, so the committed value is 0 and
	// any positive reading is a regression.
	EventLoopAllocsPerOp float64           `json:"event_loop_allocs_per_op"`
	Checkpoint           *checkpointReport `json:"checkpoint,omitempty"`
	Tamper               *tamperReport     `json:"tamper,omitempty"`
	Trace                *traceReport      `json:"trace,omitempty"`
	// ClusterLoadgen embeds a `plutusctl loadgen` summary (-loadgen
	// flag): request latency percentiles and throughput of the
	// distributed sweep fabric, carried verbatim so the committed
	// baseline records the cluster serving path alongside simulation
	// throughput.
	ClusterLoadgen json.RawMessage `json:"cluster_loadgen,omitempty"`
}

// measureEventLoopAllocs measures steady-state allocations per
// schedule+dispatch pair on the event engine, the way
// testing.AllocsPerRun does: warm the engine until its ring buckets and
// overflow heap have grown to working size, then average over repeated
// batches. The delta mix crosses the scheduler's near/far boundary so
// both the ring and the overflow heap stay on the measured path.
func measureEventLoopAllocs() float64 {
	const ops = 8192
	eng := &sim.Engine{}
	rng := uint64(1)
	// Deterministic warm-up: one event in every calendar-ring bucket
	// plus a far-horizon event, drained before counting, so every pooled
	// slice has reached its steady-state capacity.
	for s := sim.Cycle(0); s < 4096; s++ {
		eng.Schedule(s, noop)
	}
	eng.Schedule(4096+1000, noop)
	for eng.Step() {
	}
	batch := func() {
		for i := 0; i < ops; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			eng.Schedule(sim.Cycle(rng%6000), noop)
			eng.Step()
		}
	}
	return testing.AllocsPerRun(10, batch) / ops
}

// noop is the measured event body; a top-level func so scheduling it
// allocates no closure.
func noop() {}

// checkBaseline gates the current report against a committed baseline:
// simulation throughput may regress at most maxRegress (fractional),
// and the event loop may not allocate more than the baseline records.
func checkBaseline(path string, cur *report, maxRegress float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.SimCyclesPerSec > 0 {
		floor := base.SimCyclesPerSec * (1 - maxRegress)
		if cur.SimCyclesPerSec < floor {
			return fmt.Errorf("sim throughput regressed: %.0f cycles/s vs baseline %.0f (floor %.0f at %.0f%% tolerance)",
				cur.SimCyclesPerSec, base.SimCyclesPerSec, floor, maxRegress*100)
		}
	}
	if cur.EventLoopAllocsPerOp > base.EventLoopAllocsPerOp {
		return fmt.Errorf("event loop allocates: %.2f allocs/op vs baseline %.2f",
			cur.EventLoopAllocsPerOp, base.EventLoopAllocsPerOp)
	}
	return nil
}

// measureCheckpoint runs bench/sc three times at the gpusim layer:
// uncheckpointed (to size a cadence that yields a few snapshots),
// checkpointed with every snapshot written through the same atomic-write
// path the harness uses, and resumed from the last snapshot. The
// resumed run must reproduce the checkpointed reference exactly.
func measureCheckpoint(bench string, sc secmem.Config, insts uint64) (*checkpointReport, error) {
	mkCfg := func(every uint64) gpusim.Config {
		cfg := gpusim.ScaledConfig(sc)
		cfg.Sec.ProtectedBytes = protected
		cfg.MaxInstructions = insts
		cfg.CheckpointEvery = every
		return cfg
	}
	runOnce := func(cfg gpusim.Config, sink gpusim.CheckpointSink) (*stats.Stats, error) {
		wl, err := workload.Get(bench)
		if err != nil {
			return nil, err
		}
		g, err := gpusim.New(cfg, wl)
		if err != nil {
			return nil, err
		}
		return g.RunWithCheckpoints(sink)
	}

	// Cadence: a third of the uncheckpointed run, so the checkpointed
	// run takes a few snapshots at any instruction budget.
	plain, err := runOnce(mkCfg(0), nil)
	if err != nil {
		return nil, err
	}
	every := plain.Cycles / 3
	if every == 0 {
		every = 1
	}

	dir, err := os.MkdirTemp("", "benchsmoke-ckpt-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.ckpt")
	rep := &checkpointReport{Benchmark: bench, Scheme: sc.Scheme, EveryCycles: every}
	var last []byte
	var saveTotal time.Duration
	cfg := mkCfg(every)
	ref, err := runOnce(cfg, func(cycle uint64, data []byte) error {
		start := time.Now()
		if werr := checkpoint.WriteFileAtomic(path, data); werr != nil {
			return werr
		}
		saveTotal += time.Since(start)
		rep.Snapshots++
		last = append(last[:0], data...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if rep.Snapshots == 0 {
		return nil, fmt.Errorf("checkpointed %s/%s run took no snapshots at cadence %d", bench, sc.Scheme, every)
	}
	rep.SnapshotBytes = len(last)
	rep.SaveNs = saveTotal.Nanoseconds() / int64(rep.Snapshots)

	wl, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := gpusim.ResumeSnapshot(cfg, wl, last)
	if err != nil {
		return nil, err
	}
	rep.RestoreNs = time.Since(start).Nanoseconds()
	resumed, err := g.RunWithCheckpoints(nil)
	if err != nil {
		return nil, err
	}
	rep.ResumeMatch = *resumed == *ref
	if !rep.ResumeMatch {
		fmt.Fprintf(os.Stderr, "benchsmoke: RESUME DIVERGENCE %s/%s:\nref:     %+v\nresumed: %+v\n",
			bench, sc.Scheme, *ref, *resumed)
	}
	return rep, nil
}

// measureTraceReplay captures bench/sc into a PLTR-v2 trace on disk,
// replays the trace through a fresh simulation, and requires the replay
// to reproduce the capture run's statistics exactly. The streaming
// reader's resident-record high-water mark is reported so the
// bounded-memory property is tracked run over run, and records/sec of
// the replay is the trajectory throughput number for the trace path.
func measureTraceReplay(bench string, sc secmem.Config, insts uint64) (*traceReport, error) {
	cfg := gpusim.ScaledConfig(sc)
	cfg.Sec.ProtectedBytes = protected
	cfg.MaxInstructions = insts

	wl, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "benchsmoke-trace-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.pltr")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ref, err := trace.Capture(cfg, wl, f)
	captureNs := time.Since(start).Nanoseconds()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	rp, err := trace.OpenReplay("trace:"+path, path)
	if err != nil {
		return nil, err
	}
	g, err := gpusim.New(cfg, rp)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	st := g.Run()
	replayNs := time.Since(start).Nanoseconds()

	rep := &traceReport{
		Benchmark:          bench,
		Scheme:             sc.Scheme,
		TraceBytes:         fi.Size(),
		Records:            rp.TotalRecords(),
		CaptureNs:          captureNs,
		ReplayNs:           replayNs,
		MaxResidentRecords: rp.MaxResidentRecords(),
	}
	if replayNs > 0 {
		rep.ReplayRecordsPerSec = float64(rep.Records) / (float64(replayNs) / 1e9)
	}
	// Replay runs under a different benchmark name ("trace:<path>"); that
	// is the only field allowed to differ from the capture run.
	a, b := *ref, *st
	a.Benchmark, b.Benchmark = "", ""
	rep.ReplayMatch = a == b
	if !rep.ReplayMatch {
		fmt.Fprintf(os.Stderr, "benchsmoke: TRACE REPLAY DIVERGENCE %s/%s:\ncapture: %+v\nreplay:  %+v\n",
			bench, sc.Scheme, *ref, *st)
	}
	return rep, nil
}

// smokePlan is the attack schedule of the tamper micro-benchmark:
// ciphertext flips and a counter rollback over the low protected range,
// early enough that the short smoke runs revisit the targets.
const smokePlan = `seed 6
at cycle=1000 attack=sectorflip range=0x0:0x100000 count=12
at cycle=1500 attack=bitflip range=0x0:0x100000 count=4
at cycle=2000 attack=ctr-rollback range=0x0:0x100000 count=4
`

// measureTamper runs one attacked bench/sc simulation in sequential and
// parallel partition mode and compares the outcomes: the attack must
// land identically in both (ops apply at epoch boundaries), and the
// scheme must never record a silent corruption.
func measureTamper(bench string, sc secmem.Config, insts uint64) (*tamperReport, error) {
	plan, err := tamper.Parse(smokePlan)
	if err != nil {
		return nil, err
	}
	runOnce := func(parallel bool) (*stats.Stats, *tamperReport, error) {
		// A fresh workload instance per run: workloads are stateful.
		wl, err := workload.Get(bench)
		if err != nil {
			return nil, nil, err
		}
		cfg := gpusim.ScaledConfig(sc)
		cfg.Sec.ProtectedBytes = protected
		cfg.MaxInstructions = insts
		cfg.ParallelPartitions = parallel
		il, err := geom.NewInterleaver(cfg.Partitions)
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		ops, err := plan.Expand(il, protected*uint64(cfg.Partitions))
		if err != nil {
			return nil, nil, err
		}
		expandNs := time.Since(start).Nanoseconds()
		g, err := gpusim.New(cfg, wl)
		if err != nil {
			return nil, nil, err
		}
		g.ArmTamper(ops)
		st := g.Run()
		return st, &tamperReport{
			Benchmark: bench, Scheme: sc.Scheme,
			PlanFingerprint: plan.Fingerprint(),
			Ops:             len(ops),
			ExpandNs:        expandNs,
			Injected:        st.Sec.TamperInjected,
			TaintedReads:    st.Sec.TaintedReads,
			Detected: st.Sec.Verdicts.Count(stats.VerdictDetectedByMAC) +
				st.Sec.Verdicts.Count(stats.VerdictDetectedByBMT),
			SilentCorruption: st.Sec.Verdicts.Count(stats.VerdictSilentCorruption),
		}, nil
	}
	seqSt, rep, err := runOnce(false)
	if err != nil {
		return nil, err
	}
	parSt, _, err := runOnce(true)
	if err != nil {
		return nil, err
	}
	rep.SeqParMatch = *seqSt == *parSt
	if !rep.SeqParMatch {
		fmt.Fprintf(os.Stderr, "benchsmoke: TAMPER DIVERGENCE %s/%s:\nseq: %+v\npar: %+v\n",
			bench, sc.Scheme, *seqSt, *parSt)
	}
	if rep.Injected != uint64(rep.Ops) {
		return nil, fmt.Errorf("tamper %s/%s: %d of %d ops landed", bench, sc.Scheme, rep.Injected, rep.Ops)
	}
	return rep, nil
}

func main() {
	var (
		insts    = flag.Uint64("insts", 1500, "warp-instruction budget per run")
		out      = flag.String("out", "BENCH_ci.json", "summary output path")
		benches  = flag.String("benchmarks", "bfs,hotspot,sgemm,pagerank", "comma-separated benchmarks")
		schemes  = flag.String("schemes", "nosec,pssm,plutus", "comma-separated schemes")
		minSpeed = flag.Float64("minspeedup", 0, "fail unless parallel beats sequential by this factor (0 = report only)")
		baseline = flag.String("baseline", "", "committed BENCH_*.json to gate against (empty = no gate)")
		note     = flag.String("note", "", "provenance note embedded in the summary (for committed baselines)")
		maxRegr  = flag.Float64("maxregress", 0.10, "with -baseline: max fractional sim-throughput regression before failing")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a pprof allocation profile of the sweep to this file")
		loadgen  = flag.String("loadgen", "", "merge this `plutusctl loadgen` summary JSON into the report as cluster_loadgen")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		}
	}()

	var scs []secmem.Config
	for _, name := range strings.Split(*schemes, ",") {
		sc, err := secmem.ByName(name, protected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke:", err)
			os.Exit(1)
		}
		scs = append(scs, sc)
	}
	benchList := strings.Split(*benches, ",")

	// Parallelism 1 isolates the variable under test: the only difference
	// between the two sweeps is partition sharding inside each simulation.
	mkRunner := func(parallel bool) *harness.Runner {
		return harness.NewRunner(harness.Config{
			ProtectedBytes:     protected,
			MaxInstructions:    *insts,
			Benchmarks:         benchList,
			Parallelism:        1,
			ParallelPartitions: parallel,
		})
	}
	seqR, parR := mkRunner(false), mkRunner(true)

	rep := report{Note: *note, GOMAXPROCS: runtime.GOMAXPROCS(0), MaxInstructions: *insts, AllMatch: true}
	sweep := func(r *harness.Runner, bench string, sc secmem.Config) (*stats.Stats, int64) {
		start := time.Now()
		st, err := r.Run(bench, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke:", err)
			os.Exit(1)
		}
		return st, time.Since(start).Nanoseconds()
	}
	for _, bench := range benchList {
		for _, sc := range scs {
			seq, seqNs := sweep(seqR, bench, sc)
			par, parNs := sweep(parR, bench, sc)
			match := *seq == *par
			rep.Runs = append(rep.Runs, run{
				Benchmark: bench, Scheme: sc.Scheme, Match: match,
				SequentialNs: seqNs, ParallelNs: parNs, Stats: *seq,
			})
			rep.SequentialNs += seqNs
			rep.ParallelNs += parNs
			if !match {
				rep.AllMatch = false
				fmt.Fprintf(os.Stderr, "benchsmoke: DIVERGENCE %s/%s:\nseq: %+v\npar: %+v\n",
					bench, sc.Scheme, *seq, *par)
			}
		}
	}
	if rep.ParallelNs > 0 {
		rep.Speedup = float64(rep.SequentialNs) / float64(rep.ParallelNs)
	}
	var simCycles uint64
	for _, r := range rep.Runs {
		simCycles += r.Stats.Cycles
	}
	if rep.SequentialNs > 0 {
		rep.SimCyclesPerSec = float64(simCycles) / (float64(rep.SequentialNs) / 1e9)
	}
	rep.EventLoopAllocsPerOp = measureEventLoopAllocs()

	// Checkpoint micro-benchmark on one representative run (the first
	// benchmark under the last scheme — plutus in the default matrix).
	ck, err := measureCheckpoint(benchList[0], scs[len(scs)-1], *insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: checkpoint:", err)
		os.Exit(1)
	}
	rep.Checkpoint = ck
	if !ck.ResumeMatch {
		rep.AllMatch = false
	}

	// Tamper micro-benchmark on the same representative run: the attack
	// must replay identically across execution modes and never corrupt
	// silently.
	tk, err := measureTamper(benchList[0], scs[len(scs)-1], *insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: tamper:", err)
		os.Exit(1)
	}
	rep.Tamper = tk
	if !tk.SeqParMatch || tk.SilentCorruption != 0 {
		rep.AllMatch = false
	}

	// Trace micro-benchmark on the same representative run: capture the
	// issued stream, replay it streaming from disk, and require the
	// replay to reproduce the capture run exactly.
	tr, err := measureTraceReplay(benchList[0], scs[len(scs)-1], *insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: trace:", err)
		os.Exit(1)
	}
	rep.Trace = tr
	if !tr.ReplayMatch {
		rep.AllMatch = false
	}

	if *loadgen != "" {
		lg, err := os.ReadFile(*loadgen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke: loadgen:", err)
			os.Exit(1)
		}
		if !json.Valid(lg) {
			fmt.Fprintf(os.Stderr, "benchsmoke: loadgen: %s is not valid JSON\n", *loadgen)
			os.Exit(1)
		}
		rep.ClusterLoadgen = json.RawMessage(lg)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
	fmt.Printf("benchsmoke: %d runs, seq %.2fs, par %.2fs, speedup %.2fx, match=%v -> %s\n",
		len(rep.Runs), float64(rep.SequentialNs)/1e9, float64(rep.ParallelNs)/1e9,
		rep.Speedup, rep.AllMatch, *out)
	fmt.Printf("benchsmoke: perf: %.0f sim cycles/s sequential, %.2f event-loop allocs/op\n",
		rep.SimCyclesPerSec, rep.EventLoopAllocsPerOp)
	fmt.Printf("benchsmoke: checkpoint %s/%s: %d snapshots of %d B every %d cycles, save %s, restore %s, resume match=%v\n",
		ck.Benchmark, ck.Scheme, ck.Snapshots, ck.SnapshotBytes, ck.EveryCycles,
		time.Duration(ck.SaveNs), time.Duration(ck.RestoreNs), ck.ResumeMatch)
	fmt.Printf("benchsmoke: tamper %s/%s: plan %s, %d ops (expand %s), tainted reads %d, detected %d, silent %d, seq/par match=%v\n",
		tk.Benchmark, tk.Scheme, tk.PlanFingerprint, tk.Ops, time.Duration(tk.ExpandNs),
		tk.TaintedReads, tk.Detected, tk.SilentCorruption, tk.SeqParMatch)
	fmt.Printf("benchsmoke: trace %s/%s: %d records in %d B, capture %s, replay %s (%.0f records/s, %d resident max), replay match=%v\n",
		tr.Benchmark, tr.Scheme, tr.Records, tr.TraceBytes, time.Duration(tr.CaptureNs),
		time.Duration(tr.ReplayNs), tr.ReplayRecordsPerSec, tr.MaxResidentRecords, tr.ReplayMatch)

	if !rep.AllMatch {
		os.Exit(1)
	}
	if *minSpeed > 0 && rep.Speedup < *minSpeed {
		fmt.Fprintf(os.Stderr, "benchsmoke: speedup %.2fx below required %.2fx\n", rep.Speedup, *minSpeed)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := checkBaseline(*baseline, &rep, *maxRegr); err != nil {
			fmt.Fprintf(os.Stderr, "benchsmoke: baseline gate (%s): %v\n", *baseline, err)
			os.Exit(1)
		}
		fmt.Printf("benchsmoke: baseline gate passed against %s\n", *baseline)
	}
}
