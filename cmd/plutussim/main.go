// Command plutussim runs one (benchmark, scheme) simulation and prints a
// full statistics report: IPC, DRAM traffic by class, metadata-cache hit
// rates and security-engine event counts.
//
// With -remote it submits the run to a plutusd daemon instead of
// simulating locally and relays the daemon's result bytes verbatim —
// the output is byte-identical either way.
//
// Usage:
//
//	plutussim -bench bfs -scheme plutus
//	plutussim -bench sgemm -scheme pssm -insts 50000 -volta
//	plutussim -bench bfs -scheme plutus -json
//	plutussim -bench bfs -scheme plutus -remote http://127.0.0.1:8091
//	plutussim -list
//
// With -checkpoint-every N (and -checkpoint-dir) the run snapshots its
// complete state every N cycles; if it is killed, rerunning the same
// command with -resume continues from the last snapshot and produces
// output byte-identical to an uninterrupted run at the same cadence:
//
//	plutussim -bench bfs -scheme plutus -checkpoint-dir /tmp/ckpt -checkpoint-every 100000
//	plutussim -bench bfs -scheme plutus -checkpoint-dir /tmp/ckpt -checkpoint-every 100000 -resume
//
// With -tamper-plan FILE the run arms the adversarial fault injector:
// the plan's attacks mutate DRAM-resident state at the given cycles and
// the report gains tamper/verdict lines showing what each scheme
// detected (see internal/tamper for the plan grammar). Plans are local
// only and cannot be combined with -remote:
//
//	plutussim -bench bfs -scheme plutus -tamper-plan attack.plan
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/prof"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
	"github.com/plutus-gpu/plutus/internal/server/client"
	"github.com/plutus-gpu/plutus/internal/tamper"
	"github.com/plutus-gpu/plutus/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "bfs", "benchmark name (see -list)")
		scheme   = flag.String("scheme", "plutus", "security scheme (see -list)")
		insts    = flag.Uint64("insts", 20000, "warp-instruction budget")
		seed     = flag.Uint64("seed", 0, "workload seed perturbation (0 = canonical instantiation; distinct seeds are distinct runs)")
		volta    = flag.Bool("volta", false, "full 80-SM/32-partition Volta config (slow)")
		parallel = flag.Bool("parallel", false, "run memory partitions on parallel goroutines (bit-identical results)")
		asJSON   = flag.Bool("json", false, "print the canonical JSON record instead of the text report")
		remote   = flag.String("remote", "", "submit to a plutusd daemon at this base URL instead of simulating locally")
		list     = flag.Bool("list", false, "list benchmarks and schemes, then exit")
		ckptDir  = flag.String("checkpoint-dir", "", "directory for run snapshots (required with -checkpoint-every)")
		ckptN    = flag.Uint64("checkpoint-every", 0, "snapshot the run every N cycles (0 = off; cadence affects timing, so compare runs at equal cadence)")
		resume   = flag.Bool("resume", false, "resume from the snapshot in -checkpoint-dir if one exists")
		tplan    = flag.String("tamper-plan", "", "tamper-injection plan file: mutate DRAM state mid-run and report detection verdicts (see internal/tamper)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof allocation profile of the run to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plutussim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "plutussim:", err)
		}
	}()

	if *list {
		fmt.Println("benchmarks:", strings.Join(workload.Names(), " "))
		fmt.Println("schemes:   ", strings.Join(secmem.Names(), " "))
		return
	}

	const protected = 128 << 20
	sc, err := secmem.ByName(*scheme, protected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plutussim:", err)
		os.Exit(1)
	}

	var plan *tamper.Plan
	if *tplan != "" {
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "plutussim: -tamper-plan cannot be combined with -remote (plans run locally)")
			os.Exit(1)
		}
		text, err := os.ReadFile(*tplan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plutussim:", err)
			os.Exit(1)
		}
		plan, err = tamper.Parse(string(text))
		if err != nil {
			fmt.Fprintf(os.Stderr, "plutussim: %s: %v\n", *tplan, err)
			os.Exit(1)
		}
	}

	if *remote != "" {
		if err := runRemote(*remote, *bench, *scheme, *insts, *seed, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "plutussim:", err)
			os.Exit(1)
		}
		return
	}

	if *ckptN > 0 && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "plutussim: -checkpoint-every requires -checkpoint-dir")
		os.Exit(1)
	}
	if *resume && *ckptN == 0 {
		fmt.Fprintln(os.Stderr, "plutussim: -resume requires -checkpoint-every (the cadence is part of the run's identity)")
		os.Exit(1)
	}
	r := harness.NewRunner(harness.Config{
		ProtectedBytes:     protected,
		MaxInstructions:    *insts,
		Benchmarks:         []string{*bench},
		FullVolta:          *volta,
		ParallelPartitions: *parallel,
		CheckpointEvery:    *ckptN,
		CheckpointDir:      *ckptDir,
		Resume:             *resume,
		TamperPlan:         plan,
	})
	st, err := r.RunSeeded(*bench, sc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plutussim:", err)
		os.Exit(1)
	}
	if *asJSON {
		if err := harness.WriteRunJSON(os.Stdout, st); err != nil {
			fmt.Fprintln(os.Stderr, "plutussim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(harness.Report(st, sc))
}

// runRemote submits the run to plutusd, waits for it to settle, and
// relays the daemon-rendered result bytes to stdout unmodified. The
// budget travels in the request so the daemon rejects a mismatch
// instead of returning a run simulated under different settings.
func runRemote(base, bench, scheme string, insts, seed uint64, asJSON bool) error {
	ctx := context.Background()
	c := client.New(base)
	st, err := c.Run(ctx, server.RunRequest{
		Benchmark:       bench,
		Scheme:          scheme,
		Seed:            seed,
		MaxInstructions: insts,
	})
	if err != nil {
		return err
	}
	if st.State != server.StateDone {
		return fmt.Errorf("remote run %s failed: %s", st.ID, st.Error)
	}
	format := "text"
	if asJSON {
		format = "json"
	}
	body, err := c.Result(ctx, st.ID, format)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}
