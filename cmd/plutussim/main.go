// Command plutussim runs one (benchmark, scheme) simulation and prints a
// full statistics report: IPC, DRAM traffic by class, metadata-cache hit
// rates and security-engine event counts.
//
// Usage:
//
//	plutussim -bench bfs -scheme plutus
//	plutussim -bench sgemm -scheme pssm -insts 50000 -volta
//	plutussim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "bfs", "benchmark name (see -list)")
		scheme   = flag.String("scheme", "plutus", "security scheme")
		insts    = flag.Uint64("insts", 20000, "warp-instruction budget")
		volta    = flag.Bool("volta", false, "full 80-SM/32-partition Volta config (slow)")
		parallel = flag.Bool("parallel", false, "run memory partitions on parallel goroutines (bit-identical results)")
		list     = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(workload.Names(), " "))
		return
	}

	const protected = 128 << 20
	sc, err := secmem.ByName(*scheme, protected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plutussim:", err)
		os.Exit(1)
	}
	r := harness.NewRunner(harness.Config{
		ProtectedBytes:     protected,
		MaxInstructions:    *insts,
		Benchmarks:         []string{*bench},
		FullVolta:          *volta,
		ParallelPartitions: *parallel,
	})
	st, err := r.Run(*bench, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plutussim:", err)
		os.Exit(1)
	}
	printReport(st, sc)
}

func printReport(st *stats.Stats, sc secmem.Config) {
	fmt.Printf("benchmark: %s   scheme: %s\n", st.Benchmark, st.Scheme)
	fmt.Printf("instructions: %d (loads %d, stores %d)\n", st.Instructions, st.LoadInsts, st.StoreInsts)
	fmt.Printf("cycles: %d   IPC: %.4f\n\n", st.Cycles, st.IPC())

	var rows [][]string
	for _, c := range stats.Classes() {
		if st.Traffic.Bytes(c) == 0 {
			continue
		}
		rows = append(rows, []string{
			c.String(),
			fmt.Sprintf("%d", st.Traffic.Reads[c]),
			fmt.Sprintf("%d", st.Traffic.Writes[c]),
			fmt.Sprintf("%.1f", float64(st.Traffic.Bytes(c))/1024),
		})
	}
	fmt.Println(stats.Table([]string{"class", "rd txns", "wr txns", "KiB"}, rows))
	fmt.Printf("metadata overhead: %.1f%% of data bytes\n\n",
		100*float64(st.Traffic.MetadataBytes())/float64(st.Traffic.Bytes(stats.Data)))

	fmt.Printf("L2 hit rate: %.1f%%\n", 100*st.L2.HitRate())
	if !sc.NoSecurity {
		fmt.Printf("counter / MAC / BMT cache hit rates: %.1f%% / %.1f%% / %.1f%%\n",
			100*st.CounterCache.HitRate(), 100*st.MACCache.HitRate(), 100*st.BMTCache.HitRate())
		fmt.Printf("value-verified reads: %d   MAC-verified reads: %d   MAC updates skipped: %d\n",
			st.Sec.ValueVerified, st.Sec.MACVerified, st.Sec.MACSkippedWrites)
		fmt.Printf("compact: hits %d, overflow double-accesses %d, disabled accesses %d\n",
			st.Sec.CompactHits, st.Sec.CompactOverflow, st.Sec.CompactDisabled)
		fmt.Printf("integrity: tree-node verifications %d, tamper %d, replay %d\n",
			st.Sec.BMTNodeVerifies, st.Sec.TamperDetected, st.Sec.ReplayDetected)
	}
	em := stats.DefaultEnergyModel()
	fmt.Printf("average power (arbitrary units): %.1f\n", em.Power(st))
}
