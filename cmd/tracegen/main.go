// Command tracegen captures a workload's issued instruction stream into
// a PLTR-v2 trace, lists the scenario corpus, or inspects an existing
// trace file.
//
// Capture runs the workload through the real simulator with an issue
// tap, so the trace is the stream an actual run issued — not an
// approximation — and the run's stats double as the replay reference.
// Captured traces replay anywhere a benchmark name is accepted via the
// `trace:<path>` workload namespace:
//
//	tracegen -bench bfs -insts 100000 -o bfs.pltr
//	tracegen -scenario scn-dnn-infer -o dnn.pltr
//	tracegen -scenario list
//	tracegen -seed 7 -bench bfs -o bfs-7.pltr
//	tracegen -inspect bfs.pltr
//	plutussim -bench trace:bfs.pltr -scheme plutus
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/trace"
	"github.com/plutus-gpu/plutus/internal/trace/scenario"
	"github.com/plutus-gpu/plutus/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "bfs", "workload to capture (suite, scenario, or trace:<path>)")
		scen    = flag.String("scenario", "", "capture a scenario-corpus workload; \"list\" prints the corpus and exits")
		seed    = flag.Uint64("seed", 0, "workload seed perturbation (0 = canonical instantiation)")
		scheme  = flag.String("scheme", "plutus", "security scheme the capture run executes under")
		insts   = flag.Uint64("insts", 100000, "warp-instruction budget of the capture run")
		out     = flag.String("o", "", "output trace path (default <bench>.pltr)")
		inspect = flag.String("inspect", "", "print header/chunk/index stats of an existing trace and exit")
		report  = flag.Bool("report", false, "print the capture run's stats report after writing the trace")
	)
	flag.Parse()

	if err := run(*bench, *scen, *scheme, *out, *inspect, *seed, *insts, *report); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(bench, scen, scheme, out, inspect string, seed, insts uint64, report bool) error {
	if inspect != "" {
		return inspectTrace(inspect)
	}
	if scen == "list" {
		return listScenarios()
	}
	if scen != "" {
		bench = scen
	}

	wl, err := workload.GetSeeded(bench, seed)
	if err != nil {
		return err
	}
	const protected = 128 << 20
	sc, err := secmem.ByName(scheme, protected)
	if err != nil {
		return err
	}
	cfg := gpusim.ScaledConfig(sc)
	cfg.Sec.ProtectedBytes = protected
	cfg.MaxInstructions = insts

	path := out
	if path == "" {
		path = bench + ".pltr"
	}
	// Stream through a temp file and rename, so a crashed capture never
	// leaves a valid-looking partial trace at the final path.
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	st, err := trace.Capture(cfg, wl, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	fmt.Printf("captured %d instructions (%d warps, %d cycles) from %s under %s into %s\n",
		st.Instructions, wl.Warps(), st.Cycles, bench, scheme, path)
	if report {
		fmt.Print(harness.Report(st, sc))
	}
	return nil
}

func listScenarios() error {
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tWARPS\tINSTS/WARP\tDESCRIPTION")
	for _, name := range scenario.Names() {
		info, _ := scenario.Describe(name)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", info.Name, info.Warps, info.InstsPerWarp, info.Desc)
	}
	return tw.Flush()
}

// inspectTrace prints the v2 header, per-warp chunk index, and record
// mix without ever materializing the whole trace.
func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	r, err := trace.NewReader(f, fi.Size())
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	hdr := r.Header()
	var chunks int
	var payload uint64
	minChunk, maxChunk := ^uint32(0), uint32(0)
	for w := 0; w < r.Warps(); w++ {
		for _, ci := range r.Index(w) {
			chunks++
			payload += uint64(ci.PayloadLen)
			if ci.Count < minChunk {
				minChunk = ci.Count
			}
			if ci.Count > maxChunk {
				maxChunk = ci.Count
			}
		}
	}
	var loads, stores, computes, addrs uint64
	for w := 0; w < r.Warps(); w++ {
		for i := 0; i < r.Chunks(w); i++ {
			recs, err := r.LoadChunk(w, i)
			if err != nil {
				return fmt.Errorf("%s: warp %d chunk %d: %w", path, w, i, err)
			}
			for _, rec := range recs {
				switch rec.Kind {
				case gpusim.Load:
					loads++
					addrs += uint64(len(rec.Addrs))
				case gpusim.Store:
					stores++
					addrs += uint64(len(rec.Addrs))
				default:
					computes++
				}
			}
		}
	}

	fmt.Printf("%s: PLTR v2, %d bytes\n", path, fi.Size())
	fmt.Printf("  warps         %d\n", r.Warps())
	fmt.Printf("  records       %d (%d loads, %d stores, %d compute; %d thread addresses)\n",
		r.TotalRecords(), loads, stores, computes, addrs)
	fmt.Printf("  chunks        %d (target %d records/chunk, actual %d-%d)\n",
		chunks, hdr.ChunkRecords, minChunk, maxChunk)
	fmt.Printf("  chunk payload %d bytes (%.1f%% of file)\n",
		payload, 100*float64(payload)/float64(fi.Size()))
	if hdr.HasModel {
		m := hdr.Model
		fmt.Printf("  value model   seed=%#x zero=%.2f pool=%.2f/%d jitter=%v\n",
			m.Seed, m.ZeroFrac, m.PoolFrac, m.PoolSize, m.Jitter)
	} else {
		fmt.Printf("  value model   none (replays with zero model)\n")
	}
	return nil
}
