// Command tracegen captures a synthetic benchmark's memory-instruction
// stream into the binary trace format, or inspects an existing trace.
//
// Usage:
//
//	tracegen -bench bfs -insts 100000 -o bfs.pltr
//	tracegen -inspect bfs.pltr
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/trace"
	"github.com/plutus-gpu/plutus/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "bfs", "benchmark to capture")
		insts   = flag.Int("insts", 100000, "instructions to capture")
		out     = flag.String("o", "", "output trace path (default <bench>.pltr)")
		inspect = flag.String("inspect", "", "print a summary of an existing trace and exit")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	wl, err := workload.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	tr := trace.Capture(wl, *insts)
	path := *out
	if path == "" {
		path = *bench + ".pltr"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("captured %d records (%d warps) from %s into %s\n",
		len(tr.Records), tr.Warps, *bench, path)
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	var loads, stores, computes, addrs int
	for _, r := range tr.Records {
		switch r.Kind {
		case gpusim.Load:
			loads++
			addrs += len(r.Addrs)
		case gpusim.Store:
			stores++
			addrs += len(r.Addrs)
		default:
			computes++
		}
	}
	fmt.Printf("%s: %d warps, %d records (%d loads, %d stores, %d compute), %d thread addresses\n",
		path, tr.Warps, len(tr.Records), loads, stores, computes, addrs)
	return nil
}
