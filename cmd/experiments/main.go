// Command experiments regenerates every table and figure of the paper's
// evaluation section, writing one text report per figure into -out and a
// combined summary to stdout.
//
// Usage:
//
//	experiments                       # all figures, default budget
//	experiments -fig fig18            # one figure
//	experiments -insts 60000 -out results
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/workload"
)

func main() {
	var (
		fig     = flag.String("fig", "", "run a single figure (e.g. fig18); empty = all")
		insts   = flag.Uint64("insts", 20000, "warp-instruction budget per run")
		outDir  = flag.String("out", "results", "output directory for per-figure reports")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default all)")
		volta   = flag.Bool("volta", false, "full Volta configuration (much slower)")
		par     = flag.Int("parallel", 0, "concurrent simulations (default GOMAXPROCS)")
		parPart = flag.Bool("parallel-partitions", false, "shard each simulation's memory partitions across goroutines (bit-identical results)")
		csvOut  = flag.Bool("csv", false, "also write raw per-run measurements to <out>/runs.csv")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.MaxInstructions = *insts
	cfg.FullVolta = *volta
	cfg.Parallelism = *par
	cfg.ParallelPartitions = *parPart
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	} else {
		cfg.Benchmarks = workload.SuiteNames()
	}
	r := harness.NewRunner(cfg)

	figs := harness.Figures()
	if *fig != "" {
		f, err := harness.FigureByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		figs = []harness.Figure{f}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	for _, f := range figs {
		start := time.Now()
		fmt.Printf("== %s ==\n", f.Title)
		out, err := f.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
		path := filepath.Join(*outDir, f.ID+".txt")
		body := f.Title + "\n\n" + out + fmt.Sprintf("\n(budget: %d instructions/run; generated in %.1fs)\n",
			cfg.MaxInstructions, time.Since(start).Seconds())
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *csvOut {
		f, err := os.Create(filepath.Join(*outDir, "runs.csv"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		schemes := []secmem.Config{
			secmem.Baseline(0), secmem.PSSM(0), secmem.CommonCtr(0), secmem.Plutus(0),
		}
		if err := r.WriteCSV(f, schemes); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", filepath.Join(*outDir, "runs.csv"))
	}
}
