package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/simlint"
)

// finding is one rendered diagnostic, shared by the -json and -sarif
// emitters.
type finding struct {
	ID       string `json:"id"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// stableID fingerprints a diagnostic for cross-run identity (CI
// annotation dedup, baseline suppression). It hashes the analyzer,
// the root-relative path, and the message — not the line number, so
// unrelated edits above a finding don't mint a new identity.
func stableID(analyzer, relFile, message string) string {
	sum := sha256.Sum256([]byte(analyzer + "|" + relFile + "|" + message))
	return hex.EncodeToString(sum[:8])
}

// render converts diagnostics to findings with root-relative,
// slash-separated paths and stable IDs.
func render(fset *token.FileSet, diags []analysis.Diagnostic) []finding {
	root, err := os.Getwd()
	if err != nil {
		root = ""
	}
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		file := p.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		file = filepath.ToSlash(file)
		out = append(out, finding{
			ID:       stableID(d.Analyzer, file, d.Message),
			Analyzer: d.Analyzer,
			File:     file,
			Line:     p.Line,
			Column:   p.Column,
			Message:  d.Message,
		})
	}
	return out
}

func emitJSON(fs []finding) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// sarifRules describes every analyzer in the suite plus the two
// pseudo-analyzers diagnostics can carry: "simlint" (malformed
// directives) and "unusedignore" (stale directives).
func sarifRules() []map[string]any {
	var rules []map[string]any
	add := func(id, doc string) {
		rules = append(rules, map[string]any{
			"id": id,
			"shortDescription": map[string]any{
				"text": doc,
			},
		})
	}
	for _, a := range simlint.Analyzers() {
		add(a.Name, a.Doc)
	}
	add("simlint", "malformed //simlint:ignore directive")
	add("unusedignore", "//simlint:ignore directive that suppresses no diagnostic")
	return rules
}

// emitSARIF writes a SARIF 2.1.0 log for CI code-scanning upload.
func emitSARIF(fs []finding) error {
	results := make([]map[string]any, 0, len(fs))
	for _, f := range fs {
		results = append(results, map[string]any{
			"ruleId": f.Analyzer,
			"level":  "error",
			"message": map[string]any{
				"text": f.Message,
			},
			"partialFingerprints": map[string]any{
				"simlintId/v1": f.ID,
			},
			"locations": []map[string]any{{
				"physicalLocation": map[string]any{
					"artifactLocation": map[string]any{
						"uri":       f.File,
						"uriBaseId": "%SRCROOT%",
					},
					"region": map[string]any{
						"startLine":   f.Line,
						"startColumn": f.Column,
					},
				},
			}},
		})
	}
	log := map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "simlint",
					"informationUri": "https://github.com/plutus-gpu/plutus",
					"rules":          sarifRules(),
				},
			},
			"results": results,
		}},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func emitText(fs []finding) {
	for _, f := range fs {
		fmt.Printf("%s:%d:%d: %s (%s %s)\n", f.File, f.Line, f.Column, f.Message, f.Analyzer, f.ID)
	}
}
