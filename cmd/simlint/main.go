// Command simlint statically enforces the simulator's determinism
// invariants. It bundles four analyzers:
//
//	detrand  — no wall-clock reads or unseeded randomness in
//	           sim-critical packages (simulated time is sim.Cycle)
//	maporder — no order-sensitive work inside `range` over a map
//	           (collect keys, sort, then iterate)
//	rawconc  — no raw goroutines or channel operations outside
//	           internal/sim; concurrency goes through the engine
//	statskey — stats table and CSV column keys must be compile-time
//	           constants so output schemas never drift at runtime
//
// Findings are suppressed line-by-line with
//
//	//simlint:ignore <analyzer> <reason>
//
// where the reason is mandatory; a trailing directive covers its own
// line and an own-line directive covers the next line.
//
// Usage:
//
//	simlint [packages]         # standalone; defaults to ./...
//	go vet -vettool=$(which simlint) ./...
//
// Exit status: 0 clean, 1 tool error, 2 findings reported.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/plutus-gpu/plutus/internal/lint/loader"
	"github.com/plutus-gpu/plutus/internal/lint/simlint"
	"github.com/plutus-gpu/plutus/internal/lint/unitchecker"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// cmd/go version handshake: the build ID keys vet's
			// result cache, so hash the executable itself.
			printVersion()
			return
		case "-flags", "--flags":
			// cmd/go flag handshake; this tool defines no flags.
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			usage()
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool=` with a unit config.
		unitchecker.Run(args[0], simlint.Analyzers(), simlint.Names())
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags, err := simlint.RunPackages(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		if len(pkgs) > 0 {
			fmt.Printf("%s: %s (%s)\n", pkgs[0].Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func usage() {
	fmt.Print(`simlint enforces the simulator's determinism invariants.

Usage:
  simlint [packages]                        standalone; defaults to ./...
  go vet -vettool=/path/to/simlint ./...    as a vet tool

Analyzers:
`)
	for _, a := range simlint.Analyzers() {
		fmt.Printf("  %-8s  %s\n", a.Name, a.Doc)
	}
	fmt.Print(`
Suppress a finding with a mandatory reason:
  //simlint:ignore <analyzer> <reason>      trailing: covers its line
                                            own line: covers the next line
`)
}

// printVersion implements the `-V=full` handshake cmd/go uses to key
// the vet result cache: program name plus a content hash of the
// binary.
func printVersion() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}
