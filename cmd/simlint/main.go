// Command simlint statically enforces the simulator's determinism and
// performance invariants. It bundles seven analyzers:
//
//	detrand   — no wall-clock reads or unseeded randomness in
//	            sim-critical packages (simulated time is sim.Cycle)
//	hotalloc  — functions annotated //simlint:hotpath must be
//	            allocation-free per the compiler's escape analysis
//	maporder  — no order-sensitive work inside `range` over a map
//	            (collect keys, sort, then iterate)
//	rawconc   — no raw goroutines or channel operations outside the
//	            allowlist; concurrency goes through the engine
//	snapsym   — Snapshot/Restore method pairs must write and read the
//	            same receiver fields in the same order
//	statskey  — stats table and CSV column keys must be compile-time
//	            constants so output schemas never drift at runtime
//	stickyerr — codec functions must not drop, shadow, overwrite, or
//	            ignore error values; codec errors are sticky
//
// Findings are suppressed line-by-line with
//
//	//simlint:ignore <analyzer> <reason>
//
// where the reason is mandatory; a trailing directive covers its own
// line and an own-line directive covers the next line. When the full
// suite runs, a directive that suppresses nothing is itself an error
// (analyzer "unusedignore").
//
// Usage:
//
//	simlint [-json|-sarif] [packages]    # standalone; defaults to ./...
//	go vet -vettool=$(which simlint) ./...
//
// -json emits one object per finding; -sarif emits a SARIF 2.1.0 log
// for CI code-scanning upload. Both carry a stable ID per finding
// (hash of analyzer, root-relative path, and message) so annotations
// keep their identity across unrelated edits.
//
// Exit status: 0 clean, 1 tool error, 2 findings reported.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/plutus-gpu/plutus/internal/lint/loader"
	"github.com/plutus-gpu/plutus/internal/lint/simlint"
	"github.com/plutus-gpu/plutus/internal/lint/unitchecker"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// cmd/go version handshake: the build ID keys vet's
			// result cache, so hash the executable itself.
			printVersion()
			return
		case "-flags", "--flags":
			// cmd/go flag handshake; this tool defines no flags.
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			usage()
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool=` with a unit config.
		unitchecker.Run(args[0], simlint.Analyzers(), simlint.Names())
		return
	}

	var jsonOut, sarifOut bool
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-sarif", "--sarif":
			sarifOut = true
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "simlint: unknown flag %s\n", a)
				os.Exit(1)
			}
			patterns = append(patterns, a)
		}
	}
	if jsonOut && sarifOut {
		fmt.Fprintln(os.Stderr, "simlint: -json and -sarif are mutually exclusive")
		os.Exit(1)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags, err := simlint.RunPackages(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var fs []finding
	if len(pkgs) > 0 {
		fs = render(pkgs[0].Fset, diags)
	} else {
		fs = []finding{}
	}
	switch {
	case jsonOut:
		err = emitJSON(fs)
	case sarifOut:
		err = emitSARIF(fs)
	default:
		emitText(fs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(fs) > 0 {
		os.Exit(2)
	}
}

func usage() {
	fmt.Print(`simlint enforces the simulator's determinism invariants.

Usage:
  simlint [-json|-sarif] [packages]         standalone; defaults to ./...
  go vet -vettool=/path/to/simlint ./...    as a vet tool

Flags (standalone mode only):
  -json    emit findings as JSON with stable per-finding IDs
  -sarif   emit a SARIF 2.1.0 log for CI code-scanning upload

Analyzers:
`)
	for _, a := range simlint.Analyzers() {
		fmt.Printf("  %-9s  %s\n", a.Name, a.Doc)
	}
	fmt.Print(`
Suppress a finding with a mandatory reason:
  //simlint:ignore <analyzer> <reason>      trailing: covers its line
                                            own line: covers the next line
In full-suite runs a directive that suppresses nothing is itself an
error (unusedignore): remove directives when the code they excused is
fixed.
`)
}

// printVersion implements the `-V=full` handshake cmd/go uses to key
// the vet result cache: program name plus a content hash of the
// binary.
func printVersion() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}
