package plutus_test

import (
	"runtime"
	"testing"
	"time"

	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// runPartitionMode executes one full bfs/Plutus simulation on the scaled
// 8-partition GPU directly (no harness cache — every call simulates).
func runPartitionMode(tb testing.TB, parallel bool, insts uint64) stats.Stats {
	tb.Helper()
	wl, err := workload.Get("bfs")
	if err != nil {
		tb.Fatal(err)
	}
	cfg := gpusim.ScaledConfig(secmem.Plutus(protected))
	cfg.Sec.ProtectedBytes = protected
	cfg.MaxInstructions = insts
	cfg.ParallelPartitions = parallel
	g, err := gpusim.New(cfg, wl)
	if err != nil {
		tb.Fatal(err)
	}
	return *g.Run()
}

// BenchmarkPartitionMode compares sequential and parallel partition
// execution on the 8-partition configuration. With GOMAXPROCS ≥ 4 the
// parallel mode's wall-clock time per run should be well under 1/1.5 of
// sequential (compare the two sub-benchmarks' ns/op); on a single CPU
// the cluster falls back to sequential execution and the two match.
func BenchmarkPartitionMode(b *testing.B) {
	const insts = 8000
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"sequential", false}, {"parallel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				st := runPartitionMode(b, mode.parallel, insts)
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
	}
}

// TestParallelSpeedup asserts the parallel mode actually buys wall-clock
// time when cores are available. The issue's ≥1.5× target is measured by
// BenchmarkPartitionMode; the test gate is slightly looser (1.2×) so a
// noisy shared CI runner doesn't flake, while still catching any
// regression to effectively-serial execution.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the timing ratio")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs GOMAXPROCS >= 4, have %d", runtime.GOMAXPROCS(0))
	}
	const insts = 8000
	runPartitionMode(t, false, insts) // warm up allocator and caches
	measure := func(parallel bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now() //simlint:ignore detrand measures host wall time of the run itself, never enters sim state
			runPartitionMode(t, parallel, insts)
			if d := time.Since(start); d < best { //simlint:ignore detrand same wall-time measurement as above
				best = d
			}
		}
		return best
	}
	seq := measure(false)
	par := measure(true)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel %v, speedup %.2fx", seq, par, speedup)
	if speedup < 1.2 {
		t.Errorf("parallel speedup %.2fx below 1.2x (seq %v, par %v)", speedup, seq, par)
	}
}
