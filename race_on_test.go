//go:build race

package plutus_test

// raceEnabled reports whether the race detector is compiled in; the
// wall-clock speedup test skips under it (instrumentation distorts the
// sequential/parallel timing ratio).
const raceEnabled = true
