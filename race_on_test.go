//go:build race

package plutus_test

import "testing"

// raceEnabled reports whether the race detector is compiled in; the
// wall-clock speedup test skips under it (instrumentation distorts the
// sequential/parallel timing ratio).
const raceEnabled = true

// TestRaceTagOn exists so the race-tagged file set provably compiles
// into -race builds: CI runs `go test -race -run TestRaceTagOn` and
// fails if zero tests execute, which is exactly what would happen if
// this file's build tag rotted (and raceEnabled silently stayed false
// everywhere).
func TestRaceTagOn(t *testing.T) {
	if !raceEnabled {
		t.Fatal("compiled under the race tag but raceEnabled is false")
	}
}
