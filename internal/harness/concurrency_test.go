package harness

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// TestSingleFlightExecutesOnce is the single-flight cache contract under
// contention: N goroutines requesting the same (benchmark, scheme) must
// execute the simulation exactly once — counted by Metrics, not inferred
// — and every caller must observe the identical *stats.Stats (each
// execution allocates a fresh one, so pointer identity proves sharing).
// CI runs this under -race as part of the ordinary test matrix.
func TestSingleFlightExecutesOnce(t *testing.T) {
	r := NewRunner(tinyConfig())
	const callers = 24
	got := make([]*stats.Stats, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := r.RunContext(context.Background(), "hotspot", secmem.PSSM(128<<20))
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = st
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d observed a distinct *stats.Stats — the run executed more than once", i)
		}
	}
	m := r.Metrics()
	if m.Executions != 1 {
		t.Fatalf("Metrics.Executions = %d, want exactly 1", m.Executions)
	}
	if m.Lookups != callers {
		t.Errorf("Metrics.Lookups = %d, want %d", m.Lookups, callers)
	}
	if hr := m.HitRate(); hr <= 0.9 {
		t.Errorf("HitRate() = %.3f, want > 0.9 for %d coalesced callers", hr, callers)
	}
}

// TestRunContextCancelledBeforeStart: a pre-cancelled context fails fast
// without executing anything or poisoning the cache — the next caller
// with a live context runs the simulation normally.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	r := NewRunner(tinyConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx, "bfs", secmem.PSSM(128<<20)); err == nil {
		t.Fatal("cancelled context did not error")
	}
	st, err := r.RunContext(context.Background(), "bfs", secmem.PSSM(128<<20))
	if err != nil || st == nil {
		t.Fatalf("cache poisoned by cancelled call: %v", err)
	}
	if m := r.Metrics(); m.Executions != 1 {
		t.Errorf("Metrics.Executions = %d, want 1 (cancelled call must not execute)", m.Executions)
	}
}

// TestRunRendersByteStable pins the single-run renderings the daemon
// serves: two independent runners produce byte-identical Report text,
// canonical JSON and single-run CSV, and the CSV reuses the frozen
// WriteCSV header.
func TestRunRendersByteStable(t *testing.T) {
	render := func() (string, string, string) {
		r := NewRunner(tinyConfig())
		sc := secmem.PSSM(128 << 20)
		st, err := r.Run("bfs", sc)
		if err != nil {
			t.Fatal(err)
		}
		var j, c strings.Builder
		if err := WriteRunJSON(&j, st); err != nil {
			t.Fatal(err)
		}
		if err := WriteRunCSV(&c, st); err != nil {
			t.Fatal(err)
		}
		return Report(st, sc), j.String(), c.String()
	}
	text1, json1, csv1 := render()
	text2, json2, csv2 := render()
	if text1 != text2 || json1 != json2 || csv1 != csv2 {
		t.Error("single-run renderings differ between two fresh runners")
	}
	if got := strings.SplitN(csv1, "\n", 2)[0]; got != csvHeader {
		t.Errorf("WriteRunCSV header drifted:\n got %q\nwant %q", got, csvHeader)
	}
	if !strings.HasPrefix(text1, "benchmark: bfs   scheme: pssm\n") {
		t.Errorf("Report missing identity line:\n%s", text1)
	}
	if !strings.HasSuffix(json1, "\n") {
		t.Error("WriteRunJSON output must be newline-terminated")
	}
}
