package harness

import (
	"strings"
	"sync"
	"testing"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// tinyConfig keeps harness tests fast: two benchmarks, small budget.
func tinyConfig() Config {
	return Config{
		ProtectedBytes:  128 << 20,
		MaxInstructions: 3000,
		Benchmarks:      []string{"bfs", "hotspot"},
		Parallelism:     4,
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(tinyConfig())
	a, err := r.Run("bfs", secmem.PSSM(128<<20))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("bfs", secmem.PSSM(128<<20))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not served from cache")
	}
}

// Concurrent requests for one (benchmark, scheme) pair must coalesce
// into a single simulation: every caller gets the same *stats.Stats
// (each execution allocates a fresh one, so pointer identity proves the
// run happened exactly once). The pre-singleflight cache could run the
// same pair several times under contention.
func TestRunnerCoalescesConcurrentRuns(t *testing.T) {
	r := NewRunner(tinyConfig())
	const callers = 8
	got := make([]*stats.Stats, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := r.Run("bfs", secmem.Plutus(128<<20))
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = st
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a distinct result — simulation ran more than once", i)
		}
	}
}

// A parallel-partition runner must produce the exact same numbers as a
// sequential one — the cache key deliberately ignores the mode.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	seqCfg, parCfg := tinyConfig(), tinyConfig()
	parCfg.ParallelPartitions = true
	seq, err := NewRunner(seqCfg).Run("bfs", secmem.Plutus(128<<20))
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(parCfg).Run("bfs", secmem.Plutus(128<<20))
	if err != nil {
		t.Fatal(err)
	}
	if *seq != *par {
		t.Fatalf("parallel harness run diverged:\nseq: %+v\npar: %+v", *seq, *par)
	}
}

func TestRunnerUnknownBenchmark(t *testing.T) {
	r := NewRunner(tinyConfig())
	if _, err := r.Run("nope", secmem.PSSM(128<<20)); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestFigureRegistryResolves(t *testing.T) {
	figs := Figures()
	if len(figs) != 14 {
		t.Fatalf("expected 14 experiments, have %d", len(figs))
	}
	for _, f := range figs {
		got, err := FigureByID(f.ID)
		if err != nil || got.Title != f.Title {
			t.Errorf("FigureByID(%q) broken: %v", f.ID, err)
		}
	}
	if _, err := FigureByID("fig99"); err == nil {
		t.Error("unknown figure id resolved")
	}
}

func TestEq1TableIsSimulationFree(t *testing.T) {
	r := NewRunner(tinyConfig())
	out, err := Eq1Table(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Plutus uses 3") || !strings.Contains(out, "3 of 4") {
		t.Errorf("Eq. 1 table missing expected content:\n%s", out)
	}
}

func TestFig10Mix(t *testing.T) {
	r := NewRunner(tinyConfig())
	out, err := Fig10(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bfs") || !strings.Contains(out, "read%") {
		t.Errorf("Fig10 output malformed:\n%s", out)
	}
}

func TestFig9ValueReuseOrdering(t *testing.T) {
	// The masked scenario must pass at least as often as the unmasked
	// 3-of-4, which must pass at least as often as all-8 (thresholds
	// strictly relax left to right).
	strict, err := valueReuseRate("bfs", 0, 4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := valueReuseRate("bfs", 0, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := valueReuseRate("bfs", 4, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if loose < strict {
		t.Errorf("3-of-4 rate %.3f below all-8 rate %.3f", loose, strict)
	}
	if masked < loose-0.02 {
		t.Errorf("masked rate %.3f below unmasked %.3f", masked, loose)
	}
	if loose == 0 {
		t.Error("bfs should show nonzero value reuse")
	}
}

func TestFig6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(tinyConfig())
	out, err := Fig6(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "pssm") {
		t.Errorf("Fig6 output malformed:\n%s", out)
	}
	// PSSM must be below 1.0 (security costs performance).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "geomean") {
			fields := strings.Fields(line)
			if len(fields) < 2 || !strings.HasPrefix(fields[1], "0.") {
				t.Errorf("PSSM geomean should be < 1.0: %q", line)
			}
		}
	}
}

func TestCompareSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(tinyConfig())
	sp, err := r.CompareSchemes(secmem.PSSM(128<<20), secmem.Plutus(128<<20))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Mean <= 0 || sp.MaxBench == "" || len(sp.PerBench) != 2 {
		t.Errorf("speedup malformed: %+v", sp)
	}
	if sp.TrafficMean >= 1 {
		t.Errorf("Plutus should reduce metadata traffic: ratio %.3f", sp.TrafficMean)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRunner(tinyConfig())
	var buf strings.Builder
	if err := r.WriteCSV(&buf, []secmem.Config{secmem.Baseline(128 << 20), secmem.PSSM(128 << 20)}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + 2 benchmarks × 2 schemes
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "benchmark,scheme,instructions") {
		t.Errorf("bad CSV header: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != strings.Count(lines[0], ",") {
			t.Errorf("ragged CSV row: %q", l)
		}
	}
}
