// Package harness reproduces the paper's evaluation: it owns the
// experiment matrix (benchmark × security scheme), runs simulations in
// parallel with result caching (many figures share the same underlying
// runs), and formats each figure's table the way the paper reports it.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/tamper"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// Config controls the experiment sweep.
type Config struct {
	// ProtectedBytes is the per-partition protected range (paper: 4 GiB
	// over 32 partitions = 128 MiB per partition).
	ProtectedBytes uint64
	// MaxInstructions is the warp-instruction budget per run. The paper
	// simulates 2 G instructions on GPGPU-Sim; the reproduction's default
	// keeps full sweeps to minutes while preserving relative results.
	MaxInstructions uint64
	// Benchmarks lists the workloads to run (default: the full suite).
	Benchmarks []string
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	Parallelism int
	// FullVolta switches from the scaled 8-partition GPU to the paper's
	// full 80-SM / 32-partition configuration (much slower).
	FullVolta bool
	// ParallelPartitions runs each simulation's memory partitions on
	// their own goroutines (see gpusim.Config.ParallelPartitions).
	// Results are bit-identical to sequential mode, so the run cache is
	// shared between the two.
	ParallelPartitions bool

	// CheckpointEvery snapshots each simulation's full state every this
	// many cycles (0 = no checkpointing). Checkpoint cadence perturbs
	// event timing (see gpusim.Config.CheckpointEvery), so it is part of
	// the run cache key: results are only comparable between runs at the
	// same cadence.
	CheckpointEvery uint64
	// CheckpointDir is where snapshots are written, one file per run,
	// named after the run key. Required when CheckpointEvery > 0.
	CheckpointDir string
	// Resume restores any run whose snapshot file exists in
	// CheckpointDir instead of starting it from cycle zero. Completed
	// runs delete their snapshot, so only interrupted runs resume.
	Resume bool

	// TamperPlan arms an adversarial fault-injection schedule on every
	// run (see internal/tamper): DRAM-resident state is mutated at the
	// plan's cycles and the engines' detection verdicts land in the
	// stats. The plan fingerprint is part of the run cache key, and the
	// false-alarm gate (which treats any detection in a benign run as a
	// harness bug) is lifted — detections are the measurement.
	TamperPlan *tamper.Plan
}

// DefaultConfig returns the sweep configuration used by cmd/experiments.
func DefaultConfig() Config {
	return Config{
		ProtectedBytes:  128 << 20,
		MaxInstructions: 20000,
		Benchmarks:      workload.SuiteNames(),
		Parallelism:     runtime.GOMAXPROCS(0),
	}
}

func (c *Config) normalize() {
	d := DefaultConfig()
	if c.ProtectedBytes == 0 {
		c.ProtectedBytes = d.ProtectedBytes
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = d.MaxInstructions
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = d.Benchmarks
	}
	if c.Parallelism <= 0 {
		c.Parallelism = d.Parallelism
	}
}

// runEntry is a single-flight cache slot: the first goroutine to claim
// a key becomes the leader and executes the simulation once; every
// later caller blocks on done and reads the settled result. Concurrent
// requests for the same (benchmark, scheme) can never run the
// simulation twice.
type runEntry struct {
	done chan struct{} // closed once st/err are settled
	st   *stats.Stats
	err  error
}

// Runner executes and caches simulation runs.
type Runner struct {
	cfg Config

	mu         sync.Mutex
	cache      map[string]*runEntry
	lookups    uint64 // Run/RunContext calls
	executions uint64 // simulations actually executed (cache misses)
	sem        chan struct{}
}

// Metrics is a snapshot of the runner's single-flight cache activity.
// plutusd exposes it at /debug/statsz; tests use it to prove that
// concurrent identical requests coalesced into one execution.
type Metrics struct {
	// Lookups counts Run/RunContext calls.
	Lookups uint64
	// Executions counts simulations actually executed — cache misses
	// that reached simulate.
	Executions uint64
}

// HitRate returns the fraction of lookups served without a fresh
// simulation (coalesced into an in-flight run or read from cache).
func (m Metrics) HitRate() float64 {
	if m.Lookups == 0 {
		return 0
	}
	return 1 - float64(m.Executions)/float64(m.Lookups)
}

// Metrics returns a consistent snapshot of the cache counters.
func (r *Runner) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Metrics{Lookups: r.lookups, Executions: r.executions}
}

// NewRunner builds a Runner (normalizing cfg in place).
func NewRunner(cfg Config) *Runner {
	cfg.normalize()
	// Simulations allocate heavily in steady state; relaxing the GC
	// target roughly halves wall time for full sweeps.
	debug.SetGCPercent(600)
	return &Runner{
		cfg:   cfg,
		cache: make(map[string]*runEntry),
		sem:   make(chan struct{}, cfg.Parallelism),
	}
}

// Config returns the runner's (normalized) sweep configuration.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) key(bench string, sc secmem.Config, seed uint64) string {
	k := fmt.Sprintf("%s|%s|%d|%d", bench, sc.Scheme, r.cfg.MaxInstructions, sc.ProtectedBytes)
	if seed != 0 {
		// Seed zero is the canonical workload instantiation (workload.Get);
		// omitting it keeps every pre-seed cache key, snapshot filename,
		// and golden fixture stable.
		k += fmt.Sprintf("|seed=%d", seed)
	}
	if r.cfg.CheckpointEvery > 0 {
		// Checkpoint drains perturb timing; keep cadenced runs in their
		// own cache lineage (and their own snapshot files).
		k += fmt.Sprintf("|ckpt=%d", r.cfg.CheckpointEvery)
	}
	if r.cfg.TamperPlan != nil {
		// Two runs share a cache entry only under identical attack
		// schedules.
		k += "|tamper=" + r.cfg.TamperPlan.Fingerprint()
	}
	return k
}

// CacheKey returns the run-cache key of one grid cell under this
// runner's configuration — the string the cluster's content-addressed
// result store indexes by, so a worker's bytes and a local single-box
// run of the same cell land on the same address.
func (r *Runner) CacheKey(bench string, sc secmem.Config, seed uint64) string {
	sc.ProtectedBytes = r.cfg.ProtectedBytes
	return r.key(bench, sc, seed)
}

// SnapshotPath returns the snapshot file a given run reads and writes:
// the run key with filesystem-hostile characters replaced.
func (r *Runner) SnapshotPath(bench string, sc secmem.Config) string {
	return r.SnapshotPathSeeded(bench, sc, 0)
}

// SnapshotPathSeeded is SnapshotPath for a seed-perturbed run: seeded
// runs park in their own snapshot files, which is what lets a cluster
// coordinator migrate one grid cell's PLUTSNAP between workers without
// colliding with the canonical seed-zero lineage.
func (r *Runner) SnapshotPathSeeded(bench string, sc secmem.Config, seed uint64) string {
	sc.ProtectedBytes = r.cfg.ProtectedBytes
	name := strings.NewReplacer("|", "_", "/", "_").Replace(r.key(bench, sc, seed))
	return filepath.Join(r.cfg.CheckpointDir, name+".ckpt")
}

// Run simulates one (benchmark, scheme) pair, serving repeats from cache.
// Concurrent calls for the same pair coalesce into a single simulation.
func (r *Runner) Run(bench string, sc secmem.Config) (*stats.Stats, error) {
	return r.RunContext(context.Background(), bench, sc)
}

// RunContext is Run with cancellation: a caller that gives up while
// queued behind the parallelism semaphore, or while waiting on another
// goroutine's in-flight run of the same pair, unblocks with ctx.Err().
// The simulation itself is never interrupted once started — results are
// deterministic and cheap to keep, so an executing run always settles
// its cache entry. A leader cancelled before its simulation starts
// removes the entry again, leaving the cache clean for a retry; any
// waiters already parked on that entry observe the cancellation error.
//
// RunContext is safe for concurrent use; plutusd's worker pool calls it
// from many goroutines.
func (r *Runner) RunContext(ctx context.Context, bench string, sc secmem.Config) (*stats.Stats, error) {
	return r.RunSeededContext(ctx, bench, sc, 0)
}

// RunSeeded is Run for a seed-perturbed workload instantiation (seed
// zero matches Run exactly; see workload.GetSeeded). The seed is a full
// cache-key dimension: distinct seeds are distinct runs with their own
// single-flight entries and snapshot files.
func (r *Runner) RunSeeded(bench string, sc secmem.Config, seed uint64) (*stats.Stats, error) {
	return r.RunSeededContext(context.Background(), bench, sc, seed)
}

// RunSeededContext is RunContext over the full (benchmark, scheme, seed)
// grid cell — the unit the distributed sweep fabric shards, steals, and
// content-addresses cluster-wide.
func (r *Runner) RunSeededContext(ctx context.Context, bench string, sc secmem.Config, seed uint64) (*stats.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc.ProtectedBytes = r.cfg.ProtectedBytes
	k := r.key(bench, sc, seed)

	r.mu.Lock()
	r.lookups++
	if e, ok := r.cache[k]; ok {
		r.mu.Unlock()
		select {
		case <-e.done:
			return e.st, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &runEntry{done: make(chan struct{})}
	r.cache[k] = e
	r.mu.Unlock()

	settle := func(st *stats.Stats, err error) (*stats.Stats, error) {
		e.st, e.err = st, err
		close(e.done)
		return st, err
	}
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		r.mu.Lock()
		delete(r.cache, k)
		r.mu.Unlock()
		return settle(nil, ctx.Err())
	}
	r.mu.Lock()
	r.executions++
	r.mu.Unlock()
	st, err := r.simulate(ctx, bench, sc, seed)
	<-r.sem
	if errors.Is(err, checkpoint.ErrPreempted) {
		// The run parked itself in its snapshot file; drop the cache entry
		// so a retry resumes it instead of observing the preemption error.
		r.mu.Lock()
		delete(r.cache, k)
		r.mu.Unlock()
	}
	return settle(st, err)
}

// simulate executes one uncached run. With checkpointing configured it
// writes a snapshot every Config.CheckpointEvery cycles (atomically, so
// a kill mid-write leaves the previous snapshot intact), resumes from an
// existing snapshot when Config.Resume is set, honors ctx cancellation
// at checkpoint boundaries by parking the run with ErrPreempted, and
// deletes the snapshot once the run completes.
func (r *Runner) simulate(ctx context.Context, bench string, sc secmem.Config, seed uint64) (*stats.Stats, error) {
	wl, err := workload.GetSeeded(bench, seed)
	if err != nil {
		return nil, err
	}
	var gcfg gpusim.Config
	if r.cfg.FullVolta {
		gcfg = gpusim.DefaultVoltaConfig(sc)
	} else {
		gcfg = gpusim.ScaledConfig(sc)
	}
	gcfg.Sec.ProtectedBytes = r.cfg.ProtectedBytes
	gcfg.MaxInstructions = r.cfg.MaxInstructions
	gcfg.ParallelPartitions = r.cfg.ParallelPartitions
	gcfg.CheckpointEvery = r.cfg.CheckpointEvery

	var g *gpusim.GPU
	var snapPath string
	if r.cfg.CheckpointEvery > 0 {
		if r.cfg.CheckpointDir == "" {
			return nil, fmt.Errorf("harness: %s/%s: CheckpointEvery set without CheckpointDir", bench, sc.Scheme)
		}
		snapPath = r.SnapshotPathSeeded(bench, sc, seed)
		if r.cfg.Resume {
			if data, rerr := os.ReadFile(snapPath); rerr == nil {
				g, err = gpusim.ResumeSnapshot(gcfg, wl, data)
				if err != nil {
					return nil, fmt.Errorf("harness: %s/%s: resume %s: %w", bench, sc.Scheme, snapPath, err)
				}
			} else if !errors.Is(rerr, fs.ErrNotExist) {
				return nil, fmt.Errorf("harness: %s/%s: %w", bench, sc.Scheme, rerr)
			}
		}
	}
	if g == nil {
		g, err = gpusim.New(gcfg, wl)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", bench, sc.Scheme, err)
		}
	}
	if r.cfg.TamperPlan != nil {
		// A plan may only carry attack kinds the scheme has DRAM-resident
		// targets for; anything else would silently no-op at the engine.
		if verr := r.cfg.TamperPlan.ValidateFor(sc); verr != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", bench, sc.Scheme, verr)
		}
		// Plan addresses live in the interleaved global protected space
		// spanning all partitions. Arming after resume is required too:
		// the schedule is not part of the snapshot, only the count of
		// already-applied ops is, so a resumed run re-arms and continues
		// from that index.
		il, ierr := geom.NewInterleaver(gcfg.Partitions)
		if ierr != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", bench, sc.Scheme, ierr)
		}
		ops, terr := r.cfg.TamperPlan.Expand(il, gcfg.Sec.ProtectedBytes*uint64(gcfg.Partitions))
		if terr != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", bench, sc.Scheme, terr)
		}
		g.ArmTamper(ops)
	}

	var sink gpusim.CheckpointSink
	if snapPath != "" {
		sink = func(cycle uint64, data []byte) error {
			if err := checkpoint.WriteFileAtomic(snapPath, data); err != nil {
				return fmt.Errorf("harness: %s/%s: write snapshot: %w", bench, sc.Scheme, err)
			}
			if cerr := ctx.Err(); cerr != nil {
				// The snapshot just written is the park point; the run can
				// be picked up again with Config.Resume.
				return fmt.Errorf("harness: %s/%s parked at cycle %d (%v): %w",
					bench, sc.Scheme, cycle, cerr, checkpoint.ErrPreempted)
			}
			return nil
		}
	}
	st, err := g.RunWithCheckpoints(sink)
	if err != nil {
		return nil, err
	}
	if snapPath != "" {
		// Completed: the snapshot would only shadow future identical runs.
		os.Remove(snapPath)
	}
	if r.cfg.TamperPlan == nil && (st.Sec.TamperDetected != 0 || st.Sec.ReplayDetected != 0) {
		return nil, fmt.Errorf("harness: %s/%s: false security alarms: %+v", bench, sc.Scheme, st.Sec)
	}
	return st, nil
}

// runMatrix warms the cache for every (benchmark, scheme) pair in
// parallel and returns the first error.
func (r *Runner) runMatrix(schemes []secmem.Config) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(r.cfg.Benchmarks)*len(schemes))
	for _, b := range r.cfg.Benchmarks {
		for _, sc := range schemes {
			wg.Add(1)
			go func(b string, sc secmem.Config) {
				defer wg.Done()
				if _, err := r.Run(b, sc); err != nil {
					errCh <- err
				}
			}(b, sc)
		}
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// ipcTable renders normalized-IPC rows: one row per benchmark, one column
// per scheme (normalized to the first scheme), plus a geometric-mean row.
func (r *Runner) ipcTable(title string, schemes []secmem.Config) (string, error) {
	if err := r.runMatrix(schemes); err != nil {
		return "", err
	}
	header := []string{"benchmark"}
	for _, sc := range schemes[1:] {
		header = append(header, sc.Scheme)
	}
	var rows [][]string
	gm := make([][]float64, len(schemes)-1)
	for _, b := range r.cfg.Benchmarks {
		base, err := r.Run(b, schemes[0])
		if err != nil {
			return "", err
		}
		row := []string{b}
		for i, sc := range schemes[1:] {
			st, err := r.Run(b, sc)
			if err != nil {
				return "", err
			}
			n := st.IPC() / base.IPC()
			gm[i] = append(gm[i], n)
			row = append(row, fmt.Sprintf("%.3f", n))
		}
		rows = append(rows, row)
	}
	gmRow := []string{"geomean"}
	for i := range gm {
		gmRow = append(gmRow, fmt.Sprintf("%.3f", stats.GeoMean(gm[i])))
	}
	rows = append(rows, gmRow)
	return title + "\n" + stats.Table(header, rows), nil
}

// Speedup summarizes scheme b over scheme a: per-benchmark IPC ratios,
// their geometric mean, and the max.
type Speedup struct {
	Mean, Max   float64
	MaxBench    string
	PerBench    map[string]float64
	TrafficMean float64 // mean metadata-traffic ratio (b / a)
}

// CompareSchemes computes the headline speedup of b over a.
func (r *Runner) CompareSchemes(a, b secmem.Config) (*Speedup, error) {
	if err := r.runMatrix([]secmem.Config{a, b}); err != nil {
		return nil, err
	}
	out := &Speedup{PerBench: make(map[string]float64), Max: 0}
	var ratios, traffic []float64
	for _, bench := range r.cfg.Benchmarks {
		sa, err := r.Run(bench, a)
		if err != nil {
			return nil, err
		}
		sb, err := r.Run(bench, b)
		if err != nil {
			return nil, err
		}
		ratio := sb.IPC() / sa.IPC()
		out.PerBench[bench] = ratio
		ratios = append(ratios, ratio)
		if ratio > out.Max {
			out.Max, out.MaxBench = ratio, bench
		}
		if m := sa.Traffic.MetadataBytes(); m > 0 {
			traffic = append(traffic, float64(sb.Traffic.MetadataBytes())/float64(m))
		}
	}
	out.Mean = stats.GeoMean(ratios)
	out.TrafficMean = stats.GeoMean(traffic)
	return out, nil
}
