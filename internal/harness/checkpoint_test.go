package harness

import (
	"bytes"
	"context"
	"errors"
	"os"
	"sync/atomic"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/secmem"
)

// cancelInFlight is a context that reports cancellation only once the
// run is under way: RunContext's entry check (the first Err call) sees
// nil, and the checkpoint sink's check at the first epoch boundary sees
// context.Canceled — a deterministic stand-in for a preemption landing
// mid-run.
type cancelInFlight struct {
	context.Context
	calls atomic.Int32
}

func newCancelInFlight() *cancelInFlight { return &cancelInFlight{Context: context.Background()} }

func (c *cancelInFlight) Err() error {
	if c.calls.Add(1) == 1 {
		return nil
	}
	return context.Canceled
}

func (c *cancelInFlight) Done() <-chan struct{} { return nil }

// ckptHarnessCfg returns a small checkpointed sweep configuration.
func ckptHarnessCfg(dir string, resume bool) Config {
	return Config{
		MaxInstructions: 6000,
		Benchmarks:      []string{"stream"},
		CheckpointEvery: 500,
		CheckpointDir:   dir,
		Resume:          resume,
	}
}

// TestHarnessResumeByteIdentical is the end-to-end replay guarantee one
// level up from gpusim: a run preempted at its first checkpoint and then
// resumed by a fresh Runner renders byte-identical JSON, CSV, and text
// reports to an uninterrupted run at the same cadence.
func TestHarnessResumeByteIdentical(t *testing.T) {
	sc := secmem.Plutus(0)
	render := func(r *Runner) (string, string, string) {
		st, err := r.Run("stream", sc)
		if err != nil {
			t.Fatal(err)
		}
		var js bytes.Buffer
		if err := WriteRunJSON(&js, st); err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := WriteRunCSV(&csv, st); err != nil {
			t.Fatal(err)
		}
		return js.String(), csv.String(), Report(st, sc)
	}

	refJS, refCSV, refTxt := render(NewRunner(ckptHarnessCfg(t.TempDir(), false)))

	// Interrupted lineage: preempt at the first checkpoint...
	dir := t.TempDir()
	preempted := NewRunner(ckptHarnessCfg(dir, false))
	if _, err := preempted.RunContext(newCancelInFlight(), "stream", sc); !errors.Is(err, checkpoint.ErrPreempted) {
		t.Fatalf("err = %v, want ErrPreempted", err)
	}
	if _, err := os.Stat(preempted.SnapshotPath("stream", sc)); err != nil {
		t.Fatalf("no snapshot left behind: %v", err)
	}

	// ...and resume with a fresh Runner, as a restarted process would.
	resJS, resCSV, resTxt := render(NewRunner(ckptHarnessCfg(dir, true)))
	if resJS != refJS {
		t.Errorf("JSON reports differ:\nref:     %s\nresumed: %s", refJS, resJS)
	}
	if resCSV != refCSV {
		t.Errorf("CSV reports differ:\nref:     %s\nresumed: %s", refCSV, resCSV)
	}
	if resTxt != refTxt {
		t.Errorf("text reports differ:\nref:\n%s\nresumed:\n%s", refTxt, resTxt)
	}

	// Completion must have retired the snapshot.
	resumed := NewRunner(ckptHarnessCfg(dir, true))
	if _, err := resumed.Run("stream", sc); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(resumed.SnapshotPath("stream", sc)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("snapshot still present after completed run: %v", err)
	}
}

// TestPreemptedRetrySameRunner: after a preemption the cache entry is
// dropped, so a retry on the same Runner resumes the parked run and
// matches the uninterrupted result.
func TestPreemptedRetrySameRunner(t *testing.T) {
	sc := secmem.PSSM(0)
	ref, err := NewRunner(ckptHarnessCfg(t.TempDir(), false)).Run("bfs", sc)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(ckptHarnessCfg(t.TempDir(), true))
	if _, err := r.RunContext(newCancelInFlight(), "bfs", sc); !errors.Is(err, checkpoint.ErrPreempted) {
		t.Fatalf("err = %v, want ErrPreempted", err)
	}
	st, err := r.Run("bfs", sc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != ref.Cycles || st.Instructions != ref.Instructions || st.Traffic.Total() != ref.Traffic.Total() {
		t.Fatalf("retried run diverges: got (%d cyc, %d inst, %d B), want (%d, %d, %d)",
			st.Cycles, st.Instructions, st.Traffic.Total(),
			ref.Cycles, ref.Instructions, ref.Traffic.Total())
	}
	m := r.Metrics()
	if m.Executions != 2 {
		t.Fatalf("executions = %d, want 2 (preempted + resumed)", m.Executions)
	}
}

// TestCheckpointEveryRequiresDir: misconfiguration is a typed failure,
// not a silent uncheckpointed run.
func TestCheckpointEveryRequiresDir(t *testing.T) {
	r := NewRunner(Config{Benchmarks: []string{"stream"}, CheckpointEvery: 1000})
	if _, err := r.Run("stream", secmem.Baseline(0)); err == nil {
		t.Fatal("run with CheckpointEvery but no CheckpointDir succeeded")
	}
}
