package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/secmem"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// csvHeader is the frozen output schema of WriteCSV. Changing it is a
// breaking change for downstream plotting scripts and must show up in
// review as a diff of this constant, not as silent drift.
const csvHeader = "benchmark,scheme,instructions,cycles,ipc," +
	"data_bytes,counter_bytes,mac_bytes,bmt_bytes," +
	"cctr_bytes,cbmt_bytes,meta_bytes," +
	"value_verified,mac_verified,mac_skipped,power"

// emitCSV runs a fresh Runner (fresh cache, fresh engine state) and
// returns the full CSV text.
func emitCSV(t *testing.T) string {
	t.Helper()
	r := NewRunner(tinyConfig())
	var buf strings.Builder
	schemes := []secmem.Config{secmem.Baseline(128 << 20), secmem.PSSM(128 << 20)}
	if err := r.WriteCSV(&buf, schemes); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestWriteCSVByteStable is the determinism contract for the harness's
// machine-readable output: two completely independent runners must
// produce byte-identical CSVs, and the header must match the frozen
// schema exactly.
func TestWriteCSVByteStable(t *testing.T) {
	first := emitCSV(t)
	if got := strings.SplitN(first, "\n", 2)[0]; got != csvHeader {
		t.Errorf("CSV header drifted:\n got %q\nwant %q", got, csvHeader)
	}
	second := emitCSV(t)
	if first != second {
		t.Errorf("two fresh runs produced different CSV bytes:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestFigureTextByteStable pins the human-readable tables the same way:
// regenerating a figure from scratch yields identical bytes.
func TestFigureTextByteStable(t *testing.T) {
	for _, id := range []string{"fig10", "eq1", "frontier"} {
		fig, err := FigureByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := fig.Run(NewRunner(tinyConfig()))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := fig.Run(NewRunner(tinyConfig()))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a != b {
			t.Errorf("%s: two fresh runs produced different table bytes:\n--- first ---\n%s\n--- second ---\n%s", id, a, b)
		}
	}
}

// TestEq1Golden diffs the simulation-free Eq. 1 table against a golden
// file, so any change to the forgery-bound math or its formatting is an
// explicit, reviewed artifact. Regenerate with `go test -run Eq1Golden
// -update ./internal/harness/`.
func TestEq1Golden(t *testing.T) {
	out, err := Eq1Table(NewRunner(tinyConfig()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "eq1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if out != string(want) {
		t.Errorf("Eq. 1 table differs from %s (regenerate with -update if intentional):\n got:\n%s\nwant:\n%s", path, out, want)
	}
}
