package harness

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/tamper"
)

// testPlan is the attack schedule the harness-level tests arm: ciphertext
// flips plus a counter rollback over the low range of the global
// protected space, early enough that the stream workloads revisit the
// targets.
const testPlanText = `seed 6
at cycle=1000 attack=sectorflip range=0x0:0x100000 count=12
at cycle=1500 attack=bitflip range=0x0:0x100000 count=4
at cycle=2000 attack=ctr-rollback range=0x0:0x100000 count=4
`

func testPlan(t *testing.T) *tamper.Plan {
	t.Helper()
	p, err := tamper.Parse(testPlanText)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// frontierSchemes are the representatives of the three scheme families
// the harness-level attack tests cover: the full counter+MAC+tree
// design, the derived-version MGX variant, and the secret-sharing
// datapath with no DRAM metadata at all.
func frontierSchemes(t *testing.T) []secmem.Config {
	t.Helper()
	var out []secmem.Config
	for _, name := range []string{"plutus", "mgx", "ssm"} {
		sc, err := secmem.ByName(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sc)
	}
	return out
}

// planFor narrows the shared test plan to the attack kinds a scheme has
// DRAM-resident targets for (ssm keeps no counters to roll back) and
// returns it with the number of ops it expands to.
func planFor(t *testing.T, sc secmem.Config) (*tamper.Plan, uint64) {
	t.Helper()
	p := testPlan(t).FilterFor(sc)
	var n uint64
	for _, d := range p.Directives {
		if d.IsRange {
			n += uint64(d.Count)
		} else {
			n++
		}
	}
	return p, n
}

// TestTamperRunDetects: an attacked full-pipeline run applies the whole
// schedule, and every integrity scheme — MAC+BMT, derived-version, and
// share-reconstruction alike — never lets a tainted read through
// silently.
func TestTamperRunDetects(t *testing.T) {
	for _, sc := range frontierSchemes(t) {
		t.Run(sc.Scheme, func(t *testing.T) {
			plan, want := planFor(t, sc)
			r := NewRunner(Config{
				MaxInstructions: 6000,
				Benchmarks:      []string{"stream"},
				TamperPlan:      plan,
			})
			st, err := r.Run("stream", sc)
			if err != nil {
				t.Fatal(err)
			}
			if st.Sec.TamperInjected != want {
				t.Errorf("injected %d ops, want all %d", st.Sec.TamperInjected, want)
			}
			if n := st.Sec.Verdicts.Count(stats.VerdictSilentCorruption); n != 0 {
				t.Errorf("%d silent corruptions on an integrity scheme", n)
			}
		})
	}
}

// TestTamperParallelMatchesSequential: tamper ops land at epoch
// boundaries with every shard parked, so parallel-partition execution
// must replay the attacked run bit-identically to sequential execution
// — for each scheme family.
func TestTamperParallelMatchesSequential(t *testing.T) {
	for _, sc := range frontierSchemes(t) {
		t.Run(sc.Scheme, func(t *testing.T) {
			plan, _ := planFor(t, sc)
			run := func(parallel bool) string {
				r := NewRunner(Config{
					MaxInstructions:    6000,
					Benchmarks:         []string{"stream"},
					ParallelPartitions: parallel,
					TamperPlan:         plan,
				})
				st, err := r.Run("stream", sc)
				if err != nil {
					t.Fatal(err)
				}
				var js bytes.Buffer
				if err := WriteRunJSON(&js, st); err != nil {
					t.Fatal(err)
				}
				return js.String()
			}
			if seq, par := run(false), run(true); seq != par {
				t.Errorf("attacked run diverges between sequential and parallel partitions:\nseq: %s\npar: %s", seq, par)
			}
		})
	}
}

// TestTamperResumeByteIdentical extends the harness replay guarantee to
// attacked runs: a run preempted at a checkpoint mid-attack and resumed
// by a fresh Runner (which re-arms the plan; the snapshot records only
// the applied-op index) renders byte-identical reports to an
// uninterrupted attacked run.
func TestTamperResumeByteIdentical(t *testing.T) {
	for _, sc := range frontierSchemes(t) {
		t.Run(sc.Scheme, func(t *testing.T) {
			plan, _ := planFor(t, sc)
			cfg := func(dir string, resume bool) Config {
				c := ckptHarnessCfg(dir, resume)
				c.TamperPlan = plan
				return c
			}
			render := func(r *Runner) string {
				st, err := r.Run("stream", sc)
				if err != nil {
					t.Fatal(err)
				}
				var js bytes.Buffer
				if err := WriteRunJSON(&js, st); err != nil {
					t.Fatal(err)
				}
				return js.String() + "\n" + Report(st, sc)
			}

			ref := render(NewRunner(cfg(t.TempDir(), false)))

			dir := t.TempDir()
			preempted := NewRunner(cfg(dir, false))
			if _, err := preempted.RunContext(newCancelInFlight(), "stream", sc); !errors.Is(err, checkpoint.ErrPreempted) {
				t.Fatalf("err = %v, want ErrPreempted", err)
			}
			if _, err := os.Stat(preempted.SnapshotPath("stream", sc)); err != nil {
				t.Fatalf("no snapshot left behind: %v", err)
			}
			if got := render(NewRunner(cfg(dir, true))); got != ref {
				t.Errorf("attacked resume diverges:\nref:\n%s\nresumed:\n%s", ref, got)
			}
		})
	}
}

// TestFrontierScenarioFamilies drives the new scheme families through
// the four trace scenario families under attack: the whole schedule is
// applied, nothing slips through silently, and two completely fresh
// attacked runs render byte-identical JSON reports.
func TestFrontierScenarioFamilies(t *testing.T) {
	families := []string{"scn-dnn-infer", "scn-multitenant", "scn-phase", "scn-attackload"}
	for _, sc := range frontierSchemes(t) {
		if sc.Scheme == "plutus" {
			continue // covered by the existing tamper suite
		}
		for _, fam := range families {
			sc, fam := sc, fam
			t.Run(sc.Scheme+"/"+fam, func(t *testing.T) {
				plan, want := planFor(t, sc)
				run := func() string {
					r := NewRunner(Config{
						MaxInstructions: 4000,
						Benchmarks:      []string{fam},
						TamperPlan:      plan,
					})
					st, err := r.Run(fam, sc)
					if err != nil {
						t.Fatal(err)
					}
					if st.Sec.TamperInjected != want {
						t.Errorf("injected %d ops, want all %d", st.Sec.TamperInjected, want)
					}
					if n := st.Sec.Verdicts.Count(stats.VerdictSilentCorruption); n != 0 {
						t.Errorf("%d silent corruptions on an integrity scheme", n)
					}
					var js bytes.Buffer
					if err := WriteRunJSON(&js, st); err != nil {
						t.Fatal(err)
					}
					return js.String()
				}
				if a, b := run(), run(); a != b {
					t.Errorf("two fresh attacked runs diverge:\nfirst:  %s\nsecond: %s", a, b)
				}
			})
		}
	}
}

// TestTamperPlanCacheKey: runs under different plans (or none) must not
// share cache entries, while identical plans must.
func TestTamperPlanCacheKey(t *testing.T) {
	benign := NewRunner(Config{Benchmarks: []string{"stream"}})
	attacked := NewRunner(Config{Benchmarks: []string{"stream"}, TamperPlan: testPlan(t)})
	sc := secmem.Plutus(0)
	sc.ProtectedBytes = benign.Config().ProtectedBytes

	kBenign := benign.key("stream", sc, 0)
	kAttack := attacked.key("stream", sc, 0)
	if kBenign == kAttack {
		t.Errorf("benign and attacked runs share cache key %q", kBenign)
	}
	other, err := tamper.Parse("seed 7\nat cycle=1 attack=bitflip addr=0x0 bit=0\n")
	if err != nil {
		t.Fatal(err)
	}
	kOther := NewRunner(Config{Benchmarks: []string{"stream"}, TamperPlan: other}).key("stream", sc, 0)
	if kOther == kAttack {
		t.Errorf("different plans share cache key %q", kAttack)
	}
	same := NewRunner(Config{Benchmarks: []string{"stream"}, TamperPlan: testPlan(t)}).key("stream", sc, 0)
	if same != kAttack {
		t.Errorf("identical plans disagree on cache key: %q vs %q", same, kAttack)
	}
}
