package harness

import (
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/secmem"
)

// Seed zero must be the canonical run: same cache key (so every
// pre-seed key, snapshot filename, and golden fixture stays stable) and
// the very same single-flight entry as Run.
func TestSeedZeroIsCanonical(t *testing.T) {
	r := NewRunner(Config{Benchmarks: []string{"stream"}, MaxInstructions: 200})
	sc := secmem.PSSM(0)
	sc.ProtectedBytes = r.cfg.ProtectedBytes
	if k0, k := r.key("stream", sc, 0), "stream|pssm|200|134217728"; k0 != k {
		t.Fatalf("seed-0 key = %q, want %q", k0, k)
	}
	a, err := r.Run("stream", secmem.PSSM(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunSeeded("stream", secmem.PSSM(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("RunSeeded(0) did not coalesce onto Run's cache entry")
	}
	if m := r.Metrics(); m.Executions != 1 {
		t.Fatalf("expected 1 execution, got %d", m.Executions)
	}
}

// Distinct seeds are distinct cache-key dimensions and genuinely
// distinct simulations.
func TestSeedIsACacheDimension(t *testing.T) {
	r := NewRunner(Config{Benchmarks: []string{"bfs"}, MaxInstructions: 200})
	sc := secmem.PSSM(0)
	sc.ProtectedBytes = r.cfg.ProtectedBytes
	k1 := r.key("bfs", sc, 1)
	k2 := r.key("bfs", sc, 2)
	if k1 == k2 {
		t.Fatalf("seeds 1 and 2 share key %q", k1)
	}
	if !strings.Contains(k1, "|seed=1") {
		t.Fatalf("key %q missing seed component", k1)
	}
	s1, err := r.RunSeeded("bfs", secmem.PSSM(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.RunSeeded("bfs", secmem.PSSM(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if *s1 == *s2 {
		t.Fatal("seeds 1 and 2 produced identical stats")
	}
	if m := r.Metrics(); m.Executions != 2 {
		t.Fatalf("expected 2 executions, got %d", m.Executions)
	}
	// Seeded snapshot lineages must not collide with the canonical one.
	if p0, p1 := r.SnapshotPath("bfs", sc), r.SnapshotPathSeeded("bfs", sc, 1); p0 == p1 {
		t.Fatalf("seeded snapshot path collides with canonical: %q", p0)
	}
}

// The same seed replayed in a fresh runner must reproduce the run
// bit-for-bit — the property the cluster's content-addressed store
// verifies across workers.
func TestSeededRunsReplayIdentically(t *testing.T) {
	mk := func() *Runner {
		return NewRunner(Config{Benchmarks: []string{"bfs"}, MaxInstructions: 200})
	}
	a, err := mk().RunSeeded("bfs", secmem.Plutus(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().RunSeeded("bfs", secmem.Plutus(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("seed 7 diverged across runners:\n%+v\n%+v", a, b)
	}
}
