package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/trace"
	"github.com/plutus-gpu/plutus/internal/trace/scenario"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// captureScenario captures bench under exactly the configuration a
// Runner with (ProtectedBytes, MaxInstructions) would build, so a
// harness replay of the trace is comparable to a harness live run.
func captureScenario(t *testing.T, bench string, insts uint64) string {
	t.Helper()
	sc := secmem.Plutus(0)
	cfg := gpusim.ScaledConfig(sc)
	cfg.Sec.ProtectedBytes = 128 << 20
	cfg.MaxInstructions = insts
	wl, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Capture(cfg, wl, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cap.pltr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceWorkloadThroughHarness: a trace replay driven through the
// Runner (cache, false-alarm gate, report rendering) matches the live
// run of its capture source in everything but the benchmark name.
func TestTraceWorkloadThroughHarness(t *testing.T) {
	const insts = 3000
	sc := secmem.Plutus(0)

	live := NewRunner(Config{MaxInstructions: insts, Benchmarks: []string{"scn-phase"}})
	ref, err := live.Run("scn-phase", sc)
	if err != nil {
		t.Fatal(err)
	}

	path := captureScenario(t, "scn-phase", insts)
	bench := "trace:" + path
	r := NewRunner(Config{MaxInstructions: insts, Benchmarks: []string{bench}})
	st, err := r.Run(bench, sc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Benchmark != bench {
		t.Errorf("replay stats carry benchmark %q, want %q", st.Benchmark, bench)
	}
	a, b := *ref, *st
	a.Benchmark, b.Benchmark = "", ""
	if a != b {
		t.Errorf("harness trace replay diverged from live run:\nlive:   %+v\nreplay: %+v", a, b)
	}

	// Same cell again: must coalesce into the cache, not re-simulate.
	if _, err := r.Run(bench, sc); err != nil {
		t.Fatal(err)
	}
	if m := r.Metrics(); m.Executions != 1 {
		t.Errorf("trace run not cached: %d executions for %d lookups", m.Executions, m.Lookups)
	}

	// Trace cells must not collide with suite cells or with other traces.
	k := r.CacheKey(bench, sc, 0)
	if other := r.CacheKey("trace:/elsewhere/cap.pltr", sc, 0); other == k {
		t.Errorf("distinct trace paths share cache key %q", k)
	}
	if !strings.Contains(k, bench) {
		t.Errorf("cache key %q does not pin the trace path", k)
	}
	if p := r.SnapshotPath(bench, sc); strings.ContainsAny(filepath.Base(p), "|/") {
		t.Errorf("snapshot filename %q keeps filesystem-hostile characters", filepath.Base(p))
	}
}

// TestTamperDetectionOnScenarioTraces is the attack-under-replay
// oracle: for every scenario family, a captured trace re-run under an
// attack plan applies the full schedule and the integrity scheme never
// lets a tainted read through silently — detection behaviour survives
// the capture/replay round trip.
func TestTamperDetectionOnScenarioTraces(t *testing.T) {
	const insts = 6000
	for _, family := range scenario.Names() {
		family := family
		t.Run(family, func(t *testing.T) {
			path := captureScenario(t, family, insts)
			bench := "trace:" + path
			r := NewRunner(Config{
				MaxInstructions: insts,
				Benchmarks:      []string{bench},
				TamperPlan:      testPlan(t),
			})
			st, err := r.Run(bench, secmem.Plutus(0))
			if err != nil {
				t.Fatal(err)
			}
			if st.Sec.TamperInjected != 20 {
				t.Errorf("injected %d ops, want all 20", st.Sec.TamperInjected)
			}
			if n := st.Sec.Verdicts.Count(stats.VerdictSilentCorruption); n != 0 {
				t.Errorf("%d silent corruptions on an integrity scheme", n)
			}
			if family == "scn-attackload" && st.Sec.TaintedReads == 0 {
				t.Error("probe-heavy scenario never observed a tainted sector — the oracle is vacuous")
			}
		})
	}
}
