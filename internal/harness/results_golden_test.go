package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// resultsDir holds the committed per-figure reports that cmd/experiments
// writes. The tests below pin every one of them: regenerating a figure
// from scratch must reproduce the committed bytes exactly, modulo the
// wall-clock part of the footer.
const resultsDir = "../../results"

// resultsBudget is the instruction budget the committed results were
// generated with (cmd/experiments' default). The tests verify the
// committed footers actually claim this budget, so the suite cannot
// silently compare runs under different budgets.
const resultsBudget = 20000

// timingRE matches the wall-clock half of the footer, the only part of
// a figure file that is not deterministic.
var timingRE = regexp.MustCompile(`; generated in [0-9.]+s\)`)

// budgetRE extracts the instruction budget a committed file claims.
var budgetRE = regexp.MustCompile(`\(budget: ([0-9]+) instructions/run`)

// normalizeFigure strips the timing suffix so regenerated and committed
// bodies can be byte-compared.
func normalizeFigure(s string) string { return timingRE.ReplaceAllString(s, ")") }

// resultsConfig mirrors cmd/experiments' default configuration exactly;
// the goldens are only reproducible under the config that wrote them.
func resultsConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxInstructions = resultsBudget
	cfg.Benchmarks = workload.SuiteNames()
	return cfg
}

// readGolden loads a committed figure file and checks its budget line.
func readGolden(t *testing.T, id string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(resultsDir, id+".txt"))
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	m := budgetRE.FindStringSubmatch(string(raw))
	if m == nil {
		t.Fatalf("%s.txt has no budget footer", id)
	}
	if m[1] != fmt.Sprint(resultsBudget) {
		t.Fatalf("%s.txt was generated at budget %s, suite expects %d", id, m[1], resultsBudget)
	}
	return string(raw)
}

// regenFigureBody regenerates one figure on r in cmd/experiments' exact
// on-disk format. The wall-clock half of the footer is cosmetic and
// normalized away before every comparison; the test writer pins it to
// 0.0s so a rewritten file is fully deterministic (cmd/experiments
// records the real elapsed time when it regenerates the same files).
func regenFigureBody(r *Runner, f Figure) (string, error) {
	out, err := f.Run(r)
	if err != nil {
		return "", fmt.Errorf("%s: %w", f.ID, err)
	}
	return f.Title + "\n\n" + out + fmt.Sprintf("\n(budget: %d instructions/run; generated in 0.0s)\n",
		resultsBudget), nil
}

// diffFigureGolden regenerates one figure and byte-diffs it against the
// committed golden text, returning a descriptive error on any drift.
// Split from the *testing.T path so the suite itself can be tested: a
// deliberately staled golden must produce an error here, proving the
// pin actually bites.
func diffFigureGolden(r *Runner, f Figure, golden string) error {
	body, err := regenFigureBody(r, f)
	if err != nil {
		return err
	}
	if got, want := normalizeFigure(body), normalizeFigure(golden); got != want {
		return fmt.Errorf("%s drifted from results/%s.txt (regenerate with -update if intentional):\n got:\n%s\nwant:\n%s",
			f.ID, f.ID, got, want)
	}
	return nil
}

// checkFigureGolden pins one figure against results/<id>.txt. With
// -update it rewrites the committed file first.
func checkFigureGolden(t *testing.T, r *Runner, f Figure) {
	t.Helper()
	if *update {
		body, err := regenFigureBody(r, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(resultsDir, f.ID+".txt"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := diffFigureGolden(r, f, readGolden(t, f.ID)); err != nil {
		t.Error(err)
	}
}

// TestStaleGoldenFails is the suite's negative control: a golden whose
// bytes do not match the regenerated figure must be reported as drift.
// Without this, a bug that made diffFigureGolden vacuously pass (say,
// normalizing away the whole body) would silently disarm every pin.
func TestStaleGoldenFails(t *testing.T) {
	f, err := FigureByID("eq1")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(resultsConfig())
	stale := readGolden(t, "eq1") + "a stale trailing line\n"
	if err := diffFigureGolden(r, f, stale); err == nil {
		t.Fatal("diffFigureGolden accepted a stale golden")
	} else if !strings.Contains(err.Error(), "drifted from results/eq1.txt") {
		t.Fatalf("drift error lost its provenance: %v", err)
	}
	if err := diffFigureGolden(r, f, readGolden(t, "eq1")); err != nil {
		t.Fatalf("pristine golden rejected: %v", err)
	}
}

// TestFrontierCoversRegistry extends the registry↔results bijection to
// the frontier table: the committed results/frontier.txt must carry
// exactly one row per registered scheme, so registering a scheme
// without regenerating the golden fails here even when the slow
// full-figure suite is skipped.
func TestFrontierCoversRegistry(t *testing.T) {
	golden := readGolden(t, "frontier")
	rows := map[string]int{}
	for _, line := range strings.Split(golden, "\n") {
		fields := strings.Fields(line)
		if len(fields) > 0 {
			rows[fields[0]]++
		}
	}
	for _, name := range secmem.Names() {
		if n := rows[name]; n != 1 {
			t.Errorf("results/frontier.txt has %d rows for scheme %q, want exactly 1 (regenerate with -update)", n, name)
		}
	}
}

// TestResultsCoverage asserts the committed results directory and the
// figure registry are in bijection: every figure has a pinned golden
// and no orphaned golden survives a figure's removal.
func TestResultsCoverage(t *testing.T) {
	entries, err := os.ReadDir(resultsDir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".txt" {
			onDisk[e.Name()[:len(e.Name())-len(".txt")]] = true
		}
	}
	var missing, orphaned []string
	for _, f := range Figures() {
		if !onDisk[f.ID] {
			missing = append(missing, f.ID)
		}
		delete(onDisk, f.ID)
	}
	for id := range onDisk {
		orphaned = append(orphaned, id)
	}
	sort.Strings(orphaned)
	if len(missing) != 0 {
		t.Errorf("figures with no committed golden in results/: %v", missing)
	}
	if len(orphaned) != 0 {
		t.Errorf("committed goldens with no registered figure: %v", orphaned)
	}
}

// TestResultsEq1Golden pins results/eq1.txt unconditionally: the Eq. 1
// table is simulation-free, so this check is cheap enough for every CI
// run and catches any drift in the forgery-bound math or formatting.
func TestResultsEq1Golden(t *testing.T) {
	f, err := FigureByID("eq1")
	if err != nil {
		t.Fatal(err)
	}
	checkFigureGolden(t, NewRunner(resultsConfig()), f)
}

// TestResultsFiguresGolden regenerates every simulated figure at the
// committed budget and byte-diffs it against results/. A full sweep
// simulates all benchmarks under all twelve schemes, which takes tens
// of minutes on one core, so the suite only runs when explicitly asked
// for via PLUTUS_GOLDEN_FIGS=1 (or when rewriting with -update);
// results/eq1.txt stays covered on every run by TestResultsEq1Golden.
func TestResultsFiguresGolden(t *testing.T) {
	if os.Getenv("PLUTUS_GOLDEN_FIGS") != "1" && !*update {
		t.Skip("full figure regeneration is slow; set PLUTUS_GOLDEN_FIGS=1 (or run with -update) to enable")
	}
	r := NewRunner(resultsConfig()) // one runner: figures share the run cache, like cmd/experiments
	for _, f := range Figures() {
		if f.ID == "eq1" {
			continue
		}
		f := f
		t.Run(f.ID, func(t *testing.T) { checkFigureGolden(t, r, f) })
	}
}
