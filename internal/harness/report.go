package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// This file owns the canonical single-run renderings. Every surface
// that shows one finished run — `plutussim` locally, plutusd over HTTP
// (`GET /v1/runs/{id}/result`), `plutussim -remote` relaying the wire
// bytes — calls these same functions, which is what makes a result
// fetched from the daemon byte-identical to the CLI's output for the
// same (benchmark, scheme, budget).

// Report renders the human-readable single-run report: IPC, DRAM
// traffic by class, metadata-cache hit rates and security-engine event
// counts. It is the exact text `plutussim` prints.
func Report(st *stats.Stats, sc secmem.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark: %s   scheme: %s\n", st.Benchmark, st.Scheme)
	fmt.Fprintf(&b, "instructions: %d (loads %d, stores %d)\n", st.Instructions, st.LoadInsts, st.StoreInsts)
	fmt.Fprintf(&b, "cycles: %d   IPC: %.4f\n\n", st.Cycles, st.IPC())

	var rows [][]string
	for _, c := range stats.Classes() {
		if st.Traffic.Bytes(c) == 0 {
			continue
		}
		rows = append(rows, []string{
			c.String(),
			fmt.Sprintf("%d", st.Traffic.Reads[c]),
			fmt.Sprintf("%d", st.Traffic.Writes[c]),
			fmt.Sprintf("%.1f", float64(st.Traffic.Bytes(c))/1024),
		})
	}
	b.WriteString(stats.Table([]string{"class", "rd txns", "wr txns", "KiB"}, rows))
	b.WriteByte('\n') // printReport used Println: blank line after the table
	fmt.Fprintf(&b, "metadata overhead: %.1f%% of data bytes\n\n",
		100*float64(st.Traffic.MetadataBytes())/float64(st.Traffic.Bytes(stats.Data)))

	fmt.Fprintf(&b, "L2 hit rate: %.1f%%\n", 100*st.L2.HitRate())
	if !sc.NoSecurity {
		fmt.Fprintf(&b, "counter / MAC / BMT cache hit rates: %.1f%% / %.1f%% / %.1f%%\n",
			100*st.CounterCache.HitRate(), 100*st.MACCache.HitRate(), 100*st.BMTCache.HitRate())
		fmt.Fprintf(&b, "value-verified reads: %d   MAC-verified reads: %d   MAC updates skipped: %d\n",
			st.Sec.ValueVerified, st.Sec.MACVerified, st.Sec.MACSkippedWrites)
		fmt.Fprintf(&b, "compact: hits %d, overflow double-accesses %d, disabled accesses %d\n",
			st.Sec.CompactHits, st.Sec.CompactOverflow, st.Sec.CompactDisabled)
		fmt.Fprintf(&b, "integrity: tree-node verifications %d, tamper %d, replay %d\n",
			st.Sec.BMTNodeVerifies, st.Sec.TamperDetected, st.Sec.ReplayDetected)
		// Frontier-scheme datapath line: only mgx derives versions and
		// only ssm reconstructs shares, so every pre-frontier report
		// stays byte-identical.
		if st.Sec.DerivedVersions > 0 || st.Sec.DerivedFallbacks > 0 || st.Sec.SharesReconstructed > 0 {
			fmt.Fprintf(&b, "frontier: derived versions %d, counter fallbacks %d, share reconstructions %d\n",
				st.Sec.DerivedVersions, st.Sec.DerivedFallbacks, st.Sec.SharesReconstructed)
		}
	}
	// Attack-run lines appear only when an injector ran, so every benign
	// report stays byte-identical to pre-tamper-subsystem output.
	if st.Sec.TamperInjected > 0 || st.Sec.Verdicts.Total() > 0 {
		fmt.Fprintf(&b, "tamper: injected %d, tainted reads %d\n", st.Sec.TamperInjected, st.Sec.TaintedReads)
		b.WriteString("verdicts:")
		for _, v := range stats.VerdictKinds() {
			fmt.Fprintf(&b, " %s %d", v, st.Sec.Verdicts.Count(v))
		}
		b.WriteByte('\n')
	}
	em := stats.DefaultEnergyModel()
	fmt.Fprintf(&b, "average power (arbitrary units): %.1f\n", em.Power(st))
	return b.String()
}

// WriteRunJSON writes the canonical machine-readable encoding of one
// run: the full stats.Stats record, indented, newline-terminated. It is
// what `plutussim -json` prints and what plutusd serves for
// `GET /v1/runs/{id}/result?format=json`, so the two are comparable
// with a plain byte diff.
func WriteRunJSON(w io.Writer, st *stats.Stats) error {
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}
