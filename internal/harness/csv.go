package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// WriteCSV dumps the raw per-run measurements for a scheme set as CSV —
// the machine-readable companion to the per-figure text tables, intended
// for external plotting.
//
// Columns: benchmark, scheme, instructions, cycles, ipc, data_bytes,
// counter_bytes, mac_bytes, bmt_bytes, cctr_bytes, cbmt_bytes,
// meta_bytes, value_verified, mac_verified, mac_skipped, power.
func (r *Runner) WriteCSV(w io.Writer, schemes []secmem.Config) error {
	if err := r.runMatrix(schemes); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	header := []string{
		"benchmark", "scheme", "instructions", "cycles", "ipc",
		"data_bytes", "counter_bytes", "mac_bytes", "bmt_bytes",
		"cctr_bytes", "cbmt_bytes", "meta_bytes",
		"value_verified", "mac_verified", "mac_skipped", "power",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	em := stats.DefaultEnergyModel()
	for _, bench := range r.cfg.Benchmarks {
		for _, sc := range schemes {
			st, err := r.Run(bench, sc)
			if err != nil {
				return err
			}
			row := []string{
				bench, sc.Scheme,
				strconv.FormatUint(st.Instructions, 10),
				strconv.FormatUint(st.Cycles, 10),
				fmt.Sprintf("%.6f", st.IPC()),
				strconv.FormatUint(st.Traffic.Bytes(stats.Data), 10),
				strconv.FormatUint(st.Traffic.Bytes(stats.Counter), 10),
				strconv.FormatUint(st.Traffic.Bytes(stats.MAC), 10),
				strconv.FormatUint(st.Traffic.Bytes(stats.BMT), 10),
				strconv.FormatUint(st.Traffic.Bytes(stats.CompactCounter), 10),
				strconv.FormatUint(st.Traffic.Bytes(stats.CompactBMT), 10),
				strconv.FormatUint(st.Traffic.MetadataBytes(), 10),
				strconv.FormatUint(st.Sec.ValueVerified, 10),
				strconv.FormatUint(st.Sec.MACVerified, 10),
				strconv.FormatUint(st.Sec.MACSkippedWrites, 10),
				fmt.Sprintf("%.3f", em.Power(st)),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
