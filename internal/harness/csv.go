package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// csvColumns is the frozen per-run CSV schema, shared by WriteCSV
// (matrix sweeps) and WriteRunCSV (single runs over the plutusd wire).
// It is pinned against silent drift by the csvHeader constant in
// golden_test.go; change both together, as a reviewed artifact.
var csvColumns = []string{
	"benchmark", "scheme", "instructions", "cycles", "ipc",
	"data_bytes", "counter_bytes", "mac_bytes", "bmt_bytes",
	"cctr_bytes", "cbmt_bytes", "meta_bytes",
	"value_verified", "mac_verified", "mac_skipped", "power",
}

// csvRow renders one run as a csvColumns-shaped record.
func csvRow(st *stats.Stats, em stats.EnergyModel) []string {
	return []string{
		st.Benchmark, st.Scheme,
		strconv.FormatUint(st.Instructions, 10),
		strconv.FormatUint(st.Cycles, 10),
		fmt.Sprintf("%.6f", st.IPC()),
		strconv.FormatUint(st.Traffic.Bytes(stats.Data), 10),
		strconv.FormatUint(st.Traffic.Bytes(stats.Counter), 10),
		strconv.FormatUint(st.Traffic.Bytes(stats.MAC), 10),
		strconv.FormatUint(st.Traffic.Bytes(stats.BMT), 10),
		strconv.FormatUint(st.Traffic.Bytes(stats.CompactCounter), 10),
		strconv.FormatUint(st.Traffic.Bytes(stats.CompactBMT), 10),
		strconv.FormatUint(st.Traffic.MetadataBytes(), 10),
		strconv.FormatUint(st.Sec.ValueVerified, 10),
		strconv.FormatUint(st.Sec.MACVerified, 10),
		strconv.FormatUint(st.Sec.MACSkippedWrites, 10),
		fmt.Sprintf("%.3f", em.Power(st)),
	}
}

// WriteCSV dumps the raw per-run measurements for a scheme set as CSV —
// the machine-readable companion to the per-figure text tables, intended
// for external plotting.
//
// Columns: benchmark, scheme, instructions, cycles, ipc, data_bytes,
// counter_bytes, mac_bytes, bmt_bytes, cctr_bytes, cbmt_bytes,
// meta_bytes, value_verified, mac_verified, mac_skipped, power.
func (r *Runner) WriteCSV(w io.Writer, schemes []secmem.Config) error {
	if err := r.runMatrix(schemes); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write(csvColumns); err != nil {
		return err
	}
	em := stats.DefaultEnergyModel()
	for _, bench := range r.cfg.Benchmarks {
		for _, sc := range schemes {
			st, err := r.Run(bench, sc)
			if err != nil {
				return err
			}
			if err := cw.Write(csvRow(st, em)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRunCSV renders a single finished run through the same frozen CSV
// schema as WriteCSV: header plus one record. plutusd serves it for
// `GET /v1/runs/{id}/result?format=csv`, so a row fetched over the wire
// is byte-identical to the one a local WriteCSV sweep would emit for
// the same run.
func WriteRunCSV(w io.Writer, st *stats.Stats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvColumns); err != nil {
		return err
	}
	if err := cw.Write(csvRow(st, stats.DefaultEnergyModel())); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
