package harness

import (
	"fmt"
	"strings"

	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/valcache"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// Figure identifies one reproducible experiment from the paper.
type Figure struct {
	ID    string
	Title string
	Run   func(r *Runner) (string, error)
}

// Figures lists every table/figure the reproduction regenerates, in paper
// order.
func Figures() []Figure {
	return []Figure{
		{"fig6", "Fig. 6: IPC of PSSM-secured GPU normalized to no security", Fig6},
		{"fig7", "Fig. 7: DRAM traffic breakdown under PSSM (fraction of data traffic)", Fig7},
		{"fig9", "Fig. 9: value-reuse rate of three matching scenarios (2 kB value cache)", Fig9},
		{"fig10", "Fig. 10: memory-request read/write mix", Fig10},
		{"fig15", "Fig. 15: value-based integrity verification vs PSSM (IPC norm. to no security)", Fig15},
		{"fig16", "Fig. 16: metadata-granularity designs (IPC norm. to no security)", Fig16},
		{"fig17", "Fig. 17: compact mirrored-counter designs (IPC norm. to no security)", Fig17},
		{"fig18", "Fig. 18: Plutus overall vs PSSM and PSSM+CommonCounters (IPC norm. to no security)", Fig18},
		{"fig19", "Fig. 19: security-metadata traffic, Plutus vs PSSM", Fig19},
		{"fig20", "Fig. 20: Plutus with integrity-tree traffic eliminated (MGX-style)", Fig20},
		{"fig21", "Fig. 21: sensitivity to value-cache size (value-verified read fraction / IPC)", Fig21},
		{"fig22", "Fig. 22: average power normalized to no security", Fig22},
		{"eq1", "Eq. 1: forgery-probability bound for the value-verification threshold", Eq1Table},
		{"frontier", "Scheme frontier: every registered scheme vs no security", Frontier},
	}
}

// FigureByID finds a figure by its ID.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("harness: unknown figure %q", id)
}

func pb(r *Runner) uint64 { return r.cfg.ProtectedBytes }

// Fig6 reproduces the motivation result: security is expensive.
func Fig6(r *Runner) (string, error) {
	return r.ipcTable("IPC normalized to no-security baseline",
		[]secmem.Config{secmem.Baseline(pb(r)), secmem.PSSM(pb(r))})
}

// Fig7 reproduces the traffic breakdown that motivates Plutus.
func Fig7(r *Runner) (string, error) {
	sc := secmem.PSSM(pb(r))
	if err := r.runMatrix([]secmem.Config{sc}); err != nil {
		return "", err
	}
	header := []string{"benchmark", "data", "counter", "mac", "bmt", "meta/data"}
	var rows [][]string
	for _, b := range r.cfg.Benchmarks {
		st, err := r.Run(b, sc)
		if err != nil {
			return "", err
		}
		d := float64(st.Traffic.Bytes(stats.Data))
		rows = append(rows, []string{
			b, "1.00",
			fmt.Sprintf("%.2f", float64(st.Traffic.Bytes(stats.Counter))/d),
			fmt.Sprintf("%.2f", float64(st.Traffic.Bytes(stats.MAC))/d),
			fmt.Sprintf("%.2f", float64(st.Traffic.Bytes(stats.BMT))/d),
			fmt.Sprintf("%.2f", float64(st.Traffic.MetadataBytes())/d),
		})
	}
	return "DRAM bytes by class, relative to demand data (PSSM)\n" + stats.Table(header, rows), nil
}

// Fig9 reproduces the value-locality study: the fraction of 32 B sector
// accesses whose values would pass each of the three matching scenarios,
// using a 512-entry (2 kB) value cache per partition as in §III-B.
func Fig9(r *Runner) (string, error) {
	type scenario struct {
		name      string
		mask      int
		threshold int // per 128-bit half; 8-of-8 is modelled as 4-of-4
	}
	scenarios := []scenario{
		{"all-8", 0, 4},
		{"3-of-4 halves", 0, 3},
		{"3-of-4 masked", 4, 3},
	}
	header := []string{"benchmark"}
	for _, s := range scenarios {
		header = append(header, s.name)
	}
	var rows [][]string
	for _, bench := range r.cfg.Benchmarks {
		row := []string{bench}
		for _, s := range scenarios {
			rate, err := valueReuseRate(bench, s.mask, s.threshold, r.cfg.MaxInstructions)
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*rate))
		}
		rows = append(rows, row)
	}
	return "Fraction of sector accesses passing value matching (2 kB/partition cache)\n" +
		stats.Table(header, rows), nil
}

// valueReuseRate streams a benchmark's memory traffic through
// per-partition value caches and reports the reuse fraction.
func valueReuseRate(bench string, maskBits, threshold int, budget uint64) (float64, error) {
	wl, err := workload.Get(bench)
	if err != nil {
		return 0, err
	}
	const parts = 8
	il := geom.MustInterleaver(parts)
	caches := make([]*valcache.Cache, parts)
	for i := range caches {
		caches[i] = valcache.MustNew(valcache.Config{
			Entries: 512, PinnedFrac: 0.25, MaskBits: maskBits,
			PinThreshold: 8, MatchThreshold: threshold,
		})
	}
	var accesses, reused uint64
	buf := make([]byte, geom.SectorSize)
	var issued uint64
	for w := 0; w < wl.Warps() && issued < budget; w++ {
		for issued < budget {
			inst, ok := wl.Next(w)
			if !ok {
				break
			}
			issued++
			if inst.Kind == gpusim.Compute {
				continue
			}
			seen := map[geom.Addr]bool{}
			for _, a := range inst.Addrs {
				s := geom.SectorAddr(a)
				if seen[s] {
					continue
				}
				seen[s] = true
				vc := caches[il.Partition(s)]
				for k := 0; k < geom.SectorSize/4; k++ {
					v := wl.MemValue(s + geom.Addr(k*4))
					buf[k*4] = byte(v)
					buf[k*4+1] = byte(v >> 8)
					buf[k*4+2] = byte(v >> 16)
					buf[k*4+3] = byte(v >> 24)
				}
				accesses++
				if inst.Kind == gpusim.Load && vc.VerifySector(buf).Verified {
					reused++
				}
				vc.ObserveSector(buf)
			}
		}
	}
	if accesses == 0 {
		return 0, nil
	}
	return float64(reused) / float64(accesses), nil
}

// Fig10 reproduces the read/write request mix.
func Fig10(r *Runner) (string, error) {
	sc := secmem.Baseline(pb(r))
	if err := r.runMatrix([]secmem.Config{sc}); err != nil {
		return "", err
	}
	header := []string{"benchmark", "reads", "writes", "read%"}
	var rows [][]string
	for _, b := range r.cfg.Benchmarks {
		st, err := r.Run(b, sc)
		if err != nil {
			return "", err
		}
		tot := st.LoadInsts + st.StoreInsts
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%d", st.LoadInsts),
			fmt.Sprintf("%d", st.StoreInsts),
			fmt.Sprintf("%.1f%%", 100*float64(st.LoadInsts)/float64(tot)),
		})
	}
	return "Memory instructions by direction\n" + stats.Table(header, rows), nil
}

// Fig15 isolates value-based integrity verification.
func Fig15(r *Runner) (string, error) {
	return r.ipcTable("IPC normalized to no security: PSSM vs PSSM+value-verification",
		[]secmem.Config{secmem.Baseline(pb(r)), secmem.PSSM(pb(r)), secmem.PlutusValueOnly(pb(r))})
}

// Fig16 isolates the three metadata-granularity designs.
func Fig16(r *Runner) (string, error) {
	return r.ipcTable("IPC normalized to no security: metadata-block granularity",
		[]secmem.Config{
			secmem.Baseline(pb(r)),
			secmem.PSSM(pb(r)), // all-128B
			secmem.PlutusFineGrain(pb(r), secmem.GranCtr32BMT128),
			secmem.PlutusFineGrain(pb(r), secmem.GranAll32),
		})
}

// Fig17 isolates the three compact mirrored-counter designs.
func Fig17(r *Runner) (string, error) {
	return r.ipcTable("IPC normalized to no security: compact mirrored counters",
		[]secmem.Config{
			secmem.Baseline(pb(r)),
			secmem.PSSM(pb(r)),
			secmem.PlutusCompact(pb(r), counters.Compact2Bit),
			secmem.PlutusCompact(pb(r), counters.Compact3Bit),
			secmem.PlutusCompact(pb(r), counters.Compact3BitAdaptive),
		})
}

// Fig18 is the headline comparison.
func Fig18(r *Runner) (string, error) {
	table, err := r.ipcTable("IPC normalized to no security: Plutus overall",
		[]secmem.Config{
			secmem.Baseline(pb(r)),
			secmem.PSSM(pb(r)),
			secmem.CommonCtr(pb(r)),
			secmem.Plutus(pb(r)),
		})
	if err != nil {
		return "", err
	}
	sp, err := r.CompareSchemes(secmem.PSSM(pb(r)), secmem.Plutus(pb(r)))
	if err != nil {
		return "", err
	}
	summary := fmt.Sprintf(
		"\nHeadline: Plutus over PSSM: %+.2f%% IPC (max %+.2f%% on %s); paper reports +16.86%% (max +58.38%%).\n",
		100*(sp.Mean-1), 100*(sp.Max-1), sp.MaxBench)
	return table + summary, nil
}

// Fig19 reports the metadata-traffic reduction.
func Fig19(r *Runner) (string, error) {
	a, b := secmem.PSSM(pb(r)), secmem.Plutus(pb(r))
	if err := r.runMatrix([]secmem.Config{a, b}); err != nil {
		return "", err
	}
	header := []string{"benchmark", "pssm meta (KB)", "plutus meta (KB)", "reduction"}
	var rows [][]string
	var reductions []float64
	for _, bench := range r.cfg.Benchmarks {
		sa, err := r.Run(bench, a)
		if err != nil {
			return "", err
		}
		sb, err := r.Run(bench, b)
		if err != nil {
			return "", err
		}
		red := 1 - float64(sb.Traffic.MetadataBytes())/float64(sa.Traffic.MetadataBytes())
		reductions = append(reductions, red)
		rows = append(rows, []string{
			bench,
			fmt.Sprintf("%d", sa.Traffic.MetadataBytes()/1024),
			fmt.Sprintf("%d", sb.Traffic.MetadataBytes()/1024),
			fmt.Sprintf("%.1f%%", 100*red),
		})
	}
	var mean float64
	for _, x := range reductions {
		mean += x
	}
	mean /= float64(len(reductions))
	table := stats.Table(header, rows)
	return fmt.Sprintf("Security-metadata DRAM traffic\n%sMean reduction: %.1f%% (paper: 48.14%%, max 80.30%%)\n", table, 100*mean), nil
}

// Fig20 compares Plutus against Plutus with tree traffic eliminated.
func Fig20(r *Runner) (string, error) {
	return r.ipcTable("IPC normalized to no security: Plutus vs Plutus-without-tree-traffic",
		[]secmem.Config{secmem.Baseline(pb(r)), secmem.Plutus(pb(r)), secmem.PlutusNoTree(pb(r))})
}

// Fig21 sweeps the value-cache size.
func Fig21(r *Runner) (string, error) {
	sizes := []int{64, 128, 256, 512, 1024}
	base := secmem.Baseline(pb(r))
	schemes := []secmem.Config{base}
	for _, n := range sizes {
		sc := secmem.PlutusValueOnly(pb(r))
		sc.Scheme = fmt.Sprintf("vc-%d", n)
		sc.Value.Entries = n
		schemes = append(schemes, sc)
	}
	table, err := r.ipcTable("IPC normalized to no security, by value-cache entries", schemes)
	if err != nil {
		return "", err
	}
	// Also report the value-verified read fraction per size.
	var lines []string
	for i, n := range sizes {
		var vv, mv uint64
		for _, bench := range r.cfg.Benchmarks {
			st, err := r.Run(bench, schemes[i+1])
			if err != nil {
				return "", err
			}
			vv += st.Sec.ValueVerified
			mv += st.Sec.MACVerified
		}
		lines = append(lines, fmt.Sprintf("  %4d entries: %.1f%% of reads value-verified", n, 100*float64(vv)/float64(vv+mv)))
	}
	return table + "\n" + strings.Join(lines, "\n") + "\n", nil
}

// Fig22 reports normalized average power.
func Fig22(r *Runner) (string, error) {
	schemes := []secmem.Config{secmem.Baseline(pb(r)), secmem.PSSM(pb(r)), secmem.Plutus(pb(r))}
	if err := r.runMatrix(schemes); err != nil {
		return "", err
	}
	em := stats.DefaultEnergyModel()
	header := []string{"benchmark", "pssm", "plutus"}
	var rows [][]string
	gms := make([][]float64, 2)
	for _, bench := range r.cfg.Benchmarks {
		base, err := r.Run(bench, schemes[0])
		if err != nil {
			return "", err
		}
		row := []string{bench}
		// Energy per retired instruction: the run-length-independent
		// measure of the security schemes' power cost (normalizing raw
		// power would reward schemes merely for running longer at low
		// activity).
		perInst := func(st *stats.Stats) float64 {
			return em.Energy(st).TotalRaw / float64(st.Instructions)
		}
		for i, sc := range schemes[1:] {
			st, err := r.Run(bench, sc)
			if err != nil {
				return "", err
			}
			n := perInst(st) / perInst(base)
			gms[i] = append(gms[i], n)
			row = append(row, fmt.Sprintf("%.3f", n))
		}
		rows = append(rows, row)
	}
	rows = append(rows, []string{"geomean",
		fmt.Sprintf("%.3f", stats.GeoMean(gms[0])),
		fmt.Sprintf("%.3f", stats.GeoMean(gms[1]))})
	return "Energy per instruction normalized to no security (paper's Fig. 22: PSSM 1.369 → Plutus 1.178 in power)\n" +
		stats.Table(header, rows), nil
}

// verifyPath names the mechanism a scheme uses to decide a read's
// integrity verdict — the column that distinguishes the scheme families
// in the frontier table.
func verifyPath(sc secmem.Config) string {
	switch {
	case sc.NoSecurity:
		return "none"
	case sc.SSM:
		return fmt.Sprintf("reconstruct %d-of-%d", sc.SSMThreshold, sc.SSMShares)
	case sc.MGX:
		return "mac+bmt, derived versions"
	case sc.ValueVerify:
		return "value-match, mac+bmt fallback"
	case sc.NoTreeTraffic:
		return "mac+bmt (tree traffic elided)"
	default:
		return "mac+bmt"
	}
}

// Frontier is the cross-scheme comparison the registry implies: one row
// per registered scheme, normalized to the no-security baseline. It
// iterates secmem.Names() rather than a hand-kept list, so registering
// a scheme is what adds its row — and the pinned results/frontier.txt
// golden forces the new row through review.
func Frontier(r *Runner) (string, error) {
	names := secmem.Names()
	schemes := make([]secmem.Config, 0, len(names))
	for _, name := range names {
		sc, err := secmem.ByName(name, pb(r))
		if err != nil {
			return "", err
		}
		schemes = append(schemes, sc)
	}
	if err := r.runMatrix(schemes); err != nil {
		return "", err
	}
	header := []string{"scheme", "ipc", "dram bytes", "meta/data", "verify path"}
	var rows [][]string
	for si, sc := range schemes {
		var ipc, dram, meta []float64
		for _, b := range r.cfg.Benchmarks {
			base, err := r.Run(b, schemes[0])
			if err != nil {
				return "", err
			}
			st, err := r.Run(b, sc)
			if err != nil {
				return "", err
			}
			ipc = append(ipc, st.IPC()/base.IPC())
			dram = append(dram, float64(st.Traffic.Total())/float64(base.Traffic.Total()))
			meta = append(meta, float64(st.Traffic.MetadataBytes())/float64(st.Traffic.Bytes(stats.Data)))
		}
		var metaMean float64
		for _, x := range meta {
			metaMean += x
		}
		metaMean /= float64(len(meta))
		// Rows carry the registry name (what ByName accepts), not the
		// constructor's display Scheme — the registry↔rows bijection
		// test keys on it.
		rows = append(rows, []string{
			names[si],
			fmt.Sprintf("%.3f", stats.GeoMean(ipc)),
			fmt.Sprintf("%.3f", stats.GeoMean(dram)),
			fmt.Sprintf("%.2f", metaMean),
			verifyPath(sc),
		})
	}
	return "Geomean IPC and DRAM traffic normalized to no security, by registered scheme\n" +
		stats.Table(header, rows), nil
}

// Eq1Table prints the paper's §IV-C security analysis: the forgery
// probability of value-based verification for candidate thresholds, and
// the threshold actually required.
func Eq1Table(r *Runner) (string, error) {
	p := valcache.HitProbability(256, 4)
	header := []string{"threshold x", "P(tampered block passes)", "vs 8B-MAC collision (2^-64)"}
	var rows [][]string
	for x := 1; x <= 4; x++ {
		f := valcache.ForgeryProbability(4, x, p)
		rows = append(rows, []string{
			fmt.Sprintf("%d of 4", x),
			fmt.Sprintf("%.3e", f),
			fmt.Sprintf("%.1fx", f/5.421010862427522e-20),
		})
	}
	min := valcache.MinHitsRequired(4, p, 1.0/256)
	return fmt.Sprintf(
		"Eq. 1 with K=256 entries, 28-bit keys (p=%.3e); minimum x for the 1/256 bound: %d; Plutus uses 3.\n%s",
		p, min, stats.Table(header, rows)), nil
}
