package counters

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitConfigValidate(t *testing.T) {
	if err := DefaultSplitConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, c := range []SplitConfig{{MinorBits: 0, GroupSize: 32}, {MinorBits: 6, GroupSize: 0}, {MinorBits: 20, GroupSize: 8}} {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated, want error", c)
		}
	}
}

func TestSplitValueStartsZero(t *testing.T) {
	s := MustSplitStore(DefaultSplitConfig())
	if s.Value(12345) != 0 || s.Touched(12345) {
		t.Error("fresh sector should have counter 0")
	}
	if s.Groups() != 0 {
		t.Error("Value should not materialize groups")
	}
}

func TestSplitIncrementMonotonicPerSector(t *testing.T) {
	s := MustSplitStore(DefaultSplitConfig())
	prev := uint64(0)
	for k := 0; k < 200; k++ {
		v, _ := s.Increment(7)
		if v <= prev {
			t.Fatalf("counter not strictly increasing: %d then %d", prev, v)
		}
		prev = v
	}
}

func TestSplitMinorOverflowBumpsMajorAndResets(t *testing.T) {
	s := MustSplitStore(SplitConfig{MinorBits: 2, GroupSize: 4})
	var overflowGroups []uint64
	var overflowSectors []uint64
	s.OnOverflow = func(g uint64, secs []uint64) {
		overflowGroups = append(overflowGroups, g)
		overflowSectors = secs
	}
	// Sector 5 is in group 1 (sectors 4..7). Minor max = 3.
	s.Increment(4) // neighbor gets minor 1
	for k := 0; k < 3; k++ {
		if _, of := s.Increment(5); of {
			t.Fatalf("overflow too early at k=%d", k)
		}
	}
	v, of := s.Increment(5)
	if !of {
		t.Fatal("4th increment of a 2-bit minor should overflow")
	}
	if want := uint64(1 << 2); v != want {
		t.Fatalf("post-overflow value = %d, want major<<2 = %d", v, want)
	}
	if len(overflowGroups) != 1 || overflowGroups[0] != 1 {
		t.Fatalf("overflow hook groups = %v", overflowGroups)
	}
	if len(overflowSectors) != 4 || overflowSectors[0] != 4 || overflowSectors[3] != 7 {
		t.Fatalf("overflow sectors = %v", overflowSectors)
	}
	// The neighbor's minor was reset: its next value is major<<2 | 1.
	if got := s.Minor(4); got != 0 {
		t.Fatalf("neighbor minor = %d, want reset to 0", got)
	}
	if got := s.Major(1); got != 1 {
		t.Fatalf("major = %d, want 1", got)
	}
}

// Counter uniqueness is the security property: the sequence of values a
// sector is encrypted under must never repeat, even across overflows.
func TestSplitCounterNeverReusesValues(t *testing.T) {
	s := MustSplitStore(SplitConfig{MinorBits: 2, GroupSize: 2})
	seen := map[uint64]bool{s.Value(0): true}
	for k := 0; k < 50; k++ {
		v, _ := s.Increment(0)
		if seen[v] {
			t.Fatalf("counter value %d reused at step %d", v, k)
		}
		seen[v] = true
		// Interleave neighbor writes to force resets.
		if k%3 == 0 {
			s.Increment(1)
		}
	}
}

func TestCompactKindProperties(t *testing.T) {
	cases := []struct {
		k     CompactKind
		width int
		per   int
		name  string
	}{
		{CompactOff, 0, 0, "off"},
		{Compact2Bit, 2, 128, "2bit"},
		{Compact3Bit, 3, 64, "3bit"},
		{Compact3BitAdaptive, 3, 64, "3bit-adaptive"},
	}
	for _, c := range cases {
		if c.k.Width() != c.width || c.k.CountersPerSector() != c.per || c.k.String() != c.name {
			t.Errorf("%v: width=%d per=%d name=%q", c.k, c.k.Width(), c.k.CountersPerSector(), c.k.String())
		}
	}
}

func TestNewCompactViewRejectsOff(t *testing.T) {
	s := MustSplitStore(DefaultSplitConfig())
	if _, err := NewCompactView(CompactOff, s, 0); err == nil {
		t.Error("CompactOff view created, want error")
	}
}

func TestCompactMirrorsMinor(t *testing.T) {
	s := MustSplitStore(DefaultSplitConfig())
	v, err := NewCompactView(Compact3Bit, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value(10) != 0 || v.Classify(10) != ServedCompact {
		t.Fatal("fresh sector should be compact-served with value 0")
	}
	for k := 1; k <= 6; k++ {
		s.Increment(10)
		want := uint32(k)
		if want > 7 {
			want = 7
		}
		if got := v.Value(10); got != want {
			t.Fatalf("after %d writes compact value = %d, want %d", k, got, want)
		}
	}
	if v.Classify(10) != ServedCompact {
		t.Fatalf("6 writes: %v, want compact (3-bit saturates at 7)", v.Classify(10))
	}
	s.Increment(10)
	if v.Classify(10) != ServedOverflowed {
		t.Fatalf("7 writes: %v, want overflowed", v.Classify(10))
	}
}

func TestCompact2BitSaturatesOnThirdWrite(t *testing.T) {
	s := MustSplitStore(DefaultSplitConfig())
	v, _ := NewCompactView(Compact2Bit, s, 0)
	s.Increment(3)
	s.Increment(3)
	if v.Classify(3) != ServedCompact {
		t.Fatalf("2 writes: %v", v.Classify(3))
	}
	s.Increment(3)
	if v.Classify(3) != ServedOverflowed {
		t.Fatalf("3 writes: %v, want overflowed (paper: 2-bit overflows on the third write)", v.Classify(3))
	}
}

func TestCompactInvalidatedByMajorBump(t *testing.T) {
	s := MustSplitStore(SplitConfig{MinorBits: 2, GroupSize: 4})
	v, _ := NewCompactView(Compact3Bit, s, 0)
	// Overflow sector 0's minor so the group's major becomes 1.
	for k := 0; k < 4; k++ {
		s.Increment(0)
	}
	if s.Major(0) != 1 {
		t.Fatal("setup: major not bumped")
	}
	// Sector 1 was never written, but its compact counter is now unusable:
	// the per-sector flag diverts the whole group to the originals.
	if v.Classify(1) != ServedDisabled {
		t.Fatalf("sector sharing bumped major: %v, want disabled", v.Classify(1))
	}
}

func TestAdaptiveDisableAtThreshold(t *testing.T) {
	s := MustSplitStore(DefaultSplitConfig())
	v, _ := NewCompactView(Compact3BitAdaptive, s, 3)
	saturate := func(sector uint64) bool {
		disabledNow := false
		for k := 0; k < 7; k++ {
			s.Increment(sector)
			_, d := v.NoteWrite(sector)
			disabledNow = disabledNow || d
		}
		return disabledNow
	}
	// Saturate three different sectors in compact block 0 (covers 256
	// sectors for the 3-bit design).
	if saturate(0) || saturate(1) {
		t.Fatal("disabled before reaching threshold")
	}
	if v.SaturatedCount(0) != 2 {
		t.Fatalf("SaturatedCount = %d, want 2", v.SaturatedCount(0))
	}
	if !saturate(2) {
		t.Fatal("third saturation should disable the block")
	}
	if !v.Disabled(0) || v.Classify(0) != ServedDisabled {
		t.Fatal("block should be disabled and classified ServedDisabled")
	}
	// Unsaturated sectors of the same block are also diverted.
	if v.Classify(5) != ServedDisabled {
		t.Fatalf("unsaturated sector in disabled block: %v", v.Classify(5))
	}
	// Other blocks are unaffected.
	far := uint64(4 * v.Kind().CountersPerSector())
	if v.Classify(far) != ServedCompact {
		t.Fatalf("other block: %v, want compact", v.Classify(far))
	}
}

func TestNonAdaptiveNeverDisables(t *testing.T) {
	s := MustSplitStore(DefaultSplitConfig())
	v, _ := NewCompactView(Compact3Bit, s, 1)
	for k := 0; k < 20; k++ {
		s.Increment(uint64(k))
		for j := 0; j < 7; j++ {
			s.Increment(uint64(k))
			v.NoteWrite(uint64(k))
		}
	}
	if v.Disabled(0) {
		t.Fatal("plain 3-bit design must never disable blocks")
	}
}

// Property: the compact value is always min(split minor, saturation) while
// the major is zero — the mirror can never disagree with the truth.
func TestCompactConsistencyProperty(t *testing.T) {
	f := func(writes []uint8) bool {
		s := MustSplitStore(DefaultSplitConfig())
		v, _ := NewCompactView(Compact3Bit, s, 0)
		for _, w := range writes {
			sector := uint64(w % 16)
			s.Increment(sector)
			v.NoteWrite(sector)
		}
		for sector := uint64(0); sector < 16; sector++ {
			if s.Major(s.GroupOf(sector)) != 0 {
				continue
			}
			want := s.Minor(sector)
			if want > 7 {
				want = 7
			}
			if v.Value(sector) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeAndKindStrings(t *testing.T) {
	if ServedCompact.String() != "compact" || ServedOverflowed.String() != "overflowed" || ServedDisabled.String() != "disabled" {
		t.Error("outcome names wrong")
	}
}
