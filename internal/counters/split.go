// Package counters implements the encryption-counter organizations the
// paper builds on and contributes:
//
//   - Split counters (Yan et al. [33]) in PSSM's sectored layout: each
//     32 B counter sector holds one 64-bit major counter shared by a group
//     of data sectors plus a small minor counter per data sector. The
//     effective encryption counter is major<<minorBits | minor; a minor
//     overflow increments the major and forces re-encryption of every data
//     sector in the group.
//   - Compact mirrored counters (Plutus §IV-D): a second, much smaller
//     per-sector counter layer (2 or 3 bits) usable while the sector has
//     seen few writes, with saturated counters falling back to the split
//     store. The adaptive variant additionally disables a whole compact
//     block once too many of its counters saturate.
//
// The split store is the single source of truth for counter values — the
// compact layer is a *view* derived from it plus sticky disable state, so
// the two can never disagree about the value used for encryption.
package counters

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/dense"
)

// SplitConfig fixes the split-counter geometry.
type SplitConfig struct {
	// MinorBits is the width of each per-sector minor counter.
	MinorBits int
	// GroupSize is the number of data sectors sharing one major counter
	// (i.e. covered by one 32 B counter sector).
	GroupSize int
}

// DefaultSplitConfig matches the PSSM sectored layout: a 32 B counter
// sector = 8 B major + 32 six-bit minors covering 32 data sectors (1 KiB
// of data); a 128 B counter block covers 4 KiB.
func DefaultSplitConfig() SplitConfig { return SplitConfig{MinorBits: 6, GroupSize: 32} }

// Validate reports configuration errors.
func (c SplitConfig) Validate() error {
	if c.MinorBits < 1 || c.MinorBits > 16 {
		return fmt.Errorf("counters: minor width %d out of range", c.MinorBits)
	}
	if c.GroupSize < 1 {
		return fmt.Errorf("counters: group size %d out of range", c.GroupSize)
	}
	return nil
}

// SplitStore holds the logical split-counter state for one partition's
// data sectors, indexed by partition-local data-sector index. Counter
// values live in dense paged arrays (majors by group, minors by sector):
// counter reads sit on every encrypt/decrypt and every unit hash, and the
// previous map-of-groups layout made each one a hash probe.
type SplitStore struct {
	cfg SplitConfig
	//simlint:ignore snapsym derived from cfg.MinorBits at construction
	minorMax uint32
	majors   dense.U64    // by group index
	minors   dense.U32    // by data-sector index
	present  dense.Bitmap // materialized groups (Groups() and snapshots)

	// OnOverflow, if set, is called when a minor overflow increments a
	// group's major counter. sectors lists every data-sector index in the
	// group; the secure-memory engine re-encrypts them (the standard
	// split-counter overflow cost).
	//simlint:ignore snapsym runtime wiring (a function), reattached by the engine on resume
	OnOverflow func(groupIdx uint64, sectors []uint64)

	//simlint:ignore snapsym per-call scratch, dead between calls
	overflowScratch []uint64 // reused OnOverflow argument buffer
}

// NewSplitStore builds an empty store (all counters zero).
func NewSplitStore(cfg SplitConfig) (*SplitStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SplitStore{
		cfg:      cfg,
		minorMax: 1<<cfg.MinorBits - 1,
	}, nil
}

// MustSplitStore is NewSplitStore for static configuration.
func MustSplitStore(cfg SplitConfig) *SplitStore {
	s, err := NewSplitStore(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the store's geometry.
func (s *SplitStore) Config() SplitConfig { return s.cfg }

// GroupOf returns the group (counter-sector) index covering data sector i.
//
//simlint:hotpath
func (s *SplitStore) GroupOf(i uint64) uint64 { return i / uint64(s.cfg.GroupSize) }

// GroupSectors returns the data-sector index range [lo, hi) sharing group
// gi's major counter — the blast radius of rolling back that counter
// sector (tamper tests pick sibling sectors from it).
//
//simlint:hotpath
func (s *SplitStore) GroupSectors(gi uint64) (lo, hi uint64) {
	lo = gi * uint64(s.cfg.GroupSize)
	return lo, lo + uint64(s.cfg.GroupSize)
}

// Value returns the effective encryption counter of data sector i.
//
//simlint:hotpath
func (s *SplitStore) Value(i uint64) uint64 {
	return s.majors.Get(s.GroupOf(i))<<uint(s.cfg.MinorBits) | uint64(s.minors.Get(i))
}

// Major returns group gi's major counter.
//
//simlint:hotpath
func (s *SplitStore) Major(gi uint64) uint64 { return s.majors.Get(gi) }

// Minor returns data sector i's minor counter.
//
//simlint:hotpath
func (s *SplitStore) Minor(i uint64) uint32 { return s.minors.Get(i) }

// Increment bumps sector i's counter for a writeback and returns the new
// effective value. If the minor overflows, the group's major is
// incremented, every minor resets to zero, OnOverflow fires, and
// overflowed is true.
func (s *SplitStore) Increment(i uint64) (value uint64, overflowed bool) {
	gi := s.GroupOf(i)
	s.present.Set(gi)
	major := s.majors.Get(gi)
	if m := s.minors.Get(i); m < s.minorMax {
		s.minors.Set(i, m+1)
		return major<<uint(s.cfg.MinorBits) | uint64(m+1), false
	}
	// Minor overflow: bump major, reset all minors, re-encrypt the group.
	major++
	s.majors.Set(gi, major)
	base := gi * uint64(s.cfg.GroupSize)
	for k := 0; k < s.cfg.GroupSize; k++ {
		s.minors.Set(base+uint64(k), 0)
	}
	if s.OnOverflow != nil {
		sectors := s.overflowScratch[:0]
		for k := 0; k < s.cfg.GroupSize; k++ {
			sectors = append(sectors, base+uint64(k))
		}
		s.overflowScratch = sectors
		s.OnOverflow(gi, sectors)
	}
	return major << uint(s.cfg.MinorBits), true
}

// Touched reports whether sector i's counter has ever been incremented.
//
//simlint:hotpath
func (s *SplitStore) Touched(i uint64) bool { return s.Value(i) != 0 }

// Groups returns the number of materialized counter groups (for tests).
func (s *SplitStore) Groups() int { return s.present.Count() }
