package counters

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/dense"
)

// Snapshot encodes the split store's materialized groups in ascending
// group-index order: index, major counter, then every minor in slot
// order. Geometry is not encoded (the restoring side rebuilds from the
// same SplitConfig); the group width is cross-checked on restore. The
// OnOverflow hook is runtime wiring, not state, and is never touched.
func (s *SplitStore) Snapshot(enc *checkpoint.Encoder) error {
	enc.U32(uint32(s.cfg.GroupSize))
	enc.U64(uint64(s.present.Count()))
	s.present.ForEach(func(gi uint64) {
		enc.U64(gi)
		enc.U64(s.majors.Get(gi))
		base := gi * uint64(s.cfg.GroupSize)
		for k := 0; k < s.cfg.GroupSize; k++ {
			enc.U32(s.minors.Get(base + uint64(k)))
		}
	})
	return nil
}

// Restore decodes state written by Snapshot into a store of the same
// geometry, replacing any existing groups.
func (s *SplitStore) Restore(dec *checkpoint.Decoder) error {
	groupSize := dec.U32()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: split store: %w", err)
	}
	if int(groupSize) != s.cfg.GroupSize {
		return fmt.Errorf("counters: snapshot group size %d, store has %d: %w",
			groupSize, s.cfg.GroupSize, checkpoint.ErrMismatch)
	}
	var majors dense.U64
	var minors dense.U32
	var present dense.Bitmap
	n := dec.U64()
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		gi := dec.U64()
		present.Set(gi)
		majors.Set(gi, dec.U64())
		base := gi * uint64(s.cfg.GroupSize)
		for k := 0; k < s.cfg.GroupSize; k++ {
			minors.Set(base+uint64(k), dec.U32())
		}
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: split store: %w", err)
	}
	// Install in the encoder's field order (present, majors, minors) so
	// the walk stays symmetric with Snapshot.
	s.present = present
	s.majors = majors
	s.minors = minors
	return nil
}

// Snapshot encodes the compact view's sticky adaptive state: disabled
// blocks and per-block saturated-sector sets, both in ascending index
// order. Counter values themselves are derived from the split store and
// are not duplicated here.
func (v *CompactView) Snapshot(enc *checkpoint.Encoder) error {
	enc.U8(uint8(v.kind))
	enc.U64(uint64(v.disabled.Count()))
	v.disabled.ForEach(func(b uint64) {
		enc.U64(b)
		enc.Bool(true)
	})
	enc.U64(uint64(v.satBlocks))
	// Walking the saturated-sector bitmap visits sectors in ascending
	// order, so blocks appear ascending with their sectors grouped —
	// the same (block, sorted sector list) layout as before.
	cur := ^uint64(0)
	v.satSector.ForEach(func(i uint64) {
		if b := v.BlockOf(i); b != cur {
			cur = b
			enc.U64(b)
			enc.U64(uint64(v.satCount.Get(b)))
		}
		enc.U64(i)
	})
	return nil
}

// Restore decodes state written by Snapshot into a view of the same kind.
func (v *CompactView) Restore(dec *checkpoint.Decoder) error {
	kind := CompactKind(dec.U8())
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: compact view: %w", err)
	}
	if kind != v.kind {
		return fmt.Errorf("counters: snapshot compact kind %s, view is %s: %w",
			kind, v.kind, checkpoint.ErrMismatch)
	}
	var disabled, satSector dense.Bitmap
	var satCount dense.U32
	satBlocks := 0
	nd := dec.U64()
	for i := uint64(0); i < nd && dec.Err() == nil; i++ {
		b := dec.U64()
		if dec.Bool() {
			disabled.Set(b)
		}
	}
	ns := dec.U64()
	for i := uint64(0); i < ns && dec.Err() == nil; i++ {
		b := dec.U64()
		cnt := dec.U64()
		if cnt > 0 {
			satBlocks++
		}
		satCount.Set(b, uint32(cnt))
		for k := uint64(0); k < cnt && dec.Err() == nil; k++ {
			satSector.Set(dec.U64())
		}
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: compact view: %w", err)
	}
	// Install in the encoder's field order (disabled, satBlocks,
	// satSector, satCount) so the walk stays symmetric with Snapshot.
	v.disabled = disabled
	v.satBlocks = satBlocks
	v.satSector = satSector
	v.satCount = satCount
	return nil
}
