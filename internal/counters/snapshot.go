package counters

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
)

// Snapshot encodes the split store's materialized groups in ascending
// group-index order: index, major counter, then every minor in slot
// order. Geometry is not encoded (the restoring side rebuilds from the
// same SplitConfig); the group width is cross-checked on restore. The
// OnOverflow hook is runtime wiring, not state, and is never touched.
func (s *SplitStore) Snapshot(enc *checkpoint.Encoder) error {
	enc.U32(uint32(s.cfg.GroupSize))
	enc.U64(uint64(len(s.groups)))
	for _, gi := range checkpoint.SortedKeys(s.groups) {
		g := s.groups[gi]
		enc.U64(gi)
		enc.U64(g.major)
		for _, m := range g.minors {
			enc.U32(m)
		}
	}
	return nil
}

// Restore decodes state written by Snapshot into a store of the same
// geometry, replacing any existing groups.
func (s *SplitStore) Restore(dec *checkpoint.Decoder) error {
	groupSize := dec.U32()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: split store: %w", err)
	}
	if int(groupSize) != s.cfg.GroupSize {
		return fmt.Errorf("counters: snapshot group size %d, store has %d: %w",
			groupSize, s.cfg.GroupSize, checkpoint.ErrMismatch)
	}
	n := dec.U64()
	groups := make(map[uint64]*group, n)
	for i := uint64(0); i < n; i++ {
		gi := dec.U64()
		g := &group{major: dec.U64(), minors: make([]uint32, s.cfg.GroupSize)}
		for k := range g.minors {
			g.minors[k] = dec.U32()
		}
		if dec.Err() != nil {
			break
		}
		groups[gi] = g
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: split store: %w", err)
	}
	s.groups = groups
	return nil
}

// Snapshot encodes the compact view's sticky adaptive state: disabled
// blocks and per-block saturated-sector sets, both in ascending index
// order. Counter values themselves are derived from the split store and
// are not duplicated here.
func (v *CompactView) Snapshot(enc *checkpoint.Encoder) error {
	enc.U8(uint8(v.kind))
	enc.U64(uint64(len(v.disabled)))
	for _, b := range checkpoint.SortedKeys(v.disabled) {
		enc.U64(b)
		enc.Bool(v.disabled[b])
	}
	enc.U64(uint64(len(v.saturated)))
	for _, b := range checkpoint.SortedKeys(v.saturated) {
		set := v.saturated[b]
		enc.U64(b)
		enc.U64(uint64(len(set)))
		for _, i := range checkpoint.SortedKeys(set) {
			enc.U64(i)
		}
	}
	return nil
}

// Restore decodes state written by Snapshot into a view of the same kind.
func (v *CompactView) Restore(dec *checkpoint.Decoder) error {
	kind := CompactKind(dec.U8())
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: compact view: %w", err)
	}
	if kind != v.kind {
		return fmt.Errorf("counters: snapshot compact kind %s, view is %s: %w",
			kind, v.kind, checkpoint.ErrMismatch)
	}
	nd := dec.U64()
	disabled := make(map[uint64]bool, nd)
	for i := uint64(0); i < nd && dec.Err() == nil; i++ {
		b := dec.U64()
		disabled[b] = dec.Bool()
	}
	ns := dec.U64()
	saturated := make(map[uint64]map[uint64]bool, ns)
	for i := uint64(0); i < ns && dec.Err() == nil; i++ {
		b := dec.U64()
		cnt := dec.U64()
		set := make(map[uint64]bool, cnt)
		for k := uint64(0); k < cnt && dec.Err() == nil; k++ {
			set[dec.U64()] = true
		}
		saturated[b] = set
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("counters: compact view: %w", err)
	}
	v.disabled = disabled
	v.saturated = saturated
	return nil
}
