package counters

import "testing"

func TestMonolithicDefaults(t *testing.T) {
	s := MustMonolithicStore(0)
	if s.Bits() != MonolithicBits {
		t.Fatalf("default width %d, want %d", s.Bits(), MonolithicBits)
	}
	if _, err := NewMonolithicStore(4); err == nil {
		t.Error("4-bit width accepted")
	}
	if _, err := NewMonolithicStore(65); err == nil {
		t.Error("65-bit width accepted")
	}
	if _, err := NewMonolithicStore(64); err != nil {
		t.Errorf("64-bit width rejected: %v", err)
	}
}

func TestMonolithicIncrement(t *testing.T) {
	s := MustMonolithicStore(0)
	if s.Value(9) != 0 {
		t.Fatal("fresh counter nonzero")
	}
	for k := uint64(1); k <= 100; k++ {
		v, of := s.Increment(9)
		if v != k || of {
			t.Fatalf("increment %d: v=%d of=%v", k, v, of)
		}
	}
	if s.Value(10) != 0 {
		t.Fatal("neighbor affected")
	}
}

func TestMonolithicWrap(t *testing.T) {
	s := MustMonolithicStore(8) // tiny width to make wrap reachable
	var wrapped []uint64
	s.OnOverflow = func(_ uint64, secs []uint64) { wrapped = secs }
	for k := 0; k < 255; k++ {
		if _, of := s.Increment(3); of {
			t.Fatalf("early wrap at %d", k)
		}
	}
	v, of := s.Increment(3)
	if !of || v != 0 {
		t.Fatalf("wrap: v=%d of=%v", v, of)
	}
	if len(wrapped) != 1 || wrapped[0] != 3 {
		t.Fatalf("overflow hook sectors = %v", wrapped)
	}
}

// The coverage contrast the paper's background describes: a 32 B sector
// of split counters covers 8× more data sectors than monolithic.
func TestMonolithicCoverageContrast(t *testing.T) {
	m := MustMonolithicStore(0)
	sp := MustSplitStore(DefaultSplitConfig())
	if m.CountersPerSector() != 4 {
		t.Fatalf("monolithic counters/sector = %d, want 4", m.CountersPerSector())
	}
	if sp.Config().GroupSize != 8*m.CountersPerSector() {
		t.Fatalf("split covers %d vs monolithic %d: want 8x", sp.Config().GroupSize, m.CountersPerSector())
	}
	if m.SectorOf(7) != 1 || m.SectorOf(3) != 0 {
		t.Fatalf("SectorOf mapping wrong: %d %d", m.SectorOf(7), m.SectorOf(3))
	}
}
