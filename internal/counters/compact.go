package counters

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/dense"
)

// CompactKind selects which compact mirrored-counter design is active
// (paper §IV-D studies three).
type CompactKind int

const (
	// CompactOff disables the compact layer entirely.
	CompactOff CompactKind = iota
	// Compact2Bit uses 2-bit counters, 128 per 32 B compact sector
	// (4× compaction; saturates on the third write).
	Compact2Bit
	// Compact3Bit uses 3-bit counters, 64 per 32 B compact sector
	// (2× compaction).
	Compact3Bit
	// Compact3BitAdaptive is Compact3Bit plus a per-block saturation
	// count and an enable-bit layer that diverts heavily-written blocks
	// straight to the original counters, avoiding double accesses.
	Compact3BitAdaptive
)

// String names the design for reports.
func (k CompactKind) String() string {
	switch k {
	case CompactOff:
		return "off"
	case Compact2Bit:
		return "2bit"
	case Compact3Bit:
		return "3bit"
	case Compact3BitAdaptive:
		return "3bit-adaptive"
	default:
		return fmt.Sprintf("compact(%d)", int(k))
	}
}

// Width returns the counter width in bits (0 for CompactOff).
func (k CompactKind) Width() int {
	switch k {
	case Compact2Bit:
		return 2
	case Compact3Bit, Compact3BitAdaptive:
		return 3
	default:
		return 0
	}
}

// CountersPerSector returns how many data sectors one 32 B compact sector
// covers: 32 B = 256 bits of counters (the adaptive design reserves some
// bits for the saturation count; the paper keeps 64 counters per sector
// for both 3-bit variants).
func (k CompactKind) CountersPerSector() int {
	switch k {
	case Compact2Bit:
		return 128
	case Compact3Bit, Compact3BitAdaptive:
		return 64
	default:
		return 0
	}
}

// DefaultDisableThreshold is the adaptive design's saturated-counter count
// at which a compact block is disabled: the paper uses 8, half of the
// ~25 %-of-counters-accessed observation from prior work [22].
const DefaultDisableThreshold = 8

// Outcome classifies how a counter access is served under the compact
// scheme (paper Fig. 13's three flows).
type Outcome int

const (
	// ServedCompact: the compact counter is valid; only the compact
	// sector (plus its small tree) is needed.
	ServedCompact Outcome = iota
	// ServedOverflowed: the compact counter is saturated; the access pays
	// for the compact sector *and* the original counter sector.
	ServedOverflowed
	// ServedDisabled: the enable bit diverts the access directly to the
	// original counters; no compact traffic at all.
	ServedDisabled
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case ServedCompact:
		return "compact"
	case ServedOverflowed:
		return "overflowed"
	case ServedDisabled:
		return "disabled"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// CompactView layers the compact mirrored counters over a SplitStore. The
// compact counter of sector i is derived as min(minor(i), saturation),
// valid only while the sector's major counter is zero — exactly the
// paper's invariant ("when a compact counter is used, its major counter
// is 0"). Sticky per-block disable bits implement the adaptive design.
type CompactView struct {
	kind CompactKind
	//simlint:ignore snapsym construction wiring: the split store snapshots itself separately
	store *SplitStore
	//simlint:ignore snapsym derived from the kind at construction
	threshold int

	// disabled is the enable-bit layer: a set bit means the compact block
	// is permanently bypassed. Indexed by compact-block index (128 B of
	// compact counters).
	disabled dense.Bitmap
	// satSector marks data sectors whose compact counter has saturated;
	// satCount is the per-block tally of such sectors (the adaptive
	// threshold input) and satBlocks counts blocks with a nonzero tally.
	// Together they replace the old per-block map-of-sets, which sat on
	// the write path of every saturated sector.
	satSector dense.Bitmap
	satCount  dense.U32
	satBlocks int
}

// NewCompactView builds the view. threshold is the adaptive disable
// threshold (ignored unless kind is Compact3BitAdaptive); pass 0 for the
// paper default.
func NewCompactView(kind CompactKind, store *SplitStore, threshold int) (*CompactView, error) {
	if kind == CompactOff {
		return nil, fmt.Errorf("counters: cannot build a view for CompactOff")
	}
	if kind.Width() == 0 {
		return nil, fmt.Errorf("counters: unknown compact kind %d", int(kind))
	}
	if threshold <= 0 {
		threshold = DefaultDisableThreshold
	}
	return &CompactView{
		kind:      kind,
		store:     store,
		threshold: threshold,
	}, nil
}

// Kind returns the active design.
func (v *CompactView) Kind() CompactKind { return v.kind }

// saturation is the counter value meaning "overflowed, consult original".
func (v *CompactView) saturation() uint32 { return 1<<uint(v.kind.Width()) - 1 }

// Saturation exposes the overflow marker value (2^width − 1).
func (v *CompactView) Saturation() uint32 { return v.saturation() }

// SectorOf returns the compact-sector index covering data sector i.
//
//simlint:hotpath
func (v *CompactView) SectorOf(i uint64) uint64 {
	return i / uint64(v.kind.CountersPerSector())
}

// BlockOf returns the compact-block index (4 compact sectors = 128 B)
// covering data sector i — the granularity of the enable-bit layer.
//
//simlint:hotpath
func (v *CompactView) BlockOf(i uint64) uint64 {
	return i / uint64(4*v.kind.CountersPerSector())
}

// Value returns the compact counter of sector i (saturation-clamped).
//
//simlint:hotpath
func (v *CompactView) Value(i uint64) uint32 {
	sat := v.saturation()
	if v.store.Major(v.store.GroupOf(i)) > 0 {
		// Any major bump invalidates the compact layer for the group.
		return sat
	}
	m := v.store.Minor(i)
	if m > sat {
		return sat
	}
	return m
}

// Disabled reports the enable-bit state of sector i's compact block.
//
//simlint:hotpath
func (v *CompactView) Disabled(i uint64) bool {
	return v.kind == Compact3BitAdaptive && v.disabled.Get(v.BlockOf(i))
}

// SaturatedCount returns how many covered sectors of i's compact block
// have saturated counters (adaptive bookkeeping).
//
//simlint:hotpath
func (v *CompactView) SaturatedCount(i uint64) int {
	return int(v.satCount.Get(v.BlockOf(i)))
}

// Classify resolves how a read of sector i's counter is served, per the
// paper's Fig. 13 flow: enable bit → compact value → original fallback.
// A group whose major counter was ever bumped is also diverted straight
// to the original counters (the paper's per-sector one-bit flag), since
// the whole group "needs to use the split counters instead of compact
// ones" after a minor overflow.
//
//simlint:hotpath
func (v *CompactView) Classify(i uint64) Outcome {
	if v.Disabled(i) || v.store.Major(v.store.GroupOf(i)) > 0 {
		return ServedDisabled
	}
	if v.Value(i) >= v.saturation() {
		return ServedOverflowed
	}
	return ServedCompact
}

// NoteWrite records that sector i's counter was incremented (the split
// store has already been updated) and maintains the adaptive state. It
// returns the outcome that governed the write's counter access and
// whether this write just disabled the block (triggering the one-time
// copy of non-saturated compact counters to the originals).
func (v *CompactView) NoteWrite(i uint64) (Outcome, bool) {
	if v.Disabled(i) || v.store.Major(v.store.GroupOf(i)) > 0 {
		return ServedDisabled, false
	}
	sat := v.saturation()
	nowSat := v.Value(i) >= sat
	out := ServedCompact
	if nowSat {
		out = ServedOverflowed
	}
	if v.kind != Compact3BitAdaptive {
		return out, false
	}
	if nowSat && !v.satSector.Get(i) {
		b := v.BlockOf(i)
		v.satSector.Set(i)
		n := v.satCount.Get(b) + 1
		v.satCount.Set(b, n)
		if n == 1 {
			v.satBlocks++
		}
		if int(n) >= v.threshold {
			v.disableBlock(b)
			return out, true
		}
	}
	return out, false
}

// disableBlock sets block b's enable bit and drops its saturation
// bookkeeping (matching the old map-delete semantics: SaturatedCount
// reads zero for a disabled block).
func (v *CompactView) disableBlock(b uint64) {
	v.disabled.Set(b)
	lo := b * uint64(4*v.kind.CountersPerSector())
	hi := lo + uint64(4*v.kind.CountersPerSector())
	for s := lo; s < hi; s++ {
		v.satSector.Clear(s)
	}
	v.satCount.Set(b, 0)
	v.satBlocks--
}
