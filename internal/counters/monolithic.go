package counters

import "fmt"

// MonolithicStore is the SGX-style counter organization the paper's
// background contrasts with split counters (§II-A1): one wide (56-bit)
// counter per cache block, eight to a 64 B block. It never overflows in
// practice and needs no group re-encryption, but caches 8× fewer
// counters per block than the split design — which is why split counters
// are the state of the art the paper builds on.
//
// The reproduction includes it for the counter-organization ablation.
type MonolithicStore struct {
	bits int
	max  uint64
	vals map[uint64]uint64

	// OnOverflow fires in the (astronomically unlikely) event a counter
	// wraps; sectors lists the single affected sector.
	OnOverflow func(groupIdx uint64, sectors []uint64)
}

// MonolithicBits is the SGX counter width.
const MonolithicBits = 56

// NewMonolithicStore builds an empty store with bits-wide counters
// (0 = the SGX default of 56).
func NewMonolithicStore(bits int) (*MonolithicStore, error) {
	if bits == 0 {
		bits = MonolithicBits
	}
	if bits < 8 || bits > 64 {
		return nil, fmt.Errorf("counters: monolithic width %d out of range", bits)
	}
	var max uint64
	if bits == 64 {
		max = ^uint64(0)
	} else {
		max = 1<<uint(bits) - 1
	}
	return &MonolithicStore{bits: bits, max: max, vals: make(map[uint64]uint64)}, nil
}

// MustMonolithicStore is NewMonolithicStore for static configuration.
func MustMonolithicStore(bits int) *MonolithicStore {
	s, err := NewMonolithicStore(bits)
	if err != nil {
		panic(err)
	}
	return s
}

// Bits returns the counter width.
func (s *MonolithicStore) Bits() int { return s.bits }

// Value returns sector i's counter.
func (s *MonolithicStore) Value(i uint64) uint64 { return s.vals[i] }

// Increment bumps sector i's counter, reporting (the theoretical) wrap.
func (s *MonolithicStore) Increment(i uint64) (uint64, bool) {
	v := s.vals[i]
	if v == s.max {
		s.vals[i] = 0
		if s.OnOverflow != nil {
			s.OnOverflow(i, []uint64{i})
		}
		return 0, true
	}
	s.vals[i] = v + 1
	return v + 1, false
}

// CountersPerSector returns how many monolithic counters fit one 32 B
// metadata sector (4 at the 56-bit width padded to 8 B, as in SGX's
// 8-per-64 B layout).
func (s *MonolithicStore) CountersPerSector() int { return 32 / 8 }

// SectorOf returns the metadata-sector index holding sector i's counter —
// 8× fewer sectors covered per metadata block than the split design,
// which is the organization's bandwidth penalty.
func (s *MonolithicStore) SectorOf(i uint64) uint64 {
	return i / uint64(s.CountersPerSector())
}
