package counters

import (
	"math/rand"
	"reflect"
	"testing"
)

// The overflow callback feeds the secure-memory engine's re-encryption
// schedule, so its sector list must be deterministic: pin that sectors
// arrive in ascending order covering exactly the overflowed group, and
// that the full callback sequence is identical across runs. (The
// implementation builds the list by index over a slice, not by ranging
// a map — simlint's maporder analyzer guards it staying that way.)
func TestOverflowCallbackDeterministic(t *testing.T) {
	cfg := SplitConfig{MinorBits: 2, GroupSize: 4}

	type event struct {
		group   uint64
		sectors []uint64
	}
	run := func(seed int64) []event {
		s := MustSplitStore(cfg)
		var events []event
		s.OnOverflow = func(gi uint64, sectors []uint64) {
			events = append(events, event{gi, append([]uint64(nil), sectors...)})
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			s.Increment(uint64(rng.Intn(64)))
		}
		return events
	}

	events := run(7)
	if len(events) == 0 {
		t.Fatal("workload produced no overflows; increase iterations")
	}
	for _, ev := range events {
		base := ev.group * uint64(cfg.GroupSize)
		if len(ev.sectors) != cfg.GroupSize {
			t.Fatalf("group %d: callback got %d sectors, want %d", ev.group, len(ev.sectors), cfg.GroupSize)
		}
		for k, sec := range ev.sectors {
			if sec != base+uint64(k) {
				t.Fatalf("group %d: sectors[%d] = %d, want %d (ascending, gap-free)", ev.group, k, sec, base+uint64(k))
			}
		}
	}

	if again := run(7); !reflect.DeepEqual(events, again) {
		t.Error("identical workloads produced different overflow sequences")
	}
}
