package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/plutus-gpu/plutus/internal/geom"
)

func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", SizeBytes: 2048, BlockSize: 128, Ways: 4, MSHRs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "sector", SizeBytes: 1024, BlockSize: 48, Ways: 2, MSHRs: 1},
		{Name: "div", SizeBytes: 1000, BlockSize: 128, Ways: 4, MSHRs: 1},
		{Name: "pow2", SizeBytes: 128 * 4 * 3, BlockSize: 128, Ways: 4, MSHRs: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q validated, want error", cfg.Name)
		}
	}
	good := Config{Name: "ok", SizeBytes: 2048, BlockSize: 32, Ways: 4, MSHRs: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestMissFillHit(t *testing.T) {
	c := small(t)
	mask := c.MaskFor(0x1000)
	out, need, m := c.Lookup(0x1000, mask, false, nil)
	if out != Miss || need != mask || m == nil {
		t.Fatalf("first lookup: %v need=%04b", out, need)
	}
	evs, _ := c.Fill(m, false)
	if len(evs) != 0 {
		t.Fatalf("fill into empty cache evicted %v", evs)
	}
	out, _, _ = c.Lookup(0x1000, mask, false, nil)
	if out != Hit {
		t.Fatalf("lookup after fill: %v, want hit", out)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestSectoredPartialPresence(t *testing.T) {
	c := small(t)
	// Fetch sector 0 only.
	_, _, m := c.Lookup(0x2000, 0b0001, false, nil)
	c.Fill(m, false)
	// Sector 1 of the same block should miss with need = sector 1 only.
	out, need, m2 := c.Lookup(0x2020, 0b0010, false, nil)
	if out != Miss || need != 0b0010 {
		t.Fatalf("partial lookup: %v need=%04b, want miss 0b0010", out, need)
	}
	c.Fill(m2, false)
	if got := c.Probe(0x2000); got != 0b0011 {
		t.Fatalf("Probe = %04b, want 0b0011", got)
	}
}

func TestMSHRMerging(t *testing.T) {
	c := small(t)
	done := 0
	_, _, m := c.Lookup(0x3000, 0b0001, false, func() { done++ })
	out, _, m2 := c.Lookup(0x3000, 0b0001, false, func() { done++ })
	if out != MissMerged || m2 != m {
		t.Fatalf("second lookup: %v, want merged into same MSHR", out)
	}
	// A different sector of the same block extends the MSHR.
	out, need, m3 := c.Lookup(0x3020, 0b0010, false, func() { done++ })
	if out != Miss || need != 0b0010 || m3 != m {
		t.Fatalf("extend lookup: %v need=%04b", out, need)
	}
	_, waiters := c.Fill(m, false)
	for _, w := range waiters {
		w()
	}
	if done != 3 {
		t.Fatalf("waiters run = %d, want 3", done)
	}
	if c.Stats.MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d, want 1", c.Stats.MSHRMerges)
	}
}

func TestMSHRExhaustion(t *testing.T) {
	c := small(t)
	for i := 0; i < 4; i++ {
		out, _, _ := c.Lookup(geom.Addr(0x4000+i*128), 0b0001, false, nil)
		if out != Miss {
			t.Fatalf("lookup %d: %v", i, out)
		}
	}
	out, _, m := c.Lookup(0x9000, 0b0001, false, nil)
	if out != MissNoMSHR || m != nil {
		t.Fatalf("5th miss: %v, want MissNoMSHR", out)
	}
}

func TestEvictionLRUAndDirty(t *testing.T) {
	c := small(t)
	// 4 sets; blocks mapping to set 0 are 0, 4*128, 8*128, ...
	addrs := []geom.Addr{0, 512, 1024, 1536, 2048}
	for _, a := range addrs[:4] {
		_, _, m := c.Lookup(a, 0b1111, true, nil)
		c.Fill(m, true) // dirty fill
	}
	// Touch addr 0 so it is MRU; victim should be 512.
	c.Lookup(0, 0b0001, false, nil)
	_, _, m := c.Lookup(addrs[4], 0b0001, false, nil)
	evs, _ := c.Fill(m, false)
	if len(evs) != 1 || evs[0].Addr != 512 {
		t.Fatalf("eviction = %+v, want victim 512", evs)
	}
	if evs[0].Dirty != 0b1111 {
		t.Fatalf("victim dirty = %04b, want all", evs[0].Dirty)
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d", c.Stats.DirtyEvictions)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := small(t)
	_, _, m := c.Lookup(0x5000, 0b0001, false, nil)
	c.Fill(m, false)
	if c.DirtyMask(0x5000) != 0 {
		t.Fatal("clean fill left dirty bits")
	}
	out, _, _ := c.Lookup(0x5000, 0b0001, true, nil)
	if out != Hit || c.DirtyMask(0x5000) != 0b0001 {
		t.Fatalf("write hit: %v dirty=%04b", out, c.DirtyMask(0x5000))
	}
	c.CleanSectors(0x5000, 0b0001)
	if c.DirtyMask(0x5000) != 0 {
		t.Fatal("CleanSectors did not clear dirty bit")
	}
}

func TestInsertAndInvalidate(t *testing.T) {
	c := small(t)
	c.Insert(0x6000, 0b0101, true)
	if c.Probe(0x6000) != 0b0101 || c.DirtyMask(0x6000) != 0b0101 {
		t.Fatalf("Insert state: valid=%04b dirty=%04b", c.Probe(0x6000), c.DirtyMask(0x6000))
	}
	d := c.Invalidate(0x6000)
	if d != 0b0101 || c.Probe(0x6000) != 0 {
		t.Fatalf("Invalidate returned %04b, probe=%04b", d, c.Probe(0x6000))
	}
}

func TestMarkDirtyRequiresPresence(t *testing.T) {
	c := small(t)
	if c.MarkDirty(0x7000, 0b0001) {
		t.Fatal("MarkDirty succeeded on absent block")
	}
	c.Insert(0x7000, 0b0001, false)
	if !c.MarkDirty(0x7000, 0b0001) {
		t.Fatal("MarkDirty failed on present sector")
	}
	if c.MarkDirty(0x7000, 0b0010) {
		t.Fatal("MarkDirty succeeded on absent sector")
	}
}

func Test32ByteBlockGeometry(t *testing.T) {
	c := MustNew(Config{Name: "fine", SizeBytes: 2048, BlockSize: 32, Ways: 4, MSHRs: 8})
	if c.SectorsPerBlock() != 1 || c.AllMask() != 0b0001 {
		t.Fatalf("32B geometry: sectors=%d mask=%04b", c.SectorsPerBlock(), c.AllMask())
	}
	// Adjacent 32 B addresses are distinct blocks.
	_, _, m := c.Lookup(0x100, 0b0001, false, nil)
	c.Fill(m, false)
	out, _, _ := c.Lookup(0x120, 0b0001, false, nil)
	if out != Miss {
		t.Fatalf("adjacent 32B block: %v, want miss", out)
	}
}

func TestWalkDirty(t *testing.T) {
	c := small(t)
	c.Insert(0x100, 0b0011, true)
	c.Insert(0x200, 0b0001, false)
	var blocks []geom.Addr
	c.WalkDirty(func(b geom.Addr, d geom.SectorMask) { blocks = append(blocks, b) })
	if len(blocks) != 1 || blocks[0] != 0x100 {
		t.Fatalf("WalkDirty visited %v", blocks)
	}
}

// Property: after any sequence of lookups+fills, every resident sector was
// previously filled, and dirty implies valid.
func TestDirtyImpliesValidProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(Config{Name: "q", SizeBytes: 1024, BlockSize: 128, Ways: 2, MSHRs: 2})
		for _, op := range ops {
			addr := geom.Addr(op&0x0fff) * 32
			write := op&0x1000 != 0
			out, _, m := c.Lookup(addr, c.MaskFor(addr), write, nil)
			if out == Miss {
				c.Fill(m, write)
			}
		}
		okAll := true
		for _, set := range c.sets {
			for i := range set {
				if set[i].dirty&^set[i].valid != 0 {
					okAll = false
				}
			}
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Hit: "hit", Miss: "miss", MissMerged: "miss-merged", MissNoMSHR: "miss-no-mshr"} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}
