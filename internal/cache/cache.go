// Package cache implements the set-associative, sectored, write-back
// cache model used for both the L2 data cache and the per-partition
// security-metadata caches (counter, MAC, BMT, compact-counter caches).
//
// Sectoring follows the Volta organization the paper assumes: a cache
// block reserves a full BlockSize of tag+storage, but individual
// SectorSize sectors are valid/dirty independently, and only requested
// sectors are fetched from memory (PSSM relies on this for metadata).
// Blocks whose BlockSize equals SectorSize degenerate to a conventional
// non-sectored cache, which is how the fine-granularity 32 B metadata
// designs are modelled.
//
// The cache is a pure state model: it holds tags and per-sector bits (and
// optionally data via the caller), while all timing is imposed by the
// component driving it. Misses allocate MSHRs with request merging;
// allocation is on fill, as in the paper's Table II.
package cache

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// Config describes one cache instance.
type Config struct {
	Name      string
	SizeBytes int
	BlockSize int // bytes per tagged block (128 or 32)
	Ways      int
	MSHRs     int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.BlockSize <= 0 || c.Ways <= 0 || c.MSHRs <= 0:
		return fmt.Errorf("cache %q: all sizes must be positive: %+v", c.Name, c)
	case c.BlockSize%geom.SectorSize != 0:
		return fmt.Errorf("cache %q: block size %d is not a multiple of the %d B sector", c.Name, c.BlockSize, geom.SectorSize)
	case c.SizeBytes%(c.BlockSize*c.Ways) != 0:
		return fmt.Errorf("cache %q: size %d not divisible by block*ways", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.BlockSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

type line struct {
	tag   geom.Addr // block-aligned address
	valid geom.SectorMask
	dirty geom.SectorMask
	lru   uint64
}

// Eviction describes a victim block leaving the cache.
type Eviction struct {
	Addr  geom.Addr // block-aligned address of the victim
	Dirty geom.SectorMask
}

// MSHR tracks an outstanding miss to one block, merging later requests.
type MSHR struct {
	Addr    geom.Addr       // block-aligned
	Pending geom.SectorMask // sectors requested from memory so far
	arrived geom.SectorMask // sectors whose fill data has landed
	waiters []func()
}

// AddWaiter registers fn to run when the fill completes.
func (m *MSHR) AddWaiter(fn func()) { m.waiters = append(m.waiters, fn) }

// Cache is one cache instance. Create with New.
type Cache struct {
	cfg  Config
	sets [][]line
	//simlint:ignore snapsym derived from cfg.Sets at construction
	setMask geom.Addr
	//simlint:ignore snapsym derived from cfg.BlockBytes at construction
	sectors  int // sectors per block
	lruClock uint64
	mshrs    map[geom.Addr]*MSHR
	//simlint:ignore snapsym derived from cfg.MSHRs at construction
	mshrLimit int
	Stats     stats.CacheStats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.SizeBytes / (cfg.BlockSize * cfg.Ways)
	sets := make([][]line, nSets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   geom.Addr(nSets - 1),
		sectors:   cfg.BlockSize / geom.SectorSize,
		mshrs:     make(map[geom.Addr]*MSHR),
		mshrLimit: cfg.MSHRs,
	}, nil
}

// MustNew is New for static configuration; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SectorsPerBlock returns how many sectors one tagged block holds.
func (c *Cache) SectorsPerBlock() int { return c.sectors }

// blockAddr aligns a to this cache's block size.
func (c *Cache) blockAddr(a geom.Addr) geom.Addr {
	return a &^ geom.Addr(c.cfg.BlockSize-1)
}

// sectorIn returns the index of a's sector within its block here.
func (c *Cache) sectorIn(a geom.Addr) int {
	return int(a%geom.Addr(c.cfg.BlockSize)) / geom.SectorSize
}

// MaskFor returns the mask selecting only a's sector, in this cache's
// block geometry.
func (c *Cache) MaskFor(a geom.Addr) geom.SectorMask {
	return 1 << c.sectorIn(a)
}

// AllMask selects every sector of a block in this cache's geometry.
func (c *Cache) AllMask() geom.SectorMask { return 1<<c.sectors - 1 }

func (c *Cache) setOf(block geom.Addr) []line {
	idx := (block / geom.Addr(c.cfg.BlockSize)) & c.setMask
	return c.sets[idx]
}

func (c *Cache) find(block geom.Addr) *line {
	set := c.setOf(block)
	for i := range set {
		if set[i].valid != 0 && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

// Outcome classifies a lookup.
type Outcome int

const (
	// Hit: every requested sector is present.
	Hit Outcome = iota
	// Miss: at least one requested sector absent; a new memory request is
	// needed for the missing sectors.
	Miss
	// MissMerged: absent sectors are already covered by an in-flight MSHR;
	// no new memory request is needed.
	MissMerged
	// MissNoMSHR: miss, but no MSHR could be allocated; the requester must
	// retry later (models MSHR-full stalls).
	MissNoMSHR
)

// String names the outcome for diagnostics.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MissMerged:
		return "miss-merged"
	case MissNoMSHR:
		return "miss-no-mshr"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Lookup checks for addr's sectors given by mask (in this cache's
// geometry) and updates LRU and statistics. On Miss it returns the mask of
// sectors that must be fetched and the MSHR tracking them (already
// registered). On MissMerged the returned MSHR is the existing one to
// attach a waiter to. onDone (nullable) is registered on the MSHR.
func (c *Cache) Lookup(addr geom.Addr, mask geom.SectorMask, write bool, onDone func()) (Outcome, geom.SectorMask, *MSHR) {
	block := c.blockAddr(addr)
	ln := c.find(block)
	if ln != nil && ln.valid&mask == mask {
		c.lruClock++
		ln.lru = c.lruClock
		if write {
			ln.dirty |= mask
		}
		c.Stats.Hits++
		return Hit, 0, nil
	}
	var present geom.SectorMask
	if ln != nil {
		present = ln.valid
		c.lruClock++
		ln.lru = c.lruClock
	}
	need := mask &^ present

	if m, ok := c.mshrs[block]; ok {
		still := need &^ m.Pending
		if still == 0 {
			if onDone != nil {
				m.AddWaiter(onDone)
			}
			c.Stats.MSHRMerges++
			return MissMerged, 0, m
		}
		// Partially covered: extend the MSHR with the extra sectors; the
		// caller issues a memory request for just those.
		m.Pending |= still
		if onDone != nil {
			m.AddWaiter(onDone)
		}
		c.Stats.Misses++
		return Miss, still, m
	}
	if len(c.mshrs) >= c.mshrLimit {
		return MissNoMSHR, need, nil
	}
	m := &MSHR{Addr: block, Pending: need}
	if onDone != nil {
		m.AddWaiter(onDone)
	}
	c.mshrs[block] = m
	c.Stats.Misses++
	return Miss, need, m
}

// Fill installs all of the MSHR's pending sectors at once
// (allocate-on-fill), returning any eviction needed to make room plus the
// waiters to resume. markDirty makes the filled sectors dirty immediately
// (fill-from-write). Use FillSectors when fill data arrives piecemeal.
func (c *Cache) Fill(m *MSHR, markDirty bool) ([]Eviction, []func()) {
	evs, _, w := c.FillSectors(m, m.Pending, markDirty)
	return evs, w
}

// FillSectors records the arrival of some of an MSHR's sectors. The
// sectors are installed immediately; the MSHR completes — is deallocated
// and its waiters returned — only once every pending sector has arrived,
// so a fill for an MSHR that was extended after this memory request was
// issued cannot prematurely retire the extension. Extra arrivals after
// completion are no-ops.
func (c *Cache) FillSectors(m *MSHR, mask geom.SectorMask, markDirty bool) (evs []Eviction, done bool, waiters []func()) {
	if cur, live := c.mshrs[m.Addr]; !live || cur != m {
		// Stale completion: the MSHR already finished.
		return nil, false, nil
	}
	m.arrived |= mask & m.Pending
	evs = c.install(m.Addr, mask&m.Pending, markDirty)
	if m.arrived != m.Pending {
		return evs, false, nil
	}
	delete(c.mshrs, m.Addr)
	waiters = m.waiters
	m.waiters = nil
	return evs, true, waiters
}

// install merges sectors into an existing line or allocates a victim.
func (c *Cache) install(block geom.Addr, mask geom.SectorMask, dirty bool) []Eviction {
	c.lruClock++
	if ln := c.find(block); ln != nil {
		ln.valid |= mask
		if dirty {
			ln.dirty |= mask
		}
		ln.lru = c.lruClock
		return nil
	}
	set := c.setOf(block)
	victim := &set[0]
	for i := range set {
		if set[i].valid == 0 {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	var evs []Eviction
	if victim.valid != 0 {
		c.Stats.Evictions++
		if victim.dirty != 0 {
			c.Stats.DirtyEvictions++
		}
		evs = append(evs, Eviction{Addr: victim.tag, Dirty: victim.dirty})
	}
	victim.tag = block
	victim.valid = mask
	victim.dirty = 0
	if dirty {
		victim.dirty = mask
	}
	victim.lru = c.lruClock
	return evs
}

// Insert places sectors directly (no MSHR), used for write-allocate paths
// in the metadata engines where the "fill" data is produced on-chip.
func (c *Cache) Insert(addr geom.Addr, mask geom.SectorMask, dirty bool) []Eviction {
	return c.install(c.blockAddr(addr), mask, dirty)
}

// Probe reports which of addr's sectors are present, without side effects.
func (c *Cache) Probe(addr geom.Addr) geom.SectorMask {
	if ln := c.find(c.blockAddr(addr)); ln != nil {
		return ln.valid
	}
	return 0
}

// DirtyMask reports which of addr's sectors are dirty.
func (c *Cache) DirtyMask(addr geom.Addr) geom.SectorMask {
	if ln := c.find(c.blockAddr(addr)); ln != nil {
		return ln.dirty
	}
	return 0
}

// MarkDirty marks present sectors of addr dirty, reporting success.
func (c *Cache) MarkDirty(addr geom.Addr, mask geom.SectorMask) bool {
	ln := c.find(c.blockAddr(addr))
	if ln == nil || ln.valid&mask != mask {
		return false
	}
	ln.dirty |= mask
	return true
}

// CleanSectors clears dirty bits (after a writeback completes).
func (c *Cache) CleanSectors(addr geom.Addr, mask geom.SectorMask) {
	if ln := c.find(c.blockAddr(addr)); ln != nil {
		ln.dirty &^= mask
	}
}

// Invalidate removes addr's block entirely, returning its dirty sectors.
func (c *Cache) Invalidate(addr geom.Addr) geom.SectorMask {
	block := c.blockAddr(addr)
	if ln := c.find(block); ln != nil {
		d := ln.dirty
		ln.valid, ln.dirty, ln.tag = 0, 0, 0
		return d
	}
	return 0
}

// MSHRFor returns the in-flight MSHR for addr's block, if any.
func (c *Cache) MSHRFor(addr geom.Addr) *MSHR {
	m, ok := c.mshrs[c.blockAddr(addr)]
	if !ok {
		return nil
	}
	return m
}

// InflightMisses returns the number of allocated MSHRs.
func (c *Cache) InflightMisses() int { return len(c.mshrs) }

// FreeMSHRs returns the number of unallocated MSHR entries.
func (c *Cache) FreeMSHRs() int { return c.mshrLimit - len(c.mshrs) }

// WalkDirty visits every dirty (block, mask) pair; used to flush at
// simulation end so writeback traffic is fully accounted.
func (c *Cache) WalkDirty(fn func(block geom.Addr, dirty geom.SectorMask)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid != 0 && set[i].dirty != 0 {
				fn(set[i].tag, set[i].dirty)
			}
		}
	}
}
