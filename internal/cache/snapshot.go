package cache

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
)

// Snapshot encodes the cache's dynamic state — every line's tag,
// sector-valid/dirty masks and LRU stamp, the LRU clock, and the stats
// counters — in fixed set/way order. Configuration is not encoded; the
// restoring side rebuilds the cache from the same Config and Restore
// cross-checks the geometry. The cache must be quiescent: outstanding
// MSHRs hold closures that cannot be serialized, so snapshotting with
// in-flight misses returns ErrNotQuiescent.
func (c *Cache) Snapshot(enc *checkpoint.Encoder) error {
	if len(c.mshrs) != 0 {
		return fmt.Errorf("cache %q: %d in-flight MSHRs: %w",
			c.cfg.Name, len(c.mshrs), checkpoint.ErrNotQuiescent)
	}
	enc.U32(uint32(len(c.sets)))
	enc.U32(uint32(c.cfg.Ways))
	enc.U64(c.lruClock)
	for _, set := range c.sets {
		for i := range set {
			enc.U64(uint64(set[i].tag))
			enc.U8(uint8(set[i].valid))
			enc.U8(uint8(set[i].dirty))
			enc.U64(set[i].lru)
		}
	}
	enc.U64(c.Stats.Hits)
	enc.U64(c.Stats.Misses)
	enc.U64(c.Stats.MSHRMerges)
	enc.U64(c.Stats.Evictions)
	enc.U64(c.Stats.DirtyEvictions)
	return nil
}

// Restore decodes state written by Snapshot into a freshly built cache
// of the same configuration.
func (c *Cache) Restore(dec *checkpoint.Decoder) error {
	if len(c.mshrs) != 0 {
		return fmt.Errorf("cache %q: restore into a cache with in-flight MSHRs: %w",
			c.cfg.Name, checkpoint.ErrNotQuiescent)
	}
	nSets, ways := dec.U32(), dec.U32()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("cache %q: %w", c.cfg.Name, err)
	}
	if int(nSets) != len(c.sets) || int(ways) != c.cfg.Ways {
		return fmt.Errorf("cache %q: snapshot geometry %dx%d, cache is %dx%d: %w",
			c.cfg.Name, nSets, ways, len(c.sets), c.cfg.Ways, checkpoint.ErrMismatch)
	}
	c.lruClock = dec.U64()
	for _, set := range c.sets {
		for i := range set {
			set[i].tag = geom.Addr(dec.U64())
			set[i].valid = geom.SectorMask(dec.U8())
			set[i].dirty = geom.SectorMask(dec.U8())
			set[i].lru = dec.U64()
		}
	}
	c.Stats.Hits = dec.U64()
	c.Stats.Misses = dec.U64()
	c.Stats.MSHRMerges = dec.U64()
	c.Stats.Evictions = dec.U64()
	c.Stats.DirtyEvictions = dec.U64()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("cache %q: %w", c.cfg.Name, err)
	}
	return nil
}
