package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// File layout (all integers little-endian):
//
//	magic   [8]byte  "PLUTSNAP"
//	version u32
//	count   u32                      number of sections
//	section × count:
//	    nameLen    u32
//	    name       [nameLen]byte
//	    payloadLen u64
//	    payload    [payloadLen]byte
//	    payloadCRC u32               CRC32 (IEEE) of payload
//	trailer [8]byte  "PLUTSEND"
//	fileCRC u32                      CRC32 (IEEE) of every prior byte
//
// The trailer magic distinguishes truncation (writer died; trailer
// absent → ErrTruncated) from corruption (trailer present but a CRC
// fails → ErrCorrupt). Section order is part of the format: writers
// emit sections in a fixed order, so identical state is identical bytes.
const (
	fileMagic    = "PLUTSNAP"
	trailerMagic = "PLUTSEND"
	// magic + version + count + trailer magic + file CRC.
	minFileLen = 8 + 4 + 4 + 8 + 4
)

// Section is one named, independently checksummed chunk of a snapshot.
type Section struct {
	Name    string
	Payload []byte
}

// File is an ordered collection of sections — one snapshot.
type File struct {
	sections []Section
}

// Add appends a section. Adding two sections with the same name is a
// programming error and panics; section names are the format's schema.
func (f *File) Add(name string, payload []byte) {
	for _, s := range f.sections {
		if s.Name == name {
			panic("checkpoint: duplicate section " + name)
		}
	}
	f.sections = append(f.sections, Section{Name: name, Payload: payload})
}

// Section returns the payload of the named section.
func (f *File) Section(name string) ([]byte, bool) {
	for _, s := range f.sections {
		if s.Name == name {
			return s.Payload, true
		}
	}
	return nil, false
}

// Sections returns the sections in file order.
func (f *File) Sections() []Section { return f.sections }

// Encode serializes the file, trailer and checksums included.
func (f *File) Encode() []byte {
	e := NewEncoder()
	e.buf.WriteString(fileMagic)
	e.U32(Version)
	e.U32(uint32(len(f.sections)))
	for _, s := range f.sections {
		e.String(s.Name)
		e.U64(uint64(len(s.Payload)))
		e.buf.Write(s.Payload)
		e.U32(crc32.ChecksumIEEE(s.Payload))
	}
	e.buf.WriteString(trailerMagic)
	e.U32(crc32.ChecksumIEEE(e.Data()))
	return e.Data()
}

// Decode parses and verifies a snapshot. It never returns partially
// decoded state: any failure yields a nil File and one of the typed
// errors (ErrTruncated, ErrCorrupt, ErrVersion).
func Decode(data []byte) (*File, error) {
	if len(data) < minFileLen {
		return nil, fmt.Errorf("%d bytes, need at least %d: %w", len(data), minFileLen, ErrTruncated)
	}
	// Trailer first: a missing trailer means the writer never finished,
	// which is the one failure a caller may treat as benign (retry from
	// an older snapshot) rather than alarming.
	trailerOff := len(data) - 12
	if string(data[trailerOff:trailerOff+8]) != trailerMagic {
		return nil, fmt.Errorf("trailer magic missing: %w", ErrTruncated)
	}
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != wantCRC {
		return nil, fmt.Errorf("file CRC mismatch (got %08x want %08x): %w", got, wantCRC, ErrCorrupt)
	}
	if string(data[:8]) != fileMagic {
		return nil, fmt.Errorf("bad magic %q: %w", data[:8], ErrCorrupt)
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != Version {
		return nil, fmt.Errorf("snapshot version %d, this binary reads version %d: %w",
			version, Version, ErrVersion)
	}

	d := NewDecoder(data[12:trailerOff])
	count := d.U32()
	f := &File{}
	for i := uint32(0); i < count; i++ {
		name := d.String()
		payloadLen := d.U64()
		payload := d.take(int(payloadLen))
		crc := d.U32()
		if d.err != nil {
			break
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("section %q CRC mismatch (got %08x want %08x): %w",
				name, got, crc, ErrCorrupt)
		}
		if _, dup := f.Section(name); dup {
			return nil, fmt.Errorf("duplicate section %q: %w", name, ErrCorrupt)
		}
		// Copy so the File does not alias the caller's buffer.
		p := make([]byte, len(payload))
		copy(p, payload)
		f.Add(name, p)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("section table: %w", err)
	}
	return f, nil
}

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so a reader never observes a half-written
// snapshot: it sees the old file, the new file, or (on first write) no
// file — and Decode's trailer check catches the torn-temp case anyway.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ReadFile reads and decodes the snapshot at path. A missing file is
// reported via the ordinary fs.ErrNotExist chain, distinct from the
// decode taxonomy, so callers can treat "no snapshot yet" separately
// from "snapshot damaged".
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
