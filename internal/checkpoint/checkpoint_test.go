package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func sampleFile() *File {
	enc := NewEncoder()
	enc.U64(0xdeadbeefcafe)
	enc.U32(7)
	enc.U8(3)
	enc.Bool(true)
	enc.String("plutus")
	enc.Bytes([]byte{1, 2, 3, 4})

	f := &File{}
	f.Add("meta", enc.Data())
	f.Add("part0", []byte("partition zero state"))
	f.Add("part1", nil) // empty payloads are legal
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	data := f.Encode()
	g, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(g.Sections()) != 3 {
		t.Fatalf("got %d sections, want 3", len(g.Sections()))
	}
	for i, s := range f.Sections() {
		gs := g.Sections()[i]
		if gs.Name != s.Name {
			t.Errorf("section %d: name %q, want %q", i, gs.Name, s.Name)
		}
		if string(gs.Payload) != string(s.Payload) {
			t.Errorf("section %q: payload mismatch", s.Name)
		}
	}
	meta, ok := g.Section("meta")
	if !ok {
		t.Fatal("meta section missing")
	}
	d := NewDecoder(meta)
	if v := d.U64(); v != 0xdeadbeefcafe {
		t.Errorf("U64 = %x", v)
	}
	if v := d.U32(); v != 7 {
		t.Errorf("U32 = %d", v)
	}
	if v := d.U8(); v != 3 {
		t.Errorf("U8 = %d", v)
	}
	if !d.Bool() {
		t.Error("Bool = false")
	}
	if s := d.String(); s != "plutus" {
		t.Errorf("String = %q", s)
	}
	if b := d.Bytes(); len(b) != 4 || b[3] != 4 {
		t.Errorf("Bytes = %v", b)
	}
	if err := d.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

// TestEncodeDeterministic: the same state must produce the same bytes.
func TestEncodeDeterministic(t *testing.T) {
	a := sampleFile().Encode()
	b := sampleFile().Encode()
	if string(a) != string(b) {
		t.Fatal("two encodes of identical state differ")
	}
}

// TestTruncationEveryLength: a snapshot cut at any point must be
// rejected with a typed error — never decoded into partial state.
func TestTruncationEveryLength(t *testing.T) {
	data := sampleFile().Encode()
	for n := 0; n < len(data); n++ {
		_, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v is neither ErrTruncated nor ErrCorrupt", n, err)
		}
	}
	// Truncations short enough to lose the trailer must specifically
	// report ErrTruncated, the retry-an-older-snapshot signal.
	for _, n := range []int{0, 1, minFileLen - 1, len(data) - 12} {
		if n < 0 {
			continue
		}
		if _, err := Decode(data[:n]); !errors.Is(err, ErrTruncated) {
			t.Errorf("truncation to %d bytes: got %v, want ErrTruncated", n, err)
		}
	}
}

// TestBitFlipEveryByte: flipping any single byte must be detected.
func TestBitFlipEveryByte(t *testing.T) {
	data := sampleFile().Encode()
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= byte(1 << rng.Intn(8))
		if mut[i] == data[i] {
			mut[i] ^= 0xff
		}
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("flip at byte %d: error %v is not a typed corruption error", i, err)
		}
	}
}

// TestFlippedSectionCRC: damaging a payload byte and both CRCs the
// consistent way is still caught by the other layer's checksum.
func TestFlippedSectionCRC(t *testing.T) {
	data := sampleFile().Encode()
	// Flip one payload byte and recompute only the file CRC: the
	// section CRC must catch it.
	mut := make([]byte, len(data))
	copy(mut, data)
	// First payload byte: magic(8) + version(4) + count(4) + nameLen(4)
	// + "meta"(4) + payloadLen(8) = offset 32.
	mut[32] ^= 0x01
	binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32.ChecksumIEEE(mut[:len(mut)-4]))
	if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload flip with fixed-up file CRC: got %v, want ErrCorrupt", err)
	}
}

// TestVersionMismatch: an intact file from a different format version
// must be rejected with ErrVersion, not misparsed.
func TestVersionMismatch(t *testing.T) {
	data := sampleFile().Encode()
	mut := make([]byte, len(data))
	copy(mut, data)
	binary.LittleEndian.PutUint32(mut[8:12], Version+1)
	binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32.ChecksumIEEE(mut[:len(mut)-4]))
	_, err := Decode(mut)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestBadMagic(t *testing.T) {
	data := sampleFile().Encode()
	mut := make([]byte, len(data))
	copy(mut, data)
	copy(mut, "NOTASNAP")
	binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32.ChecksumIEEE(mut[:len(mut)-4]))
	if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestDecoderSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // past end
	if d.Err() == nil {
		t.Fatal("no error after reading past end")
	}
	first := d.Err()
	_ = d.U32()
	_ = d.String()
	if d.Err() != first {
		t.Error("error not sticky")
	}
	if !errors.Is(d.Finish(), ErrCorrupt) {
		t.Errorf("Finish = %v, want ErrCorrupt", d.Finish())
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder()
	e.U32(1)
	e.U32(2)
	d := NewDecoder(e.Data())
	_ = d.U32()
	if err := d.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Finish with trailing bytes = %v, want ErrCorrupt", err)
	}
}

func TestDecoderBadBool(t *testing.T) {
	d := NewDecoder([]byte{7})
	_ = d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("bad bool byte: %v, want ErrCorrupt", d.Err())
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[uint64]string{9: "i", 1: "a", 5: "e", 3: "c"}
	got := SortedKeys(m)
	want := []uint64{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestDuplicateSectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	f := &File{}
	f.Add("x", nil)
	f.Add("x", nil)
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	data := sampleFile().Encode()
	if err := WriteFileAtomic(path, data); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if _, ok := f.Section("part0"); !ok {
		t.Error("part0 section missing after round trip")
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
	// Missing files surface through the fs error chain, not the
	// corruption taxonomy.
	_, err = ReadFile(filepath.Join(dir, "absent.ckpt"))
	if !os.IsNotExist(err) {
		t.Errorf("missing file: %v, want IsNotExist", err)
	}
	// A truncated on-disk file is rejected with the typed error.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated on-disk file: %v", err)
	}
}
