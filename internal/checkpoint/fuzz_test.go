package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode: for arbitrary input bytes, Decode either fails with one
// of the typed errors or yields a File whose re-encoding is the input
// identically — the format has one canonical byte representation, so
// decode∘encode must be the identity on everything Decode accepts. It
// must never panic and never return an untyped error.
func FuzzDecode(f *testing.F) {
	valid := sampleFile().Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("PLUTSNAP"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// An empty file object is the smallest canonical encoding.
	f.Add((&File{}).Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode returned an untyped error: %v", err)
			}
			return
		}
		if !bytes.Equal(fl.Encode(), data) {
			t.Fatalf("decode/encode round trip is not the identity on %d accepted bytes", len(data))
		}
	})
}

// FuzzDecoder: the primitive decoder must survive arbitrary bytes under
// an arbitrary read script — no panics, no huge allocations from
// attacker-controlled length prefixes, and Finish never reports success
// unless the input was consumed exactly.
func FuzzDecoder(f *testing.F) {
	enc := NewEncoder()
	enc.U64(1)
	enc.U32(2)
	enc.U8(3)
	enc.Bool(true)
	enc.String("s")
	enc.Bytes([]byte{9})
	f.Add([]byte{}, enc.Data())
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{4, 4, 4}, []byte("PLUTSNAP"))

	f.Fuzz(func(t *testing.T, script, data []byte) {
		d := NewDecoder(data)
		consumed := 0
		for _, op := range script {
			switch op % 6 {
			case 0:
				d.U64()
				consumed += 8
			case 1:
				d.U32()
				consumed += 4
			case 2:
				d.U8()
				consumed++
			case 3:
				d.Bool()
				consumed++
			case 4:
				consumed += 8 + len(d.String())
			case 5:
				consumed += 8 + len(d.Bytes())
			}
		}
		err := d.Finish()
		if err == nil && consumed != len(data) {
			t.Fatalf("Finish succeeded after consuming %d of %d bytes", consumed, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Finish returned an untyped error: %v", err)
		}
	})
}
