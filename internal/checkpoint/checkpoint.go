// Package checkpoint defines the deterministic snapshot container used
// to park and resume simulations: a versioned, self-describing binary
// file of named, length-prefixed, CRC-guarded sections, plus the
// little-endian encoder/decoder every state-bearing package serializes
// itself with.
//
// The format exists to make one guarantee cheap to audit: a snapshot of
// the same simulator state is always the same bytes. Encoding is
// explicit field-by-field (no reflection, no map iteration — see the
// maporder analyzer, which covers this package), every section carries
// its own CRC32 so a torn write is detected before any state is
// restored, and a whole-file trailer CRC rejects bit flips anywhere,
// including in the header itself.
//
// Error taxonomy on load — callers branch with errors.Is:
//
//   - ErrTruncated: the file ends early (torn write, killed writer).
//   - ErrCorrupt: checksum or structural mismatch — bytes changed.
//   - ErrVersion: an intact file written by a different format version.
//   - ErrMismatch: an intact, current-version file whose embedded
//     configuration fingerprint does not match the resuming run.
//   - ErrNotQuiescent: a snapshot was requested while in-flight state
//     (MSHRs, pending security ops, queued events) existed; snapshots
//     are only taken at drained epoch boundaries.
//   - ErrPreempted: a run was deliberately parked at a checkpoint by
//     its checkpoint sink (worker preemption); the snapshot on disk is
//     valid and resumable.
package checkpoint

import "errors"

// Version is the current snapshot format version. Any change to the
// container layout or to any package's section encoding must bump it;
// old snapshots are then rejected with ErrVersion rather than decoded
// into misaligned state.
// Version history:
//
//	1  initial PLUTSNAP format
//	2  SecStats gained tamper-verdict counters (TamperInjected,
//	   TaintedReads, Verdicts); secmem snapshots carry the taint maps;
//	   the gpusim "gpu" section carries the applied-tamper-op index
const Version = 2

var (
	// ErrTruncated reports a snapshot that ends before its trailer —
	// the writer died mid-write or the file was cut short.
	ErrTruncated = errors.New("checkpoint: snapshot truncated")

	// ErrCorrupt reports a snapshot whose bytes fail a CRC or whose
	// structure cannot be parsed: the content changed after writing.
	ErrCorrupt = errors.New("checkpoint: snapshot corrupt")

	// ErrVersion reports an intact snapshot written under a different
	// format version than this binary understands.
	ErrVersion = errors.New("checkpoint: snapshot version mismatch")

	// ErrMismatch reports a valid snapshot that belongs to a different
	// run: its configuration fingerprint (GPU geometry, scheme,
	// workload, budget) does not match the run trying to resume it.
	ErrMismatch = errors.New("checkpoint: snapshot does not match run configuration")

	// ErrNotQuiescent reports an attempt to snapshot state that still
	// has in-flight work; it indicates a bug in the epoch drain.
	ErrNotQuiescent = errors.New("checkpoint: simulator not quiescent")

	// ErrPreempted reports a run parked on purpose: the checkpoint sink
	// asked the run to stop after an atomic snapshot write. The run can
	// be resumed from that snapshot at any time.
	ErrPreempted = errors.New("checkpoint: run preempted at checkpoint")
)
