package checkpoint

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"fmt"
	"sort"
)

// Encoder serializes checkpoint state as fixed-width little-endian
// fields. There is no reflection and no schema: each package writes its
// fields in a fixed documented order and reads them back in the same
// order, so identical state always encodes to identical bytes.
type Encoder struct {
	buf bytes.Buffer
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Data returns the bytes encoded so far. The slice aliases the
// encoder's buffer; callers hand it to File.Add and stop appending.
func (e *Encoder) Data() []byte { return e.buf.Bytes() }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return e.buf.Len() }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf.WriteByte(v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes appends a u32 length prefix followed by p.
func (e *Encoder) Bytes(p []byte) {
	e.U32(uint32(len(p)))
	e.buf.Write(p)
}

// String appends s with a u32 length prefix.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf.WriteString(s)
}

// Decoder reads fields written by Encoder. Errors are sticky: after the
// first failed read every subsequent read returns a zero value, so a
// decode body can run straight through and check Err (or Finish) once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over p.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) || d.off+n < d.off {
		d.err = fmt.Errorf("decode past end at offset %d (want %d of %d bytes): %w",
			d.off, n, len(d.buf), ErrCorrupt)
		return nil
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Bool reads one byte as a bool; any value other than 0 or 1 is a
// corruption error.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("invalid bool byte at offset %d: %w", d.off-1, ErrCorrupt)
		}
		return false
	}
}

// Bytes reads a u32-length-prefixed byte slice. The result is a copy.
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	p := d.take(int(n))
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// String reads a u32-length-prefixed string.
func (d *Decoder) String() string {
	n := d.U32()
	p := d.take(int(n))
	if p == nil {
		return ""
	}
	return string(p)
}

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Finish returns the first decode error; if none, it additionally
// requires that every byte was consumed — trailing garbage in a section
// means the encoder and decoder disagree on the schema.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%d trailing bytes after decode: %w", len(d.buf)-d.off, ErrCorrupt)
	}
	return nil
}

// SortedKeys returns m's keys in ascending order. Every map a package
// serializes must be walked through this (or an equivalent explicit
// sort) so the encoding never observes Go's randomized map iteration
// order — the maporder analyzer enforces the discipline.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
