package workload

// The synthetic benchmark suite. One entry per workload, named after the
// paper's Rodinia / Parboil / LonestarGPU / Pannotia applications, with
// parameters chosen to mirror each application's published behaviour:
//
//   - graph workloads (bfs, sssp, pagerank, color, mis) are irregular,
//     read-dominated, and value-rich (small integer distances/ranks and
//     many zeros) — the cases where MAC traffic dominates in the paper's
//     Fig. 7 and where Plutus's value verification shines;
//   - stencil/streaming workloads (hotspot, srad, pathfinder, stencil,
//     sgemm, kmeans) have good spatial locality and moderate value reuse
//     (floating-point fields with repeated boundary/initial values);
//   - histo and backprop write heavily, exercising the compact-counter
//     overflow paths.
//
// Footprints are sized for the scaled 8-partition simulator: far beyond
// its 1.5 MiB aggregate L2, so every run is genuinely memory-bound.

const (
	mib = 1 << 20
)

func init() {
	// --- Rodinia-3.1 ---
	register(Spec{
		Name: "backprop", Suite: "rodinia", Intensity: "high",
		Warps: 960, InstsPerWarp: 300, Footprint: 16 * mib,
		Pattern: Streaming, MemFrac: 0.55, ReadFrac: 0.62,
		ComputeCycles: 4, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.30, PoolFrac: 0.35, PoolSize: 48, Jitter: true},
	})
	register(Spec{
		Name: "hotspot", Suite: "rodinia", Intensity: "medium",
		Warps: 960, InstsPerWarp: 300, Footprint: 12 * mib,
		Pattern: Stencil, MemFrac: 0.40, ReadFrac: 0.80,
		ComputeCycles: 6, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.20, PoolFrac: 0.45, PoolSize: 64, Jitter: true},
	})
	register(Spec{
		Name: "kmeans", Suite: "rodinia", Intensity: "high",
		Warps: 960, InstsPerWarp: 300, Footprint: 24 * mib,
		Pattern: Streaming, MemFrac: 0.60, ReadFrac: 0.95,
		ComputeCycles: 4, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.15, PoolFrac: 0.40, PoolSize: 128, Jitter: true},
	})
	register(Spec{
		Name: "srad", Suite: "rodinia", Intensity: "medium",
		Warps: 960, InstsPerWarp: 300, Footprint: 12 * mib,
		Pattern: Stencil, MemFrac: 0.45, ReadFrac: 0.75,
		ComputeCycles: 6, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.25, PoolFrac: 0.35, PoolSize: 96, Jitter: true},
	})
	register(Spec{
		Name: "pathfinder", Suite: "rodinia", Intensity: "high",
		Warps: 960, InstsPerWarp: 300, Footprint: 16 * mib,
		Pattern: Streaming, MemFrac: 0.55, ReadFrac: 0.85,
		ComputeCycles: 3, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.35, PoolFrac: 0.35, PoolSize: 64},
	})

	// --- Parboil ---
	register(Spec{
		Name: "sgemm", Suite: "parboil", Intensity: "medium",
		Warps: 960, InstsPerWarp: 300, Footprint: 16 * mib,
		Pattern: Strided, MemFrac: 0.35, ReadFrac: 0.90,
		ComputeCycles: 8, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.10, PoolFrac: 0.40, PoolSize: 192, Jitter: true},
	})
	register(Spec{
		Name: "spmv", Suite: "parboil", Intensity: "high",
		Warps: 960, InstsPerWarp: 250, Footprint: 24 * mib,
		Pattern: GraphIrregular, MemFrac: 0.65, ReadFrac: 0.93,
		ComputeCycles: 3, ThreadsPerAccess: 24,
		Values: ValueProfile{ZeroFrac: 0.45, PoolFrac: 0.30, PoolSize: 64, Jitter: true},
	})
	register(Spec{
		Name: "stencil", Suite: "parboil", Intensity: "high",
		Warps: 960, InstsPerWarp: 300, Footprint: 16 * mib,
		Pattern: Stencil, MemFrac: 0.55, ReadFrac: 0.82,
		ComputeCycles: 4, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.25, PoolFrac: 0.40, PoolSize: 96, Jitter: true},
	})
	register(Spec{
		Name: "histo", Suite: "parboil", Intensity: "medium",
		Warps: 960, InstsPerWarp: 250, Footprint: 8 * mib,
		Pattern: Random, MemFrac: 0.45, ReadFrac: 0.55,
		ComputeCycles: 4, ThreadsPerAccess: 16,
		Values: ValueProfile{ZeroFrac: 0.50, PoolFrac: 0.25, PoolSize: 32},
	})

	// --- LonestarGPU-2.0 ---
	register(Spec{
		Name: "bfs", Suite: "lonestar", Intensity: "high",
		Warps: 960, InstsPerWarp: 250, Footprint: 24 * mib,
		Pattern: GraphIrregular, MemFrac: 0.60, ReadFrac: 0.88,
		ComputeCycles: 2, ThreadsPerAccess: 28,
		Values: ValueProfile{ZeroFrac: 0.40, PoolFrac: 0.40, PoolSize: 32},
	})
	register(Spec{
		Name: "sssp", Suite: "lonestar", Intensity: "high",
		Warps: 960, InstsPerWarp: 250, Footprint: 24 * mib,
		Pattern: GraphIrregular, MemFrac: 0.60, ReadFrac: 0.84,
		ComputeCycles: 3, ThreadsPerAccess: 28,
		Values: ValueProfile{ZeroFrac: 0.30, PoolFrac: 0.45, PoolSize: 48, Jitter: true},
	})

	// --- Pannotia ---
	register(Spec{
		Name: "pagerank", Suite: "pannotia", Intensity: "high",
		Warps: 960, InstsPerWarp: 250, Footprint: 24 * mib,
		Pattern: GraphIrregular, MemFrac: 0.62, ReadFrac: 0.92,
		ComputeCycles: 3, ThreadsPerAccess: 28,
		Values: ValueProfile{ZeroFrac: 0.25, PoolFrac: 0.50, PoolSize: 64, Jitter: true},
	})
	register(Spec{
		Name: "color", Suite: "pannotia", Intensity: "medium",
		Warps: 960, InstsPerWarp: 250, Footprint: 16 * mib,
		Pattern: GraphIrregular, MemFrac: 0.50, ReadFrac: 0.87,
		ComputeCycles: 3, ThreadsPerAccess: 24,
		Values: ValueProfile{ZeroFrac: 0.45, PoolFrac: 0.35, PoolSize: 24},
	})
	register(Spec{
		Name: "mis", Suite: "pannotia", Intensity: "medium",
		Warps: 960, InstsPerWarp: 250, Footprint: 16 * mib,
		Pattern: GraphIrregular, MemFrac: 0.50, ReadFrac: 0.90,
		ComputeCycles: 3, ThreadsPerAccess: 24,
		Values: ValueProfile{ZeroFrac: 0.50, PoolFrac: 0.30, PoolSize: 24},
	})
}

func init() {
	// --- additional kernels rounding out the suite ---
	// stream: a pure bandwidth microbenchmark (copy-scale-add style),
	// the upper bound for metadata-overhead amortization.
	register(Spec{
		Name: "stream", Suite: "rodinia", Intensity: "high",
		Warps: 960, InstsPerWarp: 300, Footprint: 32 * mib,
		Pattern: Streaming, MemFrac: 0.75, ReadFrac: 0.66,
		ComputeCycles: 1, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.10, PoolFrac: 0.55, PoolSize: 32, Jitter: true},
	})
	// nw (Needleman-Wunsch): diagonal-wavefront dependence with strided
	// reuse and a moderate write share.
	register(Spec{
		Name: "nw", Suite: "rodinia", Intensity: "medium",
		Warps: 960, InstsPerWarp: 300, Footprint: 12 * mib,
		Pattern: Strided, MemFrac: 0.45, ReadFrac: 0.70,
		ComputeCycles: 5, ThreadsPerAccess: 32,
		Values: ValueProfile{ZeroFrac: 0.35, PoolFrac: 0.30, PoolSize: 64, Jitter: true},
	})
}
