// Package workload provides the synthetic benchmark suite standing in for
// the paper's Rodinia-3.1 / Parboil / LonestarGPU-2.0 / Pannotia
// workloads (the real binaries and inputs require GPGPU-Sim; see
// DESIGN.md's substitution table).
//
// Each benchmark is a deterministic generator parameterised along the
// axes the paper's mechanisms key on:
//
//   - access pattern (streaming, strided, stencil, uniform-random,
//     graph-irregular with skew) — drives cache and row-buffer locality
//     and metadata-cache effectiveness;
//   - memory intensity and read/write mix — drives bandwidth contention
//     (Fig. 7) and the write-rarity that compact counters exploit
//     (Fig. 10);
//   - value profile (zero fraction, hot-pool fraction, near-value jitter)
//     — drives the value locality that Plutus's verification exploits
//     (Fig. 9).
//
// Everything is hash-derived from (benchmark, warp, step), so runs are
// reproducible bit-for-bit with no shared mutable state beyond per-warp
// counters.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/trace"
	"github.com/plutus-gpu/plutus/internal/trace/scenario"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

// Pattern is a benchmark's dominant memory-access pattern.
type Pattern int

const (
	// Streaming: fully-coalesced sequential block accesses.
	Streaming Pattern = iota
	// Strided: coalesced but with a large inter-access stride.
	Strided
	// Stencil: streaming plus neighbouring-row reuse.
	Stencil
	// Random: uniform random sectors, partially coalesced.
	Random
	// GraphIrregular: skewed (hot-vertex) scatter with mostly
	// uncoalesced single-word accesses — the paper's worst case.
	GraphIrregular
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Streaming:
		return "streaming"
	case Strided:
		return "strided"
	case Stencil:
		return "stencil"
	case Random:
		return "random"
	case GraphIrregular:
		return "graph"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// ValueProfile parameterises the synthetic data contents.
type ValueProfile struct {
	// ZeroFrac is the fraction of 32-bit words that are zero.
	ZeroFrac float64
	// PoolFrac is the fraction drawn from a small pool of hot values
	// (on top of ZeroFrac).
	PoolFrac float64
	// PoolSize is the hot-pool cardinality.
	PoolSize int
	// Jitter, when true, perturbs the low 4 bits of pool values — the
	// near-value case the paper's masked matching captures.
	Jitter bool
}

// Spec fully describes one synthetic benchmark.
type Spec struct {
	Name  string
	Suite string
	// Intensity is "high" or "medium" (the paper's two selection bins).
	Intensity string

	Warps        int
	InstsPerWarp int
	// Footprint is the data working set in bytes.
	Footprint uint64
	Pattern   Pattern
	// MemFrac is the fraction of instructions that access memory.
	MemFrac float64
	// ReadFrac is the fraction of memory instructions that are loads.
	ReadFrac float64
	// ComputeCycles is the latency of each compute instruction.
	ComputeCycles int
	// ThreadsPerAccess is how many distinct words a warp touches per
	// memory instruction (32 = fully divergent worst case).
	ThreadsPerAccess int
	Values           ValueProfile
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.Warps < 1 || s.InstsPerWarp < 1:
		return fmt.Errorf("workload %s: warps/insts must be positive", s.Name)
	case s.Footprint < geom.BlockSize:
		return fmt.Errorf("workload %s: footprint too small", s.Name)
	case s.MemFrac < 0 || s.MemFrac > 1 || s.ReadFrac < 0 || s.ReadFrac > 1:
		return fmt.Errorf("workload %s: fractions out of range", s.Name)
	case s.ThreadsPerAccess < 1 || s.ThreadsPerAccess > 32:
		return fmt.Errorf("workload %s: threads per access out of range", s.Name)
	}
	return nil
}

// splitmix64 and hash2 are this package's historical names for the
// shared generator hashes, now owned by internal/valmodel so trace
// replay and the scenario corpus derive values from the same math.
func splitmix64(x uint64) uint64 { return valmodel.Splitmix64(x) }

func hash2(a, b uint64) uint64 { return valmodel.Hash2(a, b) }

// Bench is a runnable instance of a Spec; it implements gpusim.Workload.
type Bench struct {
	spec  Spec
	seed  uint64
	model valmodel.Model
	step  []uint64 // per-warp instruction counter
}

// NewBench instantiates spec with a name-derived seed.
func NewBench(spec Spec) (*Bench, error) {
	return NewBenchSeeded(spec, 0)
}

// NewBenchSeeded instantiates spec with the name-derived seed perturbed
// by seed (zero leaves it unchanged, matching NewBench). Distinct seeds
// give statistically independent instruction streams and memory images
// with identical workload characteristics — the determinism tests sweep
// several to rule out luck in one particular event interleaving.
func NewBenchSeeded(spec Spec, seed uint64) (*Bench, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := uint64(14695981039346656037)
	for _, c := range spec.Name {
		s = (s ^ uint64(c)) * 1099511628211
	}
	if seed != 0 {
		s ^= splitmix64(seed)
	}
	p := spec.Values
	m := valmodel.Model{
		Seed:     s,
		ZeroFrac: p.ZeroFrac,
		PoolFrac: p.PoolFrac,
		PoolSize: uint32(p.PoolSize),
		Jitter:   p.Jitter,
	}
	return &Bench{spec: spec, seed: s, model: m, step: make([]uint64, spec.Warps)}, nil
}

// Spec returns the benchmark's parameters.
func (b *Bench) Spec() Spec { return b.spec }

// Name implements gpusim.Workload.
func (b *Bench) Name() string { return b.spec.Name }

// Warps implements gpusim.Workload.
func (b *Bench) Warps() int { return b.spec.Warps }

// Reset rewinds all warps (a Bench may be reused across schemes).
func (b *Bench) Reset() {
	for i := range b.step {
		b.step[i] = 0
	}
}

// Next implements gpusim.Workload.
func (b *Bench) Next(w int) (gpusim.Inst, bool) {
	if b.step[w] >= uint64(b.spec.InstsPerWarp) {
		return gpusim.Inst{}, false
	}
	step := b.step[w]
	b.step[w]++

	h := hash2(b.seed, uint64(w)<<32|step)
	if float64(h%1000)/1000 >= b.spec.MemFrac {
		return gpusim.Inst{Kind: gpusim.Compute, Cycles: b.spec.ComputeCycles}, true
	}
	isLoad := float64(hash2(h, 1)%1000)/1000 < b.spec.ReadFrac
	kind := gpusim.Store
	if isLoad {
		kind = gpusim.Load
	}
	return gpusim.Inst{Kind: kind, Addrs: b.addrs(w, step, isLoad)}, true
}

// addrs generates the per-thread addresses of one memory instruction.
func (b *Bench) addrs(w int, step uint64, isLoad bool) []geom.Addr {
	s := b.spec
	fp := s.Footprint &^ (geom.BlockSize - 1)
	n := s.ThreadsPerAccess
	out := make([]geom.Addr, 0, n)

	switch s.Pattern {
	case Streaming:
		// Warp-striped sequential blocks: warp w's i-th access touches
		// block (w + i*warps), threads fill the block contiguously.
		base := (uint64(w) + step*uint64(s.Warps)) * geom.BlockSize % fp
		for t := 0; t < n; t++ {
			out = append(out, geom.Addr(base+uint64(t*4)%geom.BlockSize))
		}
	case Strided:
		stride := uint64(8 * geom.BlockSize)
		base := (uint64(w)*geom.BlockSize + step*stride) % fp
		for t := 0; t < n; t++ {
			out = append(out, geom.Addr(base+uint64(t*4)%geom.BlockSize))
		}
	case Stencil:
		// A row sweep with ±1-row neighbours (3-point stencil rows).
		row := uint64(1024)
		base := (uint64(w)*row + step*geom.BlockSize) % fp
		for t := 0; t < n; t++ {
			off := uint64(t*4) % geom.BlockSize
			switch t % 3 {
			case 0:
				out = append(out, geom.Addr(base+off))
			case 1:
				out = append(out, geom.Addr((base+row+off)%fp))
			default:
				out = append(out, geom.Addr((base+2*row+off)%fp))
			}
		}
	case Random:
		// Uniform random sectors; threads within a warp still cluster
		// into a few sectors (partial coalescing).
		for t := 0; t < n; t++ {
			h := hash2(b.seed^uint64(step), uint64(w)<<16|uint64(t/8))
			sector := h % (fp / geom.SectorSize)
			out = append(out, geom.Addr(sector*geom.SectorSize+uint64(t%8)*4))
		}
	case GraphIrregular:
		// Skewed vertex accesses: ~20% of touches land in a hot 1/64th
		// of the footprint (power-law-ish), threads fully divergent.
		for t := 0; t < n; t++ {
			h := hash2(b.seed^(uint64(step)<<20), uint64(w)<<8|uint64(t))
			region := fp
			base := uint64(0)
			if h%5 == 0 {
				region = fp / 64
				if region < geom.BlockSize {
					region = geom.BlockSize
				}
			}
			sector := (h >> 8) % (region / geom.SectorSize)
			out = append(out, geom.Addr(base+sector*geom.SectorSize+uint64(h>>40&7)*4))
		}
	}
	return out
}

// ValueModel returns the model the benchmark's data contents derive
// from; trace capture embeds it so replayed values match this instance
// exactly (including any seed perturbation).
func (b *Bench) ValueModel() valmodel.Model { return b.model }

// MemValue implements gpusim.Workload: the initial memory image.
func (b *Bench) MemValue(addr geom.Addr) uint32 { return b.model.MemValue(addr) }

// StoreValue implements gpusim.Workload: stored values follow the same
// profile (computation output resembles its input distribution).
func (b *Bench) StoreValue(w int, addr geom.Addr) uint32 {
	return b.model.StoreValue(w, addr)
}

// StreamCursor implements secmem.StreamCursorSource (structurally — the
// mgx scheme's application-knowledge contract): regular-pattern
// benchmarks declare their in-footprint accesses as one block-granular
// write stream, so the controller can derive those sectors' version
// numbers on-chip. Irregular patterns and out-of-footprint addresses
// report no stream, forcing the stored-counter fallback.
func (b *Bench) StreamCursor(addr geom.Addr) (uint64, bool) {
	switch b.spec.Pattern {
	case Streaming, Strided, Stencil:
		fp := b.spec.Footprint &^ (geom.BlockSize - 1)
		if uint64(addr) < fp {
			return uint64(addr) / geom.BlockSize, true
		}
	}
	return 0, false
}

// --- registry ---

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// SuiteNames lists the synthetic benchmark suite in sorted order —
// the benchmarks the golden figure tables are pinned to. Scenario and
// trace workloads are deliberately excluded so adding corpus entries
// never changes byte-pinned results.
func SuiteNames() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Names lists every named workload Get resolves: the synthetic suite
// plus the scenario corpus, sorted. `trace:` workloads are not listed
// (they name files, not registry entries).
func Names() []string {
	out := append(SuiteNames(), scenario.Names()...)
	sort.Strings(out)
	return out
}

// Get instantiates a named workload. Three namespaces resolve, in
// order: the synthetic suite, the scenario corpus
// (internal/trace/scenario), and `trace:<path>` — a PLTR-v2 trace file
// replayed as a workload. All three flow through the harness, plutusd,
// and cluster sweeps identically; the returned value implements
// gpusim.CheckpointableWorkload in every case, so any workload
// checkpoints and resumes.
func Get(name string) (gpusim.Workload, error) {
	return GetSeeded(name, 0)
}

// GetSeeded instantiates a named workload with a perturbed seed (zero
// matches Get); see NewBenchSeeded. Trace replays refuse non-zero
// seeds: a trace is one recorded run, and silently replaying it with a
// different memory image would un-pin the very bytes it pins.
func GetSeeded(name string, seed uint64) (gpusim.Workload, error) {
	if path, ok := strings.CutPrefix(name, "trace:"); ok {
		if seed != 0 {
			return nil, fmt.Errorf("workload: %s: trace replays are seedless (recorded runs); got seed %d", name, seed)
		}
		return trace.OpenReplay(name, path)
	}
	if s, ok := registry[name]; ok {
		return NewBenchSeeded(s, seed)
	}
	if _, ok := scenario.Describe(name); ok {
		return scenario.New(name, seed)
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}

// MustGet is Get for tests and static tables.
func MustGet(name string) gpusim.Workload {
	b, err := Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Cursor returns a copy of the per-warp instruction counters — the
// benchmark's only mutable state. Together with (name, seed) it fully
// determines the remaining instruction stream, which is what makes a
// parked run resumable: gpusim checkpoints the cursor and restores it
// with RestoreCursor.
func (b *Bench) Cursor() []uint64 {
	out := make([]uint64, len(b.step))
	copy(out, b.step)
	return out
}

// RestoreCursor replaces the per-warp instruction counters with a
// checkpointed cursor. The cursor must match the benchmark's warp count.
func (b *Bench) RestoreCursor(cur []uint64) error {
	if len(cur) != len(b.step) {
		return fmt.Errorf("workload %s: cursor has %d warps, benchmark has %d",
			b.spec.Name, len(cur), len(b.step))
	}
	copy(b.step, cur)
	return nil
}
