package workload

import (
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
)

// mustBench instantiates a suite benchmark as its concrete type, for
// tests that reach past gpusim.Workload into Spec/Reset.
func mustBench(t *testing.T, name string) *Bench {
	t.Helper()
	s, ok := registry[name]
	if !ok {
		t.Fatalf("unknown suite benchmark %q", name)
	}
	b, err := NewBench(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRegistryComplete(t *testing.T) {
	names := SuiteNames()
	if len(names) < 12 {
		t.Fatalf("only %d benchmarks registered", len(names))
	}
	suites := map[string]int{}
	for _, n := range names {
		b := mustBench(t, n)
		if err := b.Spec().Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", n, err)
		}
		suites[b.Spec().Suite]++
	}
	for _, s := range []string{"rodinia", "parboil", "lonestar", "pannotia"} {
		if suites[s] == 0 {
			t.Errorf("suite %s has no benchmarks", s)
		}
	}
}

// Names must resolve everything it lists, cover the suite and the
// scenario corpus, and stay disjoint from the golden-pinned SuiteNames.
func TestNamesResolve(t *testing.T) {
	names := Names()
	if len(names) <= len(SuiteNames()) {
		t.Fatalf("Names() (%d) should extend SuiteNames() (%d) with scenarios",
			len(names), len(SuiteNames()))
	}
	scenarios := 0
	for _, n := range names {
		wl, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if _, ok := wl.(gpusim.CheckpointableWorkload); !ok {
			t.Errorf("Get(%q) is not checkpointable", n)
		}
		if strings.HasPrefix(n, "scn-") {
			scenarios++
		}
	}
	if scenarios < 4 {
		t.Errorf("scenario corpus too small: %d families", scenarios)
	}
	for _, n := range SuiteNames() {
		if strings.HasPrefix(n, "scn-") {
			t.Errorf("SuiteNames leaked scenario %q into the golden set", n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestTraceSeedRejected(t *testing.T) {
	if _, err := GetSeeded("trace:/nonexistent.pltr", 7); err == nil ||
		!strings.Contains(err.Error(), "seedless") {
		t.Fatalf("seeded trace replay should be rejected, got %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGet("bfs")
	b := MustGet("bfs")
	for k := 0; k < 200; k++ {
		ia, oka := a.Next(3)
		ib, okb := b.Next(3)
		if oka != okb || ia.Kind != ib.Kind || len(ia.Addrs) != len(ib.Addrs) {
			t.Fatalf("step %d: divergent instructions", k)
		}
		for j := range ia.Addrs {
			if ia.Addrs[j] != ib.Addrs[j] {
				t.Fatalf("step %d: divergent address %d", k, j)
			}
		}
	}
	if a.MemValue(0x1234) != b.MemValue(0x1234) {
		t.Fatal("MemValue not deterministic")
	}
}

func TestResetRewinds(t *testing.T) {
	b := mustBench(t, "hotspot")
	first, _ := b.Next(0)
	for k := 0; k < 50; k++ {
		b.Next(0)
	}
	b.Reset()
	again, _ := b.Next(0)
	if first.Kind != again.Kind {
		t.Fatal("Reset did not rewind warp streams")
	}
}

func TestWarpsRetire(t *testing.T) {
	b := mustBench(t, "mis")
	n := 0
	for {
		if _, ok := b.Next(1); !ok {
			break
		}
		n++
	}
	if n != b.Spec().InstsPerWarp {
		t.Fatalf("warp ran %d instructions, want %d", n, b.Spec().InstsPerWarp)
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, name := range SuiteNames() {
		b := mustBench(t, name)
		fp := geom.Addr(b.Spec().Footprint)
		for k := 0; k < 300; k++ {
			inst, ok := b.Next(k % b.Spec().Warps)
			if !ok {
				continue
			}
			for _, a := range inst.Addrs {
				if a >= fp {
					t.Fatalf("%s: address %#x beyond footprint %#x", name, a, fp)
				}
			}
		}
	}
}

func TestReadWriteMixApproximatesSpec(t *testing.T) {
	for _, name := range []string{"kmeans", "histo", "backprop"} {
		b := mustBench(t, name)
		loads, stores := 0, 0
		for w := 0; w < b.Spec().Warps; w++ {
			for {
				inst, ok := b.Next(w)
				if !ok {
					break
				}
				switch inst.Kind {
				case gpusim.Load:
					loads++
				case gpusim.Store:
					stores++
				}
			}
		}
		got := float64(loads) / float64(loads+stores)
		want := b.Spec().ReadFrac
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("%s: read fraction %.3f, spec %.3f", name, got, want)
		}
	}
}

func TestMemFracApproximatesSpec(t *testing.T) {
	b := mustBench(t, "sgemm")
	mem, total := 0, 0
	for w := 0; w < 64; w++ {
		for {
			inst, ok := b.Next(w)
			if !ok {
				break
			}
			total++
			if inst.Kind != gpusim.Compute {
				mem++
			}
		}
	}
	got := float64(mem) / float64(total)
	want := b.Spec().MemFrac
	if got < want-0.05 || got > want+0.05 {
		t.Errorf("mem fraction %.3f, spec %.3f", got, want)
	}
}

// Value profiles must actually deliver value locality: the fraction of
// zero words should track ZeroFrac, and pool values must repeat.
func TestValueProfileShape(t *testing.T) {
	b := mustBench(t, "bfs") // ZeroFrac 0.40
	zeros, total := 0, 0
	seen := map[uint32]int{}
	for a := geom.Addr(0); a < 1<<16; a += 4 {
		v := b.MemValue(a)
		total++
		if v == 0 {
			zeros++
		}
		seen[v&^0xf]++
	}
	zf := float64(zeros) / float64(total)
	spec := b.Spec().Values.ZeroFrac
	if zf < spec-0.05 || zf > spec+0.05 {
		t.Errorf("zero fraction %.3f, spec %.3f", zf, spec)
	}
	// Top non-zero masked value should repeat far beyond uniform chance.
	best := 0
	for v, n := range seen {
		if v != 0 && n > best {
			best = n
		}
	}
	if best < total/200 {
		t.Errorf("hot pool not visible: best repeat count %d of %d", best, total)
	}
}

// Graph patterns must be measurably less coalesced than streaming ones.
func TestPatternCoalescingContrast(t *testing.T) {
	sectorsOf := func(name string) float64 {
		b := mustBench(t, name)
		totalSectors, insts := 0, 0
		for w := 0; w < 32; w++ {
			for {
				inst, ok := b.Next(w)
				if !ok {
					break
				}
				if inst.Kind == gpusim.Compute {
					continue
				}
				uniq := map[geom.Addr]bool{}
				for _, a := range inst.Addrs {
					uniq[geom.SectorAddr(a)] = true
				}
				totalSectors += len(uniq)
				insts++
			}
		}
		return float64(totalSectors) / float64(insts)
	}
	stream := sectorsOf("pathfinder")
	graph := sectorsOf("bfs")
	if graph < 2*stream {
		t.Errorf("graph sectors/access %.2f should far exceed streaming %.2f", graph, stream)
	}
}

var _ gpusim.Workload = (*Bench)(nil)
