package workload

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
)

// TestSchemeOrderingEndToEnd is the end-to-end sanity sweep: bfs under
// the three headline schemes at the paper's 128 MiB-per-partition scale,
// checking the relative ordering the paper reports and the absence of
// false security alarms.
func TestSchemeOrderingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system integration run")
	}
	const protected = 128 << 20
	cycles := map[string]uint64{}
	meta := map[string]uint64{}
	for _, scheme := range []secmem.Config{
		secmem.Baseline(protected), secmem.PSSM(protected), secmem.Plutus(protected),
	} {
		b := MustGet("bfs")
		cfg := gpusim.ScaledConfig(scheme)
		cfg.Sec.ProtectedBytes = protected
		cfg.MaxInstructions = 20000
		g, err := gpusim.New(cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		st := g.Run()
		t.Logf("%-8s %6d inst %8d cycles IPC=%.3f meta=%6dKB value-verified=%d",
			scheme.Scheme, st.Instructions, st.Cycles, st.IPC(),
			st.Traffic.MetadataBytes()/1024, st.Sec.ValueVerified)
		if st.Sec.TamperDetected+st.Sec.ReplayDetected != 0 {
			t.Fatalf("false alarms under %s: %+v", scheme.Scheme, st.Sec)
		}
		cycles[scheme.Scheme] = st.Cycles
		meta[scheme.Scheme] = st.Traffic.MetadataBytes()
	}
	if cycles["pssm"] <= cycles["nosec"] {
		t.Error("PSSM should be slower than no-security")
	}
	if cycles["plutus"] >= cycles["pssm"] {
		t.Error("Plutus should be faster than PSSM")
	}
	if meta["plutus"] >= meta["pssm"] {
		t.Error("Plutus should move less metadata than PSSM")
	}
}
