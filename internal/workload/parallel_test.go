package workload

import (
	"fmt"
	"testing"

	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// runSuiteMode executes one (benchmark, scheme, seed) run on the scaled
// 8-partition GPU in the given execution mode.
func runSuiteMode(t *testing.T, bench string, sc secmem.Config, seed uint64, parallel bool) stats.Stats {
	t.Helper()
	wl, err := GetSeeded(bench, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpusim.ScaledConfig(sc)
	cfg.Sec.ProtectedBytes = 128 << 20
	cfg.MaxInstructions = 400
	cfg.ParallelPartitions = parallel
	g, err := gpusim.New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	return *g.Run()
}

// Parallel partition execution must be bit-identical to sequential mode
// across the whole benchmark suite: every workload, representative
// schemes, full stats equality (stats.Stats has only value fields, so ==
// is a field-for-field comparison — the figure tables derive from these
// fields alone).
func TestParallelDeterminismSuite(t *testing.T) {
	benches := Names()
	if testing.Short() {
		benches = benches[:3]
	}
	schemes := []secmem.Config{secmem.PSSM(0), secmem.Plutus(0)}
	for _, bench := range benches {
		for _, sc := range schemes {
			bench, sc := bench, sc
			t.Run(bench+"/"+sc.Scheme, func(t *testing.T) {
				seq := runSuiteMode(t, bench, sc, 1, false)
				par := runSuiteMode(t, bench, sc, 1, true)
				if seq != par {
					t.Fatalf("parallel diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
				}
			})
		}
	}
}

// The guarantee must hold across independent seeds and every scheme
// family, not just one lucky event interleaving.
func TestParallelDeterminismSeeds(t *testing.T) {
	schemes := []secmem.Config{
		secmem.Baseline(0),
		secmem.PSSM(0),
		secmem.Plutus(0),
		secmem.PlutusCompact(0, counters.Compact3BitAdaptive),
	}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range schemes {
		for _, seed := range seeds {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed%d", sc.Scheme, seed), func(t *testing.T) {
				seq := runSuiteMode(t, "bfs", sc, seed, false)
				par := runSuiteMode(t, "bfs", sc, seed, true)
				if seq != par {
					t.Fatalf("seed %d: parallel diverged from sequential:\nseq: %+v\npar: %+v", seed, seq, par)
				}
			})
		}
	}
}

// Distinct seeds must actually change the simulation — otherwise the
// seed sweep above proves nothing.
func TestSeedsProduceDistinctRuns(t *testing.T) {
	a := runSuiteMode(t, "bfs", secmem.PSSM(0), 1, false)
	b := runSuiteMode(t, "bfs", secmem.PSSM(0), 2, false)
	if a == b {
		t.Fatal("seeds 1 and 2 produced identical runs")
	}
}
