package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockAndSectorAddr(t *testing.T) {
	cases := []struct {
		a      Addr
		block  Addr
		sector Addr
		idx    int
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 0},
		{31, 0, 0, 0},
		{32, 0, 32, 1},
		{127, 0, 96, 3},
		{128, 128, 128, 0},
		{130, 128, 128, 0},
		{0x1000 + 65, 0x1000, 0x1000 + 64, 2},
	}
	for _, c := range cases {
		if got := BlockAddr(c.a); got != c.block {
			t.Errorf("BlockAddr(%#x) = %#x, want %#x", c.a, got, c.block)
		}
		if got := SectorAddr(c.a); got != c.sector {
			t.Errorf("SectorAddr(%#x) = %#x, want %#x", c.a, got, c.sector)
		}
		if got := SectorInBlock(c.a); got != c.idx {
			t.Errorf("SectorInBlock(%#x) = %d, want %d", c.a, got, c.idx)
		}
	}
}

func TestSectorMask(t *testing.T) {
	if AllSectors.Count() != 4 {
		t.Fatalf("AllSectors.Count() = %d, want 4", AllSectors.Count())
	}
	m := MaskFor(96)
	if !m.Has(3) || m.Count() != 1 {
		t.Errorf("MaskFor(96) = %04b, want sector 3 only", m)
	}
	var seen []int
	SectorMask(0b1010).Sectors(func(i int) { seen = append(seen, i) })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Errorf("Sectors(0b1010) visited %v, want [1 3]", seen)
	}
}

func TestNewInterleaverRejectsNonPowerOfTwo(t *testing.T) {
	for _, p := range []int{0, -1, 3, 6, 12, 33} {
		if _, err := NewInterleaver(p); err == nil {
			t.Errorf("NewInterleaver(%d) succeeded, want error", p)
		}
	}
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		if _, err := NewInterleaver(p); err != nil {
			t.Errorf("NewInterleaver(%d) failed: %v", p, err)
		}
	}
}

// Every partition must receive exactly one chunk out of each aligned group
// of P consecutive chunks: the interleave must be a bijection.
func TestInterleaverBijection(t *testing.T) {
	for _, parts := range []int{1, 2, 8, 32} {
		il := MustInterleaver(parts)
		for group := 0; group < 64; group++ {
			seen := make(map[int]bool)
			for i := 0; i < parts; i++ {
				a := Addr((group*parts + i) * InterleaveStride)
				p := il.Partition(a)
				if p < 0 || p >= parts {
					t.Fatalf("parts=%d: Partition(%#x) = %d out of range", parts, a, p)
				}
				if seen[p] {
					t.Fatalf("parts=%d group=%d: partition %d hit twice", parts, group, p)
				}
				seen[p] = true
			}
		}
	}
}

// LocalAddr must be dense per partition: consecutive chunks landing on the
// same partition get consecutive local chunk indices.
func TestLocalAddrDense(t *testing.T) {
	il := MustInterleaver(8)
	next := make(map[int]Addr)
	for chunk := 0; chunk < 4096; chunk++ {
		a := Addr(chunk * InterleaveStride)
		p := il.Partition(a)
		want := next[p]
		if got := il.LocalAddr(a); got != want {
			t.Fatalf("chunk %d on partition %d: LocalAddr = %#x, want %#x", chunk, p, got, want)
		}
		next[p] = want + InterleaveStride
	}
}

func TestGlobalAddrRoundTrip(t *testing.T) {
	il := MustInterleaver(32)
	f := func(raw uint32) bool {
		a := Addr(raw) % (1 << 30)
		p := il.Partition(a)
		return il.GlobalAddr(p, il.LocalAddr(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestPartitionPreservedWithinBlock(t *testing.T) {
	il := MustInterleaver(16)
	for base := Addr(0); base < 1<<16; base += BlockSize {
		p := il.Partition(base)
		for off := Addr(0); off < BlockSize; off++ {
			if il.Partition(base+off) != p {
				t.Fatalf("block %#x spans partitions", base)
			}
		}
	}
}
