// Package geom defines the address geometry of the simulated GPU memory
// system: cache blocks, sectors, the protected physical range, and the
// pseudo-random interleaving of addresses across memory partitions.
//
// The geometry follows the paper's Volta-based configuration: 128-byte
// cache blocks divided into four 32-byte sectors, with sectors being the
// unit of DRAM access, and a configurable number of memory partitions
// using pseudo-random (XOR-swizzled) interleaving. Following PSSM,
// security metadata is addressed with partition-local addresses, so the
// package also provides the global-to-local translation.
package geom

import "fmt"

const (
	// BlockSize is the cache-line size in bytes (L2 and metadata caches).
	BlockSize = 128
	// SectorSize is the DRAM access granularity in bytes.
	SectorSize = 32
	// SectorsPerBlock is the number of sectors per cache block.
	SectorsPerBlock = BlockSize / SectorSize
	// InterleaveStride is the number of consecutive bytes mapped to one
	// partition before moving to the next (two cache blocks, as in
	// GPGPU-Sim's default pseudo-random interleaving).
	InterleaveStride = 256
)

// Addr is a physical byte address in the simulated device memory.
type Addr uint64

// BlockAddr returns the address of the 128 B block containing a.
func BlockAddr(a Addr) Addr { return a &^ (BlockSize - 1) }

// SectorAddr returns the address of the 32 B sector containing a.
func SectorAddr(a Addr) Addr { return a &^ (SectorSize - 1) }

// SectorInBlock returns the index (0..3) of a's sector within its block.
func SectorInBlock(a Addr) int { return int(a%BlockSize) / SectorSize }

// SectorMask is a bitmask over the four sectors of a 128 B block.
type SectorMask uint8

// AllSectors selects every sector of a block.
const AllSectors SectorMask = 1<<SectorsPerBlock - 1

// MaskFor returns the mask selecting only a's sector.
func MaskFor(a Addr) SectorMask { return 1 << SectorInBlock(a) }

// Has reports whether sector i is selected.
func (m SectorMask) Has(i int) bool { return m&(1<<i) != 0 }

// Count returns the number of selected sectors.
func (m SectorMask) Count() int {
	n := 0
	for i := 0; i < SectorsPerBlock; i++ {
		if m.Has(i) {
			n++
		}
	}
	return n
}

// Sectors calls fn for each selected sector index.
func (m SectorMask) Sectors(fn func(i int)) {
	for i := 0; i < SectorsPerBlock; i++ {
		if m.Has(i) {
			fn(i)
		}
	}
}

// Interleaver maps global physical addresses to (partition, local address)
// pairs. Partition count must be a power of two; the mapping XOR-swizzles
// higher chunk-index bits into the partition selector so that strided
// access patterns spread across partitions (pseudo-random interleaving),
// while remaining a bijection: within any aligned group of P consecutive
// 256 B chunks, each partition receives exactly one chunk.
type Interleaver struct {
	parts int
	shift uint // log2(parts)
}

// NewInterleaver returns an Interleaver over parts partitions.
// parts must be a power of two and at least 1.
func NewInterleaver(parts int) (*Interleaver, error) {
	if parts < 1 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("geom: partition count %d is not a power of two", parts)
	}
	s := uint(0)
	for 1<<s < parts {
		s++
	}
	return &Interleaver{parts: parts, shift: s}, nil
}

// MustInterleaver is like NewInterleaver but panics on invalid input.
// It is intended for configuration literals.
func MustInterleaver(parts int) *Interleaver {
	il, err := NewInterleaver(parts)
	if err != nil {
		panic(err)
	}
	return il
}

// Partitions returns the number of memory partitions.
func (il *Interleaver) Partitions() int { return il.parts }

// Partition returns the memory partition serving address a.
func (il *Interleaver) Partition(a Addr) int {
	if il.parts == 1 {
		return 0
	}
	chunk := uint64(a) / InterleaveStride
	// Fold higher chunk-index bit groups into the selector. Because the
	// fold is an XOR with bits above the selector, the map from the low
	// log2(parts) chunk bits to partitions is a bijection for any fixed
	// upper bits.
	sel := chunk ^ (chunk >> il.shift) ^ (chunk >> (2 * il.shift)) ^ (chunk >> (3 * il.shift))
	return int(sel & uint64(il.parts-1))
}

// LocalAddr returns the partition-local address of a: the dense byte
// offset of a within its partition's slice of the address space. PSSM
// organizes all security metadata using these local addresses so that
// metadata for a partition's data always resides in the same partition.
func (il *Interleaver) LocalAddr(a Addr) Addr {
	chunk := uint64(a) / InterleaveStride
	off := uint64(a) % InterleaveStride
	return Addr((chunk>>il.shift)*InterleaveStride + off)
}

// GlobalAddr inverts LocalAddr for a given partition. It returns the
// global address whose (Partition, LocalAddr) is (part, local).
func (il *Interleaver) GlobalAddr(part int, local Addr) Addr {
	chunkLocal := uint64(local) / InterleaveStride
	off := uint64(local) % InterleaveStride
	upper := chunkLocal // bits above the selector
	// Reconstruct the low selector bits: sel = low ^ fold(upper), so
	// low = sel ^ fold(upper) where fold folds the upper groups.
	fold := upper ^ (upper >> il.shift) ^ (upper >> (2 * il.shift))
	low := (uint64(part) ^ fold) & uint64(il.parts-1)
	chunk := upper<<il.shift | low
	return Addr(chunk*InterleaveStride + off)
}
