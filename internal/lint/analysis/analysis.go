// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core API. The container this repository
// builds in has no module proxy access, so simlint (see
// internal/lint/simlint) carries its own framework: an Analyzer runs over
// one type-checked package and reports position-tagged diagnostics.
//
// The API shape deliberately mirrors x/tools so the analyzers could be
// ported to the official framework by changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's identifier: flag names, diagnostic prefixes
	// and //simlint:ignore directives all use it.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. It returns an error only for internal failures, not
	// for findings.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver fills it in; analyzers
	// normally use Reportf.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// IsBuiltin reports whether fun denotes the predeclared builtin name
// (append, make, ...), using info to reject shadowing declarations.
func IsBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// Info returns a types.Info with every map the analyzers consult
// allocated. Drivers must pass it (or an equivalent) to the type checker
// before constructing a Pass.
func Info() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
