package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

func f() {
	a() // trailing code comment, not a directive
	b() //simlint:ignore det known-benign wall clock
	//simlint:ignore det own-line guards next line
	c()
	d() //simlint:ignore det
	e() //simlint:ignore unknownname reason here
	g() //simlint:ignore all suppress every analyzer here
}
`

func TestSuppress(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"det": true}

	tf := fset.File(file.Pos())
	at := func(line int) token.Pos { return tf.LineStart(line) }

	// One "det" diagnostic per statement line.
	var diags []Diagnostic
	for _, line := range []int{4, 5, 7, 8, 9, 10} {
		diags = append(diags, Diagnostic{Pos: at(line), Analyzer: "det", Message: "finding"})
	}
	// And one from another analyzer on the "all"-suppressed line.
	diags = append(diags, Diagnostic{Pos: at(10), Analyzer: "other", Message: "other finding"})

	out := Suppress(fset, []*ast.File{file}, valid, diags)

	// Expected survivors, in position order:
	//   line 4: no directive            -> "det" finding survives
	//   line 5: trailing directive      -> suppressed
	//   line 7: own-line directive      -> suppressed
	//   line 8: malformed (no reason)   -> finding survives + malformed diag
	//   line 9: unknown analyzer        -> finding survives + unknown diag
	//   line 10: ignore all             -> both analyzers suppressed
	type want struct {
		line     int
		analyzer string
	}
	wants := []want{
		{4, "det"},
		{8, "det"},
		{8, "simlint"},
		{9, "det"},
		{9, "simlint"},
	}
	if len(out) != len(wants) {
		for _, d := range out {
			t.Logf("got %s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(out), len(wants))
	}
	for i, w := range wants {
		p := fset.Position(out[i].Pos)
		if p.Line != w.line || out[i].Analyzer != w.analyzer {
			t.Errorf("diag %d = line %d %s, want line %d %s", i, p.Line, out[i].Analyzer, w.line, w.analyzer)
		}
	}
}

const staleSrc = `package p

func f() {
	a() //simlint:ignore det suppresses a real finding
	b() //simlint:ignore det nothing to suppress here
	c() //simlint:ignore all nothing here either
}
`

// TestSuppressChecked: a directive that suppresses nothing is itself a
// finding under the unsuppressable pseudo-analyzer "unusedignore";
// plain Suppress stays silent about the same directives so that
// single-analyzer runs don't misreport other analyzers' directives.
func TestSuppressChecked(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", staleSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"det": true}
	tf := fset.File(file.Pos())
	diags := []Diagnostic{{Pos: tf.LineStart(4), Analyzer: "det", Message: "finding"}}

	if out := Suppress(fset, []*ast.File{file}, valid, diags); len(out) != 0 {
		t.Fatalf("Suppress: got %d diagnostics, want 0", len(out))
	}

	out := SuppressChecked(fset, []*ast.File{file}, valid, diags)
	if len(out) != 2 {
		for _, d := range out {
			t.Logf("got %s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		t.Fatalf("SuppressChecked: got %d diagnostics, want 2", len(out))
	}
	for i, wantLine := range []int{5, 6} {
		p := fset.Position(out[i].Pos)
		if out[i].Analyzer != "unusedignore" || p.Line != wantLine {
			t.Errorf("diag %d = line %d %s, want line %d unusedignore", i, p.Line, out[i].Analyzer, wantLine)
		}
	}
}
