package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectivePrefix introduces a suppression comment:
//
//	//simlint:ignore <analyzer> <reason>
//
// A trailing directive suppresses that analyzer's findings on its own
// line; a directive alone on a line suppresses findings on the next
// line. The reason is mandatory — an ignore without a stated reason is
// itself a finding — and <analyzer> must name a registered analyzer, or
// "all" to suppress every analyzer at that site.
const DirectivePrefix = "//simlint:ignore"

// directive is one parsed suppression comment.
type directive struct {
	pos      token.Pos
	analyzer string
	reason   string
	// line is the source line whose findings the directive suppresses.
	line int
	file string
}

// parseDirectives extracts every //simlint:ignore comment from file.
// Malformed directives (missing analyzer/reason, unknown analyzer) are
// returned as diagnostics attributed to the pseudo-analyzer "simlint";
// they cannot themselves be suppressed.
func parseDirectives(fset *token.FileSet, file *ast.File, valid map[string]bool) (dirs []directive, malformed []Diagnostic) {
	// Lines holding non-comment code: a directive on such a line is
	// trailing and applies to the same line; otherwise it applies to the
	// next line.
	codeLines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})

	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			pos := fset.Position(c.Pos())
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				// e.g. //simlint:ignoreXYZ — not ours.
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "simlint",
					Message:  "malformed directive: want \"//simlint:ignore <analyzer> <reason>\"",
				})
				continue
			}
			name := fields[0]
			if name != "all" && !valid[name] {
				malformed = append(malformed, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "simlint",
					Message:  "//simlint:ignore names unknown analyzer " + name,
				})
				continue
			}
			line := pos.Line
			if !codeLines[line] {
				line++ // own-line directive guards the next line
			}
			dirs = append(dirs, directive{
				pos:      c.Pos(),
				analyzer: name,
				reason:   strings.Join(fields[1:], " "),
				line:     line,
				file:     pos.Filename,
			})
		}
	}
	return dirs, malformed
}

// Suppress drops diagnostics covered by //simlint:ignore directives in
// files, appends diagnostics for malformed directives, and returns the
// result sorted by position. valid is the set of registered analyzer
// names used to validate directives.
func Suppress(fset *token.FileSet, files []*ast.File, valid map[string]bool, diags []Diagnostic) []Diagnostic {
	return suppress(fset, files, valid, diags, false)
}

// SuppressChecked is Suppress plus staleness enforcement: a directive
// that suppresses no diagnostic of the run is itself reported, under
// the pseudo-analyzer "unusedignore" (unsuppressable, like malformed
// directives). Only full-suite drivers use this variant — a
// single-analyzer run (analysistest, go vet with one -vettool check
// selected) would see every other analyzer's directives as stale.
func SuppressChecked(fset *token.FileSet, files []*ast.File, valid map[string]bool, diags []Diagnostic) []Diagnostic {
	return suppress(fset, files, valid, diags, true)
}

func suppress(fset *token.FileSet, files []*ast.File, valid map[string]bool, diags []Diagnostic, checkUnused bool) []Diagnostic {
	var dirs []directive
	var out []Diagnostic
	for _, f := range files {
		ds, bad := parseDirectives(fset, f, valid)
		dirs = append(dirs, ds...)
		out = append(out, bad...)
	}
	used := make([]bool, len(dirs))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for i, dir := range dirs {
			if dir.file == p.Filename && dir.line == p.Line &&
				(dir.analyzer == "all" || dir.analyzer == d.Analyzer) {
				suppressed = true
				used[i] = true
				// Keep scanning: a second directive on the same line
				// (e.g. "all" next to a named one) is also exercised.
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	if checkUnused {
		for i, dir := range dirs {
			if !used[i] {
				out = append(out, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "unusedignore",
					Message:  "//simlint:ignore " + dir.analyzer + " suppresses no diagnostic; the directive is stale — remove it",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
