// Package snapsym checks that checkpoint encoders and decoders agree.
//
// The PLUTSNAP codec has no schema: each type writes its fields in a
// fixed documented order and reads them back in the same order
// (DESIGN.md §8). Nothing ties the two method bodies together, so the
// classic checkpoint-drift bug — a field added to Snapshot but not
// Restore, or the two walking fields in different orders — only
// surfaces at runtime as ErrCorrupt, a trailing-bytes Finish failure,
// or a byte-diff in the SIGKILL-resume CI job, far from the offending
// line. snapsym closes that gap statically.
//
// For every struct type in a sim-critical package with a paired
// encoder/decoder method (Snapshot/Restore or Encode/Decode, detected
// by a *checkpoint.Encoder or *checkpoint.Decoder parameter), the
// analyzer extracts the sequence of receiver fields each body touches,
// in first-reference source order, and enforces:
//
//   - the fields referenced by both methods must appear in the same
//     relative order (a divergence is reported at the decoder's
//     out-of-order reference);
//   - a field the encoder references but the decoder never does is
//     reported at the field's declaration (encoded state that a restore
//     silently discards);
//   - a field referenced by neither method is reported at the field's
//     declaration (state that silently never reaches the snapshot).
//
// Fields only the decoder references are legal: restores may read
// configuration for cross-checks and rebuild derived state. Derived or
// transient fields that are deliberately not captured carry a
// `//simlint:ignore snapsym <reason>` directive on their declaration
// line, which doubles as in-source documentation of the exemption.
//
// The check is intraprocedural by design: helpers that serialize a
// whole sub-object (e.g. split.Snapshot called from the engine's
// Snapshot) appear as a reference to the corresponding field in both
// bodies, which is exactly the symmetry that matters at this level;
// each helper's own body is checked against its own receiver type.
package snapsym

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/scope"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "snapsym",
	Doc: "checkpoint encode/decode method pairs must reference the same receiver fields " +
		"in the same order; uncaptured fields need a //simlint:ignore snapsym reason",
	Run: run,
}

// verbPairs maps an encoder method name to its decoder counterpart.
var verbPairs = map[string]string{
	"Snapshot": "Restore",
	"snapshot": "restore",
	"Encode":   "Decode",
	"encode":   "decode",
}

// fieldRef is one receiver-field reference inside a method body.
type fieldRef struct {
	obj *types.Var
	pos token.Pos
}

// codecMethod is one method that takes a codec handle.
type codecMethod struct {
	decl *ast.FuncDecl
	recv *types.Named // receiver's named type (pointer stripped)
}

func run(pass *analysis.Pass) error {
	if !scope.SnapSym(pass.Pkg.Path()) {
		return nil
	}

	// Collect encoder and decoder methods, grouped by receiver type.
	encoders := map[*types.Named][]codecMethod{}
	decoders := map[*types.Named][]codecMethod{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil {
				continue
			}
			switch codecKind(pass, fd) {
			case "Encoder":
				encoders[named] = append(encoders[named], codecMethod{fd, named})
			case "Decoder":
				decoders[named] = append(decoders[named], codecMethod{fd, named})
			}
		}
	}

	// Pair and check, in stable (type name) order.
	var names []*types.Named
	for n := range encoders {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return names[i].Obj().Name() < names[j].Obj().Name()
	})
	for _, named := range names {
		for _, enc := range encoders[named] {
			dec := pairOf(enc, decoders[named])
			if dec == nil {
				continue
			}
			checkPair(pass, named, enc, *dec)
		}
	}
	return nil
}

// pairOf finds the decoder method paired with enc: the verb counterpart
// by name, or — when the type has exactly one of each — the sole
// decoder regardless of names.
func pairOf(enc codecMethod, decs []codecMethod) *codecMethod {
	want := verbPairs[enc.decl.Name.Name]
	for i := range decs {
		if decs[i].decl.Name.Name == want {
			return &decs[i]
		}
	}
	if want == "" && len(decs) == 1 {
		return &decs[0]
	}
	return nil
}

// receiverNamed resolves fd's receiver to its named struct type, or nil.
func receiverNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// codecKind reports whether fd takes a *checkpoint.Encoder ("Encoder"),
// a *checkpoint.Decoder ("Decoder"), or neither ("").
func codecKind(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, p := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[p.Type]
		if !ok {
			continue
		}
		if k := CodecTypeName(tv.Type); k != "" {
			return k
		}
	}
	return ""
}

// CodecTypeName reports whether t is (a pointer to) the checkpoint
// package's Encoder or Decoder, returning that name or "".
func CodecTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || scope.Norm(obj.Pkg().Path()) != "internal/checkpoint" {
		return ""
	}
	if n := obj.Name(); n == "Encoder" || n == "Decoder" {
		return n
	}
	return ""
}

// fieldSeq extracts the receiver fields referenced in fd's body, in
// first-reference source order. Only direct selections on the receiver
// identifier count (x.field, including inside closures); method values
// and promoted fields of embedded structs do not.
func fieldSeq(pass *analysis.Pass, fd *ast.FuncDecl) []fieldRef {
	recvIdent := receiverIdent(fd)
	if recvIdent == nil {
		return nil
	}
	recvObj := pass.TypesInfo.Defs[recvIdent]
	if recvObj == nil {
		return nil
	}
	seen := map[*types.Var]bool{}
	var seq []fieldRef
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recvObj {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal || len(s.Index()) != 1 {
			return true
		}
		f := s.Obj().(*types.Var)
		if !seen[f] {
			seen[f] = true
			seq = append(seq, fieldRef{obj: f, pos: sel.Sel.Pos()})
		}
		return true
	})
	return seq
}

func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return nil
	}
	return names[0]
}

func checkPair(pass *analysis.Pass, named *types.Named, enc, dec codecMethod) {
	encSeq := fieldSeq(pass, enc.decl)
	decSeq := fieldSeq(pass, dec.decl)
	inEnc := map[*types.Var]bool{}
	for _, r := range encSeq {
		inEnc[r.obj] = true
	}
	inDec := map[*types.Var]bool{}
	for _, r := range decSeq {
		inDec[r.obj] = true
	}
	tname := named.Obj().Name()
	encName := enc.decl.Name.Name
	decName := dec.decl.Name.Name

	// Order: the subsequences of fields common to both methods must
	// match; report the first divergence at the decoder's reference.
	var encCommon, decCommon []fieldRef
	for _, r := range encSeq {
		if inDec[r.obj] {
			encCommon = append(encCommon, r)
		}
	}
	for _, r := range decSeq {
		if inEnc[r.obj] {
			decCommon = append(decCommon, r)
		}
	}
	for i := 0; i < len(encCommon) && i < len(decCommon); i++ {
		if encCommon[i].obj != decCommon[i].obj {
			pass.Reportf(decCommon[i].pos,
				"%s.%s references field %s out of order: %s touches %s at this point in the sequence (encode and decode must walk common fields identically)",
				tname, decName, decCommon[i].obj.Name(), encName, encCommon[i].obj.Name())
			break
		}
	}

	// Omissions, reported at the field declaration so the exemption
	// directive lives next to the field it documents.
	st := named.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !declaredHere(pass, f) {
			continue
		}
		switch {
		case inEnc[f] && !inDec[f]:
			pass.Reportf(f.Pos(),
				"field %s.%s is written by %s but never read back by %s; a restore silently discards it",
				tname, f.Name(), encName, decName)
		case !inEnc[f] && !inDec[f]:
			pass.Reportf(f.Pos(),
				"field %s.%s is captured by neither %s nor %s; snapshot it or mark this declaration //simlint:ignore snapsym <why it is derived or transient>",
				tname, f.Name(), encName, decName)
		}
	}
}

// declaredHere reports whether f's declaration is inside one of the
// pass's files (augmented test units see the same struct twice; the
// position check keeps diagnostics inside the unit being analyzed).
func declaredHere(pass *analysis.Pass, f *types.Var) bool {
	p := f.Pos()
	for _, file := range pass.Files {
		if file.FileStart <= p && p < file.FileEnd {
			return true
		}
	}
	return false
}
