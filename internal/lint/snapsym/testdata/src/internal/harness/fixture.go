// Fixture: internal/harness is not sim-critical — no checkpointed
// simulation state lives here — so snapsym does not apply and even a
// blatantly asymmetric pair is left alone.
package harness

import "internal/checkpoint"

type runRecord struct {
	cycles uint64
	label  uint64
}

func (r *runRecord) Snapshot(enc *checkpoint.Encoder) error {
	enc.U64(r.cycles)
	enc.U64(r.label)
	return nil
}

func (r *runRecord) Restore(dec *checkpoint.Decoder) error {
	r.label = dec.U64()
	return dec.Err()
}
