// Fixture model of the real internal/checkpoint codec: just enough
// surface (Encoder/Decoder with fixed-width field methods and the
// sticky-error accessors) for snapsym fixtures to type-check under the
// package's real import path.
package checkpoint

type Encoder struct{ buf []byte }

func (e *Encoder) U8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) U32(v uint32) { e.buf = append(e.buf, byte(v)) }
func (e *Encoder) U64(v uint64) { e.buf = append(e.buf, byte(v)) }
func (e *Encoder) Bool(v bool)  { e.buf = append(e.buf, 0) }

type Decoder struct {
	buf []byte
	off int
	err error
}

func (d *Decoder) U8() uint8   { return 0 }
func (d *Decoder) U32() uint32 { return 0 }
func (d *Decoder) U64() uint64 { return 0 }
func (d *Decoder) Bool() bool  { return false }
func (d *Decoder) Err() error  { return d.err }
