// Fixture: checkpoint codec method pairs in a sim-critical package
// (modelled as internal/secmem). Covers the matched, reordered,
// omitted-field, and ignored-field cases, plus the shapes snapsym must
// deliberately tolerate: decoder-only configuration reads and derived
// state rebuilt on restore.
package secmem

import "internal/checkpoint"

type config struct{ groups uint32 }

// Matched is the sanctioned shape: both methods walk the same fields in
// the same order; the decoder may additionally read configuration for
// cross-checks, and transient scratch is exempted with a reasoned
// directive on its declaration.
type Matched struct {
	epoch   uint64
	dirty   uint32
	cfg     config
	scratch []byte //simlint:ignore snapsym per-request scratch, dead at quiescent snapshot points
}

func (m *Matched) Snapshot(enc *checkpoint.Encoder) error {
	enc.U64(m.epoch)
	enc.U32(m.dirty)
	return nil
}

func (m *Matched) Restore(dec *checkpoint.Decoder) error {
	if dec.U32() != m.cfg.groups { // decoder-only cfg read: legal
		return dec.Err()
	}
	m.epoch = dec.U64()
	m.dirty = dec.U32()
	return dec.Err()
}

// Reordered decodes fields in a different order than they were encoded:
// the restored values land in the wrong fields (or corrupt the stream
// when widths differ), so the first out-of-order decoder reference is
// flagged.
type Reordered struct {
	major uint64
	minor uint64
}

func (r *Reordered) Snapshot(enc *checkpoint.Encoder) error {
	enc.U64(r.major)
	enc.U64(r.minor)
	return nil
}

func (r *Reordered) Restore(dec *checkpoint.Decoder) error {
	r.minor = dec.U64() // want `Reordered\.Restore references field minor out of order: Snapshot touches major`
	r.major = dec.U64()
	return dec.Err()
}

// Omitted drops fields: state silently missing from the snapshot, and
// encoded state a restore silently discards. Both are reported at the
// field declaration, where the exemption directive would live.
type Omitted struct {
	kept    uint64
	dropped uint64 // want `field Omitted\.dropped is captured by neither Snapshot nor Restore`
	encOnly uint64 // want `field Omitted\.encOnly is written by Snapshot but never read back by Restore`
}

func (o *Omitted) Snapshot(enc *checkpoint.Encoder) error {
	enc.U64(o.kept)
	enc.U64(o.encOnly)
	return nil
}

func (o *Omitted) Restore(dec *checkpoint.Decoder) error {
	o.kept = dec.U64()
	return dec.Err()
}

// pair uses the lowercase verb pair and void returns; the check binds
// to the codec parameter types, not the signature shape.
type pair struct {
	a uint32
	b uint32
}

func (p *pair) encode(enc *checkpoint.Encoder) {
	enc.U32(p.a)
	enc.U32(p.b)
}

func (p *pair) decode(dec *checkpoint.Decoder) {
	p.b = dec.U32() // want `pair\.decode references field b out of order: encode touches a`
	p.a = dec.U32()
}

// Fallback has one encoder and one decoder method under unpaired names:
// the sole pair is matched positionally, and its closure-based walk is
// still seen (field references inside func literals count).
type Fallback struct {
	words []uint64
	n     uint32
}

func (f *Fallback) writeTo(enc *checkpoint.Encoder) {
	enc.U32(f.n)
	walk(func() {
		for _, w := range f.words {
			enc.U64(w)
		}
	})
}

func (f *Fallback) readFrom(dec *checkpoint.Decoder) {
	f.words = append(f.words[:0], dec.U64()) // want `Fallback\.readFrom references field words out of order: writeTo touches n`
	f.n = dec.U32()
}

func walk(fn func()) { fn() }
