package snapsym_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/snapsym"
)

// TestSimCritical exercises the four fixture cases in a sim-critical
// package: matched pairs (with decoder-only reads and a directive-
// exempted scratch field) stay clean; reordered decodes, dropped
// fields, and encode-only fields are flagged.
func TestSimCritical(t *testing.T) {
	analysistest.Run(t, snapsym.Analyzer, "internal/secmem")
}

// TestOutOfScope: packages without simulation state are not checked.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, snapsym.Analyzer, "internal/harness")
}
