// Fixture: dot imports strip the package qualifier, so the selector
// walk alone would let `import . "time"` smuggle wall-clock reads into
// a sim-critical package as bare calls. Resolution must go through the
// identifier's use object.
package harness

import (
	. "math/rand"
	. "time"
)

func dotClock() Duration {
	start := Now()      // want `dot-imported time.Now reads the host clock in sim-critical package internal/harness`
	Sleep(Millisecond)  // want `dot-imported time.Sleep reads the host clock in sim-critical package internal/harness`
	return Since(start) // want `dot-imported time.Since reads the host clock in sim-critical package internal/harness`
}

func dotGlobalRand() float64 {
	return Float64() // want `dot-imported global rand.Float64 draws from a process-seeded stream`
}

// dotSeeded builds an explicit generator: the dot-imported constructors
// are the same seeded ones the selector path allows, so no diagnostic.
func dotSeeded() *Rand {
	return New(NewSource(1))
}

// Pure time types and constants stay legal regardless of import style.
func dotPure(d Duration) Duration { return d * Second }
