// Fixture: crypto/rand under a dot import — every reference is flagged,
// same as the qualified form. (Separate file: dot-importing crypto/rand
// and math/rand in one file would collide on Int and Read.)
package harness

import . "crypto/rand"

func dotEntropy(buf []byte) error {
	_, err := Read(buf) // want `dot-imported crypto/rand is a hardware entropy source`
	return err
}
