package gpusim

import (
	"math/rand"
	"testing/quick"
)

func quickChecks() {
	f := func(x uint32) bool { return x == x }
	_ = quick.Check(f, nil)           // want `quick\.Check with a nil config seeds its generator from the wall clock`
	_ = quick.Check(f, &quick.Config{ // want `config has no Rand field`
		MaxCount: 100,
	})

	// Seeded: clean.
	_ = quick.Check(f, &quick.Config{
		MaxCount: 100,
		Rand:     rand.New(rand.NewSource(7)),
	})
}
