// Fixture: sim-critical package (path matches internal/gpusim), so every
// wall-clock and entropy source must be flagged.
package gpusim

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func clocks() {
	_ = time.Now()               // want `time\.Now reads the host clock`
	t := time.Now()              // want `time\.Now reads the host clock`
	_ = time.Since(t)            // want `time\.Since reads the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host clock`
	_ = time.After(time.Second)  // want `time\.After reads the host clock`

	// Pure duration arithmetic never observes the clock: clean.
	d := 5 * time.Second
	_ = d.Seconds()
	_ = time.Duration(42)
}

func entropy() {
	_ = rand.Intn(10)    // want `global rand\.Intn draws from a process-seeded stream`
	_ = rand.Uint64()    // want `global rand\.Uint64 draws from a process-seeded stream`
	rand.Shuffle(3, nil) // want `global rand\.Shuffle draws from a process-seeded stream`
	var b [8]byte
	_, _ = crand.Read(b[:]) // want `crypto/rand is a hardware entropy source`

	// The sanctioned path — a seeded generator — is clean.
	rng := rand.New(rand.NewSource(42))
	_ = rng.Intn(10)
	_ = rng.Uint64()
}

func suppressed() {
	_ = time.Now() //simlint:ignore detrand profiling hook, result never reaches sim state
	//simlint:ignore detrand own-line directive guards the next line
	_ = time.Now()
}

func badDirectives() {
	_ = time.Since(time.Now()) //simlint:ignore detrand
	// want `time\.Since reads the host clock` `time\.Now reads the host clock` `malformed directive`
	_ = rand.Int() //simlint:ignore nosuchanalyzer because
	// want `global rand\.Int draws` `unknown analyzer nosuchanalyzer`
}
