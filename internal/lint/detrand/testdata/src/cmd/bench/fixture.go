// Fixture: cmd/ packages report elapsed wall time by design, so detrand
// is out of scope here and nothing may be flagged.
package bench

import (
	"math/rand"
	"time"
)

func timing() time.Duration {
	start := time.Now()
	_ = rand.Intn(10)
	return time.Since(start)
}
