// Package detrand forbids wall-clock and process-entropy sources in
// sim-critical packages.
//
// Simulated time is sim.Cycle, advanced only by the event engine; any
// read of host time (time.Now, time.Since, timers) or of an unseeded
// random stream (the global math/rand functions, crypto/rand,
// testing/quick's default generator) makes a run depend on when and
// where it executed, silently breaking the bit-identical parallel ==
// sequential contract that PR 1's test matrix enforces. Randomness used
// by workload generators must come from a seeded *rand.Rand plumbed out
// of the configuration.
package detrand

import (
	"go/ast"
	"go/types"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/scope"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads and unseeded randomness in sim-critical packages; " +
		"simulated time is sim.Cycle and randomness must be a seeded *rand.Rand from config",
	Run: run,
}

// clockFuncs are the time package functions that observe or depend on
// the host clock. Pure types and constructors of constants
// (time.Duration arithmetic, time.Unix on a fixed stamp) stay legal.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// seededConstructors are the math/rand and math/rand/v2 package-level
// functions that *build* generators rather than draw from the implicit
// global one. Everything else at package scope draws from a stream
// seeded off process entropy.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !scope.DetRand(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// qualified marks the Sel idents of selector expressions already
		// handled by checkSelector, so the bare-identifier walk below only
		// sees names brought in by dot imports. Inspect is pre-order, so a
		// selector is always recorded before its Sel ident is visited.
		qualified := make(map[*ast.Ident]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				qualified[n.Sel] = true
				checkSelector(pass, n)
			case *ast.Ident:
				if !qualified[n] {
					checkDotIdent(pass, n)
				}
			case *ast.CallExpr:
				checkQuick(pass, n)
			}
			return true
		})
	}
	return nil
}

// pkgOf resolves sel's qualifier to an imported package, or nil.
func pkgOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	pkg := pkgOf(pass, sel)
	if pkg == nil {
		return
	}
	name := sel.Sel.Name
	switch pkg.Path() {
	case "time":
		if clockFuncs[name] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the host clock in sim-critical package %s; simulated time is sim.Cycle (engine.Now())",
				name, scope.Norm(pass.Pkg.Path()))
		}
	case "math/rand", "math/rand/v2":
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return // types like rand.Rand, rand.Source
		}
		if seededConstructors[name] {
			return
		}
		pass.Reportf(sel.Pos(),
			"global %s.%s draws from a process-seeded stream; plumb a seeded *rand.Rand (rand.New(rand.NewSource(seed))) from config",
			pkg.Name(), name)
	case "crypto/rand":
		pass.Reportf(sel.Pos(),
			"crypto/rand is a hardware entropy source; sim-critical code must use a seeded *rand.Rand from config")
	}
}

// checkDotIdent flags bare identifiers that resolve into the forbidden
// packages — the dot-import gap: `import . "time"` makes Now() a plain
// call that never forms a SelectorExpr, so resolution must go through
// the identifier's use object instead of an import qualifier.
func checkDotIdent(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if _, isFunc := obj.(*types.Func); isFunc && clockFuncs[id.Name] {
			pass.Reportf(id.Pos(),
				"dot-imported time.%s reads the host clock in sim-critical package %s; simulated time is sim.Cycle (engine.Now())",
				id.Name, scope.Norm(pass.Pkg.Path()))
		}
	case "math/rand", "math/rand/v2":
		if _, isFunc := obj.(*types.Func); isFunc && !seededConstructors[id.Name] {
			pass.Reportf(id.Pos(),
				"dot-imported global %s.%s draws from a process-seeded stream; plumb a seeded *rand.Rand (rand.New(rand.NewSource(seed))) from config",
				obj.Pkg().Name(), id.Name)
		}
	case "crypto/rand":
		pass.Reportf(id.Pos(),
			"dot-imported crypto/rand is a hardware entropy source; sim-critical code must use a seeded *rand.Rand from config")
	}
}

// checkQuick flags testing/quick calls that fall back to quick's
// default wall-clock-seeded generator: a nil config or a config literal
// without an explicit Rand.
func checkQuick(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "testing/quick" {
		return
	}
	if fn.Name() != "Check" && fn.Name() != "CheckEqual" {
		return
	}
	cfg := call.Args[len(call.Args)-1]
	switch cfg := cfg.(type) {
	case *ast.Ident:
		if cfg.Name == "nil" {
			pass.Reportf(call.Pos(),
				"quick.%s with a nil config seeds its generator from the wall clock; pass &quick.Config{Rand: rand.New(rand.NewSource(seed))}",
				fn.Name())
		}
	case *ast.UnaryExpr:
		lit, ok := cfg.X.(*ast.CompositeLit)
		if !ok {
			return
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Rand" {
					return
				}
			}
		}
		pass.Reportf(call.Pos(),
			"quick.%s config has no Rand field, so quick seeds its generator from the wall clock; set Rand: rand.New(rand.NewSource(seed))",
			fn.Name())
	}
}
