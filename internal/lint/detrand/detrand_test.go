package detrand_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/detrand"
)

// TestSimCritical runs the analyzer over a fixture whose import path
// places it inside the sim-critical set: clock reads, global math/rand,
// crypto/rand and unseeded quick.Check must all be flagged, and the
// //simlint:ignore escape hatch must suppress (well-formed directives
// only).
func TestSimCritical(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "internal/gpusim")
}

// TestOutOfScope runs the same analyzer over a cmd/ fixture, where
// elapsed-time reporting is the package's purpose: zero findings.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "cmd/bench")
}
