package detrand_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/detrand"
)

// TestSimCritical runs the analyzer over a fixture whose import path
// places it inside the sim-critical set: clock reads, global math/rand,
// crypto/rand and unseeded quick.Check must all be flagged, and the
// //simlint:ignore escape hatch must suppress (well-formed directives
// only).
func TestSimCritical(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "internal/gpusim")
}

// TestOutOfScope runs the same analyzer over a cmd/ fixture, where
// elapsed-time reporting is the package's purpose: zero findings.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "cmd/bench")
}

// TestDotImports covers the dot-import gap: `import . "time"` turns
// Now() into a bare identifier that the selector walk never sees, so
// the analyzer resolves identifiers through their use objects. Seeded
// constructors and pure types stay legal under dot import too.
func TestDotImports(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "internal/harness")
}
