// Package unitchecker implements the driver protocol that `go vet
// -vettool` speaks to an analysis tool.
//
// cmd/go invokes the tool once per package ("unit") with a single
// argument, the path to a JSON config file describing the unit: its
// source files, the import map, and the export-data file for every
// dependency (already compiled into the build cache). We parse the
// files, type-check against that export data with the gc importer,
// run the suite, and exit 2 if any diagnostic survives suppression —
// which cmd/go reports as a vet failure. A facts file (VetxOutput)
// must be written even though this suite exchanges no facts; cmd/go
// treats its absence as a tool crash.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
)

// Config mirrors the JSON schema cmd/go writes for vet tools.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run executes the suite over the unit described by cfgFile and exits
// the process with the vet protocol's status code: 0 clean, 1 tool
// error, 2 diagnostics reported.
func Run(cfgFile string, analyzers []*analysis.Analyzer, names map[string]bool) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags, err := run(cfg, analyzers, names)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parse vet config %s: %v", path, err)
	}
	return cfg, nil
}

func run(cfg *Config, analyzers []*analysis.Analyzer, names map[string]bool) ([]string, error) {
	// cmd/go demands the facts file exist even when empty; write it
	// first so an analysis crash still leaves a valid (empty) output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: cmd/go only wants facts, and we have none.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, f := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	var out []string
	// The full suite runs here, so suppression is checked: stale
	// //simlint:ignore directives are themselves diagnostics.
	for _, d := range analysis.SuppressChecked(fset, files, names, diags) {
		out = append(out, fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer))
	}
	return out, nil
}
