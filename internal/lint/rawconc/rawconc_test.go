package rawconc_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/rawconc"
)

// TestSimCriticalFlagged: raw goroutines and channel operations in a
// sim-critical package (modelled as internal/secmem) are all flagged,
// with the //simlint:ignore escape hatch honored.
func TestSimCriticalFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/secmem")
}

// TestSimItselfClean: internal/sim owns the mailbox machinery and may
// use raw concurrency freely.
func TestSimItselfClean(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/sim")
}

// TestHarnessClean: the harness is orchestration, not simulation state,
// and is out of rawconc's scope.
func TestHarnessClean(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/harness")
}
