package rawconc_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/rawconc"
)

// TestSimCriticalFlagged: raw goroutines and channel operations in a
// sim-critical package (modelled as internal/secmem) are all flagged,
// with the //simlint:ignore escape hatch honored.
func TestSimCriticalFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/secmem")
}

// TestSimItselfClean: internal/sim owns the mailbox machinery and may
// use raw concurrency freely.
func TestSimItselfClean(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/sim")
}

// TestHarnessClean: the harness is orchestration, not simulation state,
// and is on the allowlist.
func TestHarnessClean(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/harness")
}

// TestServerAllowed: the plutusd serving tree is allowlisted — its
// queue, worker pool, and SSE fan-out are network-service concurrency
// with no simulation state, so none of its primitives are flagged.
func TestServerAllowed(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/server")
}

// TestClusterAllowed: the sweep-fabric coordinator is allowlisted — its
// lease races, steal fan-out, and heartbeat collection are network
// orchestration with no simulation state, so none of its primitives are
// flagged.
func TestClusterAllowed(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/cluster")
}

// TestCastoreFlagged: the content-addressed result store arbitrates
// byte-identity and stays off the allowlist even though it sits beside
// the allowlisted internal/cluster — it synchronizes with a mutex
// (legal everywhere) and any raw goroutine or channel is flagged.
func TestCastoreFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/castore")
}

// TestCommandFlagged: under the module-wide default-deny scope, a cmd/
// package off the allowlist is still flagged — commands parallelize
// through the harness, not with their own goroutines.
func TestCommandFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "cmd/experiments")
}

// TestCheckpointFlagged: the snapshot codec stays single-threaded — a
// concurrent walk of engine state could serialize a torn snapshot — so
// internal/checkpoint is deliberately off the allowlist and its raw
// primitives are flagged.
func TestCheckpointFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/checkpoint")
}

// TestDenseFlagged: the dense paged stores back per-shard simulation
// state and must stay single-threaded — a "parallel page fill" would
// race with the event loop — so internal/dense is sim-critical and its
// raw primitives are flagged.
func TestDenseFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/dense")
}

// TestProfFlagged: profiling hooks run inside simulating processes; a
// background flush goroutine would perturb event order, so internal/prof
// is off the allowlist.
func TestProfFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/prof")
}

// TestTamperFlagged: fault injection is timed in simulated cycles and
// diffed against golden oracles; a parallel injection sweep would
// decouple fault timing from simulated time.
func TestTamperFlagged(t *testing.T) {
	analysistest.Run(t, rawconc.Analyzer, "internal/tamper")
}
