// Fixture: internal/tamper injects faults at exact cycles and compares
// runs against a golden oracle, so the injector must execute on the
// shard's own goroutine — a "parallel injection sweep" would decouple
// fault timing from simulated time. The package is sim-critical and off
// the rawconc allowlist.
package tamper

type injection struct {
	cycle uint64
	addr  uint64
}

func parallelSweep(injs []injection, apply func(injection) bool) int {
	results := make(chan bool) // want `make\(chan\) in determinism-scoped package internal/tamper`
	for _, inj := range injs {
		inj := inj
		go func() { // want `go statement in determinism-scoped package internal/tamper`
			results <- apply(inj) // want `raw channel send in determinism-scoped package internal/tamper`
		}()
	}
	detected := 0
	for range injs {
		select { // want `select statement in determinism-scoped package internal/tamper`
		case ok := <-results: // want `raw channel receive in determinism-scoped package internal/tamper`
			if ok {
				detected++
			}
		}
	}
	return detected
}
