// Fixture: sim-critical package outside internal/sim — every raw
// concurrency primitive must be flagged.
package secmem

func concurrency() {
	ch := make(chan int, 1) // want `make\(chan\) in sim-critical package internal/secmem`
	go func() {             // want `go statement in sim-critical package internal/secmem`
		ch <- 1 // want `raw channel send in sim-critical package internal/secmem`
	}()
	_ = <-ch // want `raw channel receive in sim-critical package internal/secmem`

	select { // want `select statement in sim-critical package internal/secmem`
	case v := <-ch: // want `raw channel receive in sim-critical package internal/secmem`
		_ = v
	default:
	}
}

func drain(ch chan uint64) uint64 {
	var sum uint64
	for v := range ch { // want `range over a channel in sim-critical package internal/secmem`
		sum += v
	}
	return sum
}

func suppressed(done chan struct{}) {
	<-done //simlint:ignore rawconc test-only shutdown latch, not sim traffic
}
