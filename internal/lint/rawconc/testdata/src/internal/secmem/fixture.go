// Fixture: determinism-scoped package (not on the rawconc allowlist) — every raw
// concurrency primitive must be flagged.
package secmem

func concurrency() {
	ch := make(chan int, 1) // want `make\(chan\) in determinism-scoped package internal/secmem`
	go func() {             // want `go statement in determinism-scoped package internal/secmem`
		ch <- 1 // want `raw channel send in determinism-scoped package internal/secmem`
	}()
	_ = <-ch // want `raw channel receive in determinism-scoped package internal/secmem`

	select { // want `select statement in determinism-scoped package internal/secmem`
	case v := <-ch: // want `raw channel receive in determinism-scoped package internal/secmem`
		_ = v
	default:
	}
}

func drain(ch chan uint64) uint64 {
	var sum uint64
	for v := range ch { // want `range over a channel in determinism-scoped package internal/secmem`
		sum += v
	}
	return sum
}

func suppressed(done chan struct{}) {
	<-done //simlint:ignore rawconc test-only shutdown latch, not sim traffic
}
