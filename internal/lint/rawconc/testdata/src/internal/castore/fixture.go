// Fixture: internal/castore is deliberately OFF the rawconc allowlist
// even though it sits beside the allowlisted internal/cluster — the
// content-addressed store arbitrates byte-identity (divergence
// detection, index persistence) and must stay free of raw concurrency;
// a background persist goroutine could interleave index.jsonl records
// with a divergence check. It synchronizes with a plain mutex instead,
// which rawconc permits everywhere.
package castore

func parallelVerify(digests []string) []string {
	bad := make(chan string, len(digests)) // want `make\(chan\) in determinism-scoped package internal/castore`
	for _, d := range digests {
		d := d
		go func() { // want `go statement in determinism-scoped package internal/castore`
			bad <- d // want `raw channel send in determinism-scoped package internal/castore`
		}()
	}
	var out []string
	for range digests {
		out = append(out, <-bad) // want `raw channel receive in determinism-scoped package internal/castore`
	}
	return out
}

func suppressed(done chan struct{}) {
	<-done //simlint:ignore rawconc test-only completion latch, no index records flow here
}
