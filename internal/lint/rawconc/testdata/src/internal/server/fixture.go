// Fixture: internal/server is on the rawconc allowlist — a worker pool
// and bounded queue are the daemon's job, and no simulation state lives
// here. Every primitive below must pass without a diagnostic.
package server

func workerPool() {
	queue := make(chan int, 4)
	done := make(chan struct{})
	go func() {
		for v := range queue {
			_ = v
		}
		close(done)
	}()
	queue <- 1
	close(queue)
	select {
	case <-done:
	default:
	}
	<-done
}
