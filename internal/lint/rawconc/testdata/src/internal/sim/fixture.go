// Fixture: internal/sim owns the sanctioned mailbox machinery, so raw
// concurrency here is legal — zero findings.
package sim

func workers(n int) {
	start := make(chan uint64, 1)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			for h := range start {
				_ = h
			}
			done <- struct{}{}
		}()
	}
	close(start)
	<-done
}
