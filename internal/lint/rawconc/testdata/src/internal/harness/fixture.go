// Fixture: the harness fans out independent runs and is not
// sim-critical, so rawconc does not apply — zero findings.
package harness

func fanOut(jobs []func()) {
	sem := make(chan struct{}, 4)
	for _, j := range jobs {
		sem <- struct{}{}
		go func(fn func()) {
			defer func() { <-sem }()
			fn()
		}(j)
	}
}
