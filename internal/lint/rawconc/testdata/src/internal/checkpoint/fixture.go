// Fixture: internal/checkpoint is sim-critical and not on the rawconc
// allowlist — snapshot encode/restore must stay single-threaded (a
// concurrent walk of engine state could serialize a torn snapshot), so
// every raw concurrency primitive is flagged.
package checkpoint

func parallelEncode(sections [][]byte) []byte {
	done := make(chan []byte, len(sections)) // want `make\(chan\) in determinism-scoped package internal/checkpoint`
	for _, s := range sections {
		s := s
		go func() { // want `go statement in determinism-scoped package internal/checkpoint`
			done <- s // want `raw channel send in determinism-scoped package internal/checkpoint`
		}()
	}
	var out []byte
	for range sections {
		out = append(out, <-done...) // want `raw channel receive in determinism-scoped package internal/checkpoint`
	}
	return out
}

func suppressed(done chan struct{}) {
	<-done //simlint:ignore rawconc test-only completion latch, no snapshot bytes flow here
}
