// Fixture: internal/dense backs DRAM images, counters, and cache state
// on the hot path and is NOT on the rawconc allowlist — pooled stores
// must stay single-threaded per shard, so any raw concurrency primitive
// reaching for "faster" page filling must be flagged.
package dense

func parallelFill(pages [][]uint64) {
	done := make(chan int) // want `make\(chan\) in determinism-scoped package internal/dense`
	for i := range pages {
		i := i
		go func() { // want `go statement in determinism-scoped package internal/dense`
			for j := range pages[i] {
				pages[i][j] = 0
			}
			done <- i // want `raw channel send in determinism-scoped package internal/dense`
		}()
	}
	for range pages {
		<-done // want `raw channel receive in determinism-scoped package internal/dense`
	}
}
