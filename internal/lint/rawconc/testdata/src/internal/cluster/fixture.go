// Fixture: internal/cluster is on the rawconc allowlist — the
// coordinator's leases, steals, and heartbeats are network
// orchestration over plutusd's HTTP API, and no simulation state lives
// here. Every primitive below must pass without a diagnostic.
package cluster

func stealRace() {
	primary := make(chan []byte, 1)
	secondary := make(chan []byte, 1)
	go func() {
		primary <- []byte("result")
	}()
	go func() {
		secondary <- []byte("result")
	}()
	select {
	case r := <-primary:
		_ = r
	case r := <-secondary:
		_ = r
	}
}

func heartbeatFanIn(workers []string) {
	beats := make(chan string)
	for _, w := range workers {
		w := w
		go func() {
			beats <- w
		}()
	}
	for range workers {
		<-beats
	}
	close(beats)
}
