// Fixture: internal/prof's hooks run inside simulating processes, so a
// background flush goroutine or a channel-fed aggregator would let the
// profiler perturb event order. The package is deliberately off the
// rawconc allowlist.
package prof

type sample struct {
	at    uint64
	value uint64
}

func backgroundFlush(samples []sample, sink func(sample)) {
	feed := make(chan sample, len(samples)) // want `make\(chan\) in determinism-scoped package internal/prof`
	go func() {                             // want `go statement in determinism-scoped package internal/prof`
		for s := range feed { // want `range over a channel in determinism-scoped package internal/prof`
			sink(s)
		}
	}()
	for _, s := range samples {
		feed <- s // want `raw channel send in determinism-scoped package internal/prof`
	}
	close(feed)
}
