// Fixture: cmd/experiments is NOT on the rawconc allowlist. Under the
// module-wide default-deny scope, a command that wants to parallelize
// must go through the harness (whose fan-out is allowlisted) rather
// than spawning its own goroutines around simulation results.
package experiments

func fanOut(results []float64) {
	ch := make(chan float64, len(results)) // want `make\(chan\) in determinism-scoped package cmd/experiments`
	for _, r := range results {
		go func(v float64) { // want `go statement in determinism-scoped package cmd/experiments`
			ch <- v // want `raw channel send in determinism-scoped package cmd/experiments`
		}(r)
	}
}
