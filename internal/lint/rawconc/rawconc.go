// Package rawconc forbids raw concurrency — go statements and channel
// operations — everywhere in the module except an explicit allowlist
// (see scope.RawConc): internal/sim's mailbox machinery, the harness's
// run fan-out, the plutusd serving tree, the cluster coordinator and
// its CLI (leases, steals and heartbeats are network orchestration
// over finished, content-addressed results — note the result store
// itself, internal/castore, stays denied), and — least-privilege
// within the lint tree itself — only the package loader and the suite
// runner, whose fan-out is embarrassingly parallel over independent
// packages.
//
// PR 1's determinism proof rests on a single discipline: every
// cross-shard interaction is a cycle-stamped message delivered through
// internal/sim's mailboxes at conservative lookahead barriers. A bare
// goroutine or channel anywhere else that can reach simulation state
// reintroduces scheduler-dependent ordering that no seed matrix can
// reliably catch. Model code requests cross-partition work via
// sim.Shard.Send; packages whose concurrency never touches simulation
// state (the daemon's queue and worker pool) are allowed by name, so
// the default for a new package is deny.
package rawconc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/scope"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "rawconc",
	Doc: "forbid go statements and raw channel operations outside the allowlisted packages " +
		"(internal/sim, internal/harness, internal/server, internal/cluster, cmd/plutusd, cmd/plutusctl, " +
		"internal/lint/loader, internal/lint/simlint); cross-shard traffic must use the cycle-stamped mailbox path (sim.Shard.Send)",
	Run: run,
}

const redirect = "route cross-shard work through sim.Shard.Send / sim.Cluster instead"

func run(pass *analysis.Pass) error {
	if !scope.RawConc(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in determinism-scoped package %s spawns an unscheduled goroutine; %s",
					scope.Norm(pass.Pkg.Path()), redirect)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "raw channel send in determinism-scoped package %s; %s",
					scope.Norm(pass.Pkg.Path()), redirect)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "raw channel receive in determinism-scoped package %s; %s",
						scope.Norm(pass.Pkg.Path()), redirect)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in determinism-scoped package %s; %s",
					scope.Norm(pass.Pkg.Path()), redirect)
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over a channel in determinism-scoped package %s; %s",
							scope.Norm(pass.Pkg.Path()), redirect)
					}
				}
			case *ast.CallExpr:
				if analysis.IsBuiltin(pass.TypesInfo, n.Fun, "make") && len(n.Args) > 0 {
					if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							pass.Reportf(n.Pos(), "make(chan) in determinism-scoped package %s; %s",
								scope.Norm(pass.Pkg.Path()), redirect)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
