// Fixture model of the real internal/checkpoint codec surface used by
// the stickyerr fixtures: Encoder/Decoder handles plus error-returning
// helpers in the shapes the real snapshot code uses.
package checkpoint

import "errors"

var ErrCorrupt = errors.New("corrupt")

type Encoder struct{ buf []byte }

func (e *Encoder) U64(v uint64) { e.buf = append(e.buf, byte(v)) }
func (e *Encoder) U32(v uint32) { e.buf = append(e.buf, byte(v)) }

type Decoder struct {
	off int
	err error
}

func (d *Decoder) U64() uint64 { return 0 }
func (d *Decoder) U32() uint32 { return 0 }
func (d *Decoder) Err() error  { return d.err }
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	return nil
}
