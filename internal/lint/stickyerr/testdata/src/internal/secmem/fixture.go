// Fixture: sticky-error discipline in codec functions of a sim-critical
// package. Covers dropped, shadowed, overwritten, never-checked, and
// clean cases; functions that never touch a codec value are out of
// scope even when they drop errors.
package secmem

import (
	"bytes"

	"internal/checkpoint"
)

type store struct {
	a, b uint64
}

func (s *store) snapshotPiece(enc *checkpoint.Encoder) error {
	enc.U64(s.a)
	return nil
}

func (s *store) restorePiece(dec *checkpoint.Decoder) error {
	s.a = dec.U64()
	return dec.Err()
}

// dropped: the sub-object's Snapshot error vanishes — exactly the bug
// class where a torn snapshot encodes "successfully".
func (s *store) Snapshot(enc *checkpoint.Encoder) error {
	s.snapshotPiece(enc) // want `error returned by s\.snapshotPiece is dropped`
	enc.U64(s.b)
	return nil
}

// blankDiscard: explicitly discarding the error is the same bug with a
// fig leaf.
func (s *store) blankDiscard(dec *checkpoint.Decoder) error {
	_ = dec.Finish() // want `error result discarded with _`
	return nil
}

// shadowed: the inner := hides an error that nobody has checked yet;
// the outer value is dead the moment the shadow appears.
func (s *store) shadowed(dec *checkpoint.Decoder) error {
	err := dec.Finish()
	if s.a != 0 {
		err := s.restorePiece(dec) // want `err shadows an error that has not been checked yet`
		if err != nil {
			return err
		}
	}
	return err
}

// overwritten: a straight-line reassignment with no check in between
// loses the first error.
func (s *store) overwritten(dec *checkpoint.Decoder) error {
	err := s.restorePiece(dec)
	err = dec.Finish() // want `error err is overwritten before it is checked`
	return err
}

// neverChecked: assigned, then silenced with a blank discard — the
// compiler is happy, the error is still never looked at.
func (s *store) neverChecked(dec *checkpoint.Decoder) uint64 {
	err := dec.Finish() // want `error err is assigned but never checked`
	_ = err
	s.a = dec.U64()
	return s.a
}

// checked is the sanctioned shape: run straight through, check once;
// re-assignment after a check is fine, as is the if-init idiom.
func (s *store) checked(dec *checkpoint.Decoder) error {
	err := s.restorePiece(dec)
	if err != nil {
		return err
	}
	err = dec.Finish()
	if err != nil {
		return err
	}
	if err := dec.Err(); err != nil {
		return err
	}
	return nil
}

// suppressedDrop proves the escape hatch: a reasoned directive keeps a
// deliberate drop.
func (s *store) suppressedDrop(enc *checkpoint.Encoder) {
	s.snapshotPiece(enc) //simlint:ignore stickyerr fixture-only: best-effort debug dump, failure is acceptable
}

// infallible: bytes.Buffer writes are documented to always succeed, so
// dropping their error results is exempt even in a codec function.
func (s *store) infallible(enc *checkpoint.Encoder) {
	var buf bytes.Buffer
	buf.WriteByte(1)
	buf.Write([]byte{2, 3})
	enc.U64(uint64(buf.Len()))
}

// notCodec never touches a codec value, so the dropped error here is
// another analyzer's business (errcheck-style linting module-wide is
// out of scope).
func (s *store) notCodec() {
	s.plainErr()
}

func (s *store) plainErr() error { return nil }
