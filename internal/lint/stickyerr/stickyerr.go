// Package stickyerr enforces the codec's sticky-error discipline.
//
// The PLUTSNAP decoder makes errors sticky — after the first failed
// read every subsequent read returns zero — precisely so a decode body
// can run straight through and check Err/Finish once. That contract
// collapses if an error value is dropped on the floor, overwritten
// before anyone looks at it, or shadowed by an inner declaration while
// still unchecked: the decode "succeeds", state is half-restored, and
// the corruption surfaces far away (if at all). The same applies on the
// encode side, where Snapshot methods return errors that gate whether
// the snapshot bytes are usable.
//
// The analyzer applies to codec functions in sim-critical packages —
// functions whose parameters or body touch a checkpoint.Encoder or
// checkpoint.Decoder — and flags:
//
//   - a call whose error result is dropped (an expression statement,
//     or an error assigned to the blank identifier);
//   - an error variable overwritten by a straight-line later statement
//     in the same block with no intervening check;
//   - a declaration that shadows an error variable which still holds
//     an unchecked value;
//   - an error variable that is assigned but never checked anywhere in
//     the function.
package stickyerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/scope"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "stickyerr",
	Doc: "codec functions must not drop, shadow, or overwrite unchecked errors; " +
		"the sticky-error discipline is check-once-after-the-run, never never-check",
	Run: run,
}

var errType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	if !scope.StickyErr(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isCodecFunc(pass, fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isCodecFunc reports whether fd's signature or body involves a
// checkpoint.Encoder or checkpoint.Decoder value.
func isCodecFunc(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && isCodecType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCodecType reports whether t is (a pointer to) checkpoint.Encoder or
// checkpoint.Decoder.
func isCodecType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || scope.Norm(obj.Pkg().Path()) != "internal/checkpoint" {
		return false
	}
	return obj.Name() == "Encoder" || obj.Name() == "Decoder"
}

// funcFacts is the per-function event record the checks consume.
type funcFacts struct {
	pass *analysis.Pass
	// writes[obj] are positions where obj is assigned (sorted).
	writes map[*types.Var][]token.Pos
	// reads[obj] are positions where obj is used outside an assignment
	// LHS (sorted). A bare return in a function with a named error
	// result counts as a read of that result.
	reads map[*types.Var][]token.Pos
	// lhs marks identifiers appearing as assignment targets.
	lhs map[*ast.Ident]bool
	// discarded marks identifiers whose only role is `_ = err` — a
	// compiler-silencing discard, not a check.
	discarded map[*ast.Ident]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ff := &funcFacts{
		pass:      pass,
		writes:    map[*types.Var][]token.Pos{},
		reads:     map[*types.Var][]token.Pos{},
		lhs:       map[*ast.Ident]bool{},
		discarded: map[*ast.Ident]bool{},
	}
	namedResults := namedErrorResults(pass, fd)

	// Pass 1: assignment targets, dropped results, blank discards.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ff.recordAssign(n)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if hasErrorResult(pass, call) && !infallibleCall(pass, call) {
					pass.Reportf(n.Pos(),
						"error returned by %s is dropped; codec errors are sticky — assign and check it",
						calleeName(call))
				}
			}
		}
		return true
	})

	// Pass 2: reads (uses that are not assignment targets) and bare
	// returns reading named error results.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if ff.lhs[n] || ff.discarded[n] {
				return true
			}
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && isErrorVar(v) {
				ff.reads[v] = append(ff.reads[v], n.Pos())
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				for _, v := range namedResults {
					ff.reads[v] = append(ff.reads[v], n.Pos())
				}
			}
		}
		return true
	})
	for _, ps := range ff.reads {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}

	// Overwrite check: straight-line writes in the same statement list
	// with no read in between.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			ff.checkList(n.List)
		case *ast.CaseClause:
			ff.checkList(n.Body)
		}
		return true
	})

	// Shadow check: a := declaration introducing a new error variable
	// whose name matches another error variable with an unchecked write
	// before this point.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			def, ok := ff.pass.TypesInfo.Defs[id].(*types.Var)
			if !ok || !isErrorVar(def) {
				continue
			}
			for outer := range ff.writes {
				if outer == def || outer.Name() != def.Name() {
					continue
				}
				if w, ok := ff.lastBefore(ff.writes[outer], id.Pos()); ok &&
					!ff.readBetween(outer, w, id.Pos()) {
					pass.Reportf(id.Pos(),
						"%s shadows an error that has not been checked yet (assigned at %s)",
						id.Name, pass.Fset.Position(w))
				}
			}
		}
		return true
	})

	// Never-checked: written somewhere, read nowhere. Named results are
	// exempt (a bare return reads them; a tail `return err` shows as a
	// read anyway).
	isResult := map[*types.Var]bool{}
	for _, v := range namedResults {
		isResult[v] = true
	}
	var never []*types.Var
	for v, ws := range ff.writes {
		if len(ff.reads[v]) == 0 && !isResult[v] && len(ws) > 0 {
			never = append(never, v)
		}
	}
	sort.Slice(never, func(i, j int) bool { return never[i].Pos() < never[j].Pos() })
	for _, v := range never {
		ws := ff.writes[v]
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		pass.Reportf(ws[0], "error %s is assigned but never checked", v.Name())
	}
}

// recordAssign registers assignment targets: error-typed variables as
// writes, blank identifiers receiving an error result as discards.
func (ff *funcFacts) recordAssign(as *ast.AssignStmt) {
	pass := ff.pass
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		ff.lhs[id] = true
		if id.Name == "_" {
			if typeAtResult(pass, as, i) == nil {
				continue
			}
			// `_ = err` on an existing variable is a compiler-silencing
			// discard: not reported here, but it does not count as a
			// check either, so the never-checked pass sees through it.
			if len(as.Rhs) == len(as.Lhs) {
				if rid, ok := as.Rhs[i].(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[rid].(*types.Var); ok && isErrorVar(v) {
						ff.discarded[rid] = true
						continue
					}
				}
			}
			if call, ok := rhsCall(as); ok && infallibleCall(pass, call) {
				continue
			}
			pass.Reportf(id.Pos(),
				"error result discarded with _; codec errors are sticky — assign and check it")
			continue
		}
		var v *types.Var
		if d, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			v = u
		}
		if v != nil && isErrorVar(v) {
			ff.writes[v] = append(ff.writes[v], id.Pos())
		}
	}
}

// checkList flags straight-line overwrites within one statement list.
func (ff *funcFacts) checkList(list []ast.Stmt) {
	last := map[*types.Var]token.Pos{}
	for _, st := range list {
		as, ok := st.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var v *types.Var
			if d, ok := ff.pass.TypesInfo.Defs[id].(*types.Var); ok {
				v = d
			} else if u, ok := ff.pass.TypesInfo.Uses[id].(*types.Var); ok {
				v = u
			}
			if v == nil || !isErrorVar(v) {
				continue
			}
			if prev, ok := last[v]; ok && !ff.readBetween(v, prev, id.Pos()) {
				ff.pass.Reportf(id.Pos(),
					"error %s is overwritten before it is checked (previous assignment at %s)",
					v.Name(), ff.pass.Fset.Position(prev))
			}
			last[v] = id.Pos()
		}
	}
}

// readBetween reports whether v is read at a position in (lo, hi).
func (ff *funcFacts) readBetween(v *types.Var, lo, hi token.Pos) bool {
	for _, p := range ff.reads[v] {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}

// lastBefore returns the greatest position in ps below hi.
func (ff *funcFacts) lastBefore(ps []token.Pos, hi token.Pos) (token.Pos, bool) {
	var best token.Pos
	found := false
	for _, p := range ps {
		if p < hi && (!found || p > best) {
			best, found = p, true
		}
	}
	return best, found
}

func isErrorVar(v *types.Var) bool {
	return types.Identical(v.Type(), errType)
}

// namedErrorResults returns fd's named error-typed result variables.
func namedErrorResults(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Results == nil {
		return nil
	}
	for _, f := range fd.Type.Results.List {
		for _, name := range f.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isErrorVar(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

// hasErrorResult reports whether call returns an error (alone or as the
// last element of a tuple).
func hasErrorResult(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
	default:
		return types.Identical(t, errType)
	}
}

// typeAtResult returns the error type if assignment position i of as
// receives an error value, or nil. Handles both one-to-one assignments
// and a single multi-result call on the RHS.
func typeAtResult(pass *analysis.Pass, as *ast.AssignStmt, i int) types.Type {
	if len(as.Rhs) == len(as.Lhs) {
		if tv, ok := pass.TypesInfo.Types[as.Rhs[i]]; ok && tv.Type != nil &&
			types.Identical(tv.Type, errType) {
			return tv.Type
		}
		return nil
	}
	if len(as.Rhs) == 1 {
		if tv, ok := pass.TypesInfo.Types[as.Rhs[0]]; ok {
			if t, ok := tv.Type.(*types.Tuple); ok && i < t.Len() &&
				types.Identical(t.At(i).Type(), errType) {
				return t.At(i).Type()
			}
		}
	}
	return nil
}

// calleeName renders call's function expression for diagnostics.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// rhsCall returns the sole call expression feeding as, if any.
func rhsCall(as *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(as.Rhs) != 1 {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	return call, ok
}

// infallibleCall exempts methods whose error result is documented to
// always be nil — bytes.Buffer and strings.Builder writes, which the
// codec's Encoder is built on. Flagging those would force directives on
// every primitive the Encoder emits, training people to ignore the
// analyzer.
func infallibleCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "bytes" && name == "Buffer") || (pkg == "strings" && name == "Builder")
}
