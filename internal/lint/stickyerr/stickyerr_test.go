package stickyerr_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/stickyerr"
)

// TestCodecFunctions exercises the dropped, shadowed, overwritten,
// never-checked, and clean cases in a sim-critical package, plus the
// out-of-scope-function and directive-suppression paths.
func TestCodecFunctions(t *testing.T) {
	analysistest.Run(t, stickyerr.Analyzer, "internal/secmem")
}
