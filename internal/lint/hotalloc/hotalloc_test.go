package hotalloc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/hotalloc"
)

// markerSource synthesizes one escape Record per `// escape: <message>`
// marker in the package's files, replacing the go build invocation so
// the fixtures are line-exact and hermetic.
func markerSource(dir string) ([]hotalloc.Record, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var recs []hotalloc.Record
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// escape: ")
			if idx < 0 {
				continue
			}
			recs = append(recs, hotalloc.Record{
				File:    path,
				Line:    i + 1,
				Col:     idx + 1,
				Message: line[idx+len("// escape: "):],
			})
		}
	}
	return recs, nil
}

// TestAnnotatedFunctions drives the escape, closure, moved-to-heap,
// panic-exemption, unannotated, and misplaced-annotation fixtures.
func TestAnnotatedFunctions(t *testing.T) {
	prev := hotalloc.Source
	hotalloc.Source = markerSource
	defer func() { hotalloc.Source = prev }()
	analysistest.Run(t, hotalloc.Analyzer, "internal/sim")
}

// TestParseEscapes pins the -m=2 parser against captured compiler
// output: allocation records are kept and deduplicated, while inlining
// notes, leaking-parameter facts, flow traces, package headers, and
// "does not escape" verdicts are dropped.
func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# github.com/plutus-gpu/plutus/internal/sim",
		"./engine.go:124:14: inlining call to farLess",
		"./engine.go:119:26: parameter fe leaks to {heap} with derefs=0:",
		"./engine.go:119:26:   flow: {heap} = fe:",
		`./engine.go:105:9: "sim: causality violation" escapes to heap:`,
		`./engine.go:105:9: "sim: causality violation" escapes to heap`,
		"./gcipher.go:205:6: pad escapes to heap:",
		"./gcipher.go:205:6: moved to heap: pad",
		"./gcipher.go:44:37: int(m) escapes to heap",
		"./queue.go:31:12: make([]func(), n) does not escape",
		"/abs/dir/other.go:7:2: moved to heap: t",
		"not a diagnostic line",
	}, "\n")
	recs := hotalloc.ParseEscapes("/pkg", []byte(out))

	type key struct {
		file string
		line int
		col  int
		msg  string
	}
	got := map[key]bool{}
	for _, r := range recs {
		got[key{r.File, r.Line, r.Col, r.Message}] = true
	}
	want := []key{
		{"/pkg/engine.go", 105, 9, `"sim: causality violation" escapes to heap`},
		{"/pkg/gcipher.go", 205, 6, "pad escapes to heap"},
		{"/pkg/gcipher.go", 205, 6, "moved to heap: pad"},
		{"/pkg/gcipher.go", 44, 37, "int(m) escapes to heap"},
		{"/abs/dir/other.go", 7, 2, "moved to heap: t"},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d: %+v", len(recs), len(want), recs)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing record %+v", w)
		}
	}
}

// TestGoBuildSource runs the real compiler path over internal/sim and
// checks the records have the shape the analyzer consumes. Build-cache
// replay makes this cheap after the first run.
func TestGoBuildSource(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	dir, err := filepath.Abs(filepath.Join("..", "..", "sim"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := hotalloc.Source(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if !filepath.IsAbs(r.File) {
			t.Errorf("record file not absolute: %q", r.File)
		}
		if !strings.HasSuffix(r.Message, "escapes to heap") && !strings.HasPrefix(r.Message, "moved to heap") {
			t.Errorf("record message not an allocation: %q", r.Message)
		}
		if r.Line <= 0 || r.Col <= 0 {
			t.Errorf("record has bad position: %+v", r)
		}
	}
}
