// Package hotalloc statically enforces allocation-free hot paths.
//
// PR 6's zero-allocation event loop is guarded dynamically by the
// bench-regression job's allocs-per-op gate — which only fires after a
// bench run, reports a number rather than a line, and covers just the
// paths the benchmarks drive. hotalloc turns the same invariant into a
// compile-time, line-precise diagnostic: a function annotated
//
//	//simlint:hotpath
//
// in its doc comment must be free of heap allocations according to the
// compiler's own escape analysis. The analyzer obtains that verdict by
// running `go build -gcflags=-m=2` on the annotated package (the build
// cache replays the diagnostics on unchanged packages, so repeated runs
// are cheap) and maps every escape inside an annotated function body —
// value escapes, variables moved to the heap, closure captures,
// interface-boxing of arguments — to a lint error at the offending
// line.
//
// Escapes on a line occupied by a call to the builtin panic are
// exempt: panic strings escape by construction and a panicking hot
// path is already off the fast path.
//
// The annotation is the opt-in; packages with no annotated function
// are skipped without invoking the compiler. Functions in _test.go
// files cannot be annotated (go build does not compile them); the
// analyzer reports such annotations as misplaced rather than silently
// passing them.
package hotalloc

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/scope"
)

// Marker is the annotation that opts a function into the check.
const Marker = "//simlint:hotpath"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //simlint:hotpath must be allocation-free per the compiler's " +
		"escape analysis (go build -gcflags=-m=2); any escape inside one is an error",
	Run: run,
}

// Record is one escape-analysis diagnostic from the compiler.
type Record struct {
	File    string // absolute path
	Line    int
	Col     int
	Message string
}

// Source obtains escape records for the package in dir. It is a
// variable so tests can substitute synthetic records; the default
// implementation shells out to `go build -gcflags=-m=2` and caches per
// directory.
var Source = goBuildSource

func run(pass *analysis.Pass) error {
	if !scope.HotAlloc(pass.Pkg.Path()) {
		return nil
	}
	type annotated struct {
		fd   *ast.FuncDecl
		file *ast.File
	}
	var funcs []annotated
	dirs := map[string]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isAnnotated(fd) {
				continue
			}
			fname := pass.Fset.Position(fd.Pos()).Filename
			if strings.HasSuffix(fname, "_test.go") {
				pass.Reportf(fd.Pos(),
					"//simlint:hotpath on a _test.go function: go build does not compile test files, so the annotation cannot be enforced; move the function or drop the annotation")
				continue
			}
			funcs = append(funcs, annotated{fd, file})
			dirs[filepath.Dir(fname)] = true
		}
	}
	if len(funcs) == 0 {
		return nil
	}

	records := map[string][]Record{} // dir → records
	for dir := range dirs {
		recs, err := Source(dir)
		if err != nil {
			return fmt.Errorf("hotalloc: escape analysis of %s: %v", dir, err)
		}
		records[dir] = recs
	}

	for _, a := range funcs {
		checkFunc(pass, a.fd, records)
	}
	return nil
}

// isAnnotated reports whether fd's doc comment carries the marker.
func isAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := c.Text
		if text == Marker || strings.HasPrefix(text, Marker+" ") || strings.HasPrefix(text, Marker+"\t") {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, records map[string][]Record) {
	pos := pass.Fset.Position(fd.Body.Pos())
	end := pass.Fset.Position(fd.Body.End())
	dir := filepath.Dir(pos.Filename)

	// Lines holding a call to the builtin panic are exempt.
	panicLines := map[int]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.IsBuiltin(pass.TypesInfo, call.Fun, "panic") {
			return true
		}
		for l := pass.Fset.Position(call.Pos()).Line; l <= pass.Fset.Position(call.End()).Line; l++ {
			panicLines[l] = true
		}
		return true
	})

	tf := pass.Fset.File(fd.Pos())
	for _, rec := range records[dir] {
		if rec.File != pos.Filename {
			continue
		}
		if !within(rec, pos, end) || panicLines[rec.Line] {
			continue
		}
		pass.Reportf(posFor(tf, rec),
			"heap allocation in //simlint:hotpath function %s: %s",
			fd.Name.Name, rec.Message)
	}
}

// within reports whether rec falls inside the body span [pos, end].
func within(rec Record, pos, end token.Position) bool {
	if rec.Line < pos.Line || rec.Line > end.Line {
		return false
	}
	if rec.Line == pos.Line && rec.Col < pos.Column {
		return false
	}
	if rec.Line == end.Line && rec.Col > end.Column {
		return false
	}
	return true
}

// posFor converts a record's line/col to a token.Pos inside tf.
func posFor(tf *token.File, rec Record) token.Pos {
	if rec.Line < 1 || rec.Line > tf.LineCount() {
		return tf.Pos(0)
	}
	p := tf.LineStart(rec.Line)
	return p + token.Pos(rec.Col-1)
}

// escapeCache memoizes compiler output per package directory; the
// drivers analyze the augmented and external-test units of a package
// back to back, and parallel unit analysis may request the same
// directory concurrently.
var escapeCache = struct {
	sync.Mutex
	m map[string]cacheEntry
}{m: map[string]cacheEntry{}}

type cacheEntry struct {
	recs []Record
	err  error
}

// goBuildSource runs the compiler's escape analysis over the package
// in dir and extracts allocation records.
func goBuildSource(dir string) ([]Record, error) {
	escapeCache.Lock()
	defer escapeCache.Unlock()
	if e, ok := escapeCache.m[dir]; ok {
		return e.recs, e.err
	}
	cmd := exec.Command("go", "build", "-gcflags=-m=2", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		e := cacheEntry{nil, fmt.Errorf("go build -gcflags=-m=2: %v\n%s", err, out)}
		escapeCache.m[dir] = e
		return e.recs, e.err
	}
	recs := ParseEscapes(dir, out)
	escapeCache.m[dir] = cacheEntry{recs, nil}
	return recs, nil
}

// ParseEscapes extracts allocation records from -m=2 diagnostic output.
// Relative file names are resolved against dir. Only messages that
// denote an allocation are kept: "... escapes to heap" (value, closure,
// or interface-boxing escapes) and "moved to heap: x" (stack variables
// forced to the heap). Inlining notes, leaking-parameter facts, flow
// traces, and "does not escape" verdicts are dropped, and the duplicate
// with-trailing-colon flow-header form of each record is folded into
// one.
func ParseEscapes(dir string, out []byte) []Record {
	var recs []Record
	seen := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		file, ln, col, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		// Flow traces and sub-facts are indented continuations.
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			continue
		}
		msg = strings.TrimSuffix(msg, ":")
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		recs = append(recs, Record{File: file, Line: ln, Col: col, Message: msg})
	}
	return recs
}

// splitDiag parses "path/file.go:12:34: message".
func splitDiag(line string) (file string, ln, col int, msg string, ok bool) {
	// Find ".go:" to anchor the position fields; the path itself may
	// contain colons on no platform we build on, but anchoring keeps the
	// parse robust against "# package" headers and toolchain notes.
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	msg = strings.TrimPrefix(parts[2], " ")
	return file, ln, col, msg, true
}
