// Fixture: the annotation is meaningless in _test.go files — go build
// never compiles them, so escape analysis cannot see the body — and is
// reported as misplaced rather than silently passing.
package sim

//simlint:hotpath
func hotInTest(e *Engine) { // want `//simlint:hotpath on a _test\.go function`
	e.now++
}
