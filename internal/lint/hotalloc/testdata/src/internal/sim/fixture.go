// Fixture: //simlint:hotpath enforcement. The test substitutes the
// compiler-output Source with one that synthesizes an escape record for
// every `// escape: <message>` marker in this file, so the fixture
// stays line-exact without shelling out to go build.
package sim

// Engine stands in for the event engine.
type Engine struct {
	ring []func()
	now  uint64
}

// hotClean is annotated and allocation-free: no records, no findings.
//
//simlint:hotpath
func hotClean(e *Engine, fn func()) {
	e.ring = append(e.ring[:0], fn)
	e.now++
}

// hotEscape has a value escape inside the annotated body.
//
//simlint:hotpath
func hotEscape(e *Engine) *uint64 {
	v := new(uint64) // escape: new(uint64) escapes to heap
	// want `heap allocation in //simlint:hotpath function hotEscape: new\(uint64\) escapes to heap`
	*v = e.now
	return v
}

// hotClosure captures a loop variable in an escaping closure.
//
//simlint:hotpath
func hotClosure(e *Engine, n int) {
	for i := 0; i < n; i++ {
		i := i
		e.ring = append(e.ring, func() { // escape: func literal escapes to heap
			// want `heap allocation in //simlint:hotpath function hotClosure: func literal escapes to heap`
			e.now += uint64(i)
		})
	}
}

// hotMoved has a variable forced to the heap (interface boxing shape).
//
//simlint:hotpath
func hotMoved(e *Engine) {
	t := e.now // escape: moved to heap: t
	// want `heap allocation in //simlint:hotpath function hotMoved: moved to heap: t`
	sink(&t)
}

// hotPanic only allocates on its panic line: panic strings escape by
// construction and the panicking path is off the fast path, so the
// record is exempt and the function stays clean.
//
//simlint:hotpath
func hotPanic(e *Engine, at uint64) {
	if at < e.now {
		panic("sim: schedule in the past") // escape: "sim: schedule in the past" escapes to heap
	}
	e.now = at
}

// coldAlloc is not annotated: it may allocate freely even though a
// record points into it.
func coldAlloc(e *Engine) *Engine {
	out := &Engine{now: e.now} // escape: &Engine{...} escapes to heap
	return out
}

//go:noinline
func sink(p *uint64) { _ = p }
