// Fixture: schema strings visible as literals must be compile-time
// constants; rows assembled dynamically are data and stay unchecked.
package userpkg

import (
	"encoding/csv"
	"fmt"
	"io"

	"internal/harness"
	"internal/stats"
	"internal/workload"
)

const colIPC = "ipc"

func tables(scheme string, n int) {
	// Literal header, all constant (including a named constant): clean.
	_ = stats.Table([]string{"benchmark", colIPC}, nil)

	// Dynamic cell in a literal header: flagged.
	_ = stats.Table([]string{"benchmark", scheme}, nil) // want `stats\.Table header cell must be a compile-time constant`

	// The header := []string{...} idiom is traced one step: clean when
	// constant, flagged when not.
	header := []string{"benchmark", "cycles"}
	_ = stats.Table(header, nil)

	bad := []string{"benchmark", fmt.Sprintf("run-%d", n)} // want `stats\.Table header cell must be a compile-time constant`
	_ = stats.Table(bad, nil)

	// Headers extended with config-derived names after a constant seed
	// literal are deliberately out of reach: clean.
	grown := []string{"benchmark"}
	grown = append(grown, scheme)
	_ = stats.Table(grown, nil)
}

func csvRows(w io.Writer, bench string, vals []string) error {
	cw := csv.NewWriter(w)
	// Literal header row: must be constant.
	if err := cw.Write([]string{"benchmark", "cycles", bench}); err != nil { // want `csv header row cell must be a compile-time constant`
		return err
	}
	// Dynamically built data rows are data, not schema: clean.
	row := append([]string{bench}, vals...)
	if err := cw.Write(row); err != nil {
		return err
	}
	// A literal row with no constant cell is a data row (formatted
	// measurements, cf. harness.WriteCSV): clean.
	if err := cw.Write([]string{bench, fmt.Sprintf("%d", len(vals))}); err != nil {
		return err
	}
	// ... and the same through the one-step identifier trace: clean.
	data := []string{bench, bench}
	return cw.Write(data)
}

func figures(id string) []harness.Figure {
	return []harness.Figure{
		{ID: "fig6", Title: "IPC normalized to no security"}, // constants: clean
		{ID: id, Title: "dynamic"},                           // want `Figure\.ID is an output-schema key`
		{ID: "fig9", Title: fmt.Sprint("t")},                 // want `Figure\.Title is an output-schema key`
	}
}

func specs(name string) []workload.Spec {
	return []workload.Spec{
		{Name: "bfs", Suite: "lonestar", Warps: 4}, // constants: clean
		{Name: name, Suite: "rodinia"},             // want `Spec\.Name is an output-schema key`
	}
}

func suppressed(id string) harness.Figure {
	return harness.Figure{ID: id} //simlint:ignore statskey ad-hoc debug figure, never emitted to CI artifacts
}
