// Stub of internal/stats, just the schema-bearing surface statskey
// resolves by package-path suffix.
package stats

// Table renders labelled rows; the header defines the output schema.
func Table(header []string, rows [][]string) string { return "" }
