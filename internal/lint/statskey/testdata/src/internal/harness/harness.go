// Stub of internal/harness's Figure type for the statskey fixtures.
package harness

// Figure identifies one reproducible experiment.
type Figure struct {
	ID    string
	Title string
	Run   func() (string, error)
}
