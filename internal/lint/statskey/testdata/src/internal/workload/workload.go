// Stub of internal/workload's Spec type for the statskey fixtures.
package workload

// Spec describes one registered benchmark.
type Spec struct {
	Name      string
	Suite     string
	Warps     int
	Footprint uint64
}
