package statskey_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/statskey"
)

// TestStatsKey covers all four designated schema positions (stats.Table
// headers, csv header rows, Figure IDs/Titles, Spec names) in both
// constant (clean) and dynamic (flagged) form, plus the escape hatch.
func TestStatsKey(t *testing.T) {
	analysistest.Run(t, statskey.Analyzer, "internal/userpkg")
}
