// Package statskey requires output-schema strings to be compile-time
// constants.
//
// The CSVs and report tables the harness emits are diffed across runs,
// machines and CI shards to prove determinism (and to track the paper's
// Fig. 13-style traffic breakdowns over time). A schema string built at
// runtime — a CSV header cell, a figure ID, a registered benchmark name
// — can silently vary between runs and break every such diff. This
// analyzer checks the designated schema positions:
//
//   - stats.Table header cells,
//   - (*encoding/csv.Writer).Write rows written as literals (headers),
//   - harness.Figure ID and Title fields,
//   - workload.Spec Name and Suite fields,
//
// and requires each string it can see as a literal element to be a
// compile-time constant. A csv row whose literal contains no constant
// cell at all is a data row (formatted measurements), not schema, and
// is not checked; a row mixing constant and computed cells is exactly
// the schema drift this analyzer exists to catch.
package statskey

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/scope"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "statskey",
	Doc: "stats/CSV schema strings (table headers, CSV header rows, figure IDs, benchmark names) " +
		"must be compile-time constants so output schemas stay diffable across runs",
	Run: run,
}

// litFields maps (package-path suffix, type name) to the struct fields
// holding schema strings.
var litFields = map[[2]string][]string{
	{"internal/harness", "Figure"}: {"ID", "Title"},
	{"internal/workload", "Spec"}:  {"Name", "Suite"},
}

func run(pass *analysis.Pass) error {
	if !scope.StatsKey(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLit(pass, n)
			case *ast.CallExpr:
				checkCall(pass, file, n)
			}
			return true
		})
	}
	return nil
}

// isConst reports whether e has a compile-time constant value.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// checkLit enforces constant schema fields on Figure/Spec literals.
func checkLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	var fields []string
	for key, fs := range litFields {
		if named.Obj().Name() == key[1] && strings.HasSuffix(named.Obj().Pkg().Path(), key[0]) {
			fields = fs
			break
		}
	}
	if fields == nil {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for _, f := range fields {
			if key.Name == f && !isConst(pass, kv.Value) {
				pass.Reportf(kv.Value.Pos(),
					"%s.%s is an output-schema key and must be a compile-time constant string",
					named.Obj().Name(), f)
			}
		}
	}
}

// checkCall enforces constant header cells at stats.Table and
// (*csv.Writer).Write call sites.
func checkCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	var what string
	switch {
	case fn.Name() == "Table" && strings.HasSuffix(fn.Pkg().Path(), "internal/stats"):
		what = "stats.Table header"
	case fn.Name() == "Write" && fn.Pkg().Path() == "encoding/csv" && recvIsCSVWriter(fn):
		what = "csv header row"
	default:
		return
	}
	checkHeaderArg(pass, file, call.Args[0], what)
}

// headerLike classifies a csv row literal: a row with no constant cell
// is pure data (formatted measurements) and exempt; any constant cell
// marks the row as schema-bearing, and then every cell must be
// constant or the schema drifts between runs.
func headerLike(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	for _, elt := range lit.Elts {
		if isConst(pass, elt) {
			return true
		}
	}
	return false
}

func recvIsCSVWriter(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return strings.HasSuffix(types.TypeString(sig.Recv().Type(), nil), "encoding/csv.Writer")
}

// checkHeaderArg validates a schema row argument. A composite literal is
// checked element by element; an identifier is traced one step to its
// defining composite literal (the `header := []string{...}` idiom) —
// later appends extend the schema with config-derived names and are
// deliberately out of lint's reach.
func checkHeaderArg(pass *analysis.Pass, file *ast.File, arg ast.Expr, what string) {
	switch arg := arg.(type) {
	case *ast.CompositeLit:
		checkElements(pass, arg, what)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[arg]
		if obj == nil {
			return
		}
		if lit := definingLiteral(pass, file, obj); lit != nil {
			checkElements(pass, lit, what)
		}
	}
}

// definingLiteral finds the composite literal obj is initialized from
// in its declaring statement, or nil.
func definingLiteral(pass *analysis.Pass, file *ast.File, obj types.Object) *ast.CompositeLit {
	var lit *ast.CompositeLit
	ast.Inspect(file, func(n ast.Node) bool {
		if lit != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.Defs[id] != obj || i >= len(as.Rhs) {
				continue
			}
			if l, ok := as.Rhs[i].(*ast.CompositeLit); ok {
				lit = l
			}
		}
		return lit == nil
	})
	return lit
}

func checkElements(pass *analysis.Pass, lit *ast.CompositeLit, what string) {
	if what == "csv header row" && !headerLike(pass, lit) {
		return
	}
	for _, elt := range lit.Elts {
		if !isConst(pass, elt) {
			pass.Reportf(elt.Pos(),
				"%s cell must be a compile-time constant string so the output schema stays diffable across runs", what)
		}
	}
}
