package scope

import "testing"

func TestNorm(t *testing.T) {
	cases := map[string]string{
		ModulePath:                   ".",
		ModulePath + "/internal/sim": "internal/sim",
		ModulePath + "/internal/valcache [" + ModulePath + "/internal/valcache.test]": "internal/valcache",
		ModulePath + "/internal/valcache_test":                                        "internal/valcache",
		"internal/gpusim":                                                             "internal/gpusim",
		"example.com/other/pkg":                                                       "example.com/other/pkg",
	}
	for in, want := range cases {
		if got := Norm(in); got != want {
			t.Errorf("Norm(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestScopes(t *testing.T) {
	mod := func(p string) string { return ModulePath + "/" + p }
	type row struct {
		path                                string
		simCrit, detRand, rawConc, mapOrder bool
	}
	rows := []row{
		{mod("internal/sim"), true, true, false, true},
		{mod("internal/gpusim"), true, true, true, true},
		{mod("internal/secmem"), true, true, true, true},
		{mod("internal/crypto/siphash"), true, true, true, true},
		{mod("internal/tamper"), true, true, true, true},
		// Hot-path support packages added by the perf overhaul: the dense
		// paged stores back simulation state directly, and the profiling
		// hooks run inside simulating processes.
		{mod("internal/dense"), true, true, true, true},
		{mod("internal/prof"), true, true, true, true},
		// Trace pipeline: the serialized record stream, its replay
		// cursors, the scenario generators, and the value models all
		// feed simulation state directly.
		{mod("internal/trace"), true, true, true, true},
		{mod("internal/trace/scenario"), true, true, true, true},
		{mod("internal/valmodel"), true, true, true, true},
		{mod("cmd/tracegen"), false, false, true, true},
		{mod("internal/harness"), false, true, false, true},
		{ModulePath, false, true, true, true}, // module root: determinism tests
		// rawconc is module-wide default-deny: commands and examples off
		// the allowlist are in scope even though they are not sim-critical.
		{mod("cmd/benchsmoke"), false, false, true, true},
		{mod("cmd/experiments"), false, false, true, true},
		{mod("examples/quickstart"), false, false, true, true},
		// The plutusd serving tree is allowlisted for rawconc: worker
		// pools and SSE fan-out are its job, and it holds no sim state.
		{mod("internal/server"), false, false, false, true},
		{mod("internal/server/client"), false, false, false, true},
		{mod("cmd/plutusd"), false, false, false, true},
		// The sweep-fabric coordinator and its CLI are allowlisted for
		// rawconc (leases, steals, heartbeats, loadgen fan-out are network
		// orchestration), but the content-addressed store beside them is
		// NOT — it arbitrates byte-identity and synchronizes with a mutex.
		{mod("internal/cluster"), false, false, false, true},
		{mod("internal/castore"), false, false, true, true},
		{mod("cmd/plutusctl"), false, false, false, true},
		// The lint tree's rawconc allowlist is least-privilege: only the
		// loader (parallel package loading) and the suite runner (parallel
		// per-unit analysis) are concurrent; analyzers stay default-deny.
		{mod("internal/lint/detrand"), false, false, true, false},
		{mod("internal/lint/loader"), false, false, false, false},
		{mod("internal/lint/simlint"), false, false, false, false},
	}
	for _, r := range rows {
		if got := SimCritical(r.path); got != r.simCrit {
			t.Errorf("SimCritical(%q) = %v, want %v", r.path, got, r.simCrit)
		}
		if got := DetRand(r.path); got != r.detRand {
			t.Errorf("DetRand(%q) = %v, want %v", r.path, got, r.detRand)
		}
		if got := RawConc(r.path); got != r.rawConc {
			t.Errorf("RawConc(%q) = %v, want %v", r.path, got, r.rawConc)
		}
		if got := MapOrder(r.path); got != r.mapOrder {
			t.Errorf("MapOrder(%q) = %v, want %v", r.path, got, r.mapOrder)
		}
	}
}
