// Package scope classifies this module's packages for the simlint
// analyzers. The determinism contract from PR 1 (parallel partition
// execution is bit-identical to sequential) only holds if simulation
// state never observes wall-clock time, process entropy, map iteration
// order, or scheduler interleavings — so each analyzer applies to the
// set of packages whose code can reach simulation state or run output.
package scope

import "strings"

// ModulePath is this module's import-path prefix.
const ModulePath = "github.com/plutus-gpu/plutus"

// Norm reduces an import path to its module-relative form: the module
// prefix is stripped, as are the " [pkg.test]" suffix `go vet` appends
// to test variants and the "_test" suffix of external test packages.
// The module root itself normalizes to ".".
func Norm(pkgPath string) string {
	p := pkgPath
	if i := strings.Index(p, " ["); i >= 0 {
		p = p[:i]
	}
	p = strings.TrimSuffix(p, "_test")
	if p == ModulePath {
		return "."
	}
	if rest, ok := strings.CutPrefix(p, ModulePath+"/"); ok {
		return rest
	}
	return p
}

// simCritical lists the module-relative packages whose code holds or
// mutates simulation state. Everything simulated flows through these:
// events, caches, counters, crypto, traffic accounting.
var simCritical = []string{
	"internal/sim",
	"internal/gpusim",
	"internal/secmem",
	"internal/dram",
	"internal/counters",
	"internal/bmt",
	"internal/valcache",
	"internal/cache",
	"internal/workload",
	"internal/trace",    // covers internal/trace/scenario
	"internal/valmodel", // value models: every byte a replayed store writes
	"internal/geom",
	"internal/crypto", // covers internal/crypto/...
	"internal/stats",
	"internal/checkpoint", // snapshot codec: serializes sim state byte-stably
	"internal/tamper",     // attack plans: expansion must replay bit-identically
	"internal/dense",      // hot-path paged stores: backs DRAM images, counters, caches
	"internal/prof",       // profiling hooks ride inside simulating processes
}

func under(norm, root string) bool {
	return norm == root || strings.HasPrefix(norm, root+"/")
}

// SimCritical reports whether pkgPath holds simulation state.
func SimCritical(pkgPath string) bool {
	n := Norm(pkgPath)
	for _, root := range simCritical {
		if under(n, root) {
			return true
		}
	}
	return false
}

// DetRand reports whether the detrand analyzer applies: all sim-critical
// packages, plus the harness (its tables and CSVs must be byte-stable
// across runs) and the module root (the determinism test matrix lives
// there). cmd/ and examples/ may read the wall clock — reporting elapsed
// time is their job.
func DetRand(pkgPath string) bool {
	n := Norm(pkgPath)
	return SimCritical(pkgPath) || n == "internal/harness" || n == "."
}

// rawConcAllowed lists the packages that may use raw goroutines and
// channels. internal/sim owns the one sanctioned simulation concurrency
// mechanism (cycle-stamped shard mailboxes); the harness fans out
// independent, internally-deterministic runs; internal/server (with its
// client) and cmd/plutusd are a network service — a worker pool and
// bounded queue are their job, and no simulation state lives there. In
// the lint tree only the loader (parallel package loading) and the
// suite runner (parallel per-unit analysis) are concurrent; the
// analyzers themselves, the framework, and the fixture harness are
// sequential by construction and stay under the default deny so a
// goroutine can never sneak into result aggregation.
var rawConcAllowed = []string{
	"internal/sim",
	"internal/harness",
	"internal/server",  // covers internal/server/client
	"internal/cluster", // coordinator: leases, steals and heartbeats are network orchestration, not simulation
	"cmd/plutusd",
	"cmd/plutusctl", // cluster CLI: loadgen fan-out and signal handling
	"internal/lint/loader",
	"internal/lint/simlint",
}

// RawConc reports whether the rawconc analyzer applies: the whole
// module, default-deny, minus rawConcAllowed. A new package that wants
// goroutines must be added to the allowlist deliberately — the default
// for anything that touches simulation results is the mailbox path.
func RawConc(pkgPath string) bool {
	n := Norm(pkgPath)
	for _, root := range rawConcAllowed {
		if under(n, root) {
			return false
		}
	}
	return true
}

// MapOrder reports whether the maporder analyzer applies. Unordered map
// iteration feeding events, stats or output breaks determinism anywhere
// in the module, including cmd/ and examples/; only the lint tree
// itself is exempt (its reports are ordered by the driver's final
// position sort, and exempting it keeps the framework free to iterate
// scratch maps).
func MapOrder(pkgPath string) bool {
	return !under(Norm(pkgPath), "internal/lint")
}

// StatsKey reports whether the statskey analyzer applies; its designated
// call sites (schema-defining strings) are checked module-wide except in
// the lint tree's own fixtures.
func StatsKey(pkgPath string) bool {
	return !under(Norm(pkgPath), "internal/lint")
}

// SnapSym reports whether the snapsym analyzer applies: every
// sim-critical package, since that is where checkpointed state lives
// and the codec method pairs are defined.
func SnapSym(pkgPath string) bool {
	return SimCritical(pkgPath)
}

// StickyErr reports whether the stickyerr analyzer applies. The sticky
// decode-error discipline (run straight through, check Err/Finish once,
// never write after an unchecked error) is a property of codec code,
// all of which lives in sim-critical packages; the analyzer further
// narrows itself to functions that actually touch codec values.
func StickyErr(pkgPath string) bool {
	return SimCritical(pkgPath)
}

// HotAlloc reports whether the hotalloc analyzer applies. The
// //simlint:hotpath annotation is only meaningful on code that can
// appear on the per-event path, but the annotation itself is the
// opt-in — so the analyzer runs wherever annotations could legitimately
// appear and early-outs on unannotated packages. The lint tree is
// excluded to keep its fixtures inert under the real driver.
func HotAlloc(pkgPath string) bool {
	return !under(Norm(pkgPath), "internal/lint")
}
