// Package loader discovers and type-checks packages for the standalone
// simlint driver.
//
// Discovery shells out to `go list -json`, the single source of truth
// for which files belong to a package under the active build
// configuration. Each listed package yields up to two analysis units:
// the augmented unit (GoFiles + TestGoFiles, compiled together exactly
// as `go test` compiles them) and the external test unit
// (XTestGoFiles, package foo_test). Type information comes from the
// source importer, so no pre-built export data is required; the
// external test unit is checked against the augmented package so that
// export_test.go-style helpers resolve.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Package is one type-checked analysis unit.
type Package struct {
	// Path is the import path of the unit. External test units carry
	// the "_test" suffix (e.g. ".../internal/valcache_test").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listed mirrors the subset of `go list -json` output we consume.
type listed struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	ForTest      string
	Error        *listError
}

type listError struct {
	Err string
}

// Load lists patterns in dir (the module root; "" means the current
// directory) and returns one Package per analysis unit, in `go list`
// order with the augmented unit before its external test unit.
//
// Units are type-checked in parallel in two phases: first every
// augmented unit, then every external test unit (which must see its
// augmented package). token.FileSet is internally synchronized; the
// shared source importer is serialized by lockedImporter, so the
// concurrency win is in parsing and in checking the unit bodies
// themselves. The returned order is the deterministic sequential order
// regardless of goroutine scheduling.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// One shared source importer so dependency packages are
	// type-checked at most once across all units.
	src := &lockedImporter{next: importer.ForCompiler(fset, "source", nil)}

	var lps []listed
	for _, lp := range pkgs {
		if lp.Standard || lp.ForTest != "" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		lps = append(lps, lp)
	}

	// Phase 1: augmented units (GoFiles + TestGoFiles).
	augs := make([]*Package, len(lps))
	errs := make([]error, len(lps))
	eachIndex(len(lps), func(i int) {
		lp := lps[i]
		augs[i], errs[i] = check(fset, src, lp, lp.ImportPath,
			append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...))
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: external test units, against their augmented packages.
	xts := make([]*Package, len(lps))
	eachIndex(len(lps), func(i int) {
		lp := lps[i]
		if len(lp.XTestGoFiles) == 0 {
			return
		}
		// foo_test imports foo. Only when foo has in-package test
		// files does that import resolve to the augmented unit (so
		// export_test.go-style helpers are visible); otherwise the
		// augmented unit is identical to the plain package, and
		// resolving through the shared source importer keeps type
		// identity consistent when foo_test also imports a
		// dependency that itself imports foo (e.g. internal/server's
		// external test importing internal/server/client).
		var imp types.Importer = src
		if len(lp.TestGoFiles) > 0 {
			var augTypes *types.Package
			if augs[i] != nil {
				augTypes = augs[i].Types
			}
			imp = &selfImporter{self: lp.ImportPath, pkg: augTypes, next: src}
		}
		xts[i], errs[i] = check(fset, imp, lp, lp.ImportPath+"_test", lp.XTestGoFiles)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var units []*Package
	for i := range lps {
		if augs[i] != nil {
			units = append(units, augs[i])
		}
		if xts[i] != nil {
			units = append(units, xts[i])
		}
	}
	return units, nil
}

// eachIndex runs fn(0..n-1) on up to NumCPU goroutines and waits.
func eachIndex(n int, fn func(i int)) {
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// lockedImporter serializes access to a non-concurrency-safe importer
// so parallel unit type-checks can share one dependency cache.
type lockedImporter struct {
	mu   sync.Mutex
	next types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next.Import(path)
}

func check(fset *token.FileSet, imp types.Importer, lp listed, path string, files []string) (*Package, error) {
	if len(files) == 0 {
		return nil, nil
	}
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}

	return &Package{Path: path, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}

// selfImporter resolves one import path to an already-checked package
// and delegates everything else.
type selfImporter struct {
	self string
	pkg  *types.Package
	next types.Importer
}

func (s *selfImporter) Import(path string) (*types.Package, error) {
	if path == s.self && s.pkg != nil {
		return s.pkg, nil
	}
	return s.next.Import(path)
}

func goList(dir string, patterns []string) ([]listed, error) {
	args := append([]string{"list", "-json", "-e"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listed
	for {
		var lp listed
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
