// Package simlint bundles the simulator's determinism analyzers into
// one suite and runs them over loaded packages.
//
// The suite is the single registry consulted by both drivers (the
// standalone cmd/simlint walk and the `go vet -vettool` unitchecker
// protocol) and by the //simlint:ignore directive parser, so an
// analyzer added here is automatically runnable, suppressible, and
// documented by `simlint -help`.
package simlint

import (
	"runtime"
	"sync"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/detrand"
	"github.com/plutus-gpu/plutus/internal/lint/hotalloc"
	"github.com/plutus-gpu/plutus/internal/lint/loader"
	"github.com/plutus-gpu/plutus/internal/lint/maporder"
	"github.com/plutus-gpu/plutus/internal/lint/rawconc"
	"github.com/plutus-gpu/plutus/internal/lint/snapsym"
	"github.com/plutus-gpu/plutus/internal/lint/statskey"
	"github.com/plutus-gpu/plutus/internal/lint/stickyerr"
)

// Analyzers returns the suite in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		hotalloc.Analyzer,
		maporder.Analyzer,
		rawconc.Analyzer,
		snapsym.Analyzer,
		statskey.Analyzer,
		stickyerr.Analyzer,
	}
}

// Names returns the set of analyzer names, the universe recognised by
// //simlint:ignore directives.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// RunPackage runs every analyzer over one loaded unit and returns the
// surviving diagnostics after //simlint:ignore suppression, sorted by
// position. Because the full suite runs, suppression is checked: a
// directive that suppresses nothing is itself reported (analyzer
// "unusedignore") so stale ignores can't linger after the code they
// excused is fixed or deleted.
func RunPackage(pkg *loader.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	return analysis.SuppressChecked(pkg.Fset, pkg.Files, Names(), diags), nil
}

// RunPackages runs the suite over every unit, concatenating surviving
// diagnostics in unit order. Units are analyzed in parallel — every
// analyzer in the suite is a pure function of its unit (the one shared
// mutable resource, hotalloc's compiler-output cache, serializes
// internally) — and the output order is the deterministic sequential
// order regardless of scheduling.
func RunPackages(pkgs []*loader.Package) ([]analysis.Diagnostic, error) {
	perUnit := make([][]analysis.Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *loader.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perUnit[i], errs[i] = RunPackage(pkg)
		}(i, pkg)
	}
	wg.Wait()
	var all []analysis.Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		all = append(all, perUnit[i]...)
	}
	return all, nil
}
