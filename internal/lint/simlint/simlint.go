// Package simlint bundles the simulator's determinism analyzers into
// one suite and runs them over loaded packages.
//
// The suite is the single registry consulted by both drivers (the
// standalone cmd/simlint walk and the `go vet -vettool` unitchecker
// protocol) and by the //simlint:ignore directive parser, so an
// analyzer added here is automatically runnable, suppressible, and
// documented by `simlint -help`.
package simlint

import (
	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/detrand"
	"github.com/plutus-gpu/plutus/internal/lint/loader"
	"github.com/plutus-gpu/plutus/internal/lint/maporder"
	"github.com/plutus-gpu/plutus/internal/lint/rawconc"
	"github.com/plutus-gpu/plutus/internal/lint/statskey"
)

// Analyzers returns the suite in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		rawconc.Analyzer,
		statskey.Analyzer,
	}
}

// Names returns the set of analyzer names, the universe recognised by
// //simlint:ignore directives.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// RunPackage runs every analyzer over one loaded unit and returns the
// surviving diagnostics after //simlint:ignore suppression, sorted by
// position.
func RunPackage(pkg *loader.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	return analysis.Suppress(pkg.Fset, pkg.Files, Names(), diags), nil
}

// RunPackages runs the suite over every unit, concatenating surviving
// diagnostics in unit order.
func RunPackages(pkgs []*loader.Package) ([]analysis.Diagnostic, error) {
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
