package simlint_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/loader"
	"github.com/plutus-gpu/plutus/internal/lint/simlint"
)

// moduleRoot walks up from the working directory to the directory
// containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the acceptance gate: the suite must report zero
// findings over the whole module at HEAD. Any new violation either
// gets fixed or carries an explicit //simlint:ignore with a reason.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the entire module; skipped in -short mode")
	}
	pkgs, err := loader.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	diags, err := simlint.RunPackages(pkgs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
