// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// A fixture is a directory of Go files forming one package. Expectations
// are trailing comments:
//
//	x := time.Now() // want `time\.Now reads the host clock`
//
// Each back-quoted or double-quoted token is a regexp that must match
// exactly one diagnostic reported on that line; diagnostics without a
// matching expectation, and expectations without a diagnostic, fail the
// test. A want comment alone on a line refers to the previous line — for
// violations whose own line already carries another trailing comment
// (such as a //simlint:ignore directive under test). //simlint:ignore directives are honored before matching, so
// fixtures can prove the escape hatch works by pairing a violation with
// a directive and no want comment.
//
// Fixture imports resolve against the enclosing testdata/src tree
// first (so fixtures can model this module's own APIs under their real
// import paths) and fall back to compiling the standard library from
// source.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
)

// Run loads the fixture package rooted at testdata/src/<pkgpath>
// (relative to the caller's directory), runs a over it under the import
// path pkgpath, and reports mismatches via t. The import path matters:
// analyzers scope themselves by package path, so fixtures choose paths
// inside or outside the sim-critical set to exercise both sides.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &fixtureLoader{
		root:  root,
		fset:  token.NewFileSet(),
		cache: make(map[string]*loaded),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)

	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     pkg.files,
		Pkg:       pkg.pkg,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags = analysis.Suppress(ld.fset, pkg.files, map[string]bool{a.Name: true}, diags)

	check(t, ld.fset, pkg.files, diags)
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureLoader resolves import paths under testdata/src, falling back
// to the source importer for everything else (the standard library).
type fixtureLoader struct {
	root     string
	fset     *token.FileSet
	cache    map[string]*loaded
	fallback types.Importer
}

func (l *fixtureLoader) load(path string) (*loaded, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.Info()
	conf := types.Config{Importer: (*fixtureImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loaded{pkg: pkg, files: files, info: info}
	l.cache[path] = p
	return p, nil
}

// fixtureImporter adapts fixtureLoader to types.Importer.
type fixtureImporter fixtureLoader

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	l := (*fixtureLoader)(i)
	if st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.fallback.Import(path)
}

// expectation is one `// want` token.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantToken = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if !codeLines[line] {
					line-- // own-line want refers to the previous line
				}
				for _, m := range wantToken.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", p, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
