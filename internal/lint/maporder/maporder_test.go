package maporder_test

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/lint/analysistest"
	"github.com/plutus-gpu/plutus/internal/lint/maporder"
)

// TestMapOrder covers the four order-sensitive body classes (appends,
// float accumulation, output writes, event scheduling), the sanctioned
// collect-then-sort idiom, order-insensitive set/counter bodies, and
// the //simlint:ignore escape hatch.
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "internal/secmem")
}

// TestMapOrderCheckpoint: the snapshot codec's failure mode is map
// order reaching the serialized byte stream — unsorted encode walks,
// order-recording collects, and map-order event restore are flagged;
// the sorted-walk idiom and integer totals are clean.
func TestMapOrderCheckpoint(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "internal/checkpoint")
}

// TestMapOrderDense: the dense paged stores exist to replace map-keyed
// hot-path state with deterministic ascending walks; the fixture pins
// that pooled events draining a scratch map (or unsorted collects and
// dumps of the page table) are still flagged, while the ForEach shape
// is clean.
func TestMapOrderDense(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "internal/dense")
}
