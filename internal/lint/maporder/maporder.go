// Package maporder flags `range` statements over maps whose bodies do
// order-sensitive work.
//
// Go randomizes map iteration order per run, so a map range whose body
// appends to an outer slice, schedules simulation events, accumulates
// floating-point sums, or writes output produces run-dependent results.
// The sanctioned idiom is collect-keys-then-sort (stats.SortedKeys,
// workload.Names): an append whose destination slice is later passed to
// a sort.* / slices.Sort* call in the same function is recognized as
// exactly that idiom and not flagged. Order-insensitive bodies — set
// membership tests, integer accumulation (associative and commutative),
// writes into other maps, delete — stay legal.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/plutus-gpu/plutus/internal/lint/analysis"
	"github.com/plutus-gpu/plutus/internal/lint/scope"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range over a map whose body is order-sensitive (appends to an outer slice " +
		"without sorting it, schedules events, accumulates floats, or writes output)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scope.MapOrder(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines every map-range inside one function body. fn is
// the scope searched for save-the-day sort calls.
func checkFunc(pass *analysis.Pass, fn *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkBody(pass, fn, rs)
		return true
	})
}

func checkBody(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure defined here runs later (or not at all); its own
			// map ranges are checked in their defining scope.
			return false
		case *ast.AssignStmt:
			checkAssign(pass, fn, rs, n)
		case *ast.CallExpr:
			checkCall(pass, rs, n)
		}
		return true
	})
}

// declaredOutside reports whether id resolves to a variable declared
// before the range statement (so mutations inside the body survive it).
func declaredOutside(pass *analysis.Pass, rs *ast.RangeStmt, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos()
}

func checkAssign(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	// Float accumulation: x += v (and -=, *=, /=) reorders non-associative
	// floating-point arithmetic across runs.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if id, ok := as.Lhs[0].(*ast.Ident); ok && declaredOutside(pass, rs, id) {
			if t := pass.TypesInfo.TypeOf(as.Lhs[0]); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					pass.Reportf(as.Pos(),
						"float accumulation into %s inside a map range is order-sensitive; iterate sorted keys first",
						id.Name)
				}
			}
		}
	}
	// Appends to slices declared outside the loop record iteration order.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !analysis.IsBuiltin(pass.TypesInfo, call.Fun, "append") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || !declaredOutside(pass, rs, id) {
			continue
		}
		if sortedAfter(pass, fn, rs, id) {
			continue // the collect-then-sort idiom
		}
		pass.Reportf(as.Pos(),
			"append to %s inside a map range records random iteration order; sort %s afterwards (cf. stats.SortedKeys) or iterate sorted keys",
			id.Name, id.Name)
	}
}

// eventMethods are internal/sim methods that schedule or route events;
// calling them in map order scrambles the event timeline.
var eventMethods = map[string]bool{
	"Schedule":   true,
	"ScheduleAt": true,
	"Send":       true,
}

// writerMethods order-sensitively emit bytes to an output sink.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	// Package-level fmt printers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && name != "Sprintf" && name != "Sprint" && name != "Sprintln" && name != "Errorf" {
				pass.Reportf(call.Pos(),
					"fmt.%s inside a map range emits output in random iteration order; iterate sorted keys", name)
			}
			return
		}
	}
	// Method calls: event scheduling on internal/sim types, and writes to
	// any sink with an io.Writer-shaped method.
	selInfo, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return
	}
	recv := selInfo.Recv()
	if eventMethods[name] && strings.HasSuffix(pkgPathOf(recv), "internal/sim") {
		pass.Reportf(call.Pos(),
			"%s.%s inside a map range schedules events in random iteration order; iterate sorted keys",
			types.TypeString(recv, types.RelativeTo(pass.Pkg)), name)
		return
	}
	if writerMethods[name] {
		pass.Reportf(call.Pos(),
			"%s inside a map range writes output in random iteration order; iterate sorted keys", name)
	}
}

// pkgPathOf returns the defining package path of t's named base type.
func pkgPathOf(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			if obj := u.Obj(); obj != nil && obj.Pkg() != nil {
				return obj.Pkg().Path()
			}
			return ""
		default:
			return ""
		}
	}
}

// sortFuncs maps a sorting package to its recognized functions whose
// first argument is the slice being ordered.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether fn contains, after the range statement, a
// recognized sort call whose first argument is the same variable id —
// i.e. the loop is the collect half of collect-then-sort.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, id *ast.Ident) bool {
	target := pass.TypesInfo.Uses[id]
	if target == nil {
		target = pass.TypesInfo.Defs[id]
	}
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return !found
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok || !sortFuncs[pn.Imported().Path()][sel.Sel.Name] {
			return !found
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[arg] == target {
			found = true
		}
		return !found
	})
	return found
}
