// Fixture: snapshot encoding walks maps of simulation state (cache
// lines, dirty sets, pending events). Any walk that lets iteration
// order reach the byte stream must be flagged; the collect-then-sort
// idiom the real codec uses (checkpoint.SortedKeys) must stay clean.
package checkpoint

import (
	"sort"

	"internal/sim"
)

// encoder stands in for the snapshot byte-stream builder.
type encoder struct{ buf []byte }

func (e *encoder) Write(p []byte) (int, error) { e.buf = append(e.buf, p...); return len(p), nil }

// encodeLinesUnsorted lets map order reach the snapshot bytes: two runs
// of the same simulation would write different files.
func encodeLinesUnsorted(e *encoder, lines map[uint64][]byte) {
	for _, line := range lines {
		e.Write(line) // want `Write inside a map range writes output in random iteration order`
	}
}

// encodeLinesSorted is the sanctioned shape: collect keys, sort, walk.
func encodeLinesSorted(e *encoder, lines map[uint64][]byte) {
	keys := make([]uint64, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		e.Write(lines[k])
	}
}

// collectDirty records iteration order in the returned slice — a
// section written from it would differ run to run.
func collectDirty(dirty map[uint64]bool) []uint64 {
	var addrs []uint64
	for a := range dirty {
		addrs = append(addrs, a) // want `append to addrs inside a map range records random iteration order`
	}
	return addrs
}

// restoreUnsorted re-schedules restored events in map order, scrambling
// the replayed timeline relative to the run that took the snapshot.
func restoreUnsorted(eng *sim.Engine, pending map[uint64]func()) {
	for at, fn := range pending {
		eng.ScheduleAt(sim.Cycle(at), fn) // want `ScheduleAt inside a map range schedules events in random iteration order`
	}
}

// checksumCount is order-insensitive (integer accumulation): clean.
func checksumCount(sections map[string][]byte) uint64 {
	var total uint64
	for _, b := range sections {
		total += uint64(len(b))
	}
	return total
}
