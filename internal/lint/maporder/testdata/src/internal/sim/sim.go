// Stub of the simulator engine API, just enough surface for the
// maporder fixtures to call event-scheduling methods on a type whose
// package path ends in internal/sim.
package sim

// Cycle is simulated time.
type Cycle uint64

// Engine is the event engine stub.
type Engine struct{}

// Schedule enqueues fn after delay cycles.
func (e *Engine) Schedule(delay Cycle, fn func()) {}

// ScheduleAt enqueues fn at cycle at.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {}
