// Fixture: internal/dense is the hot-path paged-store package the perf
// overhaul introduced to *replace* map-keyed simulation state. Its whole
// reason to exist is deterministic ascending iteration, so any map range
// creeping back in here that feeds events, appends, or output must be
// flagged — pooled events must not smuggle map iteration order into the
// dispatch sequence.
package dense

import (
	"fmt"
	"strings"

	"internal/sim"
)

// Bitmap is a stub of the real paged bitset: ForEach walks ascending,
// which is the sanctioned replacement for ranging a map[uint64]bool.
type Bitmap struct{}

// ForEach visits set indices in ascending order.
func (b *Bitmap) ForEach(fn func(i uint64)) {}

// scheduleFromMap is the regression this fixture pins: flushing a
// scratch map straight into the event queue reintroduces random
// dispatch order behind the pooled-event API.
func scheduleFromMap(eng *sim.Engine, dirty map[uint64]func()) {
	for _, fn := range dirty {
		eng.Schedule(1, fn) // want `Schedule inside a map range schedules events in random iteration order`
	}
}

// scheduleFromBitmap is the sanctioned shape: the dense store iterates
// ascending, so the schedule order is deterministic.
func scheduleFromBitmap(eng *sim.Engine, present *Bitmap, fns []func()) {
	present.ForEach(func(i uint64) {
		eng.Schedule(1, fns[i])
	})
}

func collectUnsorted(pages map[uint64][]byte) []uint64 {
	var idx []uint64
	for k := range pages {
		idx = append(idx, k) // want `append to idx inside a map range records random iteration order`
	}
	return idx
}

func dumpUnsorted(pages map[uint64][]byte) string {
	var b strings.Builder
	for k, pg := range pages {
		fmt.Fprintf(&b, "%d:%x\n", k, pg) // want `fmt\.Fprintf inside a map range emits output in random iteration order`
	}
	return b.String()
}

// countPages is order-insensitive bookkeeping: clean.
func countPages(pages map[uint64][]byte) int {
	n := 0
	for range pages {
		n++
	}
	return n
}
