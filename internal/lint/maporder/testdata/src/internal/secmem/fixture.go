// Fixture: order-sensitive map-range bodies must be flagged; the
// collect-then-sort idiom and order-insensitive bodies must not.
package secmem

import (
	"fmt"
	"sort"
	"strings"

	"internal/sim"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range records random iteration order`
	}
	return keys
}

// collectThenSort is the sanctioned idiom (cf. stats.SortedKeys): the
// appended slice is sorted before use, so iteration order cannot leak.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSlice(m map[uint64]float64) []uint64 {
	var keys []uint64
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func floatAccumulation(m map[string]float64) (float64, uint64) {
	var sum float64
	var n uint64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside a map range is order-sensitive`
		n++      // integer counting is order-insensitive: clean
	}
	return sum, n
}

func intAccumulation(m map[string]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v // associative and commutative: clean
	}
	return total
}

func output(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		fmt.Println(k)           // want `fmt\.Println inside a map range emits output in random iteration order`
		b.WriteString(k)         // want `WriteString inside a map range writes output in random iteration order`
		_ = fmt.Sprintf("%s", k) // pure formatting: clean
	}
	return b.String()
}

func schedule(eng *sim.Engine, m map[uint64]func()) {
	for at, fn := range m {
		eng.ScheduleAt(sim.Cycle(at), fn) // want `ScheduleAt inside a map range schedules events in random iteration order`
	}
}

// Set-shaped bodies never observe order: membership writes, reads,
// deletes, and ranging over slices are all clean.
func setOps(m map[uint64]bool, other map[uint64]bool, xs []uint64) int {
	n := 0
	for k := range m {
		if other[k] {
			n++
		}
		other[k] = true
		delete(other, k)
	}
	for _, x := range xs {
		other[x] = true
	}
	return n
}

// A closure built inside the body runs later under its caller's
// control; the range itself records nothing.
func deferredClosure(m map[string]int) []func() string {
	var fns []func() string // collected closures, order irrelevant here
	for k := range m {
		k := k
		fns = append(fns, func() string { // want `append to fns inside a map range`
			return k
		})
	}
	return fns
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //simlint:ignore maporder consumer sorts in the next function
	}
	return keys
}
