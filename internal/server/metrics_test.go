package server_test

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
	"github.com/plutus-gpu/plutus/internal/server/client"
)

// cancelInFlight mirrors the harness checkpoint tests' helper: a
// context whose first Err check (RunContext's entry guard) passes and
// whose second (the checkpoint sink's) reports cancellation, parking
// the run at its first snapshot deterministically.
type cancelInFlight struct {
	context.Context
	calls atomic.Int32
}

func newCancelInFlight() *cancelInFlight { return &cancelInFlight{Context: context.Background()} }

func (c *cancelInFlight) Err() error {
	if c.calls.Add(1) == 1 {
		return nil
	}
	return context.Canceled
}

func (c *cancelInFlight) Done() <-chan struct{} { return nil }

// TestMetricsExposition: /metrics renders the statsz counters in the
// Prometheus text format, including the per-scheme completion series
// and the runner cache rates the coordinator's scheduler reads.
func TestMetricsExposition(t *testing.T) {
	hcfg := harness.Config{MaxInstructions: 400, Benchmarks: []string{"bfs"}, Parallelism: 2}
	_, c := startServer(t, server.Config{
		Backend:         harness.NewRunner(hcfg),
		Workers:         2,
		QueueDepth:      4,
		MaxInstructions: hcfg.MaxInstructions,
	}, nil)
	ctx := context.Background()

	for _, scheme := range []string{"pssm", "plutus"} {
		st, err := c.Run(ctx, server.RunRequest{Benchmark: "bfs", Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("%s run: state %s: %s", scheme, st.State, st.Error)
		}
	}

	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE plutusd_queue_depth gauge",
		"plutusd_runs_completed_total 2",
		`plutusd_scheme_runs_completed_total{scheme="plutus"} 1`,
		`plutusd_scheme_runs_completed_total{scheme="pssm"} 1`,
		"plutusd_cache_lookups_total",
		"plutusd_cache_hit_rate",
		"plutusd_workers 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
	// The per-scheme series must come out sorted by label value —
	// deterministic exposition is what lets tests (and diffing
	// scrapers) pin it.
	if strings.Index(text, `scheme="plutus"`) > strings.Index(text, `scheme="pssm"`) {
		t.Error("per-scheme series not sorted by scheme label")
	}
}

// TestSeededRemoteMatchesLocal: a seeded run through the daemon must be
// byte-identical to the local seeded run — the property that makes any
// cluster worker's result verifiable against a single box.
func TestSeededRemoteMatchesLocal(t *testing.T) {
	hcfg := harness.Config{MaxInstructions: 400, Benchmarks: []string{"bfs"}, Parallelism: 2}
	_, c := startServer(t, server.Config{
		Backend:         harness.NewRunner(hcfg),
		Workers:         2,
		QueueDepth:      4,
		MaxInstructions: hcfg.MaxInstructions,
	}, nil)
	ctx := context.Background()

	st, err := c.Run(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "plutus", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("state %s: %s", st.State, st.Error)
	}
	if st.Seed != 3 {
		t.Fatalf("status echoes seed %d, want 3", st.Seed)
	}
	got, err := c.Result(ctx, st.ID, "json")
	if err != nil {
		t.Fatal(err)
	}

	lst, err := harness.NewRunner(hcfg).RunSeeded("bfs", secmem.Plutus(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := harness.WriteRunJSON(&want, lst); err != nil {
		t.Fatal(err)
	}
	if string(got) != want.String() {
		t.Errorf("seeded remote result differs from local:\n got: %q\nwant: %q", got, want.String())
	}

	// Seed 3 and seed 0 must be distinct jobs, not dedup'd onto each other.
	st0, err := c.Run(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "plutus"})
	if err != nil {
		t.Fatal(err)
	}
	if st0.ID == st.ID {
		t.Error("seed 0 deduped onto the seed-3 job")
	}
}

// TestSeedRejectedWithoutSeedBackend: a daemon whose backend cannot run
// seeded workloads refuses nonzero seeds up front instead of silently
// running the canonical instantiation.
func TestSeedRejectedWithoutSeedBackend(t *testing.T) {
	fb := newFakeBackend()
	_, c := startServer(t, server.Config{Backend: fb, Workers: 1, QueueDepth: 2}, fb)
	_, err := c.Submit(context.Background(), server.RunRequest{Benchmark: "bfs", Scheme: "pssm", Seed: 9})
	if err == nil || !strings.Contains(err.Error(), "not seed-aware") {
		t.Fatalf("err = %v, want seed rejection", err)
	}
}

// TestSnapshotEndpoints: the migration surface — GET 404s while no
// PLUTSNAP exists, PUT installs one at the cell's snapshot path (after
// container validation), GET returns those very bytes, and garbage is
// refused.
func TestSnapshotEndpoints(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	hcfg := harness.Config{
		MaxInstructions: 2000,
		Benchmarks:      []string{"bfs"},
		Parallelism:     1,
		CheckpointEvery: 500,
		CheckpointDir:   ckptDir,
		Resume:          true,
	}
	runner := harness.NewRunner(hcfg)
	_, c := startServer(t, server.Config{
		Backend:         runner,
		Workers:         1,
		QueueDepth:      2,
		MaxInstructions: hcfg.MaxInstructions,
	}, nil)
	ctx := context.Background()

	if _, err := c.Snapshot(ctx, "bfs", "plutus", 5); !errors.Is(err, client.ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}

	// Manufacture a real parked snapshot: run with a context that
	// cancels at the first checkpoint, same trick the harness
	// checkpoint tests use.
	sc := secmem.Plutus(0)
	if _, err := runner.RunSeededContext(newCancelInFlight(), "bfs", sc, 5); err == nil {
		t.Fatal("expected preemption error")
	}
	snap, err := c.Snapshot(ctx, "bfs", "plutus", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}

	// Migrate it to a different cell (seed 6) as a coordinator would on
	// a dead worker, and read it back byte-identically.
	if err := c.PutSnapshot(ctx, "bfs", "plutus", 6, snap); err != nil {
		t.Fatal(err)
	}
	back, err := c.Snapshot(ctx, "bfs", "plutus", 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(snap) {
		t.Error("snapshot round-trip is not byte-identical")
	}

	if err := c.PutSnapshot(ctx, "bfs", "plutus", 7, []byte("not a snapshot")); err == nil {
		t.Error("garbage PUT accepted")
	}

	// Unknown names are client errors, not file lookups.
	resp, err := http.Get(c.BaseURL() + "/v1/snapshots?benchmark=nope&scheme=plutus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown benchmark: status %d, want 400", resp.StatusCode)
	}
}
