package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// Backend executes one simulation run. *harness.Runner implements it;
// tests substitute gated fakes to exercise queue mechanics without
// simulating.
type Backend interface {
	RunContext(ctx context.Context, bench string, sc secmem.Config) (*stats.Stats, error)
}

// metricsBackend is the optional cache-introspection side of a Backend
// (implemented by *harness.Runner); when present, /debug/statsz reports
// single-flight hit rates.
type metricsBackend interface {
	Metrics() harness.Metrics
}

// SeedBackend is the seed-aware side of a Backend (implemented by
// *harness.Runner): it runs a seed-perturbed workload instantiation.
// A daemon whose Backend lacks it rejects nonzero RunRequest.Seed
// values at submit time.
type SeedBackend interface {
	RunSeededContext(ctx context.Context, bench string, sc secmem.Config, seed uint64) (*stats.Stats, error)
}

// snapshotBackend is the checkpoint-introspection side of a Backend
// (implemented by *harness.Runner). It is what lets the snapshot
// endpoints locate a run's PLUTSNAP file for cluster-wide
// checkpoint migration.
type snapshotBackend interface {
	SnapshotPathSeeded(bench string, sc secmem.Config, seed uint64) string
	Config() harness.Config
}

// Config parameterizes a Server.
type Config struct {
	// Backend runs simulations. Required.
	Backend Backend
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO of accepted-but-not-running jobs
	// (default 64). A full queue rejects submissions with 429.
	QueueDepth int
	// MaxInstructions is the daemon's per-run budget, advertised in
	// statsz and asserted against RunRequest.MaxInstructions.
	MaxInstructions uint64
	// ProtectedBytes resolves scheme names (default 128 MiB, matching
	// the harness default per-partition protected range).
	ProtectedBytes uint64
	// StateDir, when set, persists every job to disk: finished jobs keep
	// serving their results after a daemon restart, and jobs that were
	// queued or running when the daemon died are re-enqueued on boot (a
	// checkpointing Backend resumes them from their last snapshot).
	StateDir string
	// PreemptSlice, when nonzero, bounds how long one job may hold a
	// worker: past the slice the job's context is cancelled, and a
	// Backend that parks the run with checkpoint.ErrPreempted sees the
	// job re-enqueued behind the jobs that were waiting. Requires a
	// Backend that checkpoints; without one the cancellation is ignored
	// and the slice has no effect.
	PreemptSlice time.Duration
}

// Server is the plutusd serving core. Create with New, mount Handler on
// an http.Server, and call Drain before exit.
type Server struct {
	cfg   Config
	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	pending  map[string]*job // dedup key → queued-or-running job
	nextID   int
	queued   int // jobs accepted but not yet picked up by a worker
	inFlight int
	draining bool

	// lifetime counters for /debug/statsz, also guarded by mu
	accepted          uint64
	deduped           uint64
	rejected          uint64
	completed         uint64
	failed            uint64
	completedByScheme map[string]uint64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Backend == nil {
		panic("server: Config.Backend is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ProtectedBytes == 0 {
		cfg.ProtectedBytes = 128 << 20
	}
	var settled, requeue []*job
	var maxID int
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			panic(fmt.Sprintf("server: state dir: %v", err))
		}
		var err error
		settled, requeue, maxID, err = recoverState(cfg.StateDir, cfg.ProtectedBytes)
		if err != nil {
			panic(fmt.Sprintf("server: recover state: %v", err))
		}
	}
	// Recovered unfinished jobs must all fit in the queue regardless of
	// the configured depth, or boot would deadlock before workers start.
	depth := cfg.QueueDepth
	if len(requeue) > depth {
		depth = len(requeue)
	}
	s := &Server{
		cfg:               cfg,
		queue:             make(chan *job, depth),
		jobs:              make(map[string]*job),
		pending:           make(map[string]*job),
		nextID:            maxID,
		completedByScheme: make(map[string]uint64),
	}
	for _, j := range settled {
		s.jobs[j.id] = j
		if j.currentState() == StateFailed {
			s.failed++
		} else {
			s.completed++
			s.completedByScheme[j.sc.Scheme]++
		}
	}
	for _, j := range requeue {
		s.jobs[j.id] = j
		if _, dup := s.pending[j.key]; !dup {
			s.pending[j.key] = j
		}
		s.queue <- j
		s.queued++
		s.accepted++
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker drains the queue until Drain closes it. Jobs run with a
// background context (bounded by Config.PreemptSlice when set): once
// accepted, a run is always carried to a terminal state and its result
// kept for pickup — including during drain, which is what makes SIGTERM
// lossless for in-flight work. A job preempted at the end of its slice
// goes back to the queue in its checkpointed state rather than settling.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.queued--
		s.inFlight++
		s.mu.Unlock()
		for {
			st, err := s.runSlice(j)
			if errors.Is(err, checkpoint.ErrPreempted) && s.requeue(j) {
				break
			}
			if errors.Is(err, checkpoint.ErrPreempted) {
				// Queue full or draining: nothing is gained by parking the
				// job, so give it another slice immediately (it resumes
				// from the snapshot it just wrote).
				continue
			}

			s.mu.Lock()
			s.inFlight--
			if s.pending[j.key] == j {
				delete(s.pending, j.key)
			}
			if err != nil {
				s.failed++
			} else {
				s.completed++
				s.completedByScheme[j.sc.Scheme]++
			}
			s.mu.Unlock()
			if err != nil {
				j.fail(err)
			} else {
				j.complete(st)
			}
			s.persist(j)
			break
		}
	}
}

// runSlice executes one scheduling slice of j: the whole run when
// PreemptSlice is zero, else up to one slice of it.
func (s *Server) runSlice(j *job) (*stats.Stats, error) {
	ctx := context.Background()
	if s.cfg.PreemptSlice > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.PreemptSlice)
		defer cancel()
	}
	j.transition(StateRunning, "simulation started")
	if j.req.Seed != 0 {
		// Submit-time validation guarantees the assertion: a nonzero
		// seed is only ever accepted when the backend is seed-aware.
		return s.cfg.Backend.(SeedBackend).RunSeededContext(ctx, j.req.Benchmark, j.sc, j.req.Seed)
	}
	return s.cfg.Backend.RunContext(ctx, j.req.Benchmark, j.sc)
}

// requeue puts a preempted job at the back of the queue, behind the
// jobs that were waiting for its worker. Reports false (job must keep
// its worker) when the queue is full or the server is draining. The
// transition and persist happen before the job re-enters the queue:
// once it is visible there, another worker may immediately mark it
// running again.
func (s *Server) requeue(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.queue) == cap(s.queue) {
		return false
	}
	j.transition(StateQueued, "preempted at checkpoint; requeued")
	s.persist(j)
	// Cannot block: space was checked above, and every sender holds mu.
	s.queue <- j
	s.queued++
	s.inFlight--
	return true
}

// Drain stops accepting new runs, lets the workers finish every job
// already accepted (queued and in-flight), and returns once all results
// are settled. Status and result endpoints keep serving; only POST
// /v1/runs refuses, with 503. Safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/schemes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, NameList{Schemes: secmem.Names()})
	})
	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, NameList{Benchmarks: workload.Names()})
	})
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/snapshots", s.handleSnapshotGet)
	mux.HandleFunc("PUT /v1/snapshots", s.handleSnapshotPut)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, resp ErrorResponse) {
	writeJSON(w, code, resp)
}

// handleSubmit validates, dedups, and enqueues one run.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	// Validate before enqueue: a job that reaches the queue can only
	// fail in simulation, never on name resolution.
	if _, err := workload.Get(req.Benchmark); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{
			Error:           err.Error(),
			ValidBenchmarks: workload.Names(),
		})
		return
	}
	sc, err := secmem.ByName(req.Scheme, s.cfg.ProtectedBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{
			Error:        err.Error(),
			ValidSchemes: secmem.Names(),
		})
		return
	}
	if req.MaxInstructions != 0 && req.MaxInstructions != s.cfg.MaxInstructions {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
			"budget mismatch: request asserts %d instructions/run, daemon runs %d",
			req.MaxInstructions, s.cfg.MaxInstructions)})
		return
	}
	if req.Seed != 0 {
		if _, ok := s.cfg.Backend.(SeedBackend); !ok {
			writeError(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
				"seed %d rejected: this daemon's backend is not seed-aware", req.Seed)})
			return
		}
	}
	key := req.Key()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining; not accepting new runs"})
		return
	}
	if dup, ok := s.pending[key]; ok {
		s.deduped++
		s.mu.Unlock()
		status := dup.snapshot()
		status.Deduped = true
		writeJSON(w, http.StatusOK, status)
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("run-%06d", s.nextID), req, sc, key)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.pending[key] = j
		s.queued++
		s.accepted++
		s.mu.Unlock()
		s.persist(j)
		writeJSON(w, http.StatusAccepted, j.snapshot())
	default:
		s.rejected++
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, ErrorResponse{
			Error:             fmt.Sprintf("queue full (%d jobs waiting)", cap(s.queue)),
			RetryAfterSeconds: retry,
		})
	}
}

// retryAfterLocked estimates, in whole seconds, when a queue slot will
// plausibly free up: one second as a floor plus one per wave of queued
// jobs ahead of the caller. Deliberately coarse — it is advice, not a
// reservation.
func (s *Server) retryAfterLocked() int {
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	return 1 + s.queued/workers
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorResponse{Error: "unknown run id"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleResult serves a finished run through the canonical harness
// renderers, so the body is byte-identical to local CLI output.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorResponse{Error: "unknown run id"})
		return
	}
	st, err, done := j.result()
	if !done {
		writeError(w, http.StatusConflict, ErrorResponse{Error: "run not finished; poll /v1/runs/{id} or stream /v1/runs/{id}/events"})
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		harness.WriteRunJSON(w, st)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		harness.WriteRunCSV(w, st)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, harness.Report(st, j.sc))
	default:
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown format %q (json, csv, text)", format)})
	}
}

// handleEvents streams job progress as server-sent events: the full
// history first, then live transitions, ending when the job settles or
// the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorResponse{Error: "unknown run id"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, ErrorResponse{Error: "streaming unsupported by connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.subscribe()
	defer cancel()
	emit := func(ev Event) {
		blob, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, blob)
		flusher.Flush()
	}
	for _, ev := range replay {
		emit(ev)
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // terminal transition closed the stream
			}
			emit(ev)
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": draining})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sz := Statsz{
		QueueDepth:      s.queued,
		QueueCapacity:   cap(s.queue),
		Workers:         s.cfg.Workers,
		InFlight:        s.inFlight,
		Accepted:        s.accepted,
		Deduped:         s.deduped,
		Rejected:        s.rejected,
		Completed:       s.completed,
		Failed:          s.failed,
		Draining:        s.draining,
		MaxInstructions: s.cfg.MaxInstructions,
	}
	if len(s.completedByScheme) > 0 {
		sz.CompletedByScheme = make(map[string]uint64, len(s.completedByScheme))
		for k, v := range s.completedByScheme {
			sz.CompletedByScheme[k] = v
		}
	}
	s.mu.Unlock()
	if mb, ok := s.cfg.Backend.(metricsBackend); ok {
		m := mb.Metrics()
		sz.Cache = &CacheStatsz{Lookups: m.Lookups, Executions: m.Executions, HitRate: m.HitRate()}
	}
	writeJSON(w, http.StatusOK, sz)
}
