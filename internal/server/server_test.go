// Integration tests for plutusd's serving core, written against the
// public wire surface (httptest + the Go client) so they double as
// client tests. The acceptance trio from the daemon design:
//
//	(a) two concurrent identical submissions share one execution,
//	(b) a full queue yields 429 with Retry-After,
//	(c) a result fetched over HTTP is byte-identical to CLI output.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
	"github.com/plutus-gpu/plutus/internal/server/client"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// fakeBackend is a gated Backend: each run reports on started, then
// blocks until the test closes (or feeds) release. It lets tests hold
// jobs in flight deterministically, without simulating anything.
type fakeBackend struct {
	mu      sync.Mutex
	runs    int
	started chan string
	release chan struct{}
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{started: make(chan string, 16), release: make(chan struct{})}
}

func (f *fakeBackend) RunContext(_ context.Context, bench string, sc secmem.Config) (*stats.Stats, error) {
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	f.started <- bench
	<-f.release
	return &stats.Stats{Benchmark: bench, Scheme: sc.Scheme, Instructions: 1, Cycles: 1}, nil
}

func (f *fakeBackend) runCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs
}

// startServer boots a Server over httptest and returns a client bound
// to it. Cleanup releases any gated jobs and drains.
func startServer(t *testing.T, cfg server.Config, fb *fakeBackend) (*server.Server, *client.Client) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if fb != nil {
			fb.mu.Lock()
			select {
			case <-fb.release:
			default:
				close(fb.release)
			}
			fb.mu.Unlock()
		}
		s.Drain()
		ts.Close()
	})
	return s, client.New(ts.URL)
}

func waitStarted(t *testing.T, fb *fakeBackend) string {
	t.Helper()
	select {
	case b := <-fb.started:
		return b
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a job to reach the backend")
		return ""
	}
}

// TestConcurrentIdenticalSubmissionsShareOneExecution is acceptance (a):
// while one bfs/pssm job is in flight, an identical submission must not
// enqueue a second job — it returns the same run, marked Deduped, and
// the backend runs exactly once.
func TestConcurrentIdenticalSubmissionsShareOneExecution(t *testing.T) {
	fb := newFakeBackend()
	_, c := startServer(t, server.Config{Backend: fb, Workers: 2, QueueDepth: 4}, fb)
	ctx := context.Background()

	first, err := c.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, fb) // the job is now running, not just queued

	second, err := c.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped {
		t.Error("second identical submission was not marked Deduped")
	}
	if second.ID != first.ID {
		t.Errorf("dedup returned a different run: %s vs %s", second.ID, first.ID)
	}

	close(fb.release)
	final, err := c.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("run finished in state %q: %s", final.State, final.Error)
	}
	if got := fb.runCount(); got != 1 {
		t.Errorf("backend executed %d times for two identical submissions, want 1", got)
	}

	sz, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Accepted != 1 || sz.Deduped != 1 {
		t.Errorf("statsz = accepted %d / deduped %d, want 1 / 1", sz.Accepted, sz.Deduped)
	}
}

// TestQueueFullYields429 is acceptance (b): with one worker held in
// flight and a depth-1 queue occupied, the next distinct submission is
// rejected with 429, a Retry-After header, and the same advice in the
// JSON body.
func TestQueueFullYields429(t *testing.T) {
	fb := newFakeBackend()
	_, c := startServer(t, server.Config{Backend: fb, Workers: 1, QueueDepth: 1}, fb)
	ctx := context.Background()

	if _, err := c.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"}); err != nil {
		t.Fatal(err)
	}
	waitStarted(t, fb) // worker occupied
	if _, err := c.Submit(ctx, server.RunRequest{Benchmark: "hotspot", Scheme: "pssm"}); err != nil {
		t.Fatal(err) // fills the queue
	}

	// Raw HTTP so the Retry-After header itself is observable.
	body, _ := json.Marshal(server.RunRequest{Benchmark: "kmeans", Scheme: "pssm"})
	resp, err := http.Post(c.BaseURL()+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header = %q, want a positive integer", ra)
	}
	var er server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RetryAfterSeconds < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", er.RetryAfterSeconds)
	}

	// The client maps the same response to QueueFullError.
	if _, err := c.Submit(ctx, server.RunRequest{Benchmark: "srad", Scheme: "pssm"}); err == nil {
		t.Error("client submit on a full queue did not error")
	} else if qf := new(client.QueueFullError); !asQueueFull(err, &qf) {
		t.Errorf("client error = %v, want *client.QueueFullError", err)
	} else if qf.RetryAfter < time.Second {
		t.Errorf("client RetryAfter = %s, want >= 1s", qf.RetryAfter)
	}
}

func asQueueFull(err error, out **client.QueueFullError) bool {
	qf, ok := err.(*client.QueueFullError)
	if ok {
		*out = qf
	}
	return ok
}

// TestResultByteIdenticalToCLI is acceptance (c): results served over
// HTTP in every format must match, byte for byte, what the CLI renders
// locally for the same run through the shared harness renderers.
func TestResultByteIdenticalToCLI(t *testing.T) {
	hcfg := harness.Config{
		ProtectedBytes:  128 << 20,
		MaxInstructions: 3000,
		Benchmarks:      []string{"bfs"},
		Parallelism:     2,
	}
	_, c := startServer(t, server.Config{
		Backend:         harness.NewRunner(hcfg),
		Workers:         2,
		QueueDepth:      4,
		MaxInstructions: hcfg.MaxInstructions,
		ProtectedBytes:  hcfg.ProtectedBytes,
	}, nil)
	ctx := context.Background()

	st, err := c.Run(ctx, server.RunRequest{
		Benchmark:       "bfs",
		Scheme:          "pssm",
		MaxInstructions: hcfg.MaxInstructions,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("run finished in state %q: %s", st.State, st.Error)
	}

	// Independent local "CLI" rendering of the identical run.
	local := harness.NewRunner(hcfg)
	sc := secmem.PSSM(hcfg.ProtectedBytes)
	lst, err := local.Run("bfs", sc)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV strings.Builder
	if err := harness.WriteRunJSON(&wantJSON, lst); err != nil {
		t.Fatal(err)
	}
	if err := harness.WriteRunCSV(&wantCSV, lst); err != nil {
		t.Fatal(err)
	}
	for _, w := range []struct{ name, body string }{
		{"json", wantJSON.String()},
		{"csv", wantCSV.String()},
		{"text", harness.Report(lst, sc)},
	} {
		got, err := c.Result(ctx, st.ID, w.name)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if string(got) != w.body {
			t.Errorf("%s result over HTTP differs from CLI rendering:\n got: %q\nwant: %q",
				w.name, got, w.body)
		}
	}
}

// TestEventsStreamReplayAndLive: an SSE subscriber sees the full ordered
// lifecycle — history replayed first, live transitions after — and the
// stream terminates on its own at the terminal state.
func TestEventsStreamReplayAndLive(t *testing.T) {
	fb := newFakeBackend()
	_, c := startServer(t, server.Config{Backend: fb, Workers: 1, QueueDepth: 2}, fb)
	ctx := context.Background()

	st, err := c.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "nosec"})
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, fb)

	done := make(chan []server.Event, 1)
	go func() {
		var evs []server.Event
		if err := c.Events(ctx, st.ID, func(ev server.Event) { evs = append(evs, ev) }); err != nil {
			t.Error(err)
		}
		done <- evs
	}()
	time.Sleep(50 * time.Millisecond) // let the subscriber attach mid-run
	close(fb.release)

	select {
	case evs := <-done:
		states := make([]server.State, len(evs))
		for i, ev := range evs {
			if ev.Seq != i+1 {
				t.Errorf("event %d has seq %d", i, ev.Seq)
			}
			states[i] = ev.State
		}
		want := []server.State{server.StateQueued, server.StateRunning, server.StateDone}
		if len(states) != len(want) {
			t.Fatalf("states = %v, want %v", states, want)
		}
		for i := range want {
			if states[i] != want[i] {
				t.Fatalf("states = %v, want %v", states, want)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not terminate")
	}
}

// TestDrainFinishesInFlightAndRefusesNew: Drain must carry an in-flight
// job to completion (its result stays fetchable) while new submissions
// are refused with 503.
func TestDrainFinishesInFlightAndRefusesNew(t *testing.T) {
	fb := newFakeBackend()
	s, c := startServer(t, server.Config{Backend: fb, Workers: 1, QueueDepth: 2}, fb)
	ctx := context.Background()

	st, err := c.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "plutus"})
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, fb)

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Draining state is set synchronously before Drain blocks on workers,
	// but give the goroutine a beat to get there.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sz, err := c.Statsz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sz.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := c.Submit(ctx, server.RunRequest{Benchmark: "hotspot", Scheme: "plutus"}); err == nil {
		t.Error("submit during drain succeeded, want 503")
	} else if !strings.Contains(err.Error(), "503") {
		t.Errorf("submit during drain: %v, want an HTTP 503", err)
	}

	close(fb.release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the in-flight job was released")
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Errorf("in-flight job after drain: state %q, want done", final.State)
	}
	if _, err := c.Result(ctx, st.ID, "json"); err != nil {
		t.Errorf("result not fetchable after drain: %v", err)
	}
}

// TestValidationRejectsBeforeEnqueue: unknown names and budget
// mismatches are 400s carrying the valid sets, and nothing reaches the
// queue or backend.
func TestValidationRejectsBeforeEnqueue(t *testing.T) {
	fb := newFakeBackend()
	_, c := startServer(t, server.Config{Backend: fb, Workers: 1, QueueDepth: 2, MaxInstructions: 3000}, fb)
	ctx := context.Background()

	post := func(req server.RunRequest) (*http.Response, server.ErrorResponse) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(c.BaseURL()+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return resp, er
	}

	resp, er := post(server.RunRequest{Benchmark: "no-such-bench", Scheme: "pssm"})
	if resp.StatusCode != http.StatusBadRequest || len(er.ValidBenchmarks) == 0 {
		t.Errorf("unknown benchmark: status %d, valid list %v", resp.StatusCode, er.ValidBenchmarks)
	}
	resp, er = post(server.RunRequest{Benchmark: "bfs", Scheme: "no-such-scheme"})
	if resp.StatusCode != http.StatusBadRequest || len(er.ValidSchemes) == 0 {
		t.Errorf("unknown scheme: status %d, valid list %v", resp.StatusCode, er.ValidSchemes)
	}
	resp, _ = post(server.RunRequest{Benchmark: "bfs", Scheme: "pssm", MaxInstructions: 999})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("budget mismatch: status %d, want 400", resp.StatusCode)
	}
	if got := fb.runCount(); got != 0 {
		t.Errorf("backend ran %d times on invalid submissions, want 0", got)
	}

	// Discovery endpoints advertise the same sets the validator uses.
	schemes, err := c.Schemes(ctx)
	if err != nil || len(schemes) == 0 {
		t.Fatalf("Schemes() = %v, %v", schemes, err)
	}
	benches, err := c.Benchmarks(ctx)
	if err != nil || len(benches) == 0 {
		t.Fatalf("Benchmarks() = %v, %v", benches, err)
	}
}

// TestStatszReportsCacheHitRate: with the real harness backend, two
// sequential identical runs produce two accepted jobs but one execution,
// visible through /debug/statsz's cache block.
func TestStatszReportsCacheHitRate(t *testing.T) {
	hcfg := harness.Config{
		ProtectedBytes:  128 << 20,
		MaxInstructions: 3000,
		Benchmarks:      []string{"bfs"},
		Parallelism:     2,
	}
	_, c := startServer(t, server.Config{
		Backend:        harness.NewRunner(hcfg),
		Workers:        1,
		QueueDepth:     2,
		ProtectedBytes: hcfg.ProtectedBytes,
	}, nil)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		st, err := c.Run(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "nosec"})
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("run %d finished in state %q: %s", i, st.State, st.Error)
		}
	}
	sz, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Cache == nil {
		t.Fatal("statsz.Cache missing for a harness-backed server")
	}
	if sz.Cache.Executions != 1 || sz.Cache.Lookups != 2 {
		t.Errorf("cache = %d executions / %d lookups, want 1 / 2", sz.Cache.Executions, sz.Cache.Lookups)
	}
	if sz.Cache.HitRate != 0.5 {
		t.Errorf("cache hit rate = %v, want 0.5", sz.Cache.HitRate)
	}
	if sz.Accepted != 2 || sz.Completed != 2 {
		t.Errorf("statsz accepted/completed = %d/%d, want 2/2", sz.Accepted, sz.Completed)
	}
}
