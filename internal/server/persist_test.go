// Tests for plutusd's crash-recovery surface: job records persisted to
// -state-dir survive a daemon restart (finished jobs keep serving their
// results; unfinished jobs are re-enqueued), and a checkpointing backend
// that parks a run with ErrPreempted sees the job requeued rather than
// failed.
package server_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// TestResultsSurviveRestart: a finished job's result is served by a
// restarted daemon from its persisted record — without re-simulating —
// and fresh ids continue past the recovered ones instead of colliding.
func TestResultsSurviveRestart(t *testing.T) {
	stateDir := t.TempDir()
	hcfg := harness.Config{
		ProtectedBytes:  128 << 20,
		MaxInstructions: 3000,
		Benchmarks:      []string{"bfs"},
	}
	scfg := server.Config{
		Workers:        1,
		QueueDepth:     2,
		ProtectedBytes: hcfg.ProtectedBytes,
		StateDir:       stateDir,
	}
	ctx := context.Background()

	scfg.Backend = harness.NewRunner(hcfg)
	_, c1 := startServer(t, scfg, nil)
	st, err := c1.Run(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "plutus"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("run finished in state %q: %s", st.State, st.Error)
	}
	want, err := c1.Result(ctx, st.ID, "json")
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a new server over the same state dir, fresh backend.
	scfg.Backend = harness.NewRunner(hcfg)
	_, c2 := startServer(t, scfg, nil)
	recovered, err := c2.Status(ctx, st.ID)
	if err != nil {
		t.Fatalf("recovered job not found after restart: %v", err)
	}
	if recovered.State != server.StateDone {
		t.Fatalf("recovered job state = %q, want done", recovered.State)
	}
	got, err := c2.Result(ctx, st.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("recovered result differs from original:\n got: %s\nwant: %s", got, want)
	}
	sz, err := c2.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Cache != nil && sz.Cache.Executions != 0 {
		t.Errorf("restarted daemon re-simulated %d times to serve a persisted result", sz.Cache.Executions)
	}

	// A new submission must not reuse the recovered id.
	st2, err := c2.Run(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Errorf("fresh id %s collides with recovered job", st2.ID)
	}
	if st2.ID != "run-000002" {
		t.Errorf("fresh id = %s, want run-000002 (continuing past recovered run-000001)", st2.ID)
	}
}

// TestBootReenqueuesUnfinishedJobs: jobs that were queued or running
// when the daemon died (their disk records say "queued") are re-run on
// boot and settle under their original ids.
func TestBootReenqueuesUnfinishedJobs(t *testing.T) {
	fb := newFakeBackend()
	liveDir := t.TempDir()
	_, c1 := startServer(t, server.Config{
		Backend: fb, Workers: 1, QueueDepth: 2, StateDir: liveDir,
	}, fb)
	ctx := context.Background()

	// One job running, one queued — both persisted as unfinished.
	first, err := c1.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, fb)
	second, err := c1.Submit(ctx, server.RunRequest{Benchmark: "hotspot", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}

	// Capture the state dir as a SIGKILL would have left it: both records
	// on disk, neither settled.
	crashDir := t.TempDir()
	ents, err := os.ReadDir(liveDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("persisted %d records mid-flight, want 2", len(ents))
	}
	for _, e := range ents {
		blob, err := os.ReadFile(filepath.Join(liveDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Boot a recovered daemon from the crash image.
	fb2 := newFakeBackend()
	close(fb2.release) // recovered runs finish immediately
	_, c2 := startServer(t, server.Config{
		Backend: fb2, Workers: 1, QueueDepth: 2, StateDir: crashDir,
	}, nil)
	for _, id := range []string{first.ID, second.ID} {
		final, err := c2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("recovered job %s: %v", id, err)
		}
		if final.State != server.StateDone {
			t.Fatalf("recovered job %s settled %q: %s", id, final.State, final.Error)
		}
	}
	if got := fb2.runCount(); got != 2 {
		t.Errorf("recovered daemon ran %d jobs, want 2", got)
	}
	st, err := c2.Submit(ctx, server.RunRequest{Benchmark: "kmeans", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "run-000003" {
		t.Errorf("post-recovery id = %s, want run-000003", st.ID)
	}
}

// preemptBackend parks each job's first run with ErrPreempted — as a
// checkpointing harness does when its slice context expires — and
// completes it on the retry. When gate is set, first slices block on it
// before parking, so a test can line up queue state deterministically.
type preemptBackend struct {
	mu    sync.Mutex
	calls map[string]int
	gate  chan struct{}
}

func (p *preemptBackend) RunContext(_ context.Context, bench string, sc secmem.Config) (*stats.Stats, error) {
	p.mu.Lock()
	if p.calls == nil {
		p.calls = make(map[string]int)
	}
	p.calls[bench]++
	first := p.calls[bench] == 1
	gate := p.gate
	p.mu.Unlock()
	if first {
		if gate != nil {
			<-gate
		}
		return nil, fmt.Errorf("fake: parked at cycle 1000: %w", checkpoint.ErrPreempted)
	}
	return &stats.Stats{Benchmark: bench, Scheme: sc.Scheme, Instructions: 1, Cycles: 1}, nil
}

// TestPreemptedJobIsRequeuedAndFinishes: a run parked at its slice
// boundary cycles back through the queue (visible as a second queued
// event) and settles done on its next slice — it must not fail.
func TestPreemptedJobIsRequeuedAndFinishes(t *testing.T) {
	pb := &preemptBackend{}
	_, c := startServer(t, server.Config{
		Backend: pb, Workers: 1, QueueDepth: 4, PreemptSlice: 1, // any nonzero slice
	}, nil)
	ctx := context.Background()

	st, err := c.Run(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("preempted job settled %q: %s", st.State, st.Error)
	}
	var evs []server.Event
	if err := c.Events(ctx, st.ID, func(ev server.Event) { evs = append(evs, ev) }); err != nil {
		t.Fatal(err)
	}
	var states []server.State
	for _, ev := range evs {
		states = append(states, ev.State)
	}
	want := []server.State{
		server.StateQueued, server.StateRunning, // first slice
		server.StateQueued, server.StateRunning, // requeued after preemption
		server.StateDone,
	}
	if len(states) != len(want) {
		t.Fatalf("lifecycle = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("lifecycle = %v, want %v", states, want)
		}
	}
	sz, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Completed != 1 || sz.Failed != 0 || sz.InFlight != 0 || sz.QueueDepth != 0 {
		t.Errorf("statsz = completed %d failed %d inflight %d queued %d, want 1/0/0/0",
			sz.Completed, sz.Failed, sz.InFlight, sz.QueueDepth)
	}
}

// TestPreemptedJobRunsInlineWhenQueueFull: when the queue has no room,
// a preempted job keeps its worker and runs its next slice immediately
// instead of deadlocking or failing; the waiting job still runs after.
func TestPreemptedJobRunsInlineWhenQueueFull(t *testing.T) {
	pb := &preemptBackend{gate: make(chan struct{})}
	_, c := startServer(t, server.Config{
		Backend: pb, Workers: 1, QueueDepth: 1, PreemptSlice: 1,
	}, nil)
	ctx := context.Background()

	// Saturate: the first bfs slice holds at the gate until a second
	// distinct job occupies the depth-1 queue, so when bfs parks, the
	// requeue path is closed and the job must continue inline.
	first, err := c.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, server.RunRequest{Benchmark: "hotspot", Scheme: "pssm"})
	if err != nil {
		t.Fatal(err)
	}
	close(pb.gate) // bfs now parks into a full queue
	for _, id := range []string{first.ID, second.ID} {
		final, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != server.StateDone {
			t.Fatalf("job %s settled %q: %s", id, final.State, final.Error)
		}
	}
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.calls["bfs"] != 2 || pb.calls["hotspot"] != 2 {
		t.Errorf("slices = bfs %d / hotspot %d, want 2 / 2", pb.calls["bfs"], pb.calls["hotspot"])
	}
}
