package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders the /debug/statsz counters in the Prometheus
// text exposition format (version 0.0.4). The cluster coordinator's
// scheduler scrapes this to weigh worker placement; any Prometheus
// agent can too. The output is deterministic: families in fixed order,
// per-scheme series sorted by label value.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := s.queued
	inFlight := s.inFlight
	accepted := s.accepted
	deduped := s.deduped
	rejected := s.rejected
	completed := s.completed
	failed := s.failed
	draining := s.draining
	byScheme := make(map[string]uint64, len(s.completedByScheme))
	for k, v := range s.completedByScheme {
		byScheme[k] = v
	}
	s.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("plutusd_queue_depth", "Jobs accepted but not yet picked up by a worker.", float64(queued))
	gauge("plutusd_queue_capacity", "Bound of the accepted-but-not-running FIFO.", float64(cap(s.queue)))
	gauge("plutusd_workers", "Worker-pool size.", float64(s.cfg.Workers))
	gauge("plutusd_inflight_runs", "Runs currently holding a worker.", float64(inFlight))
	drainingV := 0.0
	if draining {
		drainingV = 1
	}
	gauge("plutusd_draining", "1 while the daemon refuses new submissions.", drainingV)
	counter("plutusd_runs_accepted_total", "Submissions accepted into the queue.", accepted)
	counter("plutusd_runs_deduped_total", "Submissions coalesced onto an in-flight identical run.", deduped)
	counter("plutusd_runs_rejected_total", "Submissions rejected with 429 (queue full).", rejected)
	counter("plutusd_runs_completed_total", "Runs settled successfully.", completed)
	counter("plutusd_runs_failed_total", "Runs settled with an error.", failed)

	fmt.Fprintf(&b, "# HELP plutusd_scheme_runs_completed_total Runs settled successfully, by security scheme.\n")
	fmt.Fprintf(&b, "# TYPE plutusd_scheme_runs_completed_total counter\n")
	schemes := make([]string, 0, len(byScheme))
	for k := range byScheme {
		schemes = append(schemes, k)
	}
	sort.Strings(schemes)
	for _, sc := range schemes {
		fmt.Fprintf(&b, "plutusd_scheme_runs_completed_total{scheme=%q} %d\n", sc, byScheme[sc])
	}

	if mb, ok := s.cfg.Backend.(metricsBackend); ok {
		m := mb.Metrics()
		counter("plutusd_cache_lookups_total", "Run-cache lookups (Run/RunContext calls).", m.Lookups)
		counter("plutusd_cache_executions_total", "Simulations actually executed (cache misses).", m.Executions)
		gauge("plutusd_cache_hit_rate", "Fraction of lookups served without a fresh simulation.", m.HitRate())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
