package server

import (
	"sync"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// maxEventsPerJob bounds a subscriber channel so transition can always
// send without blocking: an unpreempted job emits at most one event per
// state plus its creation event, far below this. Preemption adds two
// events per requeue; a slow subscriber on a many-times-preempted job
// loses intermediate events, never the terminal one it waits for.
const maxEventsPerJob = 8

// job is one accepted run moving through the queue. All mutable state
// is guarded by mu; done is closed exactly once, on the transition to a
// terminal state.
type job struct {
	id  string
	req RunRequest
	sc  secmem.Config
	key string // dedup key, mirrors harness's cache key inputs

	mu     sync.Mutex
	state  State
	st     *stats.Stats
	err    error
	events []Event
	subs   []chan Event
	done   chan struct{}
}

func newJob(id string, req RunRequest, sc secmem.Config, key string) *job {
	j := &job{id: id, req: req, sc: sc, key: key, done: make(chan struct{})}
	j.transition(StateQueued, "accepted")
	return j
}

// transition moves the job to state, records the event, and fans it out
// to subscribers. Terminal transitions close every subscriber channel
// and the done latch.
func (j *job) transition(state State, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.transitionLocked(state, msg)
}

func (j *job) transitionLocked(state State, msg string) {
	j.state = state
	ev := Event{Seq: len(j.events) + 1, State: state, Message: msg}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // subscriber channel full — only a many-times-preempted job gets here; drop
		}
	}
	if state.Terminal() {
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
		close(j.done)
	}
}

// complete settles the job successfully.
func (j *job) complete(st *stats.Stats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.st = st
	j.transitionLocked(StateDone, "simulation finished")
}

// fail settles the job with an error.
func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.err = err
	j.transitionLocked(StateFailed, err.Error())
}

// snapshot returns the job's wire representation.
func (j *job) snapshot() RunStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := RunStatus{
		ID:        j.id,
		Benchmark: j.req.Benchmark,
		Scheme:    j.sc.Scheme,
		Seed:      j.req.Seed,
		State:     j.state,
		Stats:     j.st,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// currentState returns the job's lifecycle position.
func (j *job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// result returns the settled outcome; ok is false until terminal.
func (j *job) result() (st *stats.Stats, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st, j.err, j.state.Terminal()
}

// subscribe returns the event history so far plus a live channel that
// receives subsequent events and is closed at the terminal transition
// (immediately, via a closed channel, if the job already finished).
// cancel detaches the live channel early.
func (j *job) subscribe() (replay []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch := make(chan Event, maxEventsPerJob)
	if j.state.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	j.subs = append(j.subs, ch)
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
}
