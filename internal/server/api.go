// Package server implements plutusd's serving core: an HTTP/JSON API
// over harness.Runner with a bounded FIFO job queue, a configurable
// worker pool, server-sent-event progress streams, backpressure, and
// graceful drain.
//
// The wire protocol (version v1):
//
//	POST /v1/runs                 submit a run        → 202 RunStatus
//	                              duplicate in flight → 200 RunStatus (Deduped)
//	                              queue full          → 429 + Retry-After
//	                              draining            → 503
//	GET  /v1/runs/{id}            status/result       → 200 RunStatus
//	GET  /v1/runs/{id}/events     SSE progress stream
//	GET  /v1/runs/{id}/result     finished run, ?format=json|csv|text
//	GET  /v1/schemes              scheme names secmem.ByName accepts
//	GET  /v1/benchmarks           workload names
//	GET  /healthz                 liveness
//	GET  /debug/statsz            queue/worker/cache snapshot
//	GET  /metrics                 Prometheus text exposition of the statsz counters
//	GET  /v1/snapshots            latest PLUTSNAP for a (benchmark, scheme, seed) cell
//	PUT  /v1/snapshots            install a migrated PLUTSNAP before resubmitting its run
//
// Results are rendered by the same internal/harness functions the CLI
// uses (Report, WriteRunJSON, WriteRunCSV), so bytes fetched over the
// wire are identical to the bytes `plutussim` prints for the same run.
package server

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/stats"
)

// RunRequest is the POST /v1/runs body.
type RunRequest struct {
	// Benchmark is a workload name (see GET /v1/benchmarks).
	Benchmark string `json:"benchmark"`
	// Scheme is a secmem.ByName scheme (see GET /v1/schemes).
	Scheme string `json:"scheme"`
	// Seed perturbs the workload instantiation (zero = the canonical
	// one; see workload.GetSeeded). Distinct seeds are distinct runs
	// with their own dedup keys and snapshot files. Requires a
	// seed-aware Backend; a daemon without one rejects nonzero seeds
	// with 400.
	Seed uint64 `json:"seed,omitempty"`
	// MaxInstructions, when nonzero, asserts the daemon's per-run
	// budget; a mismatch is rejected with 400 so a client never
	// silently compares results simulated under a different budget.
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
}

// Key returns the request's dedup key: the (benchmark, scheme, seed)
// cell identity, mirroring the harness run-cache key inputs the daemon
// controls (budget and protected range are daemon-wide). Seed zero is
// omitted so every pre-seed key stays stable.
func (r RunRequest) Key() string {
	k := r.Benchmark + "|" + r.Scheme
	if r.Seed != 0 {
		k += fmt.Sprintf("|seed=%d", r.Seed)
	}
	return k
}

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued → Running → Done | Failed.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// RunStatus describes one submitted run. Stats is set once State is
// StateDone; Error once StateFailed.
type RunStatus struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Seed      uint64 `json:"seed,omitempty"`
	State     State  `json:"state"`
	// Deduped is set on a submit response when an identical run was
	// already queued or running and that job was returned instead of
	// enqueuing a duplicate.
	Deduped bool         `json:"deduped,omitempty"`
	Error   string       `json:"error,omitempty"`
	Stats   *stats.Stats `json:"stats,omitempty"`
}

// Event is one SSE progress record on GET /v1/runs/{id}/events. Seq
// increases from 1 within a job; a late subscriber receives the full
// history before live events.
type Event struct {
	Seq     int    `json:"seq"`
	State   State  `json:"state"`
	Message string `json:"message,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
	// ValidSchemes/ValidBenchmarks accompany 400s for unknown names so
	// clients can self-correct without a second round trip.
	ValidSchemes    []string `json:"valid_schemes,omitempty"`
	ValidBenchmarks []string `json:"valid_benchmarks,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429s.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// NameList is the body of the discovery endpoints.
type NameList struct {
	Schemes    []string `json:"schemes,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
}

// CacheStatsz is the runner single-flight cache slice of Statsz.
type CacheStatsz struct {
	Lookups    uint64  `json:"lookups"`
	Executions uint64  `json:"executions"`
	HitRate    float64 `json:"hit_rate"`
}

// Statsz is the /debug/statsz snapshot.
type Statsz struct {
	QueueDepth      int          `json:"queue_depth"`
	QueueCapacity   int          `json:"queue_capacity"`
	Workers         int          `json:"workers"`
	InFlight        int          `json:"in_flight"`
	Accepted        uint64       `json:"accepted"`
	Deduped         uint64       `json:"deduped"`
	Rejected        uint64       `json:"rejected"`
	Completed       uint64       `json:"completed"`
	Failed          uint64       `json:"failed"`
	Draining        bool         `json:"draining"`
	MaxInstructions uint64       `json:"max_instructions"`
	Cache           *CacheStatsz `json:"cache,omitempty"`
	// CompletedByScheme counts successfully completed runs per scheme
	// (encoding/json sorts map keys, so the rendering is deterministic).
	CompletedByScheme map[string]uint64 `json:"completed_by_scheme,omitempty"`
}
