package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// persistedJob is the on-disk record of one job, written to
// Config.StateDir as <id>.json. Finished jobs carry their settled result
// so a restarted daemon keeps serving them; unfinished jobs are recorded
// as queued and re-enqueued on boot — together with the harness's
// snapshot files this is what makes a daemon kill lossless.
type persistedJob struct {
	ID      string       `json:"id"`
	Request RunRequest   `json:"request"`
	State   State        `json:"state"`
	Error   string       `json:"error,omitempty"`
	Stats   *stats.Stats `json:"stats,omitempty"`
}

// persist writes j's current state to the state dir (atomically, so a
// kill mid-write never corrupts a record). No-op without a StateDir.
func (s *Server) persist(j *job) {
	if s.cfg.StateDir == "" {
		return
	}
	j.mu.Lock()
	p := persistedJob{ID: j.id, Request: j.req, State: j.state, Stats: j.st}
	if j.err != nil {
		p.Error = j.err.Error()
	}
	j.mu.Unlock()
	// A job that has not settled is recorded as queued: if the daemon
	// dies while it runs, the restarted daemon must run it again (the
	// checkpointed backend resumes it from its last snapshot).
	if !p.State.Terminal() {
		p.State = StateQueued
	}
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(s.cfg.StateDir, p.ID+".json")
	if err := checkpoint.WriteFileAtomic(path, blob); err != nil {
		fmt.Fprintf(os.Stderr, "plutusd: persist %s: %v\n", p.ID, err)
	}
}

// recoverState loads every persisted job from dir. Terminal jobs are
// returned settled (for result serving); the rest are returned as
// pending, to be re-enqueued. maxID is the highest numeric job id seen,
// so fresh ids never collide with recovered ones.
func recoverState(dir string, protectedBytes uint64) (settled, pending []*job, maxID int, err error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, err
	}
	var recs []persistedJob
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		blob, rerr := os.ReadFile(filepath.Join(dir, e.Name()))
		if rerr != nil {
			return nil, nil, 0, rerr
		}
		var p persistedJob
		if jerr := json.Unmarshal(blob, &p); jerr != nil {
			return nil, nil, 0, fmt.Errorf("state record %s: %w", e.Name(), jerr)
		}
		recs = append(recs, p)
	}
	// Deterministic recovery order: by id, which is also submission order.
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	for _, p := range recs {
		var n int
		if _, serr := fmt.Sscanf(p.ID, "run-%06d", &n); serr == nil && n > maxID {
			maxID = n
		}
		sc, serr := secmem.ByName(p.Request.Scheme, protectedBytes)
		if serr != nil {
			return nil, nil, 0, fmt.Errorf("state record %s: %w", p.ID, serr)
		}
		j := newJob(p.ID, p.Request, sc, p.Request.Key())
		switch p.State {
		case StateDone:
			j.complete(p.Stats)
			settled = append(settled, j)
		case StateFailed:
			j.fail(errors.New(p.Error))
			settled = append(settled, j)
		default:
			pending = append(pending, j)
		}
	}
	return settled, pending, maxID, nil
}
