package client

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// TestBackoffWait pins the retry schedule's shape: exponential growth
// from Base, the server's advice as a floor, the cap as a ceiling —
// with jitter pinned to identity so the arithmetic is observable.
func TestBackoffWait(t *testing.T) {
	ident := func(d time.Duration) time.Duration { return d }
	b := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Factor: 2, Jitter: ident}.normalize()
	cases := []struct {
		attempt int
		advice  time.Duration
		want    time.Duration
	}{
		{0, 0, 100 * time.Millisecond},
		{1, 0, 200 * time.Millisecond},
		{2, 0, 400 * time.Millisecond},
		{0, time.Second, time.Second},          // advice floors the small exponential term
		{10, 0, 2 * time.Second},               // cap wins over 102.4 s
		{0, 30 * time.Second, 2 * time.Second}, // cap wins over advice too
		{200, time.Second, 2 * time.Second},    // overflow of the exponential term hits the cap
	}
	for _, c := range cases {
		if got := b.wait(c.attempt, c.advice); got != c.want {
			t.Errorf("wait(%d, %s) = %s, want %s", c.attempt, c.advice, got, c.want)
		}
	}
}

// TestBackoffJitterBounded: the default jitter keeps every wait inside
// (0, cap], never zero and never above the cap.
func TestBackoffJitterBounded(t *testing.T) {
	b := Backoff{}.normalize()
	for attempt := 0; attempt < 12; attempt++ {
		for i := 0; i < 50; i++ {
			w := b.wait(attempt, 700*time.Millisecond)
			if w <= 0 || w > b.Cap {
				t.Fatalf("wait(%d) = %s, outside (0, %s]", attempt, w, b.Cap)
			}
		}
	}
}

// drainBackend settles every run instantly; the queue pressure in the
// saturation test comes from a worker pool of one and a tiny sleep that
// keeps a run on the worker long enough for the queue to fill.
type drainBackend struct {
	hold time.Duration
	mu   sync.Mutex
	runs int
}

func (d *drainBackend) RunContext(_ context.Context, bench string, sc secmem.Config) (*stats.Stats, error) {
	time.Sleep(d.hold)
	d.mu.Lock()
	d.runs++
	d.mu.Unlock()
	return &stats.Stats{Benchmark: bench, Scheme: sc.Scheme, Cycles: 1, Instructions: 1}, nil
}

// TestSaturatedQueueDrainsThroughClient is the satellite acceptance:
// with one worker and a depth-1 queue, a burst of distinct submissions
// far over capacity must all eventually land — the client absorbs every
// 429 with capped jittered backoff and resubmits until the queue has
// room — and raw Submit must still surface QueueFullError immediately.
func TestSaturatedQueueDrainsThroughClient(t *testing.T) {
	fb := &drainBackend{hold: 20 * time.Millisecond}
	s := server.New(server.Config{Backend: fb, Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	benches := []string{"bfs", "hotspot", "kmeans", "srad", "stream", "sgemm"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, len(benches))
	sawFull := make(chan struct{}, len(benches))
	for _, bench := range benches {
		wg.Add(1)
		go func(bench string) {
			defer wg.Done()
			c := New(ts.URL)
			c.Backoff = Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, Factor: 2}
			// Prove the raw path still fails fast under saturation.
			if _, err := c.Submit(ctx, server.RunRequest{Benchmark: bench, Scheme: "pssm"}); err != nil {
				var full *QueueFullError
				if !errors.As(err, &full) {
					errs <- fmt.Errorf("%s: raw submit: %v", bench, err)
					return
				}
				sawFull <- struct{}{}
			}
			st, err := c.Run(ctx, server.RunRequest{Benchmark: bench, Scheme: "pssm"})
			if err != nil {
				errs <- fmt.Errorf("%s: %v", bench, err)
				return
			}
			if st.State != server.StateDone {
				errs <- fmt.Errorf("%s: state %s: %s", bench, st.State, st.Error)
			}
		}(bench)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(sawFull) == 0 {
		t.Error("queue never saturated; the test exercised no backpressure")
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.runs != len(benches) {
		t.Errorf("backend ran %d of %d distinct submissions", fb.runs, len(benches))
	}
}

// TestSubmitRetryMaxAttempts: a bounded policy gives up with the last
// QueueFullError instead of spinning forever.
func TestSubmitRetryMaxAttempts(t *testing.T) {
	fb := &drainBackend{hold: 500 * time.Millisecond} // holds the worker past every retry below
	s := server.New(server.Config{Backend: fb, Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx := context.Background()
	c := New(ts.URL)
	c.Backoff = Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, Factor: 2, MaxAttempts: 3}
	if _, err := c.Submit(ctx, server.RunRequest{Benchmark: "bfs", Scheme: "pssm"}); err != nil {
		t.Fatal(err) // occupies the worker
	}
	if _, err := c.SubmitRetry(ctx, server.RunRequest{Benchmark: "hotspot", Scheme: "pssm"}); err != nil {
		t.Fatal(err) // fills the depth-1 queue
	}
	_, err := c.SubmitRetry(ctx, server.RunRequest{Benchmark: "kmeans", Scheme: "pssm"})
	var full *QueueFullError
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want *QueueFullError after MaxAttempts", err)
	}
}
