// Package client is the thin Go client for plutusd's v1 API, used by
// `plutussim -remote` and the CI smoke job. It speaks the wire types of
// internal/server and adds the client-side conveniences the protocol
// deliberately leaves out: 429 retry with Retry-After, SSE consumption
// with a polling fallback, and a submit-wait-fetch one-shot.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/plutus-gpu/plutus/internal/server"
)

// Client talks to one plutusd instance.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval paces the polling fallback of Wait (default 100 ms).
	PollInterval time.Duration
	// Backoff paces 429 retries in SubmitRetry/Run. The zero value uses
	// DefaultBackoff.
	Backoff Backoff
}

// Backoff is the capped, jittered exponential retry policy the client
// applies when the daemon answers 429. The server's Retry-After advice
// is the floor of each wait; the exponential term takes over when the
// advice stays optimistic under sustained saturation, and the cap keeps
// a long-saturated queue from pushing waits beyond tail-latency budgets.
type Backoff struct {
	// Base is the first retry's wait before jitter (default 100 ms).
	Base time.Duration
	// Cap bounds every wait, advice included (default 5 s).
	Cap time.Duration
	// Factor multiplies the wait per attempt (default 2).
	Factor float64
	// MaxAttempts bounds the number of submissions; past it the last
	// QueueFullError is returned. Zero means retry until the context
	// cancels — the caller owns the deadline.
	MaxAttempts int
	// Jitter, when set, perturbs a computed wait (tests inject a fixed
	// function). Nil uses the default ±25% spread, which decorrelates a
	// thundering herd of clients all told to retry after the same advice.
	Jitter func(time.Duration) time.Duration
}

// DefaultBackoff is the policy used when Client.Backoff is zero.
var DefaultBackoff = Backoff{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Factor: 2}

func (b Backoff) normalize() Backoff {
	d := DefaultBackoff
	if b.Base <= 0 {
		b.Base = d.Base
	}
	if b.Cap <= 0 {
		b.Cap = d.Cap
	}
	if b.Factor < 1 {
		b.Factor = d.Factor
	}
	return b
}

// wait computes attempt's sleep (0-based): the larger of the server's
// advice and the exponential term, capped, then jittered.
func (b Backoff) wait(attempt int, advice time.Duration) time.Duration {
	w := time.Duration(float64(b.Base) * math.Pow(b.Factor, float64(attempt)))
	if w <= 0 || w > b.Cap { // <= 0: float→int64 overflow of the exponential term
		w = b.Cap
	}
	if w < advice {
		w = advice
	}
	if w > b.Cap {
		w = b.Cap
	}
	if b.Jitter != nil {
		w = b.Jitter(w)
	} else {
		// ±25%, full-jitter style: rand here is load-spreading, not
		// simulation state — the client is outside the determinism scope.
		w = w/2 + w/4 + time.Duration(rand.Int64N(int64(w/2)+1))
	}
	if w > b.Cap {
		w = b.Cap
	}
	return w
}

// New returns a Client for the daemon at base (e.g. "http://127.0.0.1:8091").
func New(base string) *Client {
	return &Client{
		base:         strings.TrimRight(base, "/"),
		hc:           &http.Client{},
		PollInterval: 100 * time.Millisecond,
	}
}

// BaseURL returns the daemon address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// QueueFullError reports a 429: the daemon's queue was full.
type QueueFullError struct {
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("plutusd queue full; retry after %s", e.RetryAfter)
}

// apiError decodes the server's ErrorResponse into a Go error.
func apiError(resp *http.Response, body []byte) error {
	var er server.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("plutusd: %s (HTTP %d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("plutusd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		var er server.ErrorResponse
		if json.Unmarshal(blob, &er) == nil && er.RetryAfterSeconds > 0 {
			retry = time.Duration(er.RetryAfterSeconds) * time.Second
		}
		return &QueueFullError{RetryAfter: retry}
	}
	if resp.StatusCode >= 400 {
		return apiError(resp, blob)
	}
	if out != nil {
		return json.Unmarshal(blob, out)
	}
	return nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Schemes lists the scheme names the daemon accepts.
func (c *Client) Schemes(ctx context.Context) ([]string, error) {
	var nl server.NameList
	if err := c.do(ctx, http.MethodGet, "/v1/schemes", nil, &nl); err != nil {
		return nil, err
	}
	return nl.Schemes, nil
}

// Benchmarks lists the workload names the daemon accepts.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var nl server.NameList
	if err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil, &nl); err != nil {
		return nil, err
	}
	return nl.Benchmarks, nil
}

// Statsz fetches the /debug/statsz snapshot.
func (c *Client) Statsz(ctx context.Context) (server.Statsz, error) {
	var sz server.Statsz
	err := c.do(ctx, http.MethodGet, "/debug/statsz", nil, &sz)
	return sz, err
}

// Submit enqueues one run. A full queue surfaces as *QueueFullError.
func (c *Client) Submit(ctx context.Context, req server.RunRequest) (server.RunStatus, error) {
	var st server.RunStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st)
	return st, err
}

// Status fetches a run's current RunStatus.
func (c *Client) Status(ctx context.Context, id string) (server.RunStatus, error) {
	var st server.RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st)
	return st, err
}

// Result fetches a finished run rendered as format ("json", "csv" or
// "text"), returning the raw body bytes — byte-identical to the local
// CLI rendering of the same run.
func (c *Client) Result(ctx context.Context, id, format string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/runs/"+id+"/result?format="+format, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, blob)
	}
	return blob, nil
}

// Events consumes the run's SSE stream, calling fn for every event
// (history first, then live) until the job settles, the stream ends, or
// ctx is cancelled.
func (c *Client) Events(ctx context.Context, id string, fn func(server.Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		return apiError(resp, blob)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("bad SSE payload %q: %w", data, err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.State.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// Wait blocks until the run settles, preferring the SSE stream and
// falling back to polling if streaming fails, then returns the final
// status.
func (c *Client) Wait(ctx context.Context, id string) (server.RunStatus, error) {
	if err := c.Events(ctx, id, nil); err == nil {
		return c.Status(ctx, id)
	} else if ctx.Err() != nil {
		return server.RunStatus{}, ctx.Err()
	}
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// SubmitRetry submits one run, absorbing 429 backpressure: each
// rejection waits out the larger of the daemon's Retry-After advice and
// the policy's capped exponential term (jittered so herds decorrelate),
// then resubmits. It returns on acceptance, on any non-429 error, when
// ctx cancels, or after Backoff.MaxAttempts submissions.
func (c *Client) SubmitRetry(ctx context.Context, req server.RunRequest) (server.RunStatus, error) {
	b := c.Backoff.normalize()
	for attempt := 0; ; attempt++ {
		st, err := c.Submit(ctx, req)
		var full *QueueFullError
		if err == nil || !errors.As(err, &full) {
			return st, err
		}
		if b.MaxAttempts > 0 && attempt+1 >= b.MaxAttempts {
			return st, err
		}
		select {
		case <-time.After(b.wait(attempt, full.RetryAfter)):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Run is the one-shot convenience: submit (riding out 429 backpressure
// through SubmitRetry's capped jittered backoff) and wait for
// completion.
func (c *Client) Run(ctx context.Context, req server.RunRequest) (server.RunStatus, error) {
	st, err := c.SubmitRetry(ctx, req)
	if err != nil {
		return st, err
	}
	return c.Wait(ctx, st.ID)
}

// ErrNoSnapshot reports that the daemon holds no PLUTSNAP for the
// requested cell — the run never checkpointed, or completed and retired
// its snapshot.
var ErrNoSnapshot = errors.New("plutusd: no snapshot for this cell")

func snapshotQuery(bench, scheme string, seed uint64) string {
	q := url.Values{}
	q.Set("benchmark", bench)
	q.Set("scheme", scheme)
	if seed != 0 {
		q.Set("seed", strconv.FormatUint(seed, 10))
	}
	return "/v1/snapshots?" + q.Encode()
}

// Snapshot fetches the daemon's latest PLUTSNAP for one grid cell.
// A missing snapshot surfaces as ErrNoSnapshot.
func (c *Client) Snapshot(ctx context.Context, bench, scheme string, seed uint64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+snapshotQuery(bench, scheme, seed), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNoSnapshot
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, blob)
	}
	return blob, nil
}

// PutSnapshot installs a migrated PLUTSNAP on the daemon so a
// subsequent submission of the same cell resumes from it.
func (c *Client) PutSnapshot(ctx context.Context, bench, scheme string, seed uint64, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+snapshotQuery(bench, scheme, seed), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp, blob)
	}
	return nil
}

// MetricsText fetches the daemon's /metrics Prometheus exposition raw.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp, blob)
	}
	return string(blob), nil
}
