// Package client is the thin Go client for plutusd's v1 API, used by
// `plutussim -remote` and the CI smoke job. It speaks the wire types of
// internal/server and adds the client-side conveniences the protocol
// deliberately leaves out: 429 retry with Retry-After, SSE consumption
// with a polling fallback, and a submit-wait-fetch one-shot.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/plutus-gpu/plutus/internal/server"
)

// Client talks to one plutusd instance.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval paces the polling fallback of Wait (default 100 ms).
	PollInterval time.Duration
}

// New returns a Client for the daemon at base (e.g. "http://127.0.0.1:8091").
func New(base string) *Client {
	return &Client{
		base:         strings.TrimRight(base, "/"),
		hc:           &http.Client{},
		PollInterval: 100 * time.Millisecond,
	}
}

// BaseURL returns the daemon address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// QueueFullError reports a 429: the daemon's queue was full.
type QueueFullError struct {
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("plutusd queue full; retry after %s", e.RetryAfter)
}

// apiError decodes the server's ErrorResponse into a Go error.
func apiError(resp *http.Response, body []byte) error {
	var er server.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("plutusd: %s (HTTP %d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("plutusd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		var er server.ErrorResponse
		if json.Unmarshal(blob, &er) == nil && er.RetryAfterSeconds > 0 {
			retry = time.Duration(er.RetryAfterSeconds) * time.Second
		}
		return &QueueFullError{RetryAfter: retry}
	}
	if resp.StatusCode >= 400 {
		return apiError(resp, blob)
	}
	if out != nil {
		return json.Unmarshal(blob, out)
	}
	return nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Schemes lists the scheme names the daemon accepts.
func (c *Client) Schemes(ctx context.Context) ([]string, error) {
	var nl server.NameList
	if err := c.do(ctx, http.MethodGet, "/v1/schemes", nil, &nl); err != nil {
		return nil, err
	}
	return nl.Schemes, nil
}

// Benchmarks lists the workload names the daemon accepts.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var nl server.NameList
	if err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil, &nl); err != nil {
		return nil, err
	}
	return nl.Benchmarks, nil
}

// Statsz fetches the /debug/statsz snapshot.
func (c *Client) Statsz(ctx context.Context) (server.Statsz, error) {
	var sz server.Statsz
	err := c.do(ctx, http.MethodGet, "/debug/statsz", nil, &sz)
	return sz, err
}

// Submit enqueues one run. A full queue surfaces as *QueueFullError.
func (c *Client) Submit(ctx context.Context, req server.RunRequest) (server.RunStatus, error) {
	var st server.RunStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st)
	return st, err
}

// Status fetches a run's current RunStatus.
func (c *Client) Status(ctx context.Context, id string) (server.RunStatus, error) {
	var st server.RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st)
	return st, err
}

// Result fetches a finished run rendered as format ("json", "csv" or
// "text"), returning the raw body bytes — byte-identical to the local
// CLI rendering of the same run.
func (c *Client) Result(ctx context.Context, id, format string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/runs/"+id+"/result?format="+format, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, blob)
	}
	return blob, nil
}

// Events consumes the run's SSE stream, calling fn for every event
// (history first, then live) until the job settles, the stream ends, or
// ctx is cancelled.
func (c *Client) Events(ctx context.Context, id string, fn func(server.Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		return apiError(resp, blob)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("bad SSE payload %q: %w", data, err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.State.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// Wait blocks until the run settles, preferring the SSE stream and
// falling back to polling if streaming fails, then returns the final
// status.
func (c *Client) Wait(ctx context.Context, id string) (server.RunStatus, error) {
	if err := c.Events(ctx, id, nil); err == nil {
		return c.Status(ctx, id)
	} else if ctx.Err() != nil {
		return server.RunStatus{}, ctx.Err()
	}
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Run is the one-shot convenience: submit (retrying while the queue is
// full, as the Retry-After advice directs) and wait for completion.
func (c *Client) Run(ctx context.Context, req server.RunRequest) (server.RunStatus, error) {
	for {
		st, err := c.Submit(ctx, req)
		if err == nil {
			return c.Wait(ctx, st.ID)
		}
		var full *QueueFullError
		if !errors.As(err, &full) {
			return st, err
		}
		select {
		case <-time.After(full.RetryAfter):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}
