package server

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"strconv"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// maxSnapshotBytes bounds a PUT /v1/snapshots body. Scaled-config
// snapshots are a few MB; the bound only exists so a broken client
// cannot exhaust the daemon's memory.
const maxSnapshotBytes = 256 << 20

// snapshotQuery resolves the (benchmark, scheme, seed) cell named by a
// snapshot request's query string and the backend's snapshot path for
// it. It fails with a client error when the daemon has no checkpointing
// backend or the names don't resolve.
func (s *Server) snapshotQuery(r *http.Request) (path string, err error) {
	sb, ok := s.cfg.Backend.(snapshotBackend)
	if !ok || sb.Config().CheckpointEvery == 0 || sb.Config().CheckpointDir == "" {
		return "", errors.New("snapshots unavailable: daemon runs without checkpointing (-state-dir/-checkpoint-every)")
	}
	bench := r.URL.Query().Get("benchmark")
	if _, err := workload.Get(bench); err != nil {
		return "", err
	}
	sc, err := secmem.ByName(r.URL.Query().Get("scheme"), s.cfg.ProtectedBytes)
	if err != nil {
		return "", err
	}
	var seed uint64
	if q := r.URL.Query().Get("seed"); q != "" {
		seed, err = strconv.ParseUint(q, 10, 64)
		if err != nil {
			return "", fmt.Errorf("bad seed %q: %v", q, err)
		}
	}
	return sb.SnapshotPathSeeded(bench, sc, seed), nil
}

// handleSnapshotGet serves the latest PLUTSNAP of one grid cell, raw.
// 404 means no snapshot exists — either the run never checkpointed or
// it completed (completion retires the file). The cluster coordinator
// polls this on heartbeat so a worker's death never loses more than one
// checkpoint cadence of progress.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	path, err := s.snapshotQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		writeError(w, http.StatusNotFound, ErrorResponse{Error: "no snapshot for this cell (run never checkpointed, or completed)"})
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handleSnapshotPut installs a migrated PLUTSNAP for one grid cell: the
// body is validated as a well-formed snapshot container and written
// atomically to the cell's snapshot path, so a subsequent submit of the
// same cell (the backend runs with Resume) continues from it instead of
// starting at cycle zero. This is the receiving half of checkpoint
// migration: the coordinator ships a dead or straggling worker's
// snapshot here, then resubmits the run.
func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	path, err := s.snapshotQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxSnapshotBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if len(data) > maxSnapshotBytes {
		writeError(w, http.StatusRequestEntityTooLarge, ErrorResponse{Error: "snapshot exceeds size bound"})
		return
	}
	// Reject garbage before it can shadow a real resume: the container
	// must decode (section table, CRCs, version) even though the
	// engine-level restore happens later, inside the run.
	if _, err := checkpoint.Decode(data); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("not a valid PLUTSNAP: %v", err)})
		return
	}
	if err := checkpoint.WriteFileAtomic(path, data); err != nil {
		writeError(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"installed": true, "bytes": len(data)})
}
