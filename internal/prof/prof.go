// Package prof wires the standard -cpuprofile/-memprofile flags into
// the CLI tools. The simulator's hot path is a single goroutine driving
// the event engine (see DESIGN.md §10), so an ordinary pprof CPU profile
// attributes nearly all samples to the per-access path under study.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpu is nonempty) and arranges for a
// heap profile to be written at stop time (if mem is nonempty). The
// returned stop function must run before the process exits — defer it
// from main.
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			// An up-to-date heap profile needs the GC's live-set
			// bookkeeping to be current.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
