package tamper

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
)

// FuzzParsePlan drives the plan parser with arbitrary text and enforces
// the package invariants on whatever it accepts: the canonical form must
// round-trip to itself, fingerprints must be stable, and expansion must
// either fail cleanly or produce a cycle-sorted, in-bounds, partition-
// respecting schedule. The parser must never panic on any input.
func FuzzParsePlan(f *testing.F) {
	f.Add("seed 42\nat cycle=100 attack=bitflip addr=0x1000 bit=17\n")
	f.Add("at cycle=1 attack=splice addr=0x4000 src=0x4020\n")
	f.Add("at cycle=9 attack=sectorflip range=0x0:0x10000 count=7\n")
	f.Add("# comment only\n\n")
	f.Add("seed 0xffffffffffffffff\nat cycle=0 attack=ctr-rollback addr=0\n")
	f.Add("at cycle=1 attack=wordflip addr=0x20 word=7\nat cycle=1 attack=mac-corrupt addr=0x40\n")
	f.Add("at cycle=2 attack=bmt-corrupt range=0x100:0x2000 count=3\n")
	f.Add("seed 3\nat cycle=5 attack=splice range=0x0:0x8000 count=4\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		canonical := p.String()
		p2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %q", err, text, canonical)
		}
		if got := p2.String(); got != canonical {
			t.Fatalf("canonical form not a fixed point:\nfirst:  %q\nsecond: %q", canonical, got)
		}
		if p.Fingerprint() != p2.Fingerprint() {
			t.Fatalf("fingerprint unstable across round trip for %q", canonical)
		}
		il := geom.MustInterleaver(4)
		const protected = 1 << 20
		ops, err := p.Expand(il, protected)
		if err != nil {
			return // out-of-range targets etc.: a clean error is correct
		}
		for i, op := range ops {
			if i > 0 && op.Cycle < ops[i-1].Cycle {
				t.Fatalf("ops not cycle-sorted at %d", i)
			}
			if uint64(op.Global) >= protected || uint64(op.Global)%geom.SectorSize != 0 {
				t.Fatalf("op %d target %#x invalid", i, uint64(op.Global))
			}
			if op.HasSrc {
				if uint64(op.Src) >= protected || il.Partition(op.Src) != il.Partition(op.Global) {
					t.Fatalf("op %d splice src %#x invalid for dst %#x", i, uint64(op.Src), uint64(op.Global))
				}
				if op.Src == op.Global {
					t.Fatalf("op %d splices %#x onto itself", i, uint64(op.Global))
				}
			}
		}
	})
}
