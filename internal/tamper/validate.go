package tamper

import (
	"fmt"
	"strings"

	"github.com/plutus-gpu/plutus/internal/secmem"
)

// AppliesTo reports whether the attack kind has a target under the
// given scheme. Data-ciphertext attacks (bitflip, wordflip, sectorflip,
// splice) apply everywhere — every scheme stores data in DRAM — while
// the metadata attacks exist only where the scheme actually keeps that
// metadata in memory: no MACs/counters/tree means nothing to corrupt.
func (k Kind) AppliesTo(cfg secmem.Config) bool {
	switch k {
	case MACCorrupt:
		return cfg.HasDRAMMAC()
	case CtrRollback:
		return cfg.HasDRAMCounters()
	case BMTCorrupt:
		return cfg.HasDRAMTree()
	default:
		return true
	}
}

// ValidateFor rejects a plan containing attack kinds that target
// metadata the scheme does not store in DRAM. Such directives used to
// expand into silent engine-level no-ops, which made "the attack was
// survived" indistinguishable from "the attack never happened" — the
// gap ROADMAP item 4 flagged. The error names every offending kind so a
// plan author can see the whole mismatch at once.
func (p *Plan) ValidateFor(cfg secmem.Config) error {
	var bad []string
	seen := [numKinds]bool{}
	for _, d := range p.Directives {
		if !seen[d.Kind] && !d.Kind.AppliesTo(cfg) {
			seen[d.Kind] = true
			bad = append(bad, d.Kind.String())
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("tamper: scheme %q stores no DRAM metadata for attack kind(s) %s",
		cfg.Scheme, strings.Join(bad, ", "))
}

// FilterFor returns a copy of the plan with every directive whose kind
// does not apply to the scheme removed (the oracle's per-scheme plan
// builder: attack everything attackable, skip what does not exist).
func (p *Plan) FilterFor(cfg secmem.Config) *Plan {
	out := &Plan{Seed: p.Seed}
	for _, d := range p.Directives {
		if d.Kind.AppliesTo(cfg) {
			out.Directives = append(out.Directives, d)
		}
	}
	return out
}
