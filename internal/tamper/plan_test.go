package tamper

import (
	"fmt"
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
)

const samplePlan = `
# exercise every attack kind, both directive forms
seed 42
at cycle=100 attack=bitflip addr=0x1000 bit=17
at cycle=200 attack=wordflip addr=0x2020 word=5
at cycle=300 attack=sectorflip addr=0x3040
at cycle=400 attack=splice addr=0x4000 src=0x4020
at cycle=500 attack=splice addr=0x5000
at cycle=600 attack=mac-corrupt addr=0x6000
at cycle=700 attack=ctr-rollback addr=0x7000
at cycle=800 attack=bmt-corrupt addr=0x8000
at cycle=900 attack=sectorflip range=0x0:0x10000 count=7
at cycle=950 attack=bitflip range=0x10000:0x20000 count=3
`

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse(samplePlan)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d, want 42", p.Seed)
	}
	if len(p.Directives) != 10 {
		t.Fatalf("parsed %d directives, want 10", len(p.Directives))
	}
	canonical := p.String()
	p2, err := Parse(canonical)
	if err != nil {
		t.Fatalf("Parse(String()): %v", err)
	}
	if p2.String() != canonical {
		t.Fatalf("round trip diverged:\nfirst:\n%s\nsecond:\n%s", canonical, p2.String())
	}
	if p.Fingerprint() != p2.Fingerprint() {
		t.Fatalf("fingerprint changed across round trip")
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("at cycle=1 attack=sectorflip addr=0x20\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", p.Seed)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"unknown-stmt", "flip cycle=1\n", "unknown statement"},
		{"unknown-attack", "at cycle=1 attack=rowhammer addr=0x0\n", "unknown attack"},
		{"attack-lists-valid", "at cycle=1 attack=nope addr=0x0\n", "bitflip, wordflip, sectorflip, splice, mac-corrupt, ctr-rollback, bmt-corrupt"},
		{"missing-cycle", "at attack=bitflip addr=0x0\n", "missing cycle="},
		{"missing-attack", "at cycle=1 addr=0x0\n", "missing attack="},
		{"no-target", "at cycle=1 attack=bitflip\n", "exactly one of addr= or range="},
		{"both-targets", "at cycle=1 attack=bitflip addr=0x0 range=0x0:0x100 count=1\n", "exactly one of addr= or range="},
		{"range-no-count", "at cycle=1 attack=bitflip range=0x0:0x100\n", "requires count="},
		{"count-no-range", "at cycle=1 attack=bitflip addr=0x0 count=2\n", "count= requires range="},
		{"empty-range", "at cycle=1 attack=bitflip range=0x100:0x100 count=1\n", "empty range"},
		{"src-non-splice", "at cycle=1 attack=bitflip addr=0x0 src=0x20\n", "only valid for attack=splice"},
		{"src-range", "at cycle=1 attack=splice range=0x0:0x100 count=1 src=0x20\n", "only valid in point form"},
		{"bit-non-bitflip", "at cycle=1 attack=wordflip addr=0x0 bit=3\n", "only valid for attack=bitflip"},
		{"word-non-wordflip", "at cycle=1 attack=bitflip addr=0x0 word=3\n", "only valid for attack=wordflip"},
		{"bit-range", "at cycle=1 attack=bitflip addr=0x0 bit=256\n", "bad bit"},
		{"word-range", "at cycle=1 attack=wordflip addr=0x0 word=8\n", "bad word"},
		{"bad-field", "at cycle=1 attack=bitflip addr\n", "malformed field"},
		{"unknown-field", "at cycle=1 attack=bitflip addr=0x0 volts=9\n", "unknown field"},
		{"dup-seed", "seed 1\nseed 2\n", "duplicate seed"},
		{"late-seed", "at cycle=1 attack=sectorflip addr=0x0\nseed 2\n", "seed must precede"},
		{"bad-count", "at cycle=1 attack=bitflip range=0x0:0x100 count=0\n", "bad count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFingerprintDistinguishesPlans(t *testing.T) {
	a, err := Parse("seed 1\nat cycle=1 attack=bitflip addr=0x0 bit=0\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("seed 2\nat cycle=1 attack=bitflip addr=0x0 bit=0\n")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("plans differing only in seed share fingerprint %s", a.Fingerprint())
	}
	if len(a.Fingerprint()) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex chars", a.Fingerprint())
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindByName(k.String())
		if err != nil {
			t.Fatalf("KindByName(%s): %v", k, err)
		}
		if got != k {
			t.Fatalf("KindByName(%s) = %v", k, got)
		}
	}
}

func TestExpandDeterministic(t *testing.T) {
	p, err := Parse(samplePlan)
	if err != nil {
		t.Fatal(err)
	}
	il := geom.MustInterleaver(8)
	const protected = 1 << 20
	a, err := p.Expand(il, protected)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, err := p.Expand(il, protected)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("expansions differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) != 18 { // 8 point ops + 7 + 3 range ops
		t.Fatalf("expanded %d ops, want 18", len(a))
	}
	for i := range a {
		if a[i].Cycle != b[i].Cycle || a[i].Kind != b[i].Kind || a[i].Global != b[i].Global ||
			a[i].Src != b[i].Src || a[i].HasSrc != b[i].HasSrc {
			t.Fatalf("op %d differs across expansions: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Cycle < a[i-1].Cycle {
			t.Fatalf("ops not cycle-sorted at %d: %d after %d", i, a[i].Cycle, a[i-1].Cycle)
		}
		if uint64(a[i].Global) >= protected {
			t.Fatalf("op %d target %#x beyond protected space", i, uint64(a[i].Global))
		}
	}
}

func TestExpandSpliceStaysInPartition(t *testing.T) {
	var b strings.Builder
	b.WriteString("seed 7\n")
	for c := 0; c < 64; c++ {
		// Point splices with derived sources, spread over the space.
		fmt.Fprintf(&b, "at cycle=%d attack=splice addr=%#x\n", c+1, c*8192)
	}
	p, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	il := geom.MustInterleaver(8)
	const protected = 1 << 20
	ops, err := p.Expand(il, protected)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if !op.HasSrc {
			t.Fatalf("op %d: splice without source", i)
		}
		if op.Src == op.Global {
			t.Fatalf("op %d: splice onto itself at %#x", i, uint64(op.Global))
		}
		if il.Partition(op.Src) != il.Partition(op.Global) {
			t.Fatalf("op %d: src %#x (part %d) crosses into dst %#x (part %d)",
				i, uint64(op.Src), il.Partition(op.Src), uint64(op.Global), il.Partition(op.Global))
		}
		if uint64(op.Src) >= protected {
			t.Fatalf("op %d: src %#x beyond protected space", i, uint64(op.Src))
		}
	}
}

func TestExpandErrors(t *testing.T) {
	il := geom.MustInterleaver(4)
	cases := []struct {
		name, text, want string
	}{
		{"addr-oob", "at cycle=1 attack=bitflip addr=0x100000 bit=0\n", "beyond protected"},
		{"range-oob", "at cycle=1 attack=bitflip range=0x0:0x200000 count=1\n", "beyond protected"},
		{"splice-src-oob", "at cycle=1 attack=splice addr=0x0 src=0x100000\n", "beyond protected"},
		{"splice-cross-part", "at cycle=1 attack=splice addr=0x0 src=0x100\n", "different partitions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.text)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			_, err = p.Expand(il, 1<<20)
			if err == nil {
				t.Fatalf("Expand accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
