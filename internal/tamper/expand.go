package tamper

import (
	"fmt"
	"sort"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
)

// prng is a splitmix64 stream: tiny, seedable, and with well-distributed
// 64-bit outputs — exactly what deterministic target expansion needs
// (math/rand is banned from simulation state by simlint's determinism
// rules, and its stream is not stable across Go releases anyway).
type prng struct{ state uint64 }

func (r *prng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Expand resolves the plan into a cycle-sorted gpusim fault schedule
// over a protected space of protectedBytes interleaved by il.
//
// Every choice a range directive leaves open — target sector, flip bit,
// flip word, splice source — is drawn from a splitmix64 stream seeded by
// (plan seed, directive index), so expansion depends only on plan
// contents, never on map order, time, or global state. Splice sources
// are forced into the target's partition (the attacker swaps bytes
// within one physical module) by translating a candidate address into
// the target partition's local space, which stays deterministic under
// the XOR-swizzled interleaving without rejection sampling.
func (p *Plan) Expand(il *geom.Interleaver, protectedBytes uint64) ([]gpusim.TamperOp, error) {
	if protectedBytes < geom.SectorSize {
		return nil, fmt.Errorf("tamper: protected space of %d bytes is smaller than a sector", protectedBytes)
	}
	var ops []gpusim.TamperOp
	for di, d := range p.Directives {
		if d.IsRange {
			if uint64(d.Hi) > protectedBytes {
				return nil, fmt.Errorf("tamper: directive %d: range end %#x beyond protected %#x",
					di, uint64(d.Hi), protectedBytes)
			}
			r := &prng{state: p.Seed ^ (uint64(di)+1)*0xa24baed4963ee407}
			lo := uint64(geom.SectorAddr(d.Lo))
			sectors := (uint64(d.Hi) - lo) / geom.SectorSize
			if sectors == 0 {
				return nil, fmt.Errorf("tamper: directive %d: range holds no whole sector", di)
			}
			for n := 0; n < d.Count; n++ {
				addr := geom.Addr(lo + r.next()%sectors*geom.SectorSize)
				op, err := p.buildOp(il, protectedBytes, d, addr, r)
				if err != nil {
					return nil, fmt.Errorf("tamper: directive %d: %w", di, err)
				}
				ops = append(ops, op)
			}
			continue
		}
		if uint64(d.Addr) >= protectedBytes {
			return nil, fmt.Errorf("tamper: directive %d: addr %#x beyond protected %#x",
				di, uint64(d.Addr), protectedBytes)
		}
		r := &prng{state: p.Seed ^ (uint64(di)+1)*0xa24baed4963ee407}
		op, err := p.buildOp(il, protectedBytes, d, geom.SectorAddr(d.Addr), r)
		if err != nil {
			return nil, fmt.Errorf("tamper: directive %d: %w", di, err)
		}
		ops = append(ops, op)
	}
	sort.SliceStable(ops, func(a, b int) bool { return ops[a].Cycle < ops[b].Cycle })
	return ops, nil
}

// buildOp resolves one target address into an armed op, drawing any
// open parameters from r.
func (p *Plan) buildOp(il *geom.Interleaver, protectedBytes uint64, d Directive, addr geom.Addr, r *prng) (gpusim.TamperOp, error) {
	op := gpusim.TamperOp{Cycle: d.Cycle, Kind: d.Kind.String(), Global: addr}
	switch d.Kind {
	case BitFlip:
		bit := d.Bit
		if d.IsRange {
			bit = uint(r.next() % (8 * geom.SectorSize))
		}
		op.Apply = func(sec *secmem.Engine, local, _ geom.Addr) { sec.TamperData(local, bit) }
	case WordFlip:
		word := d.Word
		if d.IsRange {
			word = uint(r.next() % (geom.SectorSize / 4))
		}
		op.Apply = func(sec *secmem.Engine, local, _ geom.Addr) { sec.TamperDataWord(local, word) }
	case SectorFlip:
		op.Apply = func(sec *secmem.Engine, local, _ geom.Addr) { sec.TamperSector(local) }
	case Splice:
		src := d.Src
		if d.HasSrc {
			if uint64(src) >= protectedBytes {
				return op, fmt.Errorf("splice src %#x beyond protected %#x", uint64(src), protectedBytes)
			}
			src = geom.SectorAddr(src)
			if src == addr {
				return op, fmt.Errorf("splice of %#x onto itself is the identity", uint64(addr))
			}
			if il.Partition(src) != il.Partition(addr) {
				return op, fmt.Errorf("splice src %#x and dst %#x land in different partitions (%d vs %d)",
					uint64(src), uint64(addr), il.Partition(src), il.Partition(addr))
			}
		} else {
			src = p.deriveSpliceSrc(il, protectedBytes, addr, r)
		}
		op.Src, op.HasSrc = src, true
		op.Apply = func(sec *secmem.Engine, local, srcLocal geom.Addr) { sec.SpliceCiphertext(local, srcLocal) }
	case MACCorrupt:
		op.Apply = func(sec *secmem.Engine, local, _ geom.Addr) { sec.TamperMAC(local) }
	case CtrRollback:
		op.Apply = func(sec *secmem.Engine, local, _ geom.Addr) { sec.ReplayCounter(local) }
	case BMTCorrupt:
		op.Apply = func(sec *secmem.Engine, local, _ geom.Addr) { sec.CorruptBMTNode(local) }
	default:
		return op, fmt.Errorf("unhandled attack kind %v", d.Kind)
	}
	return op, nil
}

// deriveSpliceSrc picks a deterministic same-partition splice source for
// dst: draw any candidate sector, take its partition-local offset, and
// re-anchor that offset in dst's partition. The local space of every
// partition spans [0, protectedBytes/partitions), so the re-anchored
// address is always a valid, distinct protected sector.
func (p *Plan) deriveSpliceSrc(il *geom.Interleaver, protectedBytes uint64, dst geom.Addr, r *prng) geom.Addr {
	part := il.Partition(dst)
	partBytes := protectedBytes / uint64(il.Partitions())
	candidate := geom.Addr(r.next() % protectedBytes)
	local := geom.SectorAddr(il.LocalAddr(candidate)) % geom.Addr(partBytes)
	src := il.GlobalAddr(part, local)
	if src == dst {
		local = (local + geom.SectorSize) % geom.Addr(partBytes)
		src = il.GlobalAddr(part, local)
	}
	return src
}
