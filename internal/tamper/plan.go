// Package tamper is the adversarial fault injector: it turns a textual
// injection plan into a deterministic schedule of DRAM mutations
// (gpusim.TamperOp) that attack a run's ciphertext, MACs, counters, or
// integrity-tree nodes mid-simulation.
//
// A plan is replayable by construction. The text fixes the seed, the
// cycles, the attack kinds, and the targets; range directives expand
// through a splitmix64 stream seeded only by plan contents; and the ops
// apply at deterministic epoch boundaries of the sharded simulator. Same
// plan, same workload, same configuration → byte-identical run,
// including across checkpoint/resume.
//
// Plan grammar (one directive per line, '#' starts a comment):
//
//	seed <n>
//	at cycle=<n> attack=<kind> addr=<addr> [src=<addr>] [bit=<n>] [word=<n>]
//	at cycle=<n> attack=<kind> range=<lo>:<hi> count=<n> [bit=<n>] [word=<n>]
//
// Addresses are decimal or 0x-hex byte addresses in the protected global
// space and are sector-aligned on expansion. Attack kinds: bitflip,
// wordflip, sectorflip, splice, mac-corrupt, ctr-rollback, bmt-corrupt.
// src is only valid for splice (omitted, a same-partition source is
// derived from the seed); bit only for bitflip; word only for wordflip.
// A range directive draws count targets (and per-target bit/word/src
// parameters, overriding none/any given) from the seeded stream within
// [lo, hi).
package tamper

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/plutus-gpu/plutus/internal/geom"
)

// Kind is one attack class.
type Kind int

const (
	// BitFlip flips a single ciphertext bit of one data sector.
	BitFlip Kind = iota
	// WordFlip inverts one aligned 32-bit ciphertext word.
	WordFlip
	// SectorFlip inverts a whole 32 B ciphertext sector.
	SectorFlip
	// Splice copies one address's ciphertext onto another (relocation /
	// replay of valid ciphertext at the wrong address).
	Splice
	// MACCorrupt corrupts a sector's stored MAC, leaving data authentic.
	MACCorrupt
	// CtrRollback replays the boot-image copy of a counter unit.
	CtrRollback
	// BMTCorrupt corrupts a DRAM-resident integrity-tree node.
	BMTCorrupt
	numKinds
)

var kindNames = [numKinds]string{
	"bitflip", "wordflip", "sectorflip", "splice", "mac-corrupt", "ctr-rollback", "bmt-corrupt",
}

// String returns the plan-text name of the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists every attack kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// KindByName resolves a plan-text kind name; the error lists the valid set.
func KindByName(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown attack %q (valid: %s)", s, strings.Join(kindNames[:], ", "))
}

// Directive is one parsed plan line: a point attack on Addr, or a range
// attack drawing Count targets from [Lo, Hi).
type Directive struct {
	Cycle uint64
	Kind  Kind

	// Point form.
	Addr   geom.Addr
	Src    geom.Addr // splice source; derived from the seed unless HasSrc
	HasSrc bool
	Bit    uint // bitflip target bit within the sector (0..255)
	Word   uint // wordflip target word within the sector (0..7)

	// Range form.
	IsRange bool
	Lo, Hi  geom.Addr // [Lo, Hi)
	Count   int
}

// Plan is a parsed injection plan.
type Plan struct {
	Seed       uint64
	Directives []Directive
}

// Parse reads a plan from its textual form. The result round-trips:
// Parse(p.String()) reproduces p exactly.
func Parse(text string) (*Plan, error) {
	p := &Plan{Seed: 1}
	seenSeed := false
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineErr := func(format string, args ...any) error {
			return fmt.Errorf("tamper: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "seed":
			if seenSeed {
				return nil, lineErr("duplicate seed")
			}
			if len(p.Directives) > 0 {
				return nil, lineErr("seed must precede directives")
			}
			if len(fields) != 2 {
				return nil, lineErr("want: seed <n>")
			}
			v, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, lineErr("bad seed %q", fields[1])
			}
			p.Seed, seenSeed = v, true
		case "at":
			d, err := parseDirective(fields[1:])
			if err != nil {
				return nil, lineErr("%v", err)
			}
			p.Directives = append(p.Directives, d)
		default:
			return nil, lineErr("unknown statement %q (want seed or at)", fields[0])
		}
	}
	return p, nil
}

// parseDirective parses the key=value fields of one `at` line.
func parseDirective(fields []string) (Directive, error) {
	var d Directive
	var haveCycle, haveKind, haveAddr, haveRange, haveCount, haveBit, haveWord bool
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return d, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		switch key {
		case "cycle":
			v, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return d, fmt.Errorf("bad cycle %q", val)
			}
			d.Cycle, haveCycle = v, true
		case "attack":
			k, err := KindByName(val)
			if err != nil {
				return d, err
			}
			d.Kind, haveKind = k, true
		case "addr":
			a, err := parseAddr(val)
			if err != nil {
				return d, err
			}
			d.Addr, haveAddr = a, true
		case "src":
			a, err := parseAddr(val)
			if err != nil {
				return d, err
			}
			d.Src, d.HasSrc = a, true
		case "range":
			lo, hi, ok := strings.Cut(val, ":")
			if !ok {
				return d, fmt.Errorf("bad range %q (want lo:hi)", val)
			}
			a, err := parseAddr(lo)
			if err != nil {
				return d, err
			}
			b, err := parseAddr(hi)
			if err != nil {
				return d, err
			}
			d.Lo, d.Hi, d.IsRange, haveRange = a, b, true, true
		case "count":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return d, fmt.Errorf("bad count %q (want positive integer)", val)
			}
			d.Count, haveCount = n, true
		case "bit":
			v, err := strconv.ParseUint(val, 0, 32)
			if err != nil || v >= 8*geom.SectorSize {
				return d, fmt.Errorf("bad bit %q (want 0..%d)", val, 8*geom.SectorSize-1)
			}
			d.Bit, haveBit = uint(v), true
		case "word":
			v, err := strconv.ParseUint(val, 0, 32)
			if err != nil || v >= geom.SectorSize/4 {
				return d, fmt.Errorf("bad word %q (want 0..%d)", val, geom.SectorSize/4-1)
			}
			d.Word, haveWord = uint(v), true
		default:
			return d, fmt.Errorf("unknown field %q", key)
		}
	}
	switch {
	case !haveCycle:
		return d, fmt.Errorf("missing cycle=")
	case !haveKind:
		return d, fmt.Errorf("missing attack=")
	case haveAddr == haveRange:
		return d, fmt.Errorf("want exactly one of addr= or range=")
	case haveRange && !haveCount:
		return d, fmt.Errorf("range= requires count=")
	case haveCount && !haveRange:
		return d, fmt.Errorf("count= requires range=")
	case haveRange && d.Lo >= d.Hi:
		return d, fmt.Errorf("empty range %#x:%#x", uint64(d.Lo), uint64(d.Hi))
	case d.HasSrc && d.Kind != Splice:
		return d, fmt.Errorf("src= is only valid for attack=splice")
	case d.HasSrc && haveRange:
		return d, fmt.Errorf("src= is only valid in point form")
	case haveBit && d.Kind != BitFlip:
		return d, fmt.Errorf("bit= is only valid for attack=bitflip")
	case haveWord && d.Kind != WordFlip:
		return d, fmt.Errorf("word= is only valid for attack=wordflip")
	}
	return d, nil
}

func parseAddr(s string) (geom.Addr, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return geom.Addr(v), nil
}

// String renders the plan in canonical text form (the round-trip anchor:
// parsing it reproduces the plan, and Fingerprint hashes it).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	for _, d := range p.Directives {
		fmt.Fprintf(&b, "at cycle=%d attack=%s", d.Cycle, d.Kind)
		if d.IsRange {
			fmt.Fprintf(&b, " range=%#x:%#x count=%d", uint64(d.Lo), uint64(d.Hi), d.Count)
		} else {
			fmt.Fprintf(&b, " addr=%#x", uint64(d.Addr))
			if d.HasSrc {
				fmt.Fprintf(&b, " src=%#x", uint64(d.Src))
			}
		}
		switch d.Kind {
		case BitFlip:
			fmt.Fprintf(&b, " bit=%d", d.Bit)
		case WordFlip:
			fmt.Fprintf(&b, " word=%d", d.Word)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fingerprint returns a short stable digest of the plan's canonical
// form, used to key result caches: two runs share a cache entry only if
// their attack schedules are identical.
func (p *Plan) Fingerprint() string {
	sum := sha256.Sum256([]byte(p.String()))
	return hex.EncodeToString(sum[:8])
}
