package tamper

import (
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/secmem"
)

func planOfKinds(t *testing.T, kinds ...Kind) *Plan {
	t.Helper()
	p := &Plan{Seed: 1}
	for i, k := range kinds {
		p.Directives = append(p.Directives, Directive{Cycle: uint64(10 + i), Kind: k, Addr: 0x40})
	}
	return p
}

func schemeCfg(t *testing.T, name string) secmem.Config {
	t.Helper()
	cfg, err := secmem.ByName(name, 1<<20)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	return cfg
}

// TestValidateFor pins plan-vs-scheme capability validation: attack
// kinds that target metadata a scheme does not store in DRAM are a
// loud plan error naming every offending kind, never a silent no-op.
func TestValidateFor(t *testing.T) {
	cases := []struct {
		name    string
		scheme  string
		kinds   []Kind
		wantErr string // "" means the plan must validate
	}{
		{"all-kinds-on-plutus", "plutus", Kinds(), ""},
		{"all-kinds-on-pssm", "pssm", Kinds(), ""},
		{"all-kinds-on-mgx", "mgx", Kinds(), ""},
		{"notree-keeps-its-tree", "plutus-notree", []Kind{BMTCorrupt}, ""},
		{"data-kinds-on-nosec", "nosec", []Kind{BitFlip, WordFlip, SectorFlip, Splice}, ""},
		{"data-kinds-on-ssm", "ssm", []Kind{BitFlip, WordFlip, SectorFlip, Splice}, ""},
		{"mac-on-nosec", "nosec", []Kind{MACCorrupt},
			`tamper: scheme "nosec" stores no DRAM metadata for attack kind(s) mac-corrupt`},
		{"bmt-on-nosec", "nosec", []Kind{BitFlip, BMTCorrupt},
			`tamper: scheme "nosec" stores no DRAM metadata for attack kind(s) bmt-corrupt`},
		{"mac-on-ssm", "ssm", []Kind{MACCorrupt},
			`tamper: scheme "ssm" stores no DRAM metadata for attack kind(s) mac-corrupt`},
		{"ctr-on-ssm", "ssm", []Kind{SectorFlip, CtrRollback},
			`tamper: scheme "ssm" stores no DRAM metadata for attack kind(s) ctr-rollback`},
		{"every-metadata-kind-on-ssm-listed-once", "ssm",
			[]Kind{MACCorrupt, CtrRollback, BMTCorrupt, MACCorrupt},
			`tamper: scheme "ssm" stores no DRAM metadata for attack kind(s) mac-corrupt, ctr-rollback, bmt-corrupt`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := planOfKinds(t, tc.kinds...).ValidateFor(schemeCfg(t, tc.scheme))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ValidateFor: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("ValidateFor accepted an inapplicable plan")
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("error drifted:\n got  %q\n want %q", err.Error(), tc.wantErr)
			}
		})
	}
}

// TestAppliesToMatrix freezes the capability matrix across the whole
// registry: data attacks apply everywhere, metadata attacks everywhere
// except the schemes that keep no such metadata in DRAM.
func TestAppliesToMatrix(t *testing.T) {
	for _, name := range secmem.Names() {
		cfg := schemeCfg(t, name)
		noMeta := name == "nosec" || name == "ssm"
		for _, k := range Kinds() {
			want := true
			switch k {
			case MACCorrupt, CtrRollback, BMTCorrupt:
				want = !noMeta
			}
			if got := k.AppliesTo(cfg); got != want {
				t.Errorf("%s.AppliesTo(%s) = %v, want %v", k, name, got, want)
			}
		}
	}
}

// TestFilterFor checks the oracle's plan builder helper: filtering
// keeps exactly the applicable directives, in order, and the result
// always validates.
func TestFilterFor(t *testing.T) {
	p := planOfKinds(t, Kinds()...)
	for _, name := range secmem.Names() {
		cfg := schemeCfg(t, name)
		f := p.FilterFor(cfg)
		if err := f.ValidateFor(cfg); err != nil {
			t.Errorf("%s: filtered plan fails validation: %v", name, err)
		}
		var kept []string
		for _, d := range f.Directives {
			kept = append(kept, d.Kind.String())
		}
		want := 7
		if name == "nosec" || name == "ssm" {
			want = 4
		}
		if len(f.Directives) != want {
			t.Errorf("%s: kept %d directives (%s), want %d",
				name, len(f.Directives), strings.Join(kept, ","), want)
		}
	}
}
