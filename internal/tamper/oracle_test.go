package tamper

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/dram"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/valcache"
)

// The differential oracle drives every registered scheme over the same
// seeded workload and attack plan, with the plan's cycle field mapped to
// the workload op index (no GPU model: the secmem engine is driven
// directly, one partition, parts=1 interleaving). Ground truth comes
// from a shadow copy of every written sector plus the engines' taint
// tracking, so the oracle can assert, per scheme:
//
//   - untampered runs produce byte-identical plaintext traffic;
//   - reads of untainted sectors always return the shadow contents,
//     even while metadata (MACs, counters, tree nodes) is under attack;
//   - integrity-enabled schemes never record SilentCorruption, the
//     baseline records nothing but;
//   - each attack class is caught by the layer the design assigns it to.

const (
	oracleProtected = 1 << 20 // engine protected capacity
	oracleWorkSet   = 256     // working-set sectors, at [0, 0x2000)
	oracleMixedOps  = 644     // mixed read/write ops after the fill pass
)

type oracleRig struct {
	eng *sim.Engine
	sec *secmem.Engine
	st  *stats.Stats
}

func newOracleRig(t *testing.T, scheme string) *oracleRig {
	t.Helper()
	cfg, err := secmem.ByName(scheme, oracleProtected)
	if err != nil {
		t.Fatalf("ByName(%s): %v", scheme, err)
	}
	r := &oracleRig{eng: &sim.Engine{}, st: &stats.Stats{}}
	ch := dram.MustNew(dram.DefaultConfig(), r.eng, &r.st.Traffic)
	r.sec = secmem.MustNew(cfg, r.eng, ch, r.st)
	if cfg.MGX {
		// The oracle's stand-in for the workload's stream declaration:
		// the lower half of the working set ([0, 0x1000), sectors
		// 0..127) is one regular stream, the upper half is off-stream —
		// so both the derived path and the stored-counter fallback are
		// exercised by every oracle run.
		r.sec.StreamHint = func(local geom.Addr) (uint64, bool) {
			if local < oracleStreamSplit {
				return uint64(local) / geom.BlockSize, true
			}
			return 0, false
		}
	}
	return r
}

// oracleStreamSplit divides the mgx rig's working set into the declared
// stream below and irregular space above.
const oracleStreamSplit = 0x1000

func (r *oracleRig) write(a geom.Addr, data []byte) {
	r.sec.Writeback(a, data, nil)
	r.eng.Drain(1 << 20)
}

func (r *oracleRig) read(a geom.Addr) secmem.ReadResult {
	var res secmem.ReadResult
	r.sec.Read(a, func(x secmem.ReadResult) { res = x })
	r.eng.Drain(1 << 20)
	return res
}

// oracleSector builds a 32 B sector whose words mix a small shared value
// pool (value locality for the value cache) with per-sector uniques.
func oracleSector(r *prng, pool []uint32) []byte {
	b := make([]byte, geom.SectorSize)
	for w := 0; w < 8; w++ {
		v := pool[r.next()%uint64(len(pool))]
		if r.next()%4 == 0 {
			v = uint32(r.next()) // occasional unique word
		}
		binary.LittleEndian.PutUint32(b[w*4:], v)
	}
	return b
}

// runOracle replays the seeded workload against one rig, applying due
// tamper ops between workload steps (op.Cycle = workload op index, as in
// the simulator's epoch-boundary application). It returns the digest of
// every untainted read's plaintext; reads of untainted written sectors
// are checked against the shadow model as they happen.
func runOracle(t *testing.T, rig *oracleRig, seed uint64, ops []gpusim.TamperOp) [32]byte {
	t.Helper()
	return runOraclePaused(t, rig, seed, ops, 0, nil)
}

// runOraclePaused is runOracle with an optional mid-run pause: at
// workload op pauseAt the hook receives the current rig and returns the
// rig the run continues on (the checkpoint/resume tests snapshot the
// first and restore into a fresh one).
func runOraclePaused(t *testing.T, rig *oracleRig, seed uint64, ops []gpusim.TamperOp,
	pauseAt uint64, pause func(*oracleRig) *oracleRig) [32]byte {
	t.Helper()
	r := &prng{state: seed*0x9e3779b97f4a7c15 + 1}
	pool := make([]uint32, 64)
	for i := range pool {
		pool[i] = uint32(r.next())
	}
	shadow := make(map[geom.Addr][]byte)
	h := sha256.New()
	next := 0
	cycle := uint64(0)

	step := func(f func()) {
		if pause != nil && cycle == pauseAt {
			rig = pause(rig)
			pause = nil
		}
		for next < len(ops) && ops[next].Cycle <= cycle {
			op := ops[next]
			// parts=1 interleaving: global and partition-local addresses
			// coincide, so ops apply directly.
			op.Apply(rig.sec, op.Global, op.Src)
			next++
		}
		f()
		cycle++
	}
	doWrite := func(a geom.Addr) {
		data := oracleSector(r, pool)
		shadow[a] = data
		rig.write(a, data)
	}
	doRead := func(a geom.Addr) {
		tainted := rig.sec.DataTainted(a)
		res := rig.read(a)
		if tainted {
			return
		}
		if want, ok := shadow[a]; ok && !bytes.Equal(res.Data, want) {
			t.Fatalf("untainted read of %#x returned wrong plaintext (op %d)", uint64(a), cycle)
		}
		h.Write(res.Data)
	}

	// Fill pass: write the whole working set so counters, MACs and tree
	// hashes reflect post-boot state before any attack lands.
	for i := 0; i < oracleWorkSet; i++ {
		step(func() { doWrite(geom.Addr(i) * geom.SectorSize) })
	}
	// Mixed phase: 60/40 reads/writes over the working set.
	for i := 0; i < oracleMixedOps; i++ {
		a := geom.Addr(r.next()%oracleWorkSet) * geom.SectorSize
		if r.next()%10 < 6 {
			step(func() { doRead(a) })
		} else {
			step(func() { doWrite(a) })
		}
	}
	// Sweep: read every sector once, so every attacked target is
	// observed after its mutation.
	for i := 0; i < oracleWorkSet; i++ {
		step(func() { doRead(geom.Addr(i) * geom.SectorSize) })
	}
	if next < len(ops) {
		t.Fatalf("plan schedules ops past the workload end (applied %d of %d)", next, len(ops))
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// allKindsPlan attacks the working set with every attack class the
// scheme has a DRAM target for, mid-workload, four targets each. Kinds
// keep their registry-ordered cycles and the data kinds precede the
// metadata kinds, so the data-attack ops expand byte-identically across
// all schemes (the seeded stream's prefix is shared).
func allKindsPlan(t *testing.T, seed uint64, cfg secmem.Config) []gpusim.TamperOp {
	t.Helper()
	text := fmt.Sprintf("seed %d\n", seed)
	for i, k := range Kinds() {
		if !k.AppliesTo(cfg) {
			continue
		}
		text += fmt.Sprintf("at cycle=%d attack=%s range=0x0:0x2000 count=4\n", 300+20*i, k)
	}
	return mustExpand(t, text)
}

func mustExpand(t *testing.T, text string) []gpusim.TamperOp {
	t.Helper()
	p, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ops, err := p.Expand(geom.MustInterleaver(1), oracleProtected)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return ops
}

// TestOracleCleanAgreement: with no attack armed, every scheme moves the
// same plaintext — the digests of all read traffic are identical across
// the registry, and no verdicts or taint counters move.
func TestOracleCleanAgreement(t *testing.T) {
	var wantDigest [32]byte
	var wantScheme string
	for _, name := range secmem.Names() {
		rig := newOracleRig(t, name)
		d := runOracle(t, rig, 11, nil)
		if wantScheme == "" {
			wantDigest, wantScheme = d, name
		} else if d != wantDigest {
			t.Errorf("scheme %s plaintext digest diverges from %s", name, wantScheme)
		}
		if n := rig.st.Sec.Verdicts.Total(); n != 0 {
			t.Errorf("scheme %s: %d verdicts on a benign run", name, n)
		}
		if rig.st.Sec.TaintedReads != 0 || rig.st.Sec.TamperInjected != 0 {
			t.Errorf("scheme %s: taint counters moved on a benign run", name)
		}
	}
}

// TestOracleNoSilentCorruption is the headline security assertion: under
// every applicable attack class at once, across three seeds, no
// integrity-enabled scheme ever returns tampered data as verified
// (SilentCorruption stays zero), while the no-security baseline returns
// nothing but. Plans are capability-filtered per scheme, so every
// scheduled op must land — no silent engine-level no-ops.
func TestOracleNoSilentCorruption(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, name := range secmem.Names() {
			rig := newOracleRig(t, name)
			ops := allKindsPlan(t, seed, rig.sec.Config())
			runOracle(t, rig, seed, ops)
			sec := &rig.st.Sec
			if got, want := sec.TamperInjected, uint64(len(ops)); got != want {
				t.Errorf("seed %d %s: injected %d of %d ops", seed, name, got, want)
			}
			if sec.TaintedReads == 0 {
				t.Errorf("seed %d %s: no tainted reads — the oracle is vacuous", seed, name)
			}
			silent := sec.Verdicts.Count(stats.VerdictSilentCorruption)
			if name == "nosec" {
				if silent != sec.TaintedReads {
					t.Errorf("seed %d nosec: %d silent corruptions for %d tainted reads",
						seed, silent, sec.TaintedReads)
				}
				continue
			}
			if silent != 0 {
				t.Errorf("seed %d %s: %d silent corruptions (tainted reads %d, verdicts %v)",
					seed, name, silent, sec.TaintedReads, sec.Verdicts)
			}
		}
	}
}

// TestOracleDetectionMatrix pins each attack class to the layer that
// catches it, on the two ends of the design space: pssm (MAC + tree,
// no value cache) and full plutus. plutus's value path may verify a
// mac-corrupt read without ever consulting the MAC, and its compact
// tree never walks the corrupted main-tree node, so detection there is
// only asserted where the design guarantees it.
func TestOracleDetectionMatrix(t *testing.T) {
	type expect struct {
		mac, bmt, recon bool // require ≥1 of the matching verdict kind
	}
	matrix := map[string]map[Kind]expect{
		"pssm": {
			BitFlip:     {mac: true},
			WordFlip:    {mac: true},
			SectorFlip:  {mac: true},
			Splice:      {mac: true},
			MACCorrupt:  {mac: true},
			CtrRollback: {bmt: true},
			BMTCorrupt:  {bmt: true},
		},
		"plutus": {
			BitFlip:     {},
			WordFlip:    {},
			SectorFlip:  {},
			Splice:      {},
			MACCorrupt:  {},
			CtrRollback: {bmt: true},
			BMTCorrupt:  {},
		},
		// mgx has no value cache, so every data attack resolves at the
		// MAC. ctr-rollback/bmt-corrupt over the full range carry no
		// guarantee here: targets landing in the derived half never
		// refetch counters (see TestOracleMGXFallback for the
		// irregular-half guarantee).
		"mgx": {
			BitFlip:     {mac: true},
			WordFlip:    {mac: true},
			SectorFlip:  {mac: true},
			Splice:      {mac: true},
			MACCorrupt:  {mac: true},
			CtrRollback: {},
			BMTCorrupt:  {},
		},
		// ssm's only verify layer is share reconstruction; the metadata
		// kinds don't apply (no MACs, counters or tree in DRAM).
		"ssm": {
			BitFlip:    {recon: true},
			WordFlip:   {recon: true},
			SectorFlip: {recon: true},
			Splice:     {recon: true},
		},
	}
	for _, name := range []string{"pssm", "plutus", "mgx", "ssm"} {
		for _, k := range Kinds() {
			if _, applicable := matrix[name][k]; !applicable {
				continue
			}
			t.Run(name+"/"+k.String(), func(t *testing.T) {
				ops := mustExpand(t, fmt.Sprintf(
					"seed 5\nat cycle=300 attack=%s range=0x0:0x2000 count=4\n", k))
				rig := newOracleRig(t, name)
				runOracle(t, rig, 5, ops)
				sec := &rig.st.Sec
				if silent := sec.Verdicts.Count(stats.VerdictSilentCorruption); silent != 0 {
					t.Fatalf("%d silent corruptions", silent)
				}
				want := matrix[name][k]
				if want.mac && sec.Verdicts.Count(stats.VerdictDetectedByMAC) == 0 {
					t.Fatalf("attack not caught by MAC (verdicts %v)", sec.Verdicts)
				}
				if want.bmt && sec.Verdicts.Count(stats.VerdictDetectedByBMT) == 0 {
					t.Fatalf("attack not caught by tree (verdicts %v)", sec.Verdicts)
				}
				if want.recon && sec.Verdicts.Count(stats.VerdictDetectedByReconstruction) == 0 {
					t.Fatalf("attack not caught by reconstruction (verdicts %v)", sec.Verdicts)
				}
				// Data attacks must always resolve to *some* verdict on
				// an integrity scheme: detected or value-accepted.
				switch k {
				case BitFlip, WordFlip, SectorFlip, Splice:
					if sec.Verdicts.Total() == 0 {
						t.Fatalf("data attack produced no verdicts")
					}
				}
			})
		}
	}
}

// TestOracleMGXFallback pins the mgx fallback path's freshness
// guarantee: counter-rollback and tree-node attacks aimed entirely at
// the irregular (stored-counter) half of the working set are caught by
// the BMT, exactly as on the conventional schemes.
func TestOracleMGXFallback(t *testing.T) {
	for _, k := range []Kind{CtrRollback, BMTCorrupt} {
		t.Run(k.String(), func(t *testing.T) {
			ops := mustExpand(t, fmt.Sprintf(
				"seed 5\nat cycle=300 attack=%s range=0x1000:0x2000 count=4\n", k))
			rig := newOracleRig(t, "mgx")
			runOracle(t, rig, 5, ops)
			sec := &rig.st.Sec
			if got, want := sec.TamperInjected, uint64(len(ops)); got != want {
				t.Fatalf("injected %d of %d ops", got, want)
			}
			if silent := sec.Verdicts.Count(stats.VerdictSilentCorruption); silent != 0 {
				t.Fatalf("%d silent corruptions", silent)
			}
			if sec.Verdicts.Count(stats.VerdictDetectedByBMT) == 0 {
				t.Fatalf("irregular-half %s not caught by the tree (verdicts %v)", k, sec.Verdicts)
			}
			if sec.DerivedVersions == 0 || sec.DerivedFallbacks == 0 {
				t.Fatalf("oracle rig did not exercise both mgx paths: %+v", sec)
			}
		})
	}
}

// TestOracleSnapshotResume proves checkpoint/resume byte-identity for
// the frontier schemes under attack: a run paused mid-workload,
// snapshotted, restored into a freshly built rig and continued produces
// the same plaintext digest, security stats and traffic totals as the
// uninterrupted run.
func TestOracleSnapshotResume(t *testing.T) {
	for _, name := range []string{"plutus", "mgx", "ssm"} {
		t.Run(name, func(t *testing.T) {
			base := newOracleRig(t, name)
			ops := allKindsPlan(t, 3, base.sec.Config())
			wantDigest := runOracle(t, base, 3, ops)

			start := newOracleRig(t, name)
			var final *oracleRig
			gotDigest := runOraclePaused(t, start, 3, ops, 500, func(r *oracleRig) *oracleRig {
				enc := checkpoint.NewEncoder()
				if err := r.sec.Snapshot(enc); err != nil {
					t.Fatalf("Snapshot: %v", err)
				}
				r.st.Snapshot(enc)
				fresh := newOracleRig(t, name)
				dec := checkpoint.NewDecoder(enc.Data())
				if err := fresh.sec.Restore(dec); err != nil {
					t.Fatalf("Restore: %v", err)
				}
				if err := fresh.st.Restore(dec); err != nil {
					t.Fatalf("stats Restore: %v", err)
				}
				if err := dec.Finish(); err != nil {
					t.Fatalf("Finish: %v", err)
				}
				final = fresh
				return fresh
			})
			if final == nil {
				t.Fatal("pause hook never ran")
			}
			if gotDigest != wantDigest {
				t.Errorf("plaintext digest diverges across snapshot/resume")
			}
			if final.st.Sec != base.st.Sec {
				t.Errorf("security stats diverge across snapshot/resume:\n%+v\n%+v",
					final.st.Sec, base.st.Sec)
			}
			if got, want := final.st.Traffic.Total(), base.st.Traffic.Total(); got != want {
				t.Errorf("traffic totals diverge across snapshot/resume: %d vs %d", got, want)
			}
		})
	}
}

// TestOracleSeededMutation is the oracle's own mutation check, run by CI
// as a seeded fault-injection gate: flipping a single stored share (any
// region, base or check) and skewing a single derived version must each
// be caught — an implementation where some share doesn't participate in
// the consistency check, or where version derivation can silently
// desynchronize, fails here.
func TestOracleSeededMutation(t *testing.T) {
	data := make([]byte, geom.SectorSize)
	for i := range data {
		data[i] = byte(0xa0 + i)
	}
	t.Run("ssm-share-flip", func(t *testing.T) {
		for region := 0; region < 3; region++ {
			rig := newOracleRig(t, "ssm")
			const addr = geom.Addr(0x40)
			rig.write(addr, data)
			if !rig.sec.CorruptShare(addr, region) {
				t.Fatalf("region %d: CorruptShare refused", region)
			}
			res := rig.read(addr)
			if res.OK {
				t.Errorf("region %d: corrupted share read verified OK", region)
			}
			if rig.st.Sec.Verdicts.Count(stats.VerdictDetectedByReconstruction) == 0 {
				t.Errorf("region %d: no reconstruction verdict (verdicts %v)",
					region, rig.st.Sec.Verdicts)
			}
			if silent := rig.st.Sec.Verdicts.Count(stats.VerdictSilentCorruption); silent != 0 {
				t.Errorf("region %d: %d silent corruptions", region, silent)
			}
		}
	})
	t.Run("mgx-version-skew", func(t *testing.T) {
		rig := newOracleRig(t, "mgx")
		const derived = geom.Addr(0x100)    // inside the declared stream
		const irregular = geom.Addr(0x1800) // outside it
		rig.write(derived, data)
		rig.write(irregular, data)
		if rig.sec.SkewDerivedVersion(irregular) {
			t.Error("SkewDerivedVersion skewed a stored-counter sector")
		}
		if !rig.sec.SkewDerivedVersion(derived) {
			t.Fatal("SkewDerivedVersion refused a derived sector")
		}
		res := rig.read(derived)
		if res.OK {
			t.Error("skewed-version read verified OK")
		}
		if rig.st.Sec.Verdicts.Count(stats.VerdictDetectedByMAC) == 0 {
			t.Errorf("version skew not caught by MAC (verdicts %v)", rig.st.Sec.Verdicts)
		}
		if silent := rig.st.Sec.Verdicts.Count(stats.VerdictSilentCorruption); silent != 0 {
			t.Errorf("%d silent corruptions", silent)
		}
	})
}

// TestOracleReplayDeterminism: the same scheme, seed and plan replays to
// byte-identical traffic, verdicts and taint counters.
func TestOracleReplayDeterminism(t *testing.T) {
	run := func(name string) ([32]byte, stats.SecStats, uint64) {
		rig := newOracleRig(t, name)
		ops := allKindsPlan(t, 2, rig.sec.Config())
		d := runOracle(t, rig, 2, ops)
		return d, rig.st.Sec, rig.st.Traffic.Total()
	}
	for _, name := range []string{"plutus", "mgx", "ssm"} {
		d1, s1, t1 := run(name)
		d2, s2, t2 := run(name)
		if d1 != d2 {
			t.Errorf("%s: plaintext digests differ across replays", name)
		}
		if s1 != s2 {
			t.Errorf("%s: security stats differ across replays:\n%+v\n%+v", name, s1, s2)
		}
		if t1 != t2 {
			t.Errorf("%s: traffic totals differ across replays: %d vs %d", name, t1, t2)
		}
	}
}

// TestFalseAcceptRateBounded validates Eq. 1 against the mechanism: the
// measured false-accept rate of uniformly random cipher blocks matches
// the binomial model within Monte-Carlo tolerance (on a deliberately
// weak cache where the rate is measurable), and the production
// configuration's modelled rate sits below the paper's 2^-32 per-word
// reference bound.
func TestFalseAcceptRateBounded(t *testing.T) {
	cfg := valcache.Config{
		Entries:        4096,
		PinnedFrac:     0,
		MaskBits:       16, // 2^16 key space: forgeries become observable
		PinThreshold:   15,
		MatchThreshold: 3,
	}
	c := valcache.MustNew(cfg)
	r := &prng{state: 99}
	for c.Len() < cfg.Entries {
		c.Insert(uint32(r.next()))
	}
	p := valcache.HitProbability(c.Len(), cfg.MaskBits)
	model := valcache.ForgeryProbability(valcache.ValuesPerUnit, cfg.MatchThreshold, p)

	const trials = 500_000
	block := make([]byte, valcache.UnitBytes)
	accepts := 0
	for i := 0; i < trials; i++ {
		for w := 0; w < valcache.ValuesPerUnit; w++ {
			binary.LittleEndian.PutUint32(block[w*4:], uint32(r.next()))
		}
		if c.VerifySector(block).Verified {
			accepts++
		}
	}
	got := float64(accepts) / trials
	if got > 1.5*model+1e-9 || got < 0.5*model {
		t.Errorf("measured false-accept rate %.3g vs modelled %.3g (accepts %d/%d)",
			got, model, accepts, trials)
	}

	// Production configuration: the modelled per-block forgery rate must
	// clear the paper's 2^-32 per-word reference with a wide margin.
	prod := valcache.DefaultConfig()
	pp := valcache.HitProbability(prod.Entries, prod.MaskBits)
	bound := valcache.ForgeryProbability(valcache.ValuesPerUnit, prod.MatchThreshold, pp)
	if bound > math.Pow(2, -32) {
		t.Errorf("production forgery bound %.3g exceeds 2^-32", bound)
	}
	if valcache.MinHitsRequired(valcache.ValuesPerUnit, pp, math.Pow(2, -32)) > prod.MatchThreshold {
		t.Errorf("MatchThreshold %d does not achieve the 2^-32 bound", prod.MatchThreshold)
	}
}
