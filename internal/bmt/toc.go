package bmt

import (
	"encoding/binary"
	"fmt"

	"github.com/plutus-gpu/plutus/internal/crypto/siphash"
)

// ToC is an SGX-style Tree of Counters (parallelizable integrity tree,
// paper §II-A3 / Fig. 3): interior nodes hold version counters instead of
// hashes, and each node carries a MAC computed over its versions and its
// parent's version. Updates increment one version per level — no
// cumulative hashing — so sibling updates can proceed in parallel, at the
// cost of larger nodes.
//
// The reproduction includes it for completeness of the background designs
// and for the ablation comparing ToC vs BMT organizations; the paper's
// schemes all use the Bonsai Merkle Tree.
type ToC struct {
	cfg   Config
	arity uint64
	// counts[l] is the node count at level l (level 0 sits directly above
	// the counter units; the last level is the root).
	counts []uint64
	// versions[l][i] is node (l,i)'s version counter as known on-chip.
	versions []map[uint64]uint64
	// unitVersions[u] is the per-counter-unit version (the tree's leaves).
	unitVersions map[uint64]uint64
	// macs[l][i] is the MAC currently bound to node (l,i).
	macs []map[uint64]uint64
	// rootVersion is the trust anchor: never leaves the chip.
	rootVersion uint64
}

// NewToC builds a Tree of Counters with the same geometry parameters as a
// BMT (NodeBytes determines arity; version counters are 8 B like hashes).
func NewToC(cfg Config) (*ToC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &ToC{cfg: cfg, arity: uint64(cfg.Arity()), unitVersions: make(map[uint64]uint64)}
	n := ceilDiv(cfg.Units, t.arity)
	for {
		t.counts = append(t.counts, n)
		if n == 1 {
			break
		}
		n = ceilDiv(n, t.arity)
	}
	t.versions = make([]map[uint64]uint64, len(t.counts))
	t.macs = make([]map[uint64]uint64, len(t.counts))
	for l := range t.counts {
		t.versions[l] = make(map[uint64]uint64)
		t.macs[l] = make(map[uint64]uint64)
	}
	return t, nil
}

// MustToC is NewToC for static configuration.
func MustToC(cfg Config) *ToC {
	t, err := NewToC(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Height returns the number of node levels.
func (t *ToC) Height() int { return len(t.counts) }

// RootVersion returns the on-chip trust anchor.
func (t *ToC) RootVersion() uint64 { return t.rootVersion }

// nodeMAC computes the MAC binding a node's child versions to its
// parent's version (the anti-replay link).
func (t *ToC) nodeMAC(level int, index, parentVersion uint64) uint64 {
	buf := make([]byte, 8*int(t.arity)+24)
	base := index * t.arity
	for c := uint64(0); c < t.arity; c++ {
		var v uint64
		if level == 0 {
			v = t.unitVersions[base+c]
		} else {
			v = t.versions[level-1][base+c]
		}
		binary.LittleEndian.PutUint64(buf[c*8:], v)
	}
	off := 8 * int(t.arity)
	binary.LittleEndian.PutUint64(buf[off:], parentVersion)
	binary.LittleEndian.PutUint64(buf[off+8:], uint64(level))
	binary.LittleEndian.PutUint64(buf[off+16:], index)
	return siphash.Sum64(t.cfg.Key, buf)
}

// selfVersion returns node (l,i)'s own version counter — the value stored
// in its parent node (the on-chip root version for the root). This is the
// tweak binding the node's MAC: replaying an old copy of the node fails
// against the fresher version held one level up.
func (t *ToC) selfVersion(l int, i uint64) uint64 {
	if l == len(t.counts)-1 {
		return t.rootVersion
	}
	return t.versions[l][i]
}

// Bump records an update of counter unit u: every version on the path to
// the root increments, and each path node's MAC is re-bound. Unlike a
// hash tree, no child hashes are recomputed — this is the
// parallelizable-update property.
func (t *ToC) Bump(u uint64) {
	if u >= t.cfg.Units {
		panic(fmt.Sprintf("bmt: toc unit %d out of range %d", u, t.cfg.Units))
	}
	t.unitVersions[u]++
	idx := u / t.arity
	for l := 0; l < len(t.counts); l++ {
		t.versions[l][idx]++
		idx /= t.arity
	}
	t.rootVersion++
	// Re-bind MACs along the path (bottom-up, now that versions settled).
	idx = u / t.arity
	for l := 0; l < len(t.counts); l++ {
		t.macs[l][idx] = t.nodeMAC(l, idx, t.selfVersion(l, idx))
		idx /= t.arity
	}
}

// VerifyPath checks unit u's path: each node's stored MAC must match the
// MAC recomputed from its (possibly attacker-supplied) child versions and
// its parent's version. It reports whether the whole path is fresh.
func (t *ToC) VerifyPath(u uint64) bool {
	idx := u / t.arity
	for l := 0; l < len(t.counts); l++ {
		want, bound := t.macs[l][idx], true
		if want == 0 {
			// Never written: an all-zero subtree verifies trivially.
			bound = false
		}
		if bound && t.nodeMAC(l, idx, t.selfVersion(l, idx)) != want {
			return false
		}
		idx /= t.arity
	}
	return true
}

// TamperUnit models an attacker replaying an old version for unit u in
// memory; verification of u's path must subsequently fail.
func (t *ToC) TamperUnit(u uint64) {
	if t.unitVersions[u] == 0 {
		t.unitVersions[u] = 1 // forge a version where none existed
	} else {
		t.unitVersions[u]-- // replay the previous version
	}
}

// Path returns the node chain from level 0 to the root, mirroring
// Tree.Path so engines can treat either organization uniformly.
func (t *ToC) Path(u uint64) []NodeRef {
	if u >= t.cfg.Units {
		panic(fmt.Sprintf("bmt: toc unit %d out of range %d", u, t.cfg.Units))
	}
	path := make([]NodeRef, 0, len(t.counts))
	idx := u / t.arity
	for l := 0; l < len(t.counts); l++ {
		path = append(path, NodeRef{Level: l, Index: idx})
		idx /= t.arity
	}
	return path
}
