// Package bmt implements the Bonsai Merkle Tree that guarantees freshness
// of the encryption counters (paper §II-A3), with the geometry knobs the
// paper's §IV-E explores: the hashing granularity of counter units (128 B
// blocks vs 32 B sectors) and the tree-node block size (128 B vs 32 B,
// i.e. 16-ary vs 4-ary with 8 B hashes).
//
// The tree is the authoritative on-chip record of counter hashes: the
// secure-memory engine recomputes the hash of any counter unit it fetches
// from (untrusted) memory and checks it against the tree, so replayed or
// tampered counters are detected. The root conceptually never leaves the
// chip; interior nodes are normal metadata blocks whose fetch/writeback
// traffic is modelled by the engine through the BMT metadata cache.
//
// Functionally the package propagates hash updates eagerly so its state is
// always self-consistent; the *lazy-update* traffic optimization (updates
// ride on cache-eviction writebacks) is purely a timing concern handled by
// the engine.
package bmt

import (
	"encoding/binary"
	"fmt"

	"github.com/plutus-gpu/plutus/internal/crypto/siphash"
	"github.com/plutus-gpu/plutus/internal/geom"
)

// HashBytes is the size of one node hash (8 B MACs, as in the paper).
const HashBytes = 8

// Config fixes one tree's geometry.
type Config struct {
	// Units is the number of counter units (leaves) the tree protects.
	Units uint64
	// UnitBytes is the hashing granularity of a counter unit (128 or 32):
	// the amount of counter storage verified by one leaf hash, and hence
	// the counter fetch granularity.
	UnitBytes int
	// NodeBytes is the size of one interior tree node (128 or 32). The
	// arity is NodeBytes / HashBytes (16 or 4).
	NodeBytes int
	// Key keys the node-hash function.
	Key siphash.Key
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Units == 0 {
		return fmt.Errorf("bmt: zero units")
	}
	if c.NodeBytes < 2*HashBytes || c.NodeBytes%HashBytes != 0 {
		return fmt.Errorf("bmt: node size %d must be a multiple of %d and hold ≥2 hashes", c.NodeBytes, HashBytes)
	}
	if c.UnitBytes <= 0 {
		return fmt.Errorf("bmt: unit size %d invalid", c.UnitBytes)
	}
	return nil
}

// Arity returns children per node.
func (c Config) Arity() int { return c.NodeBytes / HashBytes }

// NodeRef identifies one tree node. Level 0 is the node layer directly
// above the counter units; the root is the single node at the top level.
type NodeRef struct {
	Level int
	Index uint64
}

// Tree is one partition's Bonsai Merkle Tree.
type Tree struct {
	cfg Config
	//simlint:ignore snapsym derived from cfg at construction
	arity uint64
	// counts[l] is the node count at level l; counts[len-1] == 1 (root).
	counts []uint64
	// bases[l] is the byte offset of level l's nodes in the BMT region.
	// Levels are laid out bottom-up.
	//simlint:ignore snapsym pure geometry derived from cfg at construction
	bases []geom.Addr
	// unitHashes holds the authoritative hash of each counter unit;
	// missing entries equal defaultUnit (hash of an untouched unit).
	unitHashes map[uint64]uint64
	// nodeHashes[l] holds the hash of each node at level l, as recorded
	// in its parent; missing entries equal defaultNode[l].
	nodeHashes []map[uint64]uint64
	//simlint:ignore snapsym constant for a given key/serialization, recomputed at construction
	defaultUnit uint64
	//simlint:ignore snapsym constant for a given key/serialization, recomputed at construction
	defaultNode []uint64
	root        uint64
}

// New builds a tree whose counter units all hash to defaultUnitHash
// (the hash of an all-zero counter unit, computed by the caller so that
// tree and engine agree on serialization).
func New(cfg Config, defaultUnitHash uint64) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:         cfg,
		arity:       uint64(cfg.Arity()),
		unitHashes:  make(map[uint64]uint64),
		defaultUnit: defaultUnitHash,
	}
	// Build level sizes bottom-up until a single root.
	n := ceilDiv(cfg.Units, t.arity)
	for {
		t.counts = append(t.counts, n)
		if n == 1 {
			break
		}
		n = ceilDiv(n, t.arity)
	}
	t.bases = make([]geom.Addr, len(t.counts))
	var off geom.Addr
	for l := range t.counts {
		t.bases[l] = off
		off += geom.Addr(t.counts[l]) * geom.Addr(cfg.NodeBytes)
	}
	t.nodeHashes = make([]map[uint64]uint64, len(t.counts))
	t.defaultNode = make([]uint64, len(t.counts))
	for l := range t.nodeHashes {
		t.nodeHashes[l] = make(map[uint64]uint64)
	}
	// Default node hashes cascade: level 0 nodes hash arity default unit
	// hashes, and so on up.
	prev := defaultUnitHash
	for l := range t.counts {
		t.defaultNode[l] = t.hashChildren(l, prev)
		prev = t.defaultNode[l]
	}
	t.root = t.defaultNode[len(t.counts)-1]
	return t, nil
}

// MustNew is New for static configuration.
func MustNew(cfg Config, defaultUnitHash uint64) *Tree {
	t, err := New(cfg, defaultUnitHash)
	if err != nil {
		panic(err)
	}
	return t
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// hashChildren hashes a node whose children all have hash h (used only
// for defaults; real nodes hash their actual child vector).
func (t *Tree) hashChildren(level int, h uint64) uint64 {
	buf := make([]byte, 8*int(t.arity)+8)
	for i := 0; i < int(t.arity); i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], h)
	}
	binary.LittleEndian.PutUint64(buf[8*int(t.arity):], uint64(level))
	return siphash.Sum64(t.cfg.Key, buf)
}

// Config returns the tree's geometry.
func (t *Tree) Config() Config { return t.cfg }

// Height returns the number of node levels (excluding the counter units
// themselves). A taller tree means more metadata fetches per cold miss.
func (t *Tree) Height() int { return len(t.counts) }

// Nodes returns the total interior-node count.
func (t *Tree) Nodes() uint64 {
	var s uint64
	for _, c := range t.counts {
		s += c
	}
	return s
}

// StorageBytes returns the BMT's memory footprint.
func (t *Tree) StorageBytes() uint64 { return t.Nodes() * uint64(t.cfg.NodeBytes) }

// NodeAddr returns the node's byte offset within the partition's BMT
// region (the engine adds the region base).
func (t *Tree) NodeAddr(r NodeRef) geom.Addr {
	return t.bases[r.Level] + geom.Addr(r.Index)*geom.Addr(t.cfg.NodeBytes)
}

// Root returns the current root hash (the on-chip trust anchor).
func (t *Tree) Root() uint64 { return t.root }

// IsRoot reports whether r is the root node, which is pinned on-chip and
// never generates memory traffic.
func (t *Tree) IsRoot(r NodeRef) bool { return r.Level == len(t.counts)-1 }

// Path returns the chain of nodes from the level-0 node covering counter
// unit u up to and including the root. Fetching/verifying a counter unit
// walks this path until a node hits in the (verified) metadata cache.
func (t *Tree) Path(u uint64) []NodeRef {
	if u >= t.cfg.Units {
		panic(fmt.Sprintf("bmt: unit %d out of range %d", u, t.cfg.Units))
	}
	path := make([]NodeRef, 0, len(t.counts))
	idx := u / t.arity
	for l := 0; l < len(t.counts); l++ {
		path = append(path, NodeRef{Level: l, Index: idx})
		idx /= t.arity
	}
	return path
}

// LeafForUnit returns the first DRAM-resident (non-root) node on unit
// u's verification path — the node a physical attacker corrupts to break
// the unit's freshness chain. ok is false when the tree is a bare root
// (nothing but on-chip state covers the unit).
func (t *Tree) LeafForUnit(u uint64) (NodeRef, bool) {
	for _, ref := range t.Path(u) {
		if !t.IsRoot(ref) {
			return ref, true
		}
	}
	return NodeRef{}, false
}

// Parent returns r's parent node; ok is false when r is the root.
func (t *Tree) Parent(r NodeRef) (NodeRef, bool) {
	if t.IsRoot(r) {
		return NodeRef{}, false
	}
	return NodeRef{Level: r.Level + 1, Index: r.Index / t.arity}, true
}

// RefForAddr inverts NodeAddr: the node whose storage contains region
// offset a (a need not be node-aligned — cache blocks can be coarser than
// nodes). ok is false when a lies beyond the tree's storage.
func (t *Tree) RefForAddr(a geom.Addr) (NodeRef, bool) {
	for l := len(t.counts) - 1; l >= 0; l-- {
		if a >= t.bases[l] {
			idx := uint64(a-t.bases[l]) / uint64(t.cfg.NodeBytes)
			if idx >= t.counts[l] {
				return NodeRef{}, false
			}
			return NodeRef{Level: l, Index: idx}, true
		}
	}
	return NodeRef{}, false
}

// UnitHash returns the authoritative hash of counter unit u.
func (t *Tree) UnitHash(u uint64) uint64 {
	if h, ok := t.unitHashes[u]; ok {
		return h
	}
	return t.defaultUnit
}

func (t *Tree) nodeHash(l int, i uint64) uint64 {
	if h, ok := t.nodeHashes[l][i]; ok {
		return h
	}
	return t.defaultNode[l]
}

// computeNode recomputes the hash of node (l, i) from its children.
func (t *Tree) computeNode(l int, i uint64) uint64 {
	buf := make([]byte, 8*int(t.arity)+8)
	base := i * t.arity
	for c := uint64(0); c < t.arity; c++ {
		var h uint64
		if l == 0 {
			if base+c < t.cfg.Units {
				h = t.UnitHash(base + c)
			} else {
				h = t.defaultUnit
			}
		} else {
			if base+c < t.counts[l-1] {
				h = t.nodeHash(l-1, base+c)
			} else {
				h = t.defaultNode[l-1]
			}
		}
		binary.LittleEndian.PutUint64(buf[c*8:], h)
	}
	binary.LittleEndian.PutUint64(buf[8*int(t.arity):], uint64(l))
	return siphash.Sum64(t.cfg.Key, buf)
}

// SetUnitHash records a new hash for counter unit u (after a counter
// write) and propagates the change to the root.
func (t *Tree) SetUnitHash(u uint64, h uint64) {
	if u >= t.cfg.Units {
		panic(fmt.Sprintf("bmt: unit %d out of range %d", u, t.cfg.Units))
	}
	t.unitHashes[u] = h
	idx := u / t.arity
	for l := 0; l < len(t.counts); l++ {
		nh := t.computeNode(l, idx)
		if l == len(t.counts)-1 {
			t.root = nh
			break
		}
		t.nodeHashes[l][idx] = nh
		idx /= t.arity
	}
}

// VerifyUnit checks a counter unit's hash (recomputed by the engine from
// the fetched, untrusted counter bytes) against the tree. A mismatch
// means the counters were tampered with or replayed.
func (t *Tree) VerifyUnit(u uint64, h uint64) bool { return t.UnitHash(u) == h }
