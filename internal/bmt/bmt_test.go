package bmt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/plutus-gpu/plutus/internal/crypto/siphash"
)

func cfg16(units uint64) Config {
	return Config{Units: units, UnitBytes: 128, NodeBytes: 128, Key: siphash.Key{K0: 11, K1: 22}}
}

func cfg4(units uint64) Config {
	return Config{Units: units, UnitBytes: 32, NodeBytes: 32, Key: siphash.Key{K0: 11, K1: 22}}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Units: 0, UnitBytes: 128, NodeBytes: 128},
		{Units: 1, UnitBytes: 128, NodeBytes: 12},
		{Units: 1, UnitBytes: 128, NodeBytes: 8}, // single-hash node
		{Units: 1, UnitBytes: 0, NodeBytes: 128},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated, want error", c)
		}
	}
	if err := cfg16(100).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestArity(t *testing.T) {
	if got := cfg16(1).Arity(); got != 16 {
		t.Errorf("128 B node arity = %d, want 16", got)
	}
	if got := cfg4(1).Arity(); got != 4 {
		t.Errorf("32 B node arity = %d, want 4", got)
	}
}

// The paper's §IV-E example: an 8-ary tree with 128 leaves has height 4
// (128-16-2-1), and one with 512 leaves also has height 4 (512-64-8-1).
// With our bottom-up construction level counts exclude the unit layer:
// 128 units/8 = 16, 2, 1 → height 3 node levels (the paper counts the
// leaf layer too). Verify relative growth instead of absolute convention.
func TestHeightGrowsWithUnitsAndShrinksWithArity(t *testing.T) {
	t16 := MustNew(cfg16(4096), 0)
	t4 := MustNew(cfg4(4096), 0)
	if t4.Height() <= t16.Height() {
		t.Errorf("4-ary height %d should exceed 16-ary height %d", t4.Height(), t16.Height())
	}
	small := MustNew(cfg16(16), 0)
	if small.Height() != 1 {
		t.Errorf("16 units under 16-ary should be height 1, got %d", small.Height())
	}
	big := MustNew(cfg16(17), 0)
	if big.Height() != 2 {
		t.Errorf("17 units under 16-ary should be height 2, got %d", big.Height())
	}
}

func TestSameStorageDifferentShape(t *testing.T) {
	// Paper Fig. 14: designs 2 and 3 have the same tree size but design 3
	// (all 32 B) grows vertically. With equal unit counts, total storage
	// is similar; heights differ.
	units := uint64(1 << 12)
	flat := MustNew(Config{Units: units, UnitBytes: 32, NodeBytes: 128, Key: siphash.Key{}}, 0)
	tall := MustNew(Config{Units: units, UnitBytes: 32, NodeBytes: 32, Key: siphash.Key{}}, 0)
	if tall.Height() <= flat.Height() {
		t.Errorf("32 B-node tree height %d should exceed 128 B-node height %d", tall.Height(), flat.Height())
	}
	// Same number of hash slots overall (within rounding).
	if flat.StorageBytes() == 0 || tall.StorageBytes() == 0 {
		t.Error("storage should be nonzero")
	}
}

func TestPathReachesRootAndParentsChain(t *testing.T) {
	tr := MustNew(cfg16(1000), 0)
	p := tr.Path(999)
	if len(p) != tr.Height() {
		t.Fatalf("path length %d != height %d", len(p), tr.Height())
	}
	if !tr.IsRoot(p[len(p)-1]) {
		t.Error("path must end at the root")
	}
	for i := 0; i+1 < len(p); i++ {
		if p[i+1].Level != p[i].Level+1 {
			t.Errorf("path levels not consecutive: %+v", p)
		}
		if p[i+1].Index != p[i].Index/16 {
			t.Errorf("parent index wrong at %d: %+v", i, p)
		}
	}
}

func TestPathPanicsOutOfRange(t *testing.T) {
	tr := MustNew(cfg16(10), 0)
	defer func() {
		if recover() == nil {
			t.Error("Path(10) should panic for 10-unit tree")
		}
	}()
	tr.Path(10)
}

func TestNodeAddrsDistinctAndLevelMajor(t *testing.T) {
	tr := MustNew(cfg16(300), 0)
	seen := make(map[uint64]NodeRef)
	for l := 0; l < tr.Height(); l++ {
		for i := uint64(0); i < tr.counts[l]; i++ {
			r := NodeRef{Level: l, Index: i}
			a := uint64(tr.NodeAddr(r))
			if prev, dup := seen[a]; dup {
				t.Fatalf("NodeAddr collision: %+v and %+v at %#x", prev, r, a)
			}
			seen[a] = r
		}
	}
	// Addresses within a level are NodeBytes apart.
	d := tr.NodeAddr(NodeRef{0, 1}) - tr.NodeAddr(NodeRef{0, 0})
	if int(d) != tr.cfg.NodeBytes {
		t.Errorf("level stride = %d, want %d", d, tr.cfg.NodeBytes)
	}
}

func TestRootChangesOnAnyUnitUpdate(t *testing.T) {
	tr := MustNew(cfg16(500), 7)
	r0 := tr.Root()
	tr.SetUnitHash(250, 0xdeadbeef)
	r1 := tr.Root()
	if r1 == r0 {
		t.Fatal("root unchanged after unit update")
	}
	tr.SetUnitHash(0, 0x1234)
	if tr.Root() == r1 {
		t.Fatal("root unchanged after second unit update")
	}
}

func TestVerifyUnitDetectsMismatch(t *testing.T) {
	tr := MustNew(cfg16(100), 7)
	if !tr.VerifyUnit(42, 7) {
		t.Fatal("fresh unit should verify against the default hash")
	}
	tr.SetUnitHash(42, 0xabc)
	if !tr.VerifyUnit(42, 0xabc) {
		t.Fatal("updated unit should verify against its new hash")
	}
	if tr.VerifyUnit(42, 7) {
		t.Fatal("stale (replayed) hash must not verify")
	}
	if tr.VerifyUnit(42, 0xabd) {
		t.Fatal("tampered hash must not verify")
	}
}

// Property: updating one unit never changes another unit's verification.
func TestUpdateIsolationProperty(t *testing.T) {
	tr := MustNew(cfg4(256), 3)
	f := func(a, b uint8, h uint64) bool {
		ua, ub := uint64(a), uint64(b)
		if ua == ub {
			return true
		}
		before := tr.UnitHash(ub)
		tr.SetUnitHash(ua, h)
		return tr.UnitHash(ub) == before && tr.VerifyUnit(ub, before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: two trees fed the same update sequence have equal roots, and
// any divergence in sequence yields different roots (collision-resistant
// in practice for SipHash on distinct inputs).
func TestRootDeterminism(t *testing.T) {
	u1 := MustNew(cfg16(64), 1)
	u2 := MustNew(cfg16(64), 1)
	for i := uint64(0); i < 64; i += 3 {
		u1.SetUnitHash(i, i*977)
		u2.SetUnitHash(i, i*977)
	}
	if u1.Root() != u2.Root() {
		t.Fatal("same updates produced different roots")
	}
	u2.SetUnitHash(5, 999)
	if u1.Root() == u2.Root() {
		t.Fatal("diverged trees share a root")
	}
}

func TestStorageGrowsWithFinerNodes(t *testing.T) {
	// The paper's §IV-F: fine-granularity metadata grows BMT storage
	// (145.125 kB → 1.33 MB for the full design). Check the direction.
	coarse := MustNew(Config{Units: 1 << 15, UnitBytes: 128, NodeBytes: 128, Key: siphash.Key{}}, 0)
	fine := MustNew(Config{Units: 1 << 17, UnitBytes: 32, NodeBytes: 32, Key: siphash.Key{}}, 0)
	if fine.StorageBytes() <= coarse.StorageBytes() {
		t.Errorf("fine tree storage %d should exceed coarse %d", fine.StorageBytes(), coarse.StorageBytes())
	}
}
