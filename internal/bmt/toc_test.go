package bmt

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/crypto/siphash"
)

func tocCfg(units uint64) Config {
	return Config{Units: units, UnitBytes: 128, NodeBytes: 128, Key: siphash.Key{K0: 3, K1: 9}}
}

func TestToCFreshPathVerifies(t *testing.T) {
	tc := MustToC(tocCfg(1000))
	for _, u := range []uint64{0, 1, 500, 999} {
		if !tc.VerifyPath(u) {
			t.Errorf("fresh unit %d failed verification", u)
		}
	}
}

func TestToCBumpThenVerify(t *testing.T) {
	tc := MustToC(tocCfg(1000))
	r0 := tc.RootVersion()
	tc.Bump(123)
	if tc.RootVersion() == r0 {
		t.Fatal("root version unchanged after bump")
	}
	if !tc.VerifyPath(123) {
		t.Fatal("bumped unit failed verification")
	}
	// Neighbors sharing path nodes also still verify.
	if !tc.VerifyPath(124) || !tc.VerifyPath(0) {
		t.Fatal("unrelated units failed after bump")
	}
}

func TestToCDetectsReplay(t *testing.T) {
	tc := MustToC(tocCfg(1000))
	tc.Bump(42)
	tc.Bump(42)
	tc.TamperUnit(42)
	if tc.VerifyPath(42) {
		t.Fatal("replayed unit version passed verification")
	}
}

func TestToCDetectsForgedFreshUnit(t *testing.T) {
	tc := MustToC(tocCfg(1000))
	tc.Bump(40) // bind the shared level-0 node's MAC
	tc.TamperUnit(41)
	if tc.VerifyPath(41) {
		t.Fatal("forged version on a bound node passed verification")
	}
}

func TestToCManyUpdatesStayConsistent(t *testing.T) {
	tc := MustToC(tocCfg(512))
	for k := 0; k < 2000; k++ {
		tc.Bump(uint64(k*37) % 512)
	}
	for u := uint64(0); u < 512; u += 13 {
		if !tc.VerifyPath(u) {
			t.Fatalf("unit %d failed after update storm", u)
		}
	}
}

func TestToCPathMatchesBMTGeometry(t *testing.T) {
	cfg := tocCfg(4096)
	tc := MustToC(cfg)
	tr := MustNew(cfg, 0)
	if tc.Height() != tr.Height() {
		t.Fatalf("ToC height %d != BMT height %d for same config", tc.Height(), tr.Height())
	}
	p1, p2 := tc.Path(4095), tr.Path(4095)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("path node %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

func TestToCPanicsOutOfRange(t *testing.T) {
	tc := MustToC(tocCfg(8))
	defer func() {
		if recover() == nil {
			t.Error("Bump out of range should panic")
		}
	}()
	tc.Bump(8)
}
