package bmt

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
)

// Snapshot encodes the tree's materialized hashes — non-default unit
// hashes, per-level non-default node hashes (both in ascending index
// order), and the root. Geometry and defaults are derived from Config
// on the restoring side; unit count and height are encoded as a
// cross-check.
func (t *Tree) Snapshot(enc *checkpoint.Encoder) error {
	enc.U64(t.cfg.Units)
	enc.U32(uint32(len(t.counts)))
	enc.U64(uint64(len(t.unitHashes)))
	for _, u := range checkpoint.SortedKeys(t.unitHashes) {
		enc.U64(u)
		enc.U64(t.unitHashes[u])
	}
	for l := range t.nodeHashes {
		m := t.nodeHashes[l]
		enc.U64(uint64(len(m)))
		for _, i := range checkpoint.SortedKeys(m) {
			enc.U64(i)
			enc.U64(m[i])
		}
	}
	enc.U64(t.root)
	return nil
}

// Restore decodes state written by Snapshot into a tree built from the
// same configuration.
func (t *Tree) Restore(dec *checkpoint.Decoder) error {
	units, height := dec.U64(), dec.U32()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("bmt: %w", err)
	}
	if units != t.cfg.Units || int(height) != len(t.counts) {
		return fmt.Errorf("bmt: snapshot geometry (units %d, height %d) vs tree (units %d, height %d): %w",
			units, height, t.cfg.Units, len(t.counts), checkpoint.ErrMismatch)
	}
	nu := dec.U64()
	unitHashes := make(map[uint64]uint64, nu)
	for i := uint64(0); i < nu && dec.Err() == nil; i++ {
		u := dec.U64()
		unitHashes[u] = dec.U64()
	}
	nodeHashes := make([]map[uint64]uint64, len(t.counts))
	for l := range nodeHashes {
		nn := dec.U64()
		nodeHashes[l] = make(map[uint64]uint64, nn)
		for i := uint64(0); i < nn && dec.Err() == nil; i++ {
			idx := dec.U64()
			nodeHashes[l][idx] = dec.U64()
		}
	}
	root := dec.U64()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("bmt: %w", err)
	}
	t.unitHashes = unitHashes
	t.nodeHashes = nodeHashes
	t.root = root
	return nil
}
