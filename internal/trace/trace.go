// Package trace records benchmark instruction streams to a compact binary
// format and replays them as gpusim workloads. Traces make experiments
// exactly repeatable across machines and let users drive the simulator
// with externally captured memory traces instead of the synthetic suite.
//
// Format (little-endian): a header ("PLTR", version, warp count, value
// seed), then one record per instruction:
//
//	u8   kind (0 compute, 1 load, 2 store)
//	u32  warp
//	u16  cycles (compute) or address count (load/store)
//	u64× addresses
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
)

// magic identifies trace files.
var magic = [4]byte{'P', 'L', 'T', 'R'}

const version = 1

// Record is one traced warp instruction.
type Record struct {
	Warp   uint32
	Kind   gpusim.InstKind
	Cycles uint16
	Addrs  []geom.Addr
}

// Trace is a full captured run.
type Trace struct {
	Warps     int
	ValueSeed uint64
	Records   []Record
}

// Capture drains up to maxInsts instructions from wl (round-robin over
// warps, approximating issue order) into a Trace.
func Capture(wl gpusim.Workload, maxInsts int) *Trace {
	tr := &Trace{Warps: wl.Warps(), ValueSeed: 0x9e3779b97f4a7c15}
	live := make([]bool, wl.Warps())
	for i := range live {
		live[i] = true
	}
	remaining := wl.Warps()
	for len(tr.Records) < maxInsts && remaining > 0 {
		for w := 0; w < wl.Warps() && len(tr.Records) < maxInsts; w++ {
			if !live[w] {
				continue
			}
			inst, ok := wl.Next(w)
			if !ok {
				live[w] = false
				remaining--
				continue
			}
			rec := Record{Warp: uint32(w), Kind: inst.Kind}
			switch inst.Kind {
			case gpusim.Compute:
				c := inst.Cycles
				if c < 1 {
					c = 1
				}
				if c > 0xffff {
					c = 0xffff
				}
				rec.Cycles = uint16(c)
			default:
				rec.Addrs = append([]geom.Addr(nil), inst.Addrs...)
			}
			tr.Records = append(tr.Records, rec)
		}
	}
	return tr
}

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 2+4+8+4)
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(t.Warps))
	binary.LittleEndian.PutUint64(hdr[6:], t.ValueSeed)
	binary.LittleEndian.PutUint32(hdr[14:], uint32(len(t.Records)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [8]byte
	for _, r := range t.Records {
		if err := bw.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], r.Warp)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		var n uint16
		if r.Kind == gpusim.Compute {
			n = r.Cycles
		} else {
			n = uint16(len(r.Addrs))
		}
		binary.LittleEndian.PutUint16(buf[:2], n)
		if _, err := bw.Write(buf[:2]); err != nil {
			return err
		}
		if r.Kind != gpusim.Compute {
			for _, a := range r.Addrs {
				binary.LittleEndian.PutUint64(buf[:], uint64(a))
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read parses a serialized trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	hdr := make([]byte, 2+4+8+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	t := &Trace{
		Warps:     int(binary.LittleEndian.Uint32(hdr[2:])),
		ValueSeed: binary.LittleEndian.Uint64(hdr[6:]),
	}
	count := binary.LittleEndian.Uint32(hdr[14:])
	var buf [8]byte
	for i := uint32(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		warp := binary.LittleEndian.Uint32(buf[:4])
		if _, err := io.ReadFull(br, buf[:2]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		n := binary.LittleEndian.Uint16(buf[:2])
		rec := Record{Warp: warp, Kind: gpusim.InstKind(kind)}
		if rec.Kind == gpusim.Compute {
			rec.Cycles = n
		} else {
			rec.Addrs = make([]geom.Addr, n)
			for k := range rec.Addrs {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return nil, fmt.Errorf("trace: record %d addr %d: %w", i, k, err)
				}
				rec.Addrs[k] = geom.Addr(binary.LittleEndian.Uint64(buf[:]))
			}
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}

// Replay adapts a Trace to gpusim.Workload. Memory values are hash-derived
// from the stored seed (value locality is workload-specific; replays that
// need the original value profile should regenerate the source workload).
type Replay struct {
	name  string
	trace *Trace
	// perWarp[w] holds indices into trace.Records in capture order.
	perWarp [][]int
	pos     []int
}

// NewReplay builds a replayable workload from a trace.
func NewReplay(name string, t *Trace) *Replay {
	r := &Replay{name: name, trace: t, perWarp: make([][]int, t.Warps), pos: make([]int, t.Warps)}
	for i, rec := range t.Records {
		r.perWarp[rec.Warp] = append(r.perWarp[rec.Warp], i)
	}
	return r
}

// Name implements gpusim.Workload.
func (r *Replay) Name() string { return r.name }

// Warps implements gpusim.Workload.
func (r *Replay) Warps() int { return r.trace.Warps }

// Next implements gpusim.Workload.
func (r *Replay) Next(w int) (gpusim.Inst, bool) {
	if r.pos[w] >= len(r.perWarp[w]) {
		return gpusim.Inst{}, false
	}
	rec := r.trace.Records[r.perWarp[w][r.pos[w]]]
	r.pos[w]++
	switch rec.Kind {
	case gpusim.Compute:
		return gpusim.Inst{Kind: gpusim.Compute, Cycles: int(rec.Cycles)}, true
	default:
		return gpusim.Inst{Kind: rec.Kind, Addrs: rec.Addrs}, true
	}
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MemValue implements gpusim.Workload.
func (r *Replay) MemValue(a geom.Addr) uint32 {
	return uint32(mix(r.trace.ValueSeed ^ uint64(a)/4))
}

// StoreValue implements gpusim.Workload.
func (r *Replay) StoreValue(w int, a geom.Addr) uint32 {
	return uint32(mix(r.trace.ValueSeed ^ uint64(a)/4 ^ uint64(w)<<48))
}
