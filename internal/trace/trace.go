// Package trace records benchmark instruction streams in the PLTR
// binary format and replays them as gpusim workloads. Traces make
// experiments exactly repeatable across machines and let the simulator
// be driven by captured production-scale streams (see the scenario
// subpackage) instead of the synthetic suite.
//
// # Format (PLTR version 2)
//
// All integers are little-endian. The file is a sequence of CRC-guarded
// chunks in the checkpoint-codec discipline, streamable in both
// directions: the writer never buffers more than one pending chunk per
// warp, and the reader never decodes more than one chunk per warp.
//
//	magic    [4]byte  "PLTR"
//	version  u16      = 2
//	header:
//	    payloadLen u32
//	    payload              warps, value model, chunk target
//	    payloadCRC u32       CRC32 (IEEE) of payload
//	chunk × N, each owned by one warp:
//	    tag        u8  = 0x01
//	    warp       u32
//	    firstIndex u64       per-warp index of the chunk's first record
//	    count      u32
//	    payloadLen u32
//	    payload              count records (see below)
//	    payloadCRC u32
//	footer:
//	    tag        u8  = 0x02
//	    payloadLen u32
//	    payload              total records + per-warp chunk index
//	    payloadCRC u32
//	trailer  [8]byte  "PLTR-END"
//	footerOff u64             file offset of the footer tag
//	trailerCRC u32            CRC32 (IEEE) of the previous 16 bytes
//
// A record is: u8 kind (0 compute, 1 load, 2 store), u16 cycles
// (compute) or address count (load/store), then that many u64
// addresses. Records of one warp appear in issue order; the relative
// order of different warps' chunks is not part of the format (replay
// timing is decided by the simulator, exactly as for synthetic
// workloads).
//
// The trailer magic distinguishes truncation (writer died; trailer
// absent → checkpoint.ErrTruncated) from corruption (trailer present
// but a CRC or structural check fails → checkpoint.ErrCorrupt); intact
// files of another version (for example v1 traces from before the
// streaming format) are rejected with checkpoint.ErrVersion. The value
// model embedded in the header is the capture source's
// valmodel.Model, so replayed memory images and store streams match
// the original run bit for bit.
package trace

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

// Record is one traced warp instruction.
type Record struct {
	Warp   uint32
	Kind   gpusim.InstKind
	Cycles uint16
	Addrs  []geom.Addr
}

// RecordOf converts one issued instruction into its trace record,
// clamping compute latencies into the format's u16 field the same way
// the simulator clamps them at execute time (min 1).
func RecordOf(warp int, inst gpusim.Inst) Record {
	rec := Record{Warp: uint32(warp), Kind: inst.Kind}
	if inst.Kind == gpusim.Compute {
		c := inst.Cycles
		if c < 1 {
			c = 1
		}
		if c > 0xffff {
			c = 0xffff
		}
		rec.Cycles = uint16(c)
	} else {
		rec.Addrs = append([]geom.Addr(nil), inst.Addrs...)
	}
	return rec
}

// Inst converts a record back into the instruction the simulator
// replays.
func (r Record) Inst() gpusim.Inst {
	if r.Kind == gpusim.Compute {
		return gpusim.Inst{Kind: gpusim.Compute, Cycles: int(r.Cycles)}
	}
	return gpusim.Inst{Kind: r.Kind, Addrs: r.Addrs}
}

// Trace is a fully materialized trace — a convenience for tests and
// inspection tools. Production replay streams chunks through Replay
// instead and never holds more than one chunk per warp.
type Trace struct {
	Warps    int
	Model    valmodel.Model
	HasModel bool
	// Records hold each warp's stream in issue order; ReadAll returns
	// them warp-major (all of warp 0, then warp 1, ...).
	Records []Record
}

// Write serializes the trace in PLTR-v2 format.
func (t *Trace) Write(w io.Writer) error {
	tw, err := NewWriter(w, Header{Warps: t.Warps, Model: t.Model, HasModel: t.HasModel})
	if err != nil {
		return err
	}
	for _, r := range t.Records {
		tw.Append(r)
	}
	return tw.Close()
}

// ReadAll materializes a whole serialized trace, warp-major.
func ReadAll(data []byte) (*Trace, error) {
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	t := &Trace{Warps: r.Warps(), Model: r.Header().Model, HasModel: r.Header().HasModel}
	for w := 0; w < r.Warps(); w++ {
		for i := 0; i < r.Chunks(w); i++ {
			recs, err := r.LoadChunk(w, i)
			if err != nil {
				return nil, err
			}
			t.Records = append(t.Records, recs...)
		}
	}
	return t, nil
}

// ReadFile is ReadAll over a file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := ReadAll(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
