package trace_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/trace"
	"github.com/plutus-gpu/plutus/internal/workload"
)

func testConfig(insts uint64, parallel bool) gpusim.Config {
	cfg := gpusim.ScaledConfig(secmem.Plutus(0))
	cfg.Sec.ProtectedBytes = 128 << 20
	cfg.MaxInstructions = insts
	cfg.ParallelPartitions = parallel
	return cfg
}

// captureFile captures bench under cfg into a temp trace file and
// returns the path plus the capture run's stats.
func captureFile(t *testing.T, bench string, cfg gpusim.Config) (string, *stats.Stats) {
	t.Helper()
	wl, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ref, err := trace.Capture(cfg, wl, &buf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cap.pltr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, ref
}

// normalize blanks the benchmark name, the one field that legitimately
// differs between a live run and its trace replay.
func normalize(st *stats.Stats) stats.Stats {
	out := *st
	out.Benchmark = ""
	return out
}

// TestCaptureReplayByteIdentical is the replay guarantee: replaying a
// capture under the same configuration reproduces the run's statistics
// exactly, in sequential and in parallel-partition mode, for a suite
// benchmark and for scenario-corpus workloads.
func TestCaptureReplayByteIdentical(t *testing.T) {
	for _, bench := range []string{"bfs", "scn-phase", "scn-attackload"} {
		t.Run(bench, func(t *testing.T) {
			cfg := testConfig(3000, false)
			path, ref := captureFile(t, bench, cfg)
			for _, parallel := range []bool{false, true} {
				rcfg := cfg
				rcfg.ParallelPartitions = parallel
				wl, err := workload.Get("trace:" + path)
				if err != nil {
					t.Fatal(err)
				}
				g, err := gpusim.New(rcfg, wl)
				if err != nil {
					t.Fatal(err)
				}
				st := g.Run()
				if normalize(st) != normalize(ref) {
					t.Errorf("parallel=%v: replay diverged from capture:\nref: %+v\ngot: %+v",
						parallel, normalize(ref), normalize(st))
				}
			}
		})
	}
}

// TestReplayIsRecapturable: capturing a replay reproduces the run and
// the value model — second-generation traces are as good as first.
func TestReplayIsRecapturable(t *testing.T) {
	cfg := testConfig(2000, false)
	path, ref := captureFile(t, "scn-multitenant", cfg)
	path2, ref2 := captureFile(t, "trace:"+path, cfg)
	if normalize(ref2) != normalize(ref) {
		t.Fatalf("second-generation capture diverged:\nref: %+v\ngot: %+v",
			normalize(ref), normalize(ref2))
	}
	a, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Warps != b.Warps || a.Model != b.Model || len(a.Records) != len(b.Records) {
		t.Fatalf("recapture changed trace shape: %d/%d warps, %d/%d records",
			a.Warps, b.Warps, len(a.Records), len(b.Records))
	}
}

// writeSynthetic builds a trace with a tiny chunk target so a short
// stream still spans many chunks per warp.
func writeSynthetic(t *testing.T, warps, perWarp, chunkRecords int) string {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Warps: warps, ChunkRecords: chunkRecords})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < perWarp; step++ {
		for wi := 0; wi < warps; wi++ {
			w.Append(syntheticRecord(wi, step))
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "synthetic.pltr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func syntheticRecord(w, step int) trace.Record {
	switch step % 3 {
	case 0:
		return trace.Record{Warp: uint32(w), Kind: gpusim.Compute, Cycles: uint16(1 + step%7)}
	case 1:
		return trace.Record{Warp: uint32(w), Kind: gpusim.Load,
			Addrs: []geom.Addr{geom.Addr(step * 32), geom.Addr(step*32 + 4)}}
	default:
		return trace.Record{Warp: uint32(w), Kind: gpusim.Store,
			Addrs: []geom.Addr{geom.Addr(w*1024 + step*4)}}
	}
}

// TestStreamingReplayBounded pins the bounded-memory guarantee: a
// replay never holds more than one chunk of records per warp, however
// long the trace.
func TestStreamingReplayBounded(t *testing.T) {
	const (
		warps        = 4
		perWarp      = 1000
		chunkRecords = 16
	)
	path := writeSynthetic(t, warps, perWarp, chunkRecords)
	rep, err := trace.OpenReplay("synthetic", path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRecords() != warps*perWarp {
		t.Fatalf("TotalRecords = %d, want %d", rep.TotalRecords(), warps*perWarp)
	}
	n := 0
	for step := 0; step < perWarp; step++ {
		for w := 0; w < warps; w++ {
			inst, ok := rep.Next(w)
			if !ok {
				t.Fatalf("warp %d retired early at step %d", w, step)
			}
			want := syntheticRecord(w, step).Inst()
			if inst.Kind != want.Kind || inst.Cycles != want.Cycles || len(inst.Addrs) != len(want.Addrs) {
				t.Fatalf("warp %d step %d: got %+v, want %+v", w, step, inst, want)
			}
			n++
		}
	}
	for w := 0; w < warps; w++ {
		if _, ok := rep.Next(w); ok {
			t.Fatalf("warp %d did not retire after %d records", w, perWarp)
		}
	}
	if max := rep.MaxResidentRecords(); max > warps*chunkRecords {
		t.Errorf("resident high-water %d records exceeds one chunk per warp (%d)",
			max, warps*chunkRecords)
	} else if max >= n {
		t.Errorf("resident high-water %d of %d records: trace was fully materialized", max, n)
	}
}

// TestReplayCursorRoundTrip: a cursor taken mid-replay restores to the
// exact same remaining stream on a fresh Replay, including positions in
// the middle of chunks and at warp ends.
func TestReplayCursorRoundTrip(t *testing.T) {
	path := writeSynthetic(t, 3, 200, 16)
	a, err := trace.OpenReplay("synthetic", path)
	if err != nil {
		t.Fatal(err)
	}
	// Advance warps unevenly: mid-chunk, chunk-aligned, fully drained.
	for i := 0; i < 37; i++ {
		a.Next(0)
	}
	for i := 0; i < 64; i++ {
		a.Next(1)
	}
	for i := 0; i < 200; i++ {
		a.Next(2)
	}
	cur := a.Cursor()
	if want := []uint64{37, 64, 200}; fmt.Sprint(cur) != fmt.Sprint(want) {
		t.Fatalf("cursor = %v, want %v", cur, want)
	}

	b, err := trace.OpenReplay("synthetic", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreCursor(cur); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		for {
			ia, oka := a.Next(w)
			ib, okb := b.Next(w)
			if oka != okb {
				t.Fatalf("warp %d: restored stream length diverges", w)
			}
			if !oka {
				break
			}
			if ia.Kind != ib.Kind || ia.Cycles != ib.Cycles || len(ia.Addrs) != len(ib.Addrs) {
				t.Fatalf("warp %d: restored stream content diverges: %+v vs %+v", w, ia, ib)
			}
			for j := range ia.Addrs {
				if ia.Addrs[j] != ib.Addrs[j] {
					t.Fatalf("warp %d: restored address diverges", w)
				}
			}
		}
	}

	if err := b.RestoreCursor([]uint64{0, 0}); err == nil {
		t.Error("short cursor accepted")
	}
	if err := b.RestoreCursor([]uint64{0, 0, 201}); err == nil {
		t.Error("out-of-range cursor accepted")
	}
}

// TestTraceCheckpointResume: a traced run preempted at a checkpoint and
// resumed from its snapshot finishes byte-identical to an uninterrupted
// run at the same cadence — the trace workload's cursor is part of the
// snapshot like any suite benchmark's.
func TestTraceCheckpointResume(t *testing.T) {
	cfg := testConfig(2500, false)
	path, _ := captureFile(t, "scn-dnn-infer", cfg)
	cfg.CheckpointEvery = 400

	run := func(g *gpusim.GPU) *stats.Stats {
		st, err := g.RunWithCheckpoints(nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	newGPU := func() *gpusim.GPU {
		wl, err := workload.Get("trace:" + path)
		if err != nil {
			t.Fatal(err)
		}
		g, err := gpusim.New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	ref := run(newGPU())

	var snap []byte
	preempt := errors.New("park")
	_, err := newGPU().RunWithCheckpoints(func(cycle uint64, data []byte) error {
		snap = append([]byte(nil), data...)
		return fmt.Errorf("parked at %d: %w", cycle, preempt)
	})
	if !errors.Is(err, preempt) {
		t.Fatalf("err = %v, want preemption", err)
	}
	if snap == nil {
		t.Fatal("no snapshot taken")
	}

	wl, err := workload.Get("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpusim.ResumeSnapshot(cfg, wl, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := run(g); *got != *ref {
		t.Errorf("resumed traced run diverged:\nref: %+v\ngot: %+v", ref, got)
	}
}

// TestOpenReplayErrors: the workload-facing entry point surfaces the
// checkpoint error taxonomy.
func TestOpenReplayErrors(t *testing.T) {
	if _, err := trace.OpenReplay("x", filepath.Join(t.TempDir(), "missing.pltr")); err == nil {
		t.Error("missing file opened")
	}
	path := writeSynthetic(t, 2, 50, 8)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.pltr")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.OpenReplay("x", trunc); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Errorf("truncated trace: err = %v, want ErrTruncated", err)
	}
}

// TestWriteReadAllRoundTrip covers the materialized convenience path.
func TestWriteReadAllRoundTrip(t *testing.T) {
	src := &trace.Trace{Warps: 3, HasModel: true}
	src.Model.Seed = 77
	src.Model.ZeroFrac = 0.25
	for step := 0; step < 100; step++ {
		for w := 0; w < 3; w++ {
			src.Records = append(src.Records, syntheticRecord(w, step))
		}
	}
	var buf bytes.Buffer
	if err := src.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Warps != src.Warps || !got.HasModel || got.Model != src.Model {
		t.Fatalf("header changed: %+v", got)
	}
	if len(got.Records) != len(src.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(src.Records))
	}
	// ReadAll returns warp-major order; regroup the source to compare.
	var want []trace.Record
	for w := 0; w < 3; w++ {
		for _, r := range src.Records {
			if int(r.Warp) == w {
				want = append(want, r)
			}
		}
	}
	for i := range want {
		a, b := want[i], got.Records[i]
		if a.Warp != b.Warp || a.Kind != b.Kind || a.Cycles != b.Cycles || len(a.Addrs) != len(b.Addrs) {
			t.Fatalf("record %d changed: %+v vs %+v", i, a, b)
		}
		for j := range a.Addrs {
			if a.Addrs[j] != b.Addrs[j] {
				t.Fatalf("record %d address %d changed", i, j)
			}
		}
	}
}

var (
	_ gpusim.Workload               = (*trace.Replay)(nil)
	_ gpusim.CheckpointableWorkload = (*trace.Replay)(nil)
)
