package trace

import (
	"bytes"
	"testing"

	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/workload"
)

func TestCaptureRoundTrip(t *testing.T) {
	wl := workload.MustGet("hotspot")
	tr := Capture(wl, 500)
	if len(tr.Records) != 500 {
		t.Fatalf("captured %d records, want 500", len(tr.Records))
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Warps != tr.Warps || back.ValueSeed != tr.ValueSeed || len(back.Records) != len(tr.Records) {
		t.Fatalf("header mismatch: %+v vs %+v", back.Warps, tr.Warps)
	}
	for i := range tr.Records {
		a, b := tr.Records[i], back.Records[i]
		if a.Warp != b.Warp || a.Kind != b.Kind || a.Cycles != b.Cycles || len(a.Addrs) != len(b.Addrs) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		for k := range a.Addrs {
			if a.Addrs[k] != b.Addrs[k] {
				t.Fatalf("record %d addr %d mismatch", i, k)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReplayMatchesCapture(t *testing.T) {
	src := workload.MustGet("bfs")
	tr := Capture(src, 300)
	rep := NewReplay("bfs-replay", tr)
	if rep.Warps() != src.Warps() || rep.Name() != "bfs-replay" {
		t.Fatal("replay metadata wrong")
	}
	// Replaying warp 0 yields exactly its captured instruction stream.
	var want []Record
	for _, r := range tr.Records {
		if r.Warp == 0 {
			want = append(want, r)
		}
	}
	for i, w := range want {
		inst, ok := rep.Next(0)
		if !ok {
			t.Fatalf("replay ended early at %d", i)
		}
		if inst.Kind != w.Kind || len(inst.Addrs) != len(w.Addrs) {
			t.Fatalf("replay record %d mismatch", i)
		}
	}
	if _, ok := rep.Next(0); ok {
		t.Fatal("replay did not end after captured records")
	}
}

func TestReplayIsRunnable(t *testing.T) {
	tr := Capture(workload.MustGet("mis"), 400)
	rep := NewReplay("mis-replay", tr)
	cfg := gpusim.ScaledConfig(secmem.Baseline(1 << 24))
	cfg.SMs, cfg.Partitions = 2, 2
	cfg.Sec.ProtectedBytes = 1 << 24
	g, err := gpusim.New(cfg, rep)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Run()
	if st.Instructions == 0 || st.Cycles == 0 {
		t.Fatalf("replay run produced no work: %+v", st)
	}
}

func TestValueDeterminism(t *testing.T) {
	tr := &Trace{Warps: 1, ValueSeed: 42}
	r1, r2 := NewReplay("a", tr), NewReplay("b", tr)
	if r1.MemValue(0x100) != r2.MemValue(0x100) {
		t.Fatal("MemValue not deterministic")
	}
	if r1.StoreValue(1, 0x100) == r1.StoreValue(2, 0x100) {
		t.Fatal("StoreValue should vary by warp")
	}
}
