package trace

import (
	"bytes"
	"errors"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
)

// FuzzReadV2 hammers the reader with arbitrary bytes: whatever comes
// in, it must either parse completely (index consistent with the
// chunks) or fail with exactly one of the checkpoint taxonomy errors —
// never panic, never hang, never accept a structurally inconsistent
// file. The committed corpus under testdata/fuzz seeds the classes the
// format distinguishes: valid, truncated, bit-flipped, wrong-version.
func FuzzReadV2(f *testing.F) {
	valid := buildValid(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PLTR"))
	f.Add(valid[:len(valid)-trailerLen])                            // writer died before the trailer
	f.Add(valid[:len(valid)/3])                                     // mid-chunk truncation
	f.Add(append([]byte("PLTR\x01\x00"), valid[fileHeaderLen:]...)) // v1 file
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x20 // chunk payload bit-flip
	f.Add(flip)
	crc := append([]byte(nil), valid...)
	crc[len(crc)-1] ^= 0x01 // trailer CRC flip
	f.Add(crc)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			requireTaxonomy(t, err)
			return
		}
		var total uint64
		for w := 0; w < r.Warps(); w++ {
			chunks := r.Index(w)
			for i, ci := range chunks {
				recs, err := r.LoadChunk(w, i)
				if err != nil {
					requireTaxonomy(t, err)
					return
				}
				if uint32(len(recs)) != ci.Count {
					t.Fatalf("warp %d chunk %d: %d records, index says %d", w, i, len(recs), ci.Count)
				}
				total += uint64(len(recs))
			}
		}
		if total != r.TotalRecords() {
			t.Fatalf("chunks hold %d records, header says %d", total, r.TotalRecords())
		}
	})
}

// requireTaxonomy asserts err belongs to the checkpoint error taxonomy
// the package documents — anything else is an escaped internal error.
func requireTaxonomy(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, checkpoint.ErrTruncated) &&
		!errors.Is(err, checkpoint.ErrCorrupt) &&
		!errors.Is(err, checkpoint.ErrVersion) {
		t.Fatalf("error outside the taxonomy: %v", err)
	}
}
