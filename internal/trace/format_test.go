package trace

import (
	"bytes"
	"errors"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

// buildValid serializes a small multi-chunk trace for mutation tests
// and fuzz seeds.
func buildValid(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Warps:        3,
		HasModel:     true,
		Model:        valmodel.Model{Seed: 9, ZeroFrac: 0.3, PoolFrac: 0.2, PoolSize: 8, Jitter: true},
		ChunkRecords: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		for wi := 0; wi < 3; wi++ {
			rec := Record{Warp: uint32(wi), Kind: gpusim.Load,
				Addrs: []geom.Addr{geom.Addr(step * 32), geom.Addr(step*32 + 8)}}
			if step%4 == 0 {
				rec = Record{Warp: uint32(wi), Kind: gpusim.Compute, Cycles: uint16(step + 1)}
			}
			w.Append(rec)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAllErr(data []byte) error {
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return err
	}
	for w := 0; w < r.Warps(); w++ {
		for i := 0; i < r.Chunks(w); i++ {
			if _, err := r.LoadChunk(w, i); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestReaderValid(t *testing.T) {
	data := buildValid(t)
	if err := readAllErr(data); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRecords() != 120 || r.Warps() != 3 {
		t.Fatalf("header stats wrong: %d records, %d warps", r.TotalRecords(), r.Warps())
	}
	if got := r.WarpRecords(1); got != 40 {
		t.Fatalf("warp 1 has %d records, want 40", got)
	}
	if r.Chunks(0) != 5 { // 40 records at 8 per chunk
		t.Fatalf("warp 0 has %d chunks, want 5", r.Chunks(0))
	}
}

// TestErrorTaxonomy maps each damage class to its checkpoint error, the
// same discipline snapshot files follow: absent trailer = truncated,
// failed CRC or structure = corrupt, wrong version = version.
func TestErrorTaxonomy(t *testing.T) {
	valid := buildValid(t)
	mutate := func(f func(d []byte) []byte) []byte {
		d := append([]byte(nil), valid...)
		return f(d)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, checkpoint.ErrTruncated},
		{"magic-only", []byte("PLTR"), checkpoint.ErrTruncated},
		{"missing-trailer", mutate(func(d []byte) []byte { return d[:len(d)-trailerLen] }), checkpoint.ErrTruncated},
		{"half-file", mutate(func(d []byte) []byte { return d[:len(d)/2] }), checkpoint.ErrTruncated},
		{"bad-magic", mutate(func(d []byte) []byte { d[0] ^= 0xff; return d }), checkpoint.ErrCorrupt},
		{"v1-file", mutate(func(d []byte) []byte { d[4], d[5] = 1, 0; return d }), checkpoint.ErrVersion},
		{"future-version", mutate(func(d []byte) []byte { d[4], d[5] = 3, 0; return d }), checkpoint.ErrVersion},
		{"header-bitflip", mutate(func(d []byte) []byte { d[fileHeaderLen+5] ^= 0x10; return d }), checkpoint.ErrCorrupt},
		{"trailer-crc-flip", mutate(func(d []byte) []byte { d[len(d)-1] ^= 1; return d }), checkpoint.ErrCorrupt},
		{"trailer-offset-flip", mutate(func(d []byte) []byte { d[len(d)-trailerLen+8] ^= 1; return d }), checkpoint.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := readAllErr(tc.data); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestChunkCorruptionDetected: damage inside a chunk payload passes
// NewReader (header and footer are intact — streaming validation is
// per-chunk) but fails that chunk's CRC on load.
func TestChunkCorruptionDetected(t *testing.T) {
	data := buildValid(t)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	ci := r.Index(1)[2]
	// Flip one byte in the middle of warp 1's third chunk payload.
	data[ci.Offset+uint64(chunkFrameLen)+uint64(ci.PayloadLen)/2] ^= 0x40

	r2, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewReader should not read chunk payloads, got %v", err)
	}
	if _, err := r2.LoadChunk(1, 2); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("corrupted chunk load: err = %v, want ErrCorrupt", err)
	}
	// Undamaged chunks still load.
	if _, err := r2.LoadChunk(1, 1); err != nil {
		t.Errorf("sibling chunk failed: %v", err)
	}
	if _, err := r2.LoadChunk(0, 2); err != nil {
		t.Errorf("other warp failed: %v", err)
	}
}

// TestFooterCorruptionDetected: damage in the footer index fails at
// open time — a replay never starts against a lying index.
func TestFooterCorruptionDetected(t *testing.T) {
	data := buildValid(t)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	data[r.footerOff+10] ^= 0x04
	if _, err := NewReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("corrupted footer: err = %v, want ErrCorrupt", err)
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, Header{Warps: 0}); err == nil {
		t.Error("zero-warp header accepted")
	}
	if _, err := NewWriter(&bytes.Buffer{}, Header{Warps: maxWarps + 1}); err == nil {
		t.Error("absurd warp count accepted")
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Warps: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Warp: 5, Kind: gpusim.Compute, Cycles: 1})
	if w.Err() == nil {
		t.Error("out-of-range warp accepted")
	}
	if err := w.Close(); err == nil {
		t.Error("Close after sticky error succeeded")
	}

	buf.Reset()
	w, err = NewWriter(&buf, Header{Warps: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Warp: 0, Kind: gpusim.InstKind(9)})
	if w.Err() == nil {
		t.Error("invalid kind accepted")
	}

	buf.Reset()
	w, err = NewWriter(&buf, Header{Warps: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Warp: 0, Kind: gpusim.Store, Addrs: make([]geom.Addr, 0x10000)})
	if w.Err() == nil {
		t.Error("oversized address vector accepted")
	}

	buf.Reset()
	w, err = NewWriter(&buf, Header{Warps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("empty trace close: %v", err)
	}
	w.Append(Record{Warp: 0, Kind: gpusim.Compute, Cycles: 1})
	if w.Err() == nil {
		t.Error("Append after Close accepted")
	}
	if err := readAllErr(buf.Bytes()); err != nil {
		t.Errorf("empty trace does not round-trip: %v", err)
	}
}
