package trace

import (
	"fmt"
	"os"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

// Replay adapts a serialized trace to gpusim.Workload with bounded
// memory: only the header and footer index stay resident, and each
// warp streams through its chunks one at a time — a chunk is dropped
// the moment its last record is consumed, so replaying a multi-GB
// trace never materializes the record stream. Memory values come from
// the value model embedded in the header, so a replay reproduces the
// capture source's memory image and store stream exactly.
//
// Replay implements gpusim.CheckpointableWorkload: the cursor is the
// per-warp consumed-record count, and RestoreCursor seeks through the
// footer index to the chunk containing each position — so traced runs
// checkpoint, resume, and preempt byte-identically to synthetic ones.
//
// The file is re-opened for each chunk load and closed again (one open
// per DefaultChunkRecords records), so an idle or merely-validated
// Replay holds no file descriptor. Next cannot report errors through
// the Workload interface; a chunk that fails to load or verify mid-run
// panics with the decode error — replay I/O failure is environment
// breakage, not a result.
type Replay struct {
	name  string
	path  string
	hdr   Header
	index [][]ChunkInfo
	total uint64

	cur []warpCursor
	// resident counts records currently decoded; maxResident is its
	// high-water mark, the number the alloc-bounded test pins against
	// the one-chunk-per-warp guarantee.
	resident    int
	maxResident int
}

// warpCursor is one warp's position in its stream.
type warpCursor struct {
	pos   uint64 // records consumed
	chunk int    // index of the chunk containing pos
	recs  []Record
	off   int // next record within recs
}

// OpenReplay validates the trace at path (header, trailer, and footer
// index CRCs) and returns a replayable workload named name. The file
// is closed again before returning; chunks load on demand.
func OpenReplay(name, path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	tr, err := NewReader(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r := &Replay{
		name:  name,
		path:  path,
		hdr:   tr.Header(),
		index: tr.index,
		total: tr.total,
		cur:   make([]warpCursor, tr.Warps()),
	}
	return r, nil
}

// Name implements gpusim.Workload.
func (r *Replay) Name() string { return r.name }

// Warps implements gpusim.Workload.
func (r *Replay) Warps() int { return r.hdr.Warps }

// TotalRecords returns the trace's record count.
func (r *Replay) TotalRecords() uint64 { return r.total }

// ValueModel implements valmodel.Modeler, so a replay can itself be
// captured with full value fidelity.
func (r *Replay) ValueModel() valmodel.Model { return r.hdr.Model }

// warpTotal is warp w's record count.
func (r *Replay) warpTotal(w int) uint64 {
	chunks := r.index[w]
	if len(chunks) == 0 {
		return 0
	}
	last := chunks[len(chunks)-1]
	return last.FirstIndex + uint64(last.Count)
}

// Next implements gpusim.Workload, streaming warp w through its
// chunks in capture order.
func (r *Replay) Next(w int) (gpusim.Inst, bool) {
	c := &r.cur[w]
	if c.pos >= r.warpTotal(w) {
		return gpusim.Inst{}, false
	}
	if c.recs == nil {
		ci := r.index[w][c.chunk]
		recs, err := r.loadChunk(w, ci)
		if err != nil {
			// See the type comment: the Workload interface has no error
			// path, and silently retiring the warp would corrupt results.
			panic(fmt.Sprintf("trace: replay %s: %v", r.name, err))
		}
		c.recs = recs
		c.off = int(c.pos - ci.FirstIndex)
		r.resident += len(recs)
		if r.resident > r.maxResident {
			r.maxResident = r.resident
		}
	}
	rec := c.recs[c.off]
	c.off++
	c.pos++
	if c.off == len(c.recs) {
		r.resident -= len(c.recs)
		c.recs = nil
		c.chunk++
	}
	return rec.Inst(), true
}

// loadChunk opens the trace file, reads and verifies one chunk, and
// closes the file again.
func (r *Replay) loadChunk(w int, ci ChunkInfo) ([]Record, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return loadChunk(f, fi.Size(), w, ci)
}

// MemValue implements gpusim.Workload (pure in addr, safe for the
// parallel partition shards).
func (r *Replay) MemValue(a geom.Addr) uint32 { return r.hdr.Model.MemValue(a) }

// StoreValue implements gpusim.Workload.
func (r *Replay) StoreValue(w int, a geom.Addr) uint32 { return r.hdr.Model.StoreValue(w, a) }

// MaxResidentRecords returns the high-water mark of simultaneously
// decoded records across all warps — bounded by warps × chunk target
// regardless of trace length.
func (r *Replay) MaxResidentRecords() int { return r.maxResident }

// Cursor implements gpusim.CheckpointableWorkload: the per-warp
// consumed-record counts, the stream's complete mutable state.
func (r *Replay) Cursor() []uint64 {
	out := make([]uint64, len(r.cur))
	for w := range r.cur {
		out[w] = r.cur[w].pos
	}
	return out
}

// RestoreCursor implements gpusim.CheckpointableWorkload, seeking each
// warp to a previously captured position via the footer index. Loaded
// chunks are dropped; the next Next reloads the right one.
func (r *Replay) RestoreCursor(cur []uint64) error {
	if len(cur) != len(r.cur) {
		return fmt.Errorf("trace %s: cursor has %d warps, trace has %d", r.name, len(cur), len(r.cur))
	}
	for w, pos := range cur {
		if pos > r.warpTotal(w) {
			return fmt.Errorf("trace %s: warp %d cursor %d beyond %d records", r.name, w, pos, r.warpTotal(w))
		}
	}
	for w, pos := range cur {
		c := &r.cur[w]
		if c.recs != nil {
			r.resident -= len(c.recs)
		}
		*c = warpCursor{pos: pos, chunk: len(r.index[w])}
		// Binary search the first chunk extending past pos; a cursor at
		// the stream's end leaves chunk one past the last.
		chunks := r.index[w]
		lo, hi := 0, len(chunks)
		for lo < hi {
			mid := (lo + hi) / 2
			if chunks[mid].FirstIndex+uint64(chunks[mid].Count) > pos {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		c.chunk = lo
	}
	return nil
}
