package trace

import (
	"fmt"
	"io"

	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

// Capture runs wl under cfg with an issue tap installed and streams the
// actually-issued instruction stream to out in PLTR-v2 format — not a
// round-robin approximation of the workload, but the exact per-warp
// streams the simulated schedulers pulled, including truncation by
// cfg.MaxInstructions and any behaviour differences under tamper plans.
// The run's stats are returned alongside, so a capture doubles as the
// reference result the replay must reproduce.
//
// If wl implements valmodel.Modeler (the synthetic suite, scenarios,
// and replays all do), its value model is embedded in the header and
// replayed values match wl bit for bit. Otherwise the trace carries
// only the instruction stream and replays with a zero model.
func Capture(cfg gpusim.Config, wl gpusim.Workload, out io.Writer) (*stats.Stats, error) {
	hdr := Header{Warps: wl.Warps()}
	if m, ok := wl.(valmodel.Modeler); ok {
		hdr.Model = m.ValueModel()
		hdr.HasModel = true
	}
	tw, err := NewWriter(out, hdr)
	if err != nil {
		return nil, err
	}
	g, err := gpusim.New(cfg, wl)
	if err != nil {
		return nil, err
	}
	g.SetIssueTap(func(warp int, inst gpusim.Inst) {
		tw.Append(RecordOf(warp, inst))
	})
	st := g.Run()
	if err := tw.Close(); err != nil {
		return nil, fmt.Errorf("trace: capture %s: %w", wl.Name(), err)
	}
	return st, nil
}
