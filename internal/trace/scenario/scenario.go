// Package scenario is the production scenario corpus: deterministic,
// step-indexed workload generators modelling the deployment shapes the
// paper's evaluation cannot reach with single-kernel benchmarks —
// DNN-inference serving, multi-tenant interleaving, phase-changing
// kernels, and attacks mounted under bandwidth load. Scenarios
// implement gpusim.Workload (plus the checkpoint cursor and value-model
// interfaces), register into the workload registry alongside the
// synthetic suite, and are the intended capture sources for the trace
// corpus: `tracegen -scenario <name>` emits a PLTR-v2 trace whose
// replay is byte-identical to running the scenario live.
//
// Like the workload package, everything is hash-derived from
// (scenario, warp, step): no shared mutable state beyond per-warp
// counters, so scenarios parallel-replay and checkpoint exactly like
// the suite.
package scenario

import (
	"fmt"
	"sort"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

// Info describes one scenario family for listings (tracegen -scenario).
type Info struct {
	Name string
	Desc string
	// Warps and InstsPerWarp bound the full (uncapped) stream.
	Warps        int
	InstsPerWarp int
}

// family couples an Info with its instruction generator. gen must be a
// pure function of (seed, warp, step); values is the scenario's data
// profile, seeded per instance.
type family struct {
	info   Info
	values func(seed uint64) valmodel.Model
	gen    func(seed uint64, w int, step uint64) gpusim.Inst
}

var families = map[string]family{
	"scn-dnn-infer": {
		info: Info{
			Name: "scn-dnn-infer",
			Desc: "DNN inference serving: layer-phased streaming weight reads with activation write-back, shrinking working set per layer",
			// 24 warps keep captures and the parallel determinism sweep
			// cheap while still exercising every partition.
			Warps: 24, InstsPerWarp: 2400,
		},
		values: func(seed uint64) valmodel.Model {
			// Weights: heavy zero/near-zero fraction (pruned+quantised
			// nets), a hot pool of repeated quantised values with jitter.
			return valmodel.Model{Seed: seed, ZeroFrac: 0.35, PoolFrac: 0.40, PoolSize: 48, Jitter: true}
		},
		gen: genDNNInfer,
	},
	"scn-multitenant": {
		info: Info{
			Name:  "scn-multitenant",
			Desc:  "Multi-tenant interleaving: four tenants in disjoint address spaces with per-tenant access patterns sharing one device",
			Warps: 24, InstsPerWarp: 2400,
		},
		values: func(seed uint64) valmodel.Model {
			return valmodel.Model{Seed: seed, ZeroFrac: 0.20, PoolFrac: 0.25, PoolSize: 64, Jitter: true}
		},
		gen: genMultiTenant,
	},
	"scn-phase": {
		info: Info{
			Name:  "scn-phase",
			Desc:  "Phase-changing kernel: alternating memory-bound streaming, compute-bound, and random-gather phases",
			Warps: 24, InstsPerWarp: 2400,
		},
		values: func(seed uint64) valmodel.Model {
			return valmodel.Model{Seed: seed, ZeroFrac: 0.25, PoolFrac: 0.30, PoolSize: 32, Jitter: false}
		},
		gen: genPhase,
	},
	"scn-attackload": {
		info: Info{
			Name:  "scn-attackload",
			Desc:  "Attack under load: streaming victim traffic saturating bandwidth while probe warps hammer a small window with stores",
			Warps: 24, InstsPerWarp: 2400,
		},
		values: func(seed uint64) valmodel.Model {
			return valmodel.Model{Seed: seed, ZeroFrac: 0.30, PoolFrac: 0.35, PoolSize: 64, Jitter: true}
		},
		gen: genAttackLoad,
	},
}

// Names lists the corpus in sorted order.
func Names() []string {
	out := make([]string, 0, len(families))
	for k := range families {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns a scenario's Info.
func Describe(name string) (Info, bool) {
	f, ok := families[name]
	return f.info, ok
}

// Scenario is a runnable scenario instance; it implements
// gpusim.Workload, gpusim.CheckpointableWorkload, and valmodel.Modeler.
type Scenario struct {
	info  Info
	seed  uint64
	model valmodel.Model
	gen   func(seed uint64, w int, step uint64) gpusim.Inst
	step  []uint64
}

// New instantiates a scenario with a name-derived seed perturbed by
// seed (zero leaves it unchanged), mirroring workload.NewBenchSeeded.
func New(name string, seed uint64) (*Scenario, error) {
	f, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	s := uint64(14695981039346656037)
	for _, c := range name {
		s = (s ^ uint64(c)) * 1099511628211
	}
	if seed != 0 {
		s ^= valmodel.Splitmix64(seed)
	}
	return &Scenario{
		info:  f.info,
		seed:  s,
		model: f.values(s),
		gen:   f.gen,
		step:  make([]uint64, f.info.Warps),
	}, nil
}

// Name implements gpusim.Workload.
func (s *Scenario) Name() string { return s.info.Name }

// Warps implements gpusim.Workload.
func (s *Scenario) Warps() int { return s.info.Warps }

// Next implements gpusim.Workload.
func (s *Scenario) Next(w int) (gpusim.Inst, bool) {
	if s.step[w] >= uint64(s.info.InstsPerWarp) {
		return gpusim.Inst{}, false
	}
	step := s.step[w]
	s.step[w]++
	return s.gen(s.seed, w, step), true
}

// ValueModel implements valmodel.Modeler for trace capture.
func (s *Scenario) ValueModel() valmodel.Model { return s.model }

// MemValue implements gpusim.Workload (pure, parallel-safe).
func (s *Scenario) MemValue(addr geom.Addr) uint32 { return s.model.MemValue(addr) }

// StoreValue implements gpusim.Workload.
func (s *Scenario) StoreValue(w int, addr geom.Addr) uint32 { return s.model.StoreValue(w, addr) }

// Cursor implements gpusim.CheckpointableWorkload.
func (s *Scenario) Cursor() []uint64 {
	out := make([]uint64, len(s.step))
	copy(out, s.step)
	return out
}

// RestoreCursor implements gpusim.CheckpointableWorkload.
func (s *Scenario) RestoreCursor(cur []uint64) error {
	if len(cur) != len(s.step) {
		return fmt.Errorf("scenario %s: cursor has %d warps, scenario has %d",
			s.info.Name, len(cur), len(s.step))
	}
	copy(s.step, cur)
	return nil
}

// --- generators ---
//
// Shared helpers keep the generators pure in (seed, warp, step); all
// randomness flows through valmodel.Hash2 so a scenario's stream is one
// bit-stable function of its seed.

// coalesced emits n contiguous 4-byte thread addresses starting at base.
func coalesced(base uint64, n int) []geom.Addr {
	out := make([]geom.Addr, 0, n)
	for t := 0; t < n; t++ {
		out = append(out, geom.Addr(base+uint64(t*4)%geom.BlockSize))
	}
	return out
}

// genDNNInfer models one inference request stream: the per-warp stream
// walks eight layers; each layer streams its weight matrix (shrinking
// geometrically, as conv stacks do), re-reads the previous layer's
// activations, and writes this layer's activations.
func genDNNInfer(seed uint64, w int, step uint64) gpusim.Inst {
	// All addresses stay below 256 MiB: the scaled GPU protects
	// 128 MiB per partition (1 GiB global), and scenarios must fit the
	// same space the suite footprints do.
	const (
		layers    = 8
		layerLen  = 300 // steps per layer (InstsPerWarp / layers)
		weightsAt = uint64(0)
		actsAt    = uint64(160) << 20 // activations live above the weights
	)
	layer := step / layerLen % layers
	lstep := step % layerLen
	h := valmodel.Hash2(seed, uint64(w)<<32|step)

	// Layer l's weight slab: 16 MiB >> l, laid out back to back.
	slab := uint64(16<<20) >> layer
	if slab < geom.BlockSize*64 {
		slab = geom.BlockSize * 64
	}
	slabBase := weightsAt + layer*(16<<20)

	switch {
	case h%10 < 2:
		// 20% compute (MAC bursts between loads).
		return gpusim.Inst{Kind: gpusim.Compute, Cycles: 2 + int(h>>8%3)}
	case h%10 < 8:
		// 60% weight/activation loads, fully coalesced streaming.
		var base uint64
		if h>>16%4 == 0 {
			// Re-read previous layer's activations (small, hot).
			base = actsAt + layer<<22 + (uint64(w)+lstep)*geom.BlockSize%(1<<20)
		} else {
			base = slabBase + (uint64(w)+lstep*24)*geom.BlockSize%slab
		}
		return gpusim.Inst{Kind: gpusim.Load, Addrs: coalesced(base, 32)}
	default:
		// 20% activation write-back for the next layer.
		base := actsAt + (layer+1)<<22 + (uint64(w)+lstep)*geom.BlockSize%(1<<20)
		return gpusim.Inst{Kind: gpusim.Store, Addrs: coalesced(base, 32)}
	}
}

// genMultiTenant interleaves four tenants in disjoint 256 MiB address
// spaces: tenant 0 streams, 1 strides, 2 gathers uniformly, 3 hammers a
// skewed hot region — so one device mixes the metadata-cache best and
// worst cases the paper separates, in a single run.
func genMultiTenant(seed uint64, w int, step uint64) gpusim.Inst {
	tenant := uint64(w % 4)
	space := tenant << 26 // 64 MiB per tenant, 256 MiB total
	fp := uint64(32 << 20)
	h := valmodel.Hash2(seed^tenant, uint64(w)<<32|step)

	if h%10 < 3 {
		return gpusim.Inst{Kind: gpusim.Compute, Cycles: 1 + int(h>>8%4)}
	}
	kind := gpusim.Load
	if h>>4%10 < 3 {
		kind = gpusim.Store
	}
	switch tenant {
	case 0: // streaming
		base := space + (uint64(w/4)+step*6)*geom.BlockSize%fp
		return gpusim.Inst{Kind: kind, Addrs: coalesced(base, 32)}
	case 1: // strided
		base := space + (uint64(w/4)*geom.BlockSize+step*8*geom.BlockSize)%fp
		return gpusim.Inst{Kind: kind, Addrs: coalesced(base, 32)}
	case 2: // uniform gather, partially coalesced
		out := make([]geom.Addr, 0, 16)
		for t := 0; t < 16; t++ {
			g := valmodel.Hash2(h, uint64(t/8))
			sector := g % (fp / geom.SectorSize)
			out = append(out, geom.Addr(space+sector*geom.SectorSize+uint64(t%8)*4))
		}
		return gpusim.Inst{Kind: kind, Addrs: out}
	default: // skewed scatter: 1/3 of touches in a hot 512 KiB
		out := make([]geom.Addr, 0, 16)
		for t := 0; t < 16; t++ {
			g := valmodel.Hash2(h, uint64(t))
			region := fp
			if g%3 == 0 {
				region = 512 << 10
			}
			sector := (g >> 8) % (region / geom.SectorSize)
			out = append(out, geom.Addr(space+sector*geom.SectorSize+(g>>40&7)*4))
		}
		return gpusim.Inst{Kind: kind, Addrs: out}
	}
}

// genPhase cycles every 128 steps through a memory-bound streaming
// phase, a compute-bound phase, and a random-gather phase — the shape
// that defeats static provisioning and exercises Plutus's behaviour
// across sharp bandwidth-demand transitions.
func genPhase(seed uint64, w int, step uint64) gpusim.Inst {
	const phaseLen = 128
	phase := step / phaseLen % 3
	fp := uint64(64 << 20)
	h := valmodel.Hash2(seed^phase, uint64(w)<<32|step)

	switch phase {
	case 0: // memory-bound streaming: 85% memory, mostly loads
		if h%20 < 3 {
			return gpusim.Inst{Kind: gpusim.Compute, Cycles: 1}
		}
		kind := gpusim.Load
		if h>>4%10 < 2 {
			kind = gpusim.Store
		}
		base := (uint64(w) + step*24) * geom.BlockSize % fp
		return gpusim.Inst{Kind: kind, Addrs: coalesced(base, 32)}
	case 1: // compute-bound: 15% memory, long compute ops
		if h%20 < 17 {
			return gpusim.Inst{Kind: gpusim.Compute, Cycles: 4 + int(h>>8%8)}
		}
		base := (uint64(w) + step) * geom.BlockSize % fp
		return gpusim.Inst{Kind: gpusim.Load, Addrs: coalesced(base, 32)}
	default: // random gather, write-heavy (40% stores)
		if h%20 < 6 {
			return gpusim.Inst{Kind: gpusim.Compute, Cycles: 2}
		}
		kind := gpusim.Load
		if h>>4%10 < 4 {
			kind = gpusim.Store
		}
		out := make([]geom.Addr, 0, 16)
		for t := 0; t < 16; t++ {
			g := valmodel.Hash2(h, uint64(t/4))
			sector := g % (fp / geom.SectorSize)
			out = append(out, geom.Addr(sector*geom.SectorSize+uint64(t%4)*8))
		}
		return gpusim.Inst{Kind: kind, Addrs: out}
	}
}

// genAttackLoad pairs saturating victim traffic with probe warps: the
// last four warps hammer a 1 MiB window with uncoalesced single-word
// stores and re-reads (a replay/rollback probe pattern), while the rest
// stream at full bandwidth so integrity checks happen under contention
// — the regime where lazy verification windows are widest.
func genAttackLoad(seed uint64, w int, step uint64) gpusim.Inst {
	const window = uint64(1 << 20) // probed window
	fp := uint64(128 << 20)
	h := valmodel.Hash2(seed, uint64(w)<<32|step)

	if w >= 20 { // probe warps
		if h%10 < 1 {
			return gpusim.Inst{Kind: gpusim.Compute, Cycles: 1}
		}
		kind := gpusim.Store
		if h>>4%2 == 0 {
			kind = gpusim.Load // immediately re-probe what was written
		}
		out := make([]geom.Addr, 0, 8)
		for t := 0; t < 8; t++ {
			g := valmodel.Hash2(h, uint64(t))
			out = append(out, geom.Addr(g%(window/4)*4))
		}
		return gpusim.Inst{Kind: kind, Addrs: out}
	}
	// Victim warps: coalesced streaming at ~90% memory intensity.
	if h%10 < 1 {
		return gpusim.Inst{Kind: gpusim.Compute, Cycles: 1}
	}
	kind := gpusim.Load
	if h>>4%10 < 2 {
		kind = gpusim.Store
	}
	base := window + (uint64(w)+step*20)*geom.BlockSize%(fp-window)
	return gpusim.Inst{Kind: kind, Addrs: coalesced(base, 32)}
}
