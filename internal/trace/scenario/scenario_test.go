package scenario

import (
	"sort"
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

func TestNamesAndDescribe(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("corpus has %d families, want at least 4", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, n := range names {
		info, ok := Describe(n)
		if !ok {
			t.Fatalf("Describe(%q) missing", n)
		}
		if info.Name != n || info.Desc == "" || info.Warps < 1 || info.InstsPerWarp < 1 {
			t.Errorf("%s: incomplete info %+v", n, info)
		}
	}
	if _, ok := Describe("scn-nope"); ok {
		t.Error("Describe accepted an unknown name")
	}
	if _, err := New("scn-nope", 0); err == nil {
		t.Error("New accepted an unknown name")
	}
}

func TestDeterminismAndSeedSeparation(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := New(name, 0)
		c, _ := New(name, 1)
		diverged := false
		for k := 0; k < 300; k++ {
			ia, oka := a.Next(2)
			ib, okb := b.Next(2)
			ic, okc := c.Next(2)
			if oka != okb || ia.Kind != ib.Kind || len(ia.Addrs) != len(ib.Addrs) {
				t.Fatalf("%s: same seed diverges at step %d", name, k)
			}
			for j := range ia.Addrs {
				if ia.Addrs[j] != ib.Addrs[j] {
					t.Fatalf("%s: same seed diverges at step %d addr %d", name, k, j)
				}
			}
			if okc != oka || ic.Kind != ia.Kind {
				diverged = true
			} else {
				for j := range ia.Addrs {
					if j < len(ic.Addrs) && ic.Addrs[j] != ia.Addrs[j] {
						diverged = true
					}
				}
			}
		}
		if !diverged {
			t.Errorf("%s: seeds 0 and 1 produced identical streams", name)
		}
	}
}

// Every scenario must stay inside the scaled GPU's protected space
// (128 MiB per partition × 8 partitions), emit all three instruction
// kinds, and retire after exactly InstsPerWarp steps.
func TestStreamShape(t *testing.T) {
	const protectedGlobal = geom.Addr(8 * 128 << 20)
	for _, name := range Names() {
		s, err := New(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		info, _ := Describe(name)
		var compute, loads, stores, n int
		for w := 0; w < s.Warps(); w++ {
			for {
				inst, ok := s.Next(w)
				if !ok {
					break
				}
				n++
				switch inst.Kind {
				case gpusim.Compute:
					compute++
					if inst.Cycles < 1 {
						t.Fatalf("%s: compute with %d cycles", name, inst.Cycles)
					}
				case gpusim.Load:
					loads++
				case gpusim.Store:
					stores++
				}
				if inst.Kind != gpusim.Compute && len(inst.Addrs) == 0 {
					t.Fatalf("%s: memory instruction without addresses", name)
				}
				for _, a := range inst.Addrs {
					if a >= protectedGlobal {
						t.Fatalf("%s: address %#x beyond protected space", name, uint64(a))
					}
				}
			}
		}
		if want := info.Warps * info.InstsPerWarp; n != want {
			t.Errorf("%s: stream has %d instructions, want %d", name, n, want)
		}
		if compute == 0 || loads == 0 || stores == 0 {
			t.Errorf("%s: degenerate mix (compute %d, loads %d, stores %d)",
				name, compute, loads, stores)
		}
	}
}

func TestCursorRoundTrip(t *testing.T) {
	a, err := New("scn-phase", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 57; i++ {
		a.Next(1)
	}
	cur := a.Cursor()
	b, _ := New("scn-phase", 3)
	if err := b.RestoreCursor(cur); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ia, oka := a.Next(1)
		ib, okb := b.Next(1)
		if oka != okb || ia.Kind != ib.Kind || len(ia.Addrs) != len(ib.Addrs) {
			t.Fatalf("restored stream diverges at step %d", i)
		}
	}
	if err := b.RestoreCursor(make([]uint64, 3)); err == nil {
		t.Error("wrong-length cursor accepted")
	}
}

var (
	_ gpusim.Workload               = (*Scenario)(nil)
	_ gpusim.CheckpointableWorkload = (*Scenario)(nil)
	_ valmodel.Modeler              = (*Scenario)(nil)
)
