package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/valmodel"
)

// magic identifies trace files; the u16 after it is the format version.
var magic = [4]byte{'P', 'L', 'T', 'R'}

const (
	version   = 2
	chunkTag  = 0x01
	footerTag = 0x02

	trailerMagic = "PLTR-END"
	// trailer magic + footer offset + trailer CRC.
	trailerLen = 8 + 8 + 4
	// magic + version.
	fileHeaderLen = 4 + 2
	// tag + warp + firstIndex + count + payloadLen.
	chunkFrameLen = 1 + 4 + 8 + 4 + 4

	// DefaultChunkRecords is the records-per-chunk target: large enough
	// to amortize per-chunk framing and file opens, small enough that
	// one resident chunk per warp stays far below materializing the
	// trace.
	DefaultChunkRecords = 1024

	// maxWarps bounds the header's warp count against corrupt files
	// allocating absurd index slices before any CRC is cross-checked.
	maxWarps = 1 << 22
)

// Header describes a trace stream: its warp count, the value model of
// the captured workload, and the writer's chunking target.
type Header struct {
	Warps int
	// Model reproduces the source workload's memory image and store
	// values; HasModel records whether the captured workload exposed
	// one (everything in this repo does — see valmodel.Modeler).
	Model    valmodel.Model
	HasModel bool
	// ChunkRecords is the records-per-chunk target (0 = default).
	ChunkRecords int
}

// ChunkInfo locates one chunk of a warp's stream inside the file; the
// footer index is a per-warp slice of these.
type ChunkInfo struct {
	// Offset is the file offset of the chunk's tag byte.
	Offset uint64
	// FirstIndex is the per-warp record index of the chunk's first
	// record; a warp's chunks are contiguous: each chunk starts where
	// the previous one ended.
	FirstIndex uint64
	// Count is the number of records in the chunk (> 0).
	Count uint32
	// PayloadLen is the encoded record bytes, excluding framing and CRC.
	PayloadLen uint32
}

// Writer streams records into the PLTR-v2 format. Errors are sticky in
// the codec discipline: after the first failed write every Append is a
// no-op and Close reports the error once. Memory stays bounded — one
// pending chunk per warp plus the (small) footer index.
type Writer struct {
	bw     *bufio.Writer
	off    uint64
	hdr    Header
	pend   []pendingChunk
	index  [][]ChunkInfo
	total  uint64
	err    error
	closed bool
}

type pendingChunk struct {
	buf   []byte
	count uint32
	first uint64 // per-warp index of the first buffered record
	next  uint64 // per-warp index of the next record to append
}

// NewWriter writes the file header and returns a streaming writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	if hdr.Warps < 1 || hdr.Warps > maxWarps {
		return nil, fmt.Errorf("trace: warp count %d out of range", hdr.Warps)
	}
	if hdr.ChunkRecords <= 0 {
		hdr.ChunkRecords = DefaultChunkRecords
	}
	tw := &Writer{
		bw:    bufio.NewWriter(w),
		hdr:   hdr,
		pend:  make([]pendingChunk, hdr.Warps),
		index: make([][]ChunkInfo, hdr.Warps),
	}
	tw.write(magic[:])
	tw.writeU16(version)

	he := checkpoint.NewEncoder()
	he.U32(uint32(hdr.Warps))
	he.Bool(hdr.HasModel)
	hdr.Model.Encode(he)
	he.U32(uint32(hdr.ChunkRecords))
	tw.writeFramed(he.Data())
	return tw, tw.err
}

func (tw *Writer) write(p []byte) {
	if tw.err != nil {
		return
	}
	if _, err := tw.bw.Write(p); err != nil {
		tw.err = fmt.Errorf("trace: write: %w", err)
		return
	}
	tw.off += uint64(len(p))
}

func (tw *Writer) writeU16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	tw.write(b[:])
}

func (tw *Writer) writeU32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	tw.write(b[:])
}

func (tw *Writer) writeU64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	tw.write(b[:])
}

// writeFramed writes a length-prefixed, CRC-suffixed payload (the
// header and footer framing; chunks carry extra fields).
func (tw *Writer) writeFramed(payload []byte) {
	tw.writeU32(uint32(len(payload)))
	tw.write(payload)
	tw.writeU32(crc32.ChecksumIEEE(payload))
}

// Err returns the first write error, or nil.
func (tw *Writer) Err() error { return tw.err }

// TotalRecords returns the number of records appended so far.
func (tw *Writer) TotalRecords() uint64 { return tw.total }

// Append adds one record to its warp's stream, flushing the warp's
// chunk when it reaches the chunking target.
func (tw *Writer) Append(rec Record) {
	if tw.err != nil {
		return
	}
	switch {
	case tw.closed:
		tw.err = fmt.Errorf("trace: append after Close")
		return
	case int(rec.Warp) >= tw.hdr.Warps:
		tw.err = fmt.Errorf("trace: record warp %d out of range (%d warps)", rec.Warp, tw.hdr.Warps)
		return
	case rec.Kind != gpusim.Compute && rec.Kind != gpusim.Load && rec.Kind != gpusim.Store:
		tw.err = fmt.Errorf("trace: record kind %d invalid", rec.Kind)
		return
	case len(rec.Addrs) > 0xffff:
		tw.err = fmt.Errorf("trace: record has %d addresses, format limit 65535", len(rec.Addrs))
		return
	}
	p := &tw.pend[rec.Warp]
	if p.count == 0 {
		p.first = p.next
	}
	p.buf = append(p.buf, byte(rec.Kind))
	var n uint16
	if rec.Kind == gpusim.Compute {
		n = rec.Cycles
	} else {
		n = uint16(len(rec.Addrs))
	}
	p.buf = binary.LittleEndian.AppendUint16(p.buf, n)
	if rec.Kind != gpusim.Compute {
		for _, a := range rec.Addrs {
			p.buf = binary.LittleEndian.AppendUint64(p.buf, uint64(a))
		}
	}
	p.count++
	p.next++
	tw.total++
	if int(p.count) >= tw.hdr.ChunkRecords {
		tw.flushChunk(int(rec.Warp))
	}
}

// flushChunk writes warp w's pending chunk and records it in the index.
func (tw *Writer) flushChunk(w int) {
	p := &tw.pend[w]
	if p.count == 0 || tw.err != nil {
		return
	}
	ci := ChunkInfo{
		Offset:     tw.off,
		FirstIndex: p.first,
		Count:      p.count,
		PayloadLen: uint32(len(p.buf)),
	}
	tw.write([]byte{chunkTag})
	tw.writeU32(uint32(w))
	tw.writeU64(p.first)
	tw.writeU32(p.count)
	tw.writeU32(uint32(len(p.buf)))
	tw.write(p.buf)
	tw.writeU32(crc32.ChecksumIEEE(p.buf))
	if tw.err == nil {
		tw.index[w] = append(tw.index[w], ci)
	}
	p.buf = p.buf[:0]
	p.count = 0
}

// Close flushes every pending chunk, writes the footer index and the
// trailer, and reports the first error of the whole stream.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	for w := range tw.pend {
		tw.flushChunk(w)
	}

	footerOff := tw.off
	fe := checkpoint.NewEncoder()
	fe.U64(tw.total)
	fe.U32(uint32(tw.hdr.Warps))
	for _, chunks := range tw.index {
		fe.U32(uint32(len(chunks)))
		for _, ci := range chunks {
			fe.U64(ci.Offset)
			fe.U64(ci.FirstIndex)
			fe.U32(ci.Count)
			fe.U32(ci.PayloadLen)
		}
	}
	tw.write([]byte{footerTag})
	tw.writeFramed(fe.Data())

	trailer := make([]byte, 0, trailerLen)
	trailer = append(trailer, trailerMagic...)
	trailer = binary.LittleEndian.AppendUint64(trailer, footerOff)
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.ChecksumIEEE(trailer))
	tw.write(trailer)

	if tw.err == nil {
		if err := tw.bw.Flush(); err != nil {
			tw.err = fmt.Errorf("trace: write: %w", err)
		}
	}
	return tw.err
}

// Reader gives random access to a serialized trace: the header and
// footer index are decoded eagerly (both CRC-checked), chunks lazily
// one at a time. It never materializes the record stream.
type Reader struct {
	r         io.ReaderAt
	size      int64
	hdr       Header
	index     [][]ChunkInfo
	total     uint64
	footerOff uint64
}

// NewReader validates the file structure of r and loads the index.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	tr := &Reader{r: r, size: size}
	if size < fileHeaderLen+trailerLen {
		return nil, fmt.Errorf("trace: %d bytes, need at least %d: %w",
			size, fileHeaderLen+trailerLen, checkpoint.ErrTruncated)
	}

	var fh [fileHeaderLen]byte
	if err := tr.readAt(fh[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(fh[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q: %w", fh[:4], checkpoint.ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(fh[4:]); v != version {
		return nil, fmt.Errorf("trace: file version %d, this binary reads version %d (re-capture with tracegen): %w",
			v, version, checkpoint.ErrVersion)
	}

	// Trailer first: its absence means the writer never finished.
	var trailer [trailerLen]byte
	if err := tr.readAt(trailer[:], size-trailerLen); err != nil {
		return nil, err
	}
	if string(trailer[:8]) != trailerMagic {
		return nil, fmt.Errorf("trace: trailer magic missing (writer died mid-stream?): %w", checkpoint.ErrTruncated)
	}
	wantCRC := binary.LittleEndian.Uint32(trailer[16:])
	if got := crc32.ChecksumIEEE(trailer[:16]); got != wantCRC {
		return nil, fmt.Errorf("trace: trailer CRC mismatch (got %08x want %08x): %w", got, wantCRC, checkpoint.ErrCorrupt)
	}
	tr.footerOff = binary.LittleEndian.Uint64(trailer[8:16])

	if err := tr.readHeader(); err != nil {
		return nil, err
	}
	if err := tr.readFooter(); err != nil {
		return nil, err
	}
	return tr, nil
}

// readAt fills p from off, mapping short reads to the error taxonomy:
// with an intact trailer the file claims to be complete, so bytes
// missing in the middle mean the content changed.
func (tr *Reader) readAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > tr.size {
		return fmt.Errorf("trace: read [%d,%d) outside %d-byte file: %w",
			off, off+int64(len(p)), tr.size, checkpoint.ErrCorrupt)
	}
	if _, err := tr.r.ReadAt(p, off); err != nil {
		return fmt.Errorf("trace: read at %d: %v: %w", off, err, checkpoint.ErrCorrupt)
	}
	return nil
}

// readFramed reads a length-prefixed CRC-suffixed payload at off,
// bounding the length by limit (the framing's own end bound).
func (tr *Reader) readFramed(off int64, what string) ([]byte, error) {
	var lb [4]byte
	if err := tr.readAt(lb[:], off); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if int64(n) > tr.size-off-8 {
		return nil, fmt.Errorf("trace: %s payload of %d bytes exceeds file: %w", what, n, checkpoint.ErrCorrupt)
	}
	buf := make([]byte, n+4)
	if err := tr.readAt(buf, off+4); err != nil {
		return nil, err
	}
	payload, crcb := buf[:n], buf[n:]
	wantCRC := binary.LittleEndian.Uint32(crcb)
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("trace: %s CRC mismatch (got %08x want %08x): %w", what, got, wantCRC, checkpoint.ErrCorrupt)
	}
	return payload, nil
}

func (tr *Reader) readHeader() error {
	payload, err := tr.readFramed(fileHeaderLen, "header")
	if err != nil {
		return err
	}
	d := checkpoint.NewDecoder(payload)
	warps := d.U32()
	tr.hdr.HasModel = d.Bool()
	tr.hdr.Model = valmodel.DecodeModel(d)
	tr.hdr.ChunkRecords = int(d.U32())
	if err := d.Finish(); err != nil {
		return fmt.Errorf("trace: header: %w", err)
	}
	if warps < 1 || warps > maxWarps {
		return fmt.Errorf("trace: header warp count %d out of range: %w", warps, checkpoint.ErrCorrupt)
	}
	if tr.hdr.ChunkRecords < 1 {
		return fmt.Errorf("trace: header chunk target %d out of range: %w", tr.hdr.ChunkRecords, checkpoint.ErrCorrupt)
	}
	tr.hdr.Warps = int(warps)
	return nil
}

func (tr *Reader) readFooter() error {
	fo := int64(tr.footerOff)
	if fo < fileHeaderLen || fo > tr.size-trailerLen-1 {
		return fmt.Errorf("trace: footer offset %d outside file: %w", fo, checkpoint.ErrCorrupt)
	}
	var tag [1]byte
	if err := tr.readAt(tag[:], fo); err != nil {
		return err
	}
	if tag[0] != footerTag {
		return fmt.Errorf("trace: footer tag %#x, want %#x: %w", tag[0], footerTag, checkpoint.ErrCorrupt)
	}
	payload, err := tr.readFramed(fo+1, "footer")
	if err != nil {
		return err
	}
	d := checkpoint.NewDecoder(payload)
	tr.total = d.U64()
	warps := d.U32()
	if d.Err() == nil && int(warps) != tr.hdr.Warps {
		return fmt.Errorf("trace: footer has %d warps, header %d: %w", warps, tr.hdr.Warps, checkpoint.ErrCorrupt)
	}
	index := make([][]ChunkInfo, tr.hdr.Warps)
	var sum uint64
	for w := 0; w < tr.hdr.Warps && d.Err() == nil; w++ {
		n := d.U32()
		if int64(n) > int64(tr.size)/chunkFrameLen {
			return fmt.Errorf("trace: warp %d index claims %d chunks: %w", w, n, checkpoint.ErrCorrupt)
		}
		chunks := make([]ChunkInfo, 0, n)
		var next uint64
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			ci := ChunkInfo{
				Offset:     d.U64(),
				FirstIndex: d.U64(),
				Count:      d.U32(),
				PayloadLen: d.U32(),
			}
			if d.Err() != nil {
				break
			}
			switch {
			case ci.Count == 0:
				return fmt.Errorf("trace: warp %d chunk %d is empty: %w", w, i, checkpoint.ErrCorrupt)
			case ci.FirstIndex != next:
				return fmt.Errorf("trace: warp %d chunk %d starts at record %d, want %d: %w",
					w, i, ci.FirstIndex, next, checkpoint.ErrCorrupt)
			case ci.Offset < fileHeaderLen || int64(ci.Offset)+chunkFrameLen+int64(ci.PayloadLen)+4 > int64(tr.footerOff):
				return fmt.Errorf("trace: warp %d chunk %d at offset %d overruns the footer: %w",
					w, i, ci.Offset, checkpoint.ErrCorrupt)
			}
			next = ci.FirstIndex + uint64(ci.Count)
			chunks = append(chunks, ci)
		}
		sum += next
		index[w] = chunks
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("trace: footer: %w", err)
	}
	if sum != tr.total {
		return fmt.Errorf("trace: footer total %d, index sums to %d: %w", tr.total, sum, checkpoint.ErrCorrupt)
	}
	tr.index = index
	return nil
}

// Header returns the decoded header.
func (tr *Reader) Header() Header { return tr.hdr }

// Warps returns the trace's warp count.
func (tr *Reader) Warps() int { return tr.hdr.Warps }

// TotalRecords returns the trace's record count, from the footer.
func (tr *Reader) TotalRecords() uint64 { return tr.total }

// Chunks returns warp w's chunk count.
func (tr *Reader) Chunks(w int) int { return len(tr.index[w]) }

// Index returns warp w's chunk index entries.
func (tr *Reader) Index(w int) []ChunkInfo { return tr.index[w] }

// WarpRecords returns warp w's record count.
func (tr *Reader) WarpRecords(w int) uint64 {
	chunks := tr.index[w]
	if len(chunks) == 0 {
		return 0
	}
	last := chunks[len(chunks)-1]
	return last.FirstIndex + uint64(last.Count)
}

// LoadChunk decodes warp w's i-th chunk. The chunk's framing must
// agree with the footer index and its payload CRC must verify.
func (tr *Reader) LoadChunk(w, i int) ([]Record, error) {
	return loadChunk(tr.r, tr.size, w, tr.index[w][i])
}

// loadChunk is the shared chunk decode core: Reader.LoadChunk uses it
// over a retained ReaderAt; Replay re-opens the file around it so idle
// replays hold no descriptor.
func loadChunk(r io.ReaderAt, size int64, w int, ci ChunkInfo) ([]Record, error) {
	buf := make([]byte, chunkFrameLen+int(ci.PayloadLen)+4)
	if int64(ci.Offset)+int64(len(buf)) > size {
		return nil, fmt.Errorf("trace: warp %d chunk at %d overruns file: %w", w, ci.Offset, checkpoint.ErrCorrupt)
	}
	if _, err := r.ReadAt(buf, int64(ci.Offset)); err != nil {
		return nil, fmt.Errorf("trace: warp %d chunk at %d: %v: %w", w, ci.Offset, err, checkpoint.ErrCorrupt)
	}
	switch {
	case buf[0] != chunkTag:
		return nil, fmt.Errorf("trace: warp %d chunk at %d: tag %#x: %w", w, ci.Offset, buf[0], checkpoint.ErrCorrupt)
	case binary.LittleEndian.Uint32(buf[1:]) != uint32(w):
		return nil, fmt.Errorf("trace: chunk at %d belongs to warp %d, index says %d: %w",
			ci.Offset, binary.LittleEndian.Uint32(buf[1:]), w, checkpoint.ErrCorrupt)
	case binary.LittleEndian.Uint64(buf[5:]) != ci.FirstIndex,
		binary.LittleEndian.Uint32(buf[13:]) != ci.Count,
		binary.LittleEndian.Uint32(buf[17:]) != ci.PayloadLen:
		return nil, fmt.Errorf("trace: warp %d chunk at %d disagrees with footer index: %w",
			w, ci.Offset, checkpoint.ErrCorrupt)
	}
	payload := buf[chunkFrameLen : chunkFrameLen+int(ci.PayloadLen)]
	wantCRC := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("trace: warp %d chunk at %d CRC mismatch (got %08x want %08x): %w",
			w, ci.Offset, got, wantCRC, checkpoint.ErrCorrupt)
	}

	recs := make([]Record, 0, ci.Count)
	d := checkpoint.NewDecoder(payload)
	for i := uint32(0); i < ci.Count; i++ {
		kind := gpusim.InstKind(d.U8())
		var nb [2]byte
		nb[0], nb[1] = d.U8(), d.U8()
		n := binary.LittleEndian.Uint16(nb[:])
		rec := Record{Warp: uint32(w), Kind: kind}
		switch kind {
		case gpusim.Compute:
			rec.Cycles = n
		case gpusim.Load, gpusim.Store:
			rec.Addrs = make([]geom.Addr, n)
			for k := range rec.Addrs {
				rec.Addrs[k] = geom.Addr(d.U64())
			}
		default:
			if d.Err() == nil {
				return nil, fmt.Errorf("trace: warp %d record %d: kind %d invalid: %w",
					w, ci.FirstIndex+uint64(i), kind, checkpoint.ErrCorrupt)
			}
		}
		recs = append(recs, rec)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("trace: warp %d chunk at %d: %w", w, ci.Offset, err)
	}
	return recs, nil
}
