package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/plutus-gpu/plutus/internal/castore"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
)

// newWorker boots one in-process plutusd (real server, real harness
// backend) and returns its base URL plus the backend runner.
func newWorker(t *testing.T, hcfg harness.Config) (string, *harness.Runner) {
	t.Helper()
	r := harness.NewRunner(hcfg)
	s := server.New(server.Config{
		Backend:         r,
		Workers:         2,
		QueueDepth:      16,
		MaxInstructions: hcfg.MaxInstructions,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return ts.URL, r
}

// testConfig is the fast-heartbeat coordinator config the in-process
// tests share. LeaseTimeout stays long so only the tests that want
// stealing see it.
func testConfig(hcfg harness.Config, workers ...string) Config {
	return Config{
		Workers:        workers,
		Harness:        hcfg,
		HeartbeatEvery: 20 * time.Millisecond,
		DeadAfter:      2,
		LeaseTimeout:   10 * time.Second,
		MaxAttempts:    6,
		RetryBase:      20 * time.Millisecond,
		RetryCap:       200 * time.Millisecond,
	}
}

// localRendering is the single-box oracle: the canonical JSON bytes of
// one cell run on a fresh local Runner with the same config.
func localRendering(t *testing.T, hcfg harness.Config, bench, scheme string, seed uint64) string {
	t.Helper()
	r := harness.NewRunner(hcfg)
	sc, err := secmem.ByName(scheme, r.Config().ProtectedBytes)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.RunSeeded(bench, sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := harness.WriteRunJSON(&b, st); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSweepMatchesSingleBox is the tentpole acceptance in miniature:
// a 2-benchmark × 2-scheme × 2-seed sweep sharded across three workers
// lands every result in the store, byte-identical to a local single-box
// run of the same run-cache key.
func TestSweepMatchesSingleBox(t *testing.T) {
	hcfg := harness.Config{MaxInstructions: 400, Parallelism: 2}
	u1, _ := newWorker(t, hcfg)
	u2, _ := newWorker(t, hcfg)
	u3, _ := newWorker(t, hcfg)
	co := New(testConfig(hcfg, u1, u2, u3))
	defer co.Close()

	sw, err := co.SubmitSweep("ci", []string{"bfs", "stream"}, []string{"pssm", "plutus"}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := sw.Status()
	if !st.Done || st.Completed != 8 || st.Failed != 0 {
		t.Fatalf("sweep status %+v", st)
	}

	for _, cell := range st.Cells {
		content, digest, err := co.Store().Get(cell.Key)
		if err != nil {
			t.Fatalf("store missing %s: %v", cell.Key, err)
		}
		if digest != cell.Digest {
			t.Errorf("cell %s digest mismatch: store %s, sweep %s", cell.Key, digest, cell.Digest)
		}
		want := localRendering(t, hcfg, cell.Benchmark, cell.Scheme, cell.Seed)
		if string(content) != want {
			t.Errorf("cell %s: cluster bytes differ from single-box oracle", cell.Key)
		}
	}
	// All three workers should have participated: 8 cells, capacity-
	// bounded least-loaded spread. (Dedup on a worker could starve one
	// only if keys collided — they don't.)
	var active int
	for _, w := range co.Workers() {
		if w.Completed > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d workers took leases; sharding is not spreading", active)
	}
}

// TestWorkerDeathMidSweep kills one of three workers while the sweep is
// in flight: the coordinator retries its leases on the survivors with
// backoff and the sweep still completes with oracle-identical bytes.
func TestWorkerDeathMidSweep(t *testing.T) {
	hcfg := harness.Config{MaxInstructions: 400, Parallelism: 2}
	r1 := harness.NewRunner(hcfg)
	s1 := server.New(server.Config{Backend: r1, Workers: 1, QueueDepth: 2, MaxInstructions: hcfg.MaxInstructions})
	victim := httptest.NewServer(s1.Handler())
	u2, _ := newWorker(t, hcfg)
	u3, _ := newWorker(t, hcfg)

	co := New(testConfig(hcfg, victim.URL, u2, u3))
	defer co.Close()

	sw, err := co.SubmitSweep("ci", []string{"bfs", "stream", "hotspot"}, []string{"pssm", "plutus"}, []uint64{4})
	if err != nil {
		t.Fatal(err)
	}
	// Give the scheduler a beat to lease cells onto the victim, then
	// kill it abruptly — no drain, in-flight HTTP cut mid-poll.
	time.Sleep(30 * time.Millisecond)
	victim.CloseClientConnections()
	victim.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sw.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := sw.Status()
	if st.Completed != 6 || st.Failed != 0 {
		t.Fatalf("sweep after worker death: %+v", st)
	}
	for _, cell := range st.Cells {
		content, _, err := co.Store().Get(cell.Key)
		if err != nil {
			t.Fatal(err)
		}
		if want := localRendering(t, hcfg, cell.Benchmark, cell.Scheme, cell.Seed); string(content) != want {
			t.Errorf("cell %s diverged from oracle after worker death", cell.Key)
		}
	}
}

// cancelInFlight parks a run at its first checkpoint (see the harness
// checkpoint tests): the first ctx.Err() check — RunContext's entry
// guard — passes, every later one reports cancellation.
type cancelInFlight struct {
	context.Context
	calls atomic.Int32
}

func (c *cancelInFlight) Err() error {
	if c.calls.Add(1) == 1 {
		return nil
	}
	return context.Canceled
}

func (c *cancelInFlight) Done() <-chan struct{} { return nil }

// strugglerWorker fakes a plutusd that accepts runs but never finishes
// them, while serving a real parked PLUTSNAP on GET /v1/snapshots —
// the observable surface of a worker that was SIGKILLed mid-run (the
// coordinator's heartbeat pulled its snapshot while it still answered).
func strugglerWorker(t *testing.T, snapshot []byte) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("GET /debug/statsz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.Statsz{Workers: 1, QueueCapacity: 4})
	})
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.RunStatus{ID: "stuck", State: server.StateRunning})
	})
	mux.HandleFunc("GET /v1/runs/stuck", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.RunStatus{ID: "stuck", State: server.StateRunning})
	})
	mux.HandleFunc("GET /v1/snapshots", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(snapshot)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCheckpointMigration is the satellite acceptance: a worker goes
// dark mid-run, the coordinator steals the lease, ships the straggler's
// PLUTSNAP to a second worker (PUT /v1/snapshots) and resubmits there;
// the resumed run's bytes are identical to an uninterrupted run of the
// same cell.
func TestCheckpointMigration(t *testing.T) {
	mkCfg := func(dir string) harness.Config {
		return harness.Config{
			MaxInstructions: 2000,
			Parallelism:     1,
			CheckpointEvery: 500,
			CheckpointDir:   dir,
			Resume:          true,
		}
	}
	// Park a genuine mid-run snapshot the way the harness checkpoint
	// tests do, to stand in for the straggler's last checkpoint.
	parkDir := t.TempDir()
	parker := harness.NewRunner(mkCfg(parkDir))
	sc, err := secmem.ByName("plutus", parker.Config().ProtectedBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parker.RunSeededContext(&cancelInFlight{Context: context.Background()}, "bfs", sc, 5); err == nil {
		t.Fatal("expected preemption")
	}
	snap, err := os.ReadFile(parker.SnapshotPathSeeded("bfs", sc, 5))
	if err != nil {
		t.Fatal(err)
	}

	straggler := strugglerWorker(t, snap)
	thiefDir := t.TempDir()
	thiefURL, thief := newWorker(t, mkCfg(thiefDir))

	cfg := testConfig(mkCfg(t.TempDir()), straggler.URL)
	cfg.LeaseTimeout = 150 * time.Millisecond
	co := New(cfg)
	defer co.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type out struct {
		content []byte
		err     error
	}
	res := make(chan out, 1)
	go func() {
		content, _, err := co.RunCell(ctx, "ci", "bfs", "plutus", 5)
		res <- out{content, err}
	}()
	// The straggler is the only worker until it demonstrably holds the
	// lease; only then does the thief join, so the steal — not initial
	// placement — is what lands the cell there.
	for deadline := time.Now().Add(10 * time.Second); ; {
		ws := co.Workers()
		if len(ws) == 1 && ws[0].Inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("straggler never took the lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	co.AddWorker(thiefURL)

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	content := r.content

	n := co.Counters()
	if n.Steals == 0 {
		t.Error("lease was never stolen from the straggler")
	}
	if n.Migrations == 0 {
		t.Error("no snapshot was migrated to the thief")
	}
	// The thief must have executed the cell (the straggler never
	// finishes anything).
	if m := thief.Metrics(); m.Executions != 1 {
		t.Errorf("thief executed %d runs, want 1", m.Executions)
	}

	// Oracle: the same cell run uninterrupted on a fresh single box with
	// the same checkpoint cadence.
	if want := localRendering(t, mkCfg(t.TempDir()), "bfs", "plutus", 5); string(content) != want {
		t.Error("migrated+resumed result differs from uninterrupted run")
	}
}

// TestQuotaShedding: admissions beyond the tenant's pending bound are
// refused with *OverQuotaError (mapped to 429 + Retry-After at the HTTP
// layer), while other tenants stay unaffected.
func TestQuotaShedding(t *testing.T) {
	hcfg := harness.Config{MaxInstructions: 400, Parallelism: 1}
	cfg := testConfig(hcfg) // no workers: admitted cells just pend
	cfg.TenantMaxPending = 2
	co := New(cfg)
	defer co.Close()

	if _, err := co.SubmitSweep("greedy", []string{"bfs"}, []string{"pssm", "plutus"}, nil); err != nil {
		t.Fatal(err) // 2 cells: exactly at quota
	}
	_, err := co.SubmitSweep("greedy", []string{"stream"}, []string{"pssm"}, nil)
	var quota *OverQuotaError
	if !errors.As(err, &quota) {
		t.Fatalf("err = %v, want *OverQuotaError", err)
	}
	if quota.Tenant != "greedy" || quota.Pending != 2 || quota.Limit != 2 {
		t.Fatalf("quota detail %+v", quota)
	}
	if co.Counters().Shed != 1 {
		t.Fatalf("Shed = %d, want 1", co.Counters().Shed)
	}

	// Another tenant's quota is its own.
	if _, err := co.SubmitSweep("modest", []string{"bfs"}, []string{"pssm"}, nil); err != nil {
		t.Fatalf("independent tenant shed: %v", err)
	}

	// The HTTP layer renders shedding as 429 with Retry-After, the same
	// contract plutusd's queue uses.
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	body := strings.NewReader(`{"tenant":"greedy","benchmark":"bfs","scheme":"pssm","seed":9}`)
	resp, err := http.Post(ts.URL+"/v1/cells", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestDivergenceFailsCell: a worker result that disagrees with a
// binding installed while the cell was in flight (the race two
// divergent workers would produce) must fail the cell with the
// divergence alarm, not overwrite the store.
func TestDivergenceFailsCell(t *testing.T) {
	hcfg := harness.Config{MaxInstructions: 400, Parallelism: 1}
	u1, _ := newWorker(t, hcfg)
	store := castore.New()
	cfg := testConfig(hcfg) // no workers yet: the cell blocks in acquireWorker
	cfg.Store = store
	cfg.MaxAttempts = 1
	co := New(cfg)
	defer co.Close()

	sc, err := secmem.ByName("pssm", harness.NewRunner(hcfg).Config().ProtectedBytes)
	if err != nil {
		t.Fatal(err)
	}
	key := co.CacheKey("bfs", sc, 1)

	// Start the cell while no worker is live, forge a conflicting
	// binding for its key, then let a worker at it: its honest result
	// must trip the alarm on Put.
	c, _, _ := co.startCell("ci", "bfs", "pssm", key, 1)
	if c == nil {
		t.Fatal("store hit on an empty store")
	}
	if _, err := store.Put(key, []byte("forged result")); err != nil {
		t.Fatal(err)
	}
	co.AddWorker(u1)

	select {
	case <-c.done:
	case <-time.After(30 * time.Second):
		t.Fatal("cell never settled")
	}
	var div *castore.DivergenceError
	if !errors.As(c.err, &div) {
		t.Fatalf("err = %v, want *castore.DivergenceError", c.err)
	}
	content, _, err := store.Get(key)
	if err != nil || string(content) != "forged result" {
		t.Fatalf("original binding clobbered: %q, %v", content, err)
	}
}

// TestDedupAndStoreHits: identical concurrent cells coalesce into one
// execution; repeats after settlement are store hits.
func TestDedupAndStoreHits(t *testing.T) {
	hcfg := harness.Config{MaxInstructions: 400, Parallelism: 2}
	u1, r1 := newWorker(t, hcfg)
	co := New(testConfig(hcfg, u1))
	defer co.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type res struct {
		digest string
		err    error
	}
	results := make(chan res, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, digest, err := co.RunCell(ctx, "ci", "bfs", "plutus", 7)
			results <- res{digest, err}
		}()
	}
	var first string
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if first == "" {
			first = r.digest
		} else if r.digest != first {
			t.Fatalf("digests diverged: %s vs %s", first, r.digest)
		}
	}
	if m := r1.Metrics(); m.Executions != 1 {
		t.Errorf("worker executed %d times for one cell, want 1", m.Executions)
	}
	if _, _, err := co.RunCell(ctx, "ci", "bfs", "plutus", 7); err != nil {
		t.Fatal(err)
	}
	if n := co.Counters(); n.StoreHits == 0 {
		t.Error("repeat request did not hit the store")
	}
	if !strings.Contains(co.MetricsText(), "plutus_coord_store_hits_total") {
		t.Error("coordinator metrics missing store-hit counter")
	}
}
