package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// SweepRequest is the body of POST /v1/sweeps.
type SweepRequest struct {
	Tenant     string   `json:"tenant"`
	Benchmarks []string `json:"benchmarks"`
	Schemes    []string `json:"schemes"`
	Seeds      []uint64 `json:"seeds,omitempty"`
}

// CellRequest is the body of POST /v1/cells — the single-run path the
// load generator drives.
type CellRequest struct {
	Tenant    string `json:"tenant"`
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Seed      uint64 `json:"seed,omitempty"`
}

// WorkerRequest is the body of POST /v1/workers.
type WorkerRequest struct {
	URL string `json:"url"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeClusterError maps coordinator errors onto the same status-code
// vocabulary plutusd uses: shedding is 429 with Retry-After, bad names
// are 400, everything else 500.
func writeClusterError(w http.ResponseWriter, err error) {
	var quota *OverQuotaError
	switch {
	case errors.As(err, &quota):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": err.Error(), "retry_after_seconds": 1,
		})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
	case strings.Contains(err.Error(), "unknown"):
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	}
}

// Handler returns the coordinator's HTTP API:
//
//	GET  /healthz         — liveness
//	GET  /metrics         — Prometheus text exposition
//	GET  /v1/workers      — registered workers
//	POST /v1/workers      — register a worker {"url": ...}
//	POST /v1/sweeps       — submit a sweep, returns its status
//	GET  /v1/sweeps/{id}  — sweep progress
//	POST /v1/cells        — run one cell synchronously, returns the
//	                        result bytes (X-Plutus-Digest carries the
//	                        store address); sheds with 429 + Retry-After
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, co.MetricsText())
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"workers": co.Workers()})
	})
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req WorkerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"url\": \"http://...\"}"})
			return
		}
		co.AddWorker(req.URL)
		writeJSON(w, http.StatusOK, map[string]any{"workers": co.Workers()})
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		sw, err := co.SubmitSweep(req.Tenant, req.Benchmarks, req.Schemes, req.Seeds)
		if err != nil {
			writeClusterError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, sw.Status())
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := co.SweepByID(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown sweep"})
			return
		}
		writeJSON(w, http.StatusOK, sw.Status())
	})
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var req CellRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		content, digest, err := co.RunCell(r.Context(), req.Tenant, req.Benchmark, req.Scheme, req.Seed)
		if err != nil {
			writeClusterError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Plutus-Digest", digest)
		w.Write(content)
	})
	return mux
}

// MetricsText renders the coordinator's own Prometheus exposition —
// the cluster-level counterpart of plutusd's /metrics.
func (co *Coordinator) MetricsText() string {
	co.mu.Lock()
	var alive, inflight int
	for _, w := range co.workers {
		if w.alive {
			alive++
		}
		inflight += w.inflight
	}
	n := co.counters
	workers, cells := len(co.workers), len(co.cells)
	co.mu.Unlock()

	var b strings.Builder
	gauge := func(name string, v int, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name string, v uint64, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("plutus_coord_workers", workers, "registered workers")
	gauge("plutus_coord_workers_alive", alive, "workers passing heartbeats")
	gauge("plutus_coord_leases_inflight", inflight, "cells currently leased out")
	gauge("plutus_coord_cells_inflight", cells, "cells in single-flight execution")
	counter("plutus_coord_cells_completed_total", n.Completed, "cells settled successfully")
	counter("plutus_coord_cells_failed_total", n.Failed, "cells settled in error")
	counter("plutus_coord_retries_total", n.Retries, "rescheduled attempts after worker failure")
	counter("plutus_coord_steals_total", n.Steals, "leases stolen from stragglers")
	counter("plutus_coord_migrations_total", n.Migrations, "snapshots installed ahead of a resumed run")
	counter("plutus_coord_shed_total", n.Shed, "admissions refused by tenant quota")
	counter("plutus_coord_store_hits_total", n.StoreHits, "requests served from the content-addressed store")
	gauge("plutus_coord_store_keys", co.store.Len(), "keys bound in the content-addressed store")
	return b.String()
}
