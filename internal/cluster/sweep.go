package cluster

import (
	"context"
	"fmt"
	"sync"
)

// SweepCell is the public status of one grid cell within a sweep.
type SweepCell struct {
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Seed      uint64 `json:"seed"`
	Key       string `json:"key"`
	Done      bool   `json:"done"`
	Digest    string `json:"digest,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Sweep tracks one submitted (benchmark × scheme × seed) grid.
type Sweep struct {
	ID     string
	Tenant string

	mu    sync.Mutex
	cells []SweepCell
	done  chan struct{}
	err   error
}

// SweepStatus is the wire rendering of a sweep's progress.
type SweepStatus struct {
	ID        string      `json:"id"`
	Tenant    string      `json:"tenant"`
	Total     int         `json:"total"`
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	Done      bool        `json:"done"`
	Cells     []SweepCell `json:"cells"`
}

// Status snapshots the sweep's progress.
func (sw *Sweep) Status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{ID: sw.ID, Tenant: sw.Tenant, Total: len(sw.cells)}
	st.Cells = append([]SweepCell(nil), sw.cells...)
	for _, c := range st.Cells {
		if !c.Done {
			continue
		}
		if c.Error == "" {
			st.Completed++
		} else {
			st.Failed++
		}
	}
	select {
	case <-sw.done:
		st.Done = true
	default:
	}
	return st
}

// Wait blocks until every cell settles (or ctx cancels) and returns the
// first cell error, if any.
func (sw *Sweep) Wait(ctx context.Context) error {
	select {
	case <-sw.done:
		sw.mu.Lock()
		defer sw.mu.Unlock()
		return sw.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitSweep expands benches × schemes × seeds into a run grid,
// admits it against the tenant's quota as one unit (a sweep is either
// fully admitted or fully shed), and drives every cell to settlement in
// the background. An empty seeds slice means the canonical seed 0.
func (co *Coordinator) SubmitSweep(tenantName string, benches, schemes []string, seeds []uint64) (*Sweep, error) {
	if len(benches) == 0 || len(schemes) == 0 {
		return nil, fmt.Errorf("cluster: empty sweep (benchmarks %v, schemes %v)", benches, schemes)
	}
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	// Expand bench-major, deterministically, validating every name up
	// front so a typo fails the whole sweep instead of one cell mid-run.
	var cells []SweepCell
	for _, bench := range benches {
		for _, scheme := range schemes {
			for _, seed := range seeds {
				_, key, err := co.resolve(bench, scheme, seed)
				if err != nil {
					return nil, err
				}
				cells = append(cells, SweepCell{Benchmark: bench, Scheme: scheme, Seed: seed, Key: key})
			}
		}
	}
	if err := co.admit(tenantName, len(cells)); err != nil {
		return nil, err
	}

	co.mu.Lock()
	co.sweepSeq++
	sw := &Sweep{
		ID:     fmt.Sprintf("sweep-%d", co.sweepSeq),
		Tenant: tenantName,
		cells:  cells,
		done:   make(chan struct{}),
	}
	co.sweeps[sw.ID] = sw
	co.mu.Unlock()

	go co.runSweep(sw)
	return sw, nil
}

// SweepByID returns a submitted sweep.
func (co *Coordinator) SweepByID(id string) (*Sweep, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	sw, ok := co.sweeps[id]
	return sw, ok
}

// runSweep drives every cell of a sweep concurrently; the worker-pick
// and tenant-inflight machinery bound actual parallelism.
func (co *Coordinator) runSweep(sw *Sweep) {
	defer close(sw.done)
	sw.mu.Lock()
	n := len(sw.cells)
	specs := append([]SweepCell(nil), sw.cells...)
	sw.mu.Unlock()
	defer co.releasePending(sw.Tenant, n)

	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec SweepCell) {
			defer wg.Done()
			digest, err := co.runSweepCell(sw.Tenant, spec)
			sw.mu.Lock()
			sw.cells[i].Done = true
			sw.cells[i].Digest = digest
			if err != nil {
				sw.cells[i].Error = err.Error()
				if sw.err == nil {
					sw.err = fmt.Errorf("cell %s: %w", spec.Key, err)
				}
			}
			sw.mu.Unlock()
		}(i, spec)
	}
	wg.Wait()
}

func (co *Coordinator) runSweepCell(tenantName string, spec SweepCell) (string, error) {
	c, _, digest := co.startCell(tenantName, spec.Benchmark, spec.Scheme, spec.Key, spec.Seed)
	if c == nil {
		return digest, nil
	}
	<-c.done
	if c.err != nil {
		return "", c.err
	}
	return c.digest, nil
}
