package cluster

import (
	"context"
	"fmt"
	"time"

	"github.com/plutus-gpu/plutus/internal/server"
)

// drive runs one cell to settlement: lease a worker, run there, steal
// from stragglers, retry with capped exponential backoff on failure,
// and bind the winning bytes into the content-addressed store.
func (co *Coordinator) drive(c *cell) {
	var lastErr error
	for attempt := 0; attempt < co.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			co.mu.Lock()
			co.counters.Retries++
			co.mu.Unlock()
			wait := co.cfg.RetryBase << (attempt - 1)
			if wait > co.cfg.RetryCap {
				wait = co.cfg.RetryCap
			}
			time.Sleep(wait)
		}
		w := co.acquireWorker(c, nil)
		if w == nil {
			lastErr = ErrClosed
			break
		}
		content, err := co.attempt(c, w)
		co.releaseWorker(w, c, err == nil)
		if err == nil {
			co.settle(c, content, nil)
			return
		}
		co.suspect(w)
		lastErr = err
	}
	co.settle(c, nil, fmt.Errorf("cell %s: attempts exhausted: %w", c.Key, lastErr))
}

// settle publishes the cell's outcome. Success binds the bytes into the
// store first — a *castore.DivergenceError there (this worker disagreed
// with an earlier binding of the same key) fails the cell, because a
// divergent grid can't be trusted.
func (co *Coordinator) settle(c *cell, content []byte, err error) {
	if err == nil {
		var digest string
		digest, err = co.store.Put(c.Key, content)
		if err == nil {
			c.content, c.digest = content, digest
		}
	}
	c.err = err
	co.mu.Lock()
	delete(co.cells, c.Key)
	delete(co.snapshots, c.Key)
	if err == nil {
		co.counters.Completed++
	} else {
		co.counters.Failed++
	}
	co.mu.Unlock()
	close(c.done)
}

// acquireWorker blocks until a live worker with lease headroom and the
// cell's tenant inflight quota are both available, then takes the
// lease. exclude (may be nil) skips one worker — the straggler a steal
// is escaping. Returns nil once the coordinator closes.
func (co *Coordinator) acquireWorker(c *cell, exclude *worker) *worker {
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if co.closed {
			return nil
		}
		t := co.tenant(c.Tenant)
		if co.cfg.TenantMaxInflight == 0 || t.inflight < co.cfg.TenantMaxInflight {
			if w := co.pickLocked(exclude); w != nil {
				t.inflight++
				w.inflight++
				w.leases[c.Key] = c
				return w
			}
		}
		co.cond.Wait()
	}
}

// tryAcquireWorker is acquireWorker without blocking — the steal path
// uses it so a saturated cluster keeps waiting on the straggler instead
// of deadlocking on a second lease.
func (co *Coordinator) tryAcquireWorker(c *cell, exclude *worker) *worker {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return nil
	}
	t := co.tenant(c.Tenant)
	if co.cfg.TenantMaxInflight > 0 && t.inflight >= co.cfg.TenantMaxInflight {
		return nil
	}
	w := co.pickLocked(exclude)
	if w == nil {
		return nil
	}
	t.inflight++
	w.inflight++
	w.leases[c.Key] = c
	return w
}

// pickLocked selects the least-loaded live worker with headroom,
// breaking ties by URL order for determinism. Called with co.mu held.
func (co *Coordinator) pickLocked(exclude *worker) *worker {
	var best *worker
	for _, url := range co.order {
		w := co.workers[url]
		if w == exclude || !w.alive || w.inflight >= w.capacity {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
	}
	return best
}

// suspect benches a worker whose attempt just failed. A connection
// refusal or mid-run disconnect usually means the process is gone, and
// waiting out the DeadAfter heartbeat budget would burn every retry
// against the corpse — so fail fast and let the retry land elsewhere.
// The next healthy heartbeat reinstates a worker benched in error.
func (co *Coordinator) suspect(w *worker) {
	co.mu.Lock()
	if w.alive {
		w.alive = false
		w.missed = co.cfg.DeadAfter
	}
	co.mu.Unlock()
}

func (co *Coordinator) releaseWorker(w *worker, c *cell, success bool) {
	co.mu.Lock()
	w.inflight--
	delete(w.leases, c.Key)
	co.tenant(c.Tenant).inflight--
	if success {
		w.done++
	}
	co.cond.Broadcast()
	co.mu.Unlock()
}

// attemptResult carries one worker's outcome through the steal race.
type attemptResult struct {
	content []byte
	err     error
}

// attempt runs the cell on w, stealing onto a second worker if the
// lease times out. First success wins; the loser's context is cancelled
// (abandoning the HTTP wait — the worker-side run settles into its own
// cache and, being deterministic, could only have agreed).
func (co *Coordinator) attempt(c *cell, w *worker) ([]byte, error) {
	co.installSnapshot(c, w)

	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	primary := make(chan attemptResult, 1)
	go func() { primary <- runOn(pctx, w, c) }()

	select {
	case r := <-primary:
		return r.content, r.err
	case <-time.After(co.cfg.LeaseTimeout):
	}

	// The lease expired: w is a straggler (or silently dead). Try to
	// steal onto another worker; with no second worker available, keep
	// waiting on the primary — there is nowhere better to be.
	thief := co.tryAcquireWorker(c, w)
	if thief == nil {
		r := <-primary
		return r.content, r.err
	}
	co.mu.Lock()
	co.counters.Steals++
	co.mu.Unlock()

	// Ship the freshest checkpoint to the thief: prefer a live pull off
	// the straggler, fall back to the heartbeat cache.
	co.pullSnapshot(c, w)
	co.installSnapshot(c, thief)

	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	secondary := make(chan attemptResult, 1)
	go func() { secondary <- runOn(sctx, thief, c) }()

	var firstErr error
	for i := 0; i < 2; i++ {
		var r attemptResult
		select {
		case r = <-primary:
			if r.err == nil {
				co.releaseWorker(thief, c, false)
				scancel()
				return r.content, nil
			}
		case r = <-secondary:
			if r.err == nil {
				co.releaseWorker(thief, c, true)
				pcancel()
				return r.content, nil
			}
		}
		if firstErr == nil {
			firstErr = r.err
		}
	}
	co.releaseWorker(thief, c, false)
	return nil, firstErr
}

// runOn executes one cell on one worker: submit (riding out 429s via
// the client's capped jittered backoff), wait, fetch the canonical JSON
// rendering.
func runOn(ctx context.Context, w *worker, c *cell) attemptResult {
	st, err := w.c.Run(ctx, c.runRequest())
	if err != nil {
		return attemptResult{err: fmt.Errorf("worker %s: %w", w.url, err)}
	}
	if st.State != server.StateDone {
		return attemptResult{err: fmt.Errorf("worker %s: run %s: %s", w.url, st.State, st.Error)}
	}
	content, err := w.c.Result(ctx, st.ID, "json")
	if err != nil {
		return attemptResult{err: fmt.Errorf("worker %s: %w", w.url, err)}
	}
	return attemptResult{content: content}
}

// installSnapshot best-effort installs the cell's cached PLUTSNAP on a
// worker before submission, so the run resumes from the last pulled
// checkpoint instead of cycle zero. No-op without a cached snapshot.
func (co *Coordinator) installSnapshot(c *cell, w *worker) {
	snap := co.cachedSnapshot(c.Key)
	if snap == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.c.PutSnapshot(ctx, c.Benchmark, c.Scheme, c.Seed, snap); err == nil {
		co.mu.Lock()
		co.counters.Migrations++
		co.mu.Unlock()
	}
}

// pullSnapshot best-effort refreshes the cell's cached snapshot from a
// specific worker (the straggler a steal is escaping).
func (co *Coordinator) pullSnapshot(c *cell, w *worker) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := w.c.Snapshot(ctx, c.Benchmark, c.Scheme, c.Seed)
	if err != nil || len(snap) == 0 {
		return
	}
	co.mu.Lock()
	co.snapshots[c.Key] = snap
	co.mu.Unlock()
}
