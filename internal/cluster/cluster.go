// Package cluster is the distributed sweep fabric's coordinator: it
// expands a (benchmark × scheme × seed) sweep into a run grid, shards
// the grid across registered plutusd workers over the existing v1
// HTTP/JSON API, and collects every result into a content-addressed
// store keyed by the harness run-cache key — so any worker's bytes are
// verifiable against a local single-box run of the same cell, and two
// workers disagreeing on one cell is a hard determinism alarm, not a
// silent overwrite.
//
// Scheduling is lease-based: a cell is leased to the least-loaded live
// worker, and a lease that outlives its timeout is stolen — the
// straggler's latest PLUTSNAP is pulled, installed on a second worker
// (PUT /v1/snapshots), and the cell resubmitted there; the first
// success wins and the loser's eventual result can only agree (the
// store dedups identical bytes) or trip the divergence alarm. Worker
// death is absorbed the same way: heartbeats pull in-flight cells'
// snapshots each cycle, so a retry after a crash resumes from the last
// checkpoint cadence instead of cycle zero. Failed attempts reschedule
// with capped exponential backoff; per-tenant quotas bound both
// admitted work (load shedding, surfaced as 429 upstream) and
// concurrently leased cells, layered on plutusd's own queue
// backpressure which the client rides out with jittered retry.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/plutus-gpu/plutus/internal/castore"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/server"
	"github.com/plutus-gpu/plutus/internal/server/client"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// ErrClosed reports work submitted to a coordinator after Close.
var ErrClosed = errors.New("cluster: coordinator closed")

// OverQuotaError reports load shedding: the tenant's admitted-but-
// unfinished cell count would exceed its pending bound. Upstream layers
// map it to 429 with Retry-After, mirroring plutusd's own queue
// backpressure one level up.
type OverQuotaError struct {
	Tenant  string
	Pending int
	Limit   int
}

func (e *OverQuotaError) Error() string {
	return fmt.Sprintf("cluster: tenant %q over quota (%d pending, limit %d)", e.Tenant, e.Pending, e.Limit)
}

// Config configures a Coordinator.
type Config struct {
	// Workers seeds the registry with plutusd base URLs; more can join
	// later via AddWorker (POST /v1/workers on the coordinator API).
	Workers []string
	// Harness is the sweep-wide harness configuration every worker is
	// expected to run with (same MaxInstructions, ProtectedBytes and
	// checkpoint cadence — the run-cache key, and therefore byte
	// identity, depends on all three). The coordinator uses it to
	// compute store keys and never simulates itself.
	Harness harness.Config
	// Store collects results; nil means a fresh in-memory store.
	Store *castore.Store
	// LeaseTimeout is how long one worker may hold a cell before the
	// scheduler steals it onto a second worker (default 30 s).
	LeaseTimeout time.Duration
	// HeartbeatEvery paces worker health polls and in-flight snapshot
	// pulls (default 1 s).
	HeartbeatEvery time.Duration
	// DeadAfter marks a worker dead after this many consecutive failed
	// heartbeats (default 3); dead workers take no new leases until a
	// heartbeat succeeds again.
	DeadAfter int
	// MaxAttempts bounds scheduling attempts per cell (default 4).
	MaxAttempts int
	// RetryBase and RetryCap pace rescheduling after a failed attempt:
	// capped exponential, base doubling per attempt (defaults 50 ms / 2 s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// TenantMaxInflight caps concurrently leased cells per tenant
	// (0 = unlimited).
	TenantMaxInflight int
	// TenantMaxPending sheds new admissions for a tenant whose
	// admitted-but-unfinished count would exceed it (0 = unlimited).
	TenantMaxPending int
}

func (c Config) withDefaults() Config {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 30 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	return c
}

// worker is the coordinator's view of one plutusd instance.
type worker struct {
	url      string
	c        *client.Client
	alive    bool
	missed   int
	capacity int              // workers + queue depth, scraped from /debug/statsz
	inflight int              // leases held here
	leases   map[string]*cell // key -> leased cell
	done     uint64           // successful leases
}

// cell is one in-flight grid cell: the single-flight unit. Identical
// requests — same run-cache key — coalesce onto one cell regardless of
// tenant.
type cell struct {
	Benchmark string
	Scheme    string
	Seed      uint64
	Key       string
	Tenant    string // admitting tenant; owns the inflight quota

	done    chan struct{} // closed once settled
	content []byte
	digest  string
	err     error
}

type tenant struct {
	pending  int // admitted, unfinished admissions
	inflight int // leased cells
}

// Counters is a snapshot of the coordinator's monotonic counters.
type Counters struct {
	Completed  uint64 // cells settled successfully
	Failed     uint64 // cells settled in error (attempts exhausted or divergence)
	Retries    uint64 // rescheduled attempts after a failure
	Steals     uint64 // leases stolen from stragglers
	Migrations uint64 // snapshots installed on a new worker before submit
	Shed       uint64 // admissions refused by tenant quota
	StoreHits  uint64 // requests served straight from the store
}

// Coordinator shards sweeps across workers. Create with New, stop with
// Close.
type Coordinator struct {
	cfg   Config
	keyer *harness.Runner
	store *castore.Store

	mu        sync.Mutex
	cond      *sync.Cond
	workers   map[string]*worker
	order     []string // sorted worker URLs: deterministic tie-break
	cells     map[string]*cell
	sweeps    map[string]*Sweep
	tenants   map[string]*tenant
	snapshots map[string][]byte // key -> latest PLUTSNAP pulled on heartbeat
	sweepSeq  int
	closed    bool
	counters  Counters

	stopHB chan struct{}
	hbDone chan struct{}
}

// New builds a Coordinator and starts its heartbeat loop.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	store := cfg.Store
	if store == nil {
		store = castore.New()
	}
	co := &Coordinator{
		cfg:       cfg,
		keyer:     harness.NewRunner(cfg.Harness),
		store:     store,
		workers:   map[string]*worker{},
		cells:     map[string]*cell{},
		sweeps:    map[string]*Sweep{},
		tenants:   map[string]*tenant{},
		snapshots: map[string][]byte{},
		stopHB:    make(chan struct{}),
		hbDone:    make(chan struct{}),
	}
	co.cond = sync.NewCond(&co.mu)
	for _, url := range cfg.Workers {
		co.AddWorker(url)
	}
	// One synchronous heartbeat round before the loop starts, so
	// seed-listed workers that are already up take leases immediately
	// instead of the first cells all piling onto whichever worker the
	// background loop happens to probe first.
	for _, url := range cfg.Workers {
		co.heartbeat(url)
	}
	go co.heartbeatLoop()
	return co
}

// Store returns the coordinator's result store.
func (co *Coordinator) Store() *castore.Store { return co.store }

// CacheKey exposes the store key of one grid cell under the sweep
// config — what a local single-box verification run must be keyed by.
func (co *Coordinator) CacheKey(bench string, sc secmem.Config, seed uint64) string {
	return co.keyer.CacheKey(bench, sc, seed)
}

// AddWorker registers a plutusd instance by base URL. Registration is
// idempotent; the worker starts dead and takes leases after its first
// successful heartbeat.
func (co *Coordinator) AddWorker(url string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if _, ok := co.workers[url]; ok {
		return
	}
	co.workers[url] = &worker{
		url:      url,
		c:        client.New(url),
		capacity: 4,
		leases:   map[string]*cell{},
	}
	co.order = append(co.order, url)
	sort.Strings(co.order)
}

// WorkerStatus is the public view of one registered worker.
type WorkerStatus struct {
	URL       string `json:"url"`
	Alive     bool   `json:"alive"`
	Inflight  int    `json:"inflight"`
	Capacity  int    `json:"capacity"`
	Completed uint64 `json:"completed"`
}

// Workers lists registered workers in URL order.
func (co *Coordinator) Workers() []WorkerStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]WorkerStatus, 0, len(co.order))
	for _, url := range co.order {
		w := co.workers[url]
		out = append(out, WorkerStatus{
			URL: w.url, Alive: w.alive, Inflight: w.inflight,
			Capacity: w.capacity, Completed: w.done,
		})
	}
	return out
}

// Counters returns a snapshot of the coordinator's counters.
func (co *Coordinator) Counters() Counters {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.counters
}

// Close stops the heartbeat loop and fails all future admissions.
// In-flight cells settle with errors as their workers disappear.
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	co.cond.Broadcast()
	co.mu.Unlock()
	close(co.stopHB)
	<-co.hbDone
}

// admit reserves n units of tenant pending quota, shedding when the
// bound would be exceeded.
func (co *Coordinator) admit(tenantName string, n int) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return ErrClosed
	}
	t := co.tenant(tenantName)
	if co.cfg.TenantMaxPending > 0 && t.pending+n > co.cfg.TenantMaxPending {
		co.counters.Shed++
		return &OverQuotaError{Tenant: tenantName, Pending: t.pending, Limit: co.cfg.TenantMaxPending}
	}
	t.pending += n
	return nil
}

func (co *Coordinator) releasePending(tenantName string, n int) {
	co.mu.Lock()
	co.tenant(tenantName).pending -= n
	co.mu.Unlock()
}

// tenant returns the named tenant's state, creating it. Called with
// co.mu held.
func (co *Coordinator) tenant(name string) *tenant {
	t, ok := co.tenants[name]
	if !ok {
		t = &tenant{}
		co.tenants[name] = t
	}
	return t
}

// resolve validates a cell's names against the local registries (the
// same ones plutusd validates against) and returns its store key.
func (co *Coordinator) resolve(bench, scheme string, seed uint64) (secmem.Config, string, error) {
	if _, err := workload.Get(bench); err != nil {
		return secmem.Config{}, "", err
	}
	sc, err := secmem.ByName(scheme, co.cfg.Harness.ProtectedBytes)
	if err != nil {
		return secmem.Config{}, "", err
	}
	return sc, co.keyer.CacheKey(bench, sc, seed), nil
}

// startCell begins (or joins) the single-flight execution of one cell.
// A store hit returns (nil, content, digest); otherwise the returned
// cell settles when its driver finishes.
func (co *Coordinator) startCell(tenantName, bench, scheme, key string, seed uint64) (*cell, []byte, string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if content, digest, err := co.storeGetLocked(key); err == nil {
		co.counters.StoreHits++
		return nil, content, digest
	}
	if c, ok := co.cells[key]; ok {
		return c, nil, ""
	}
	c := &cell{
		Benchmark: bench, Scheme: scheme, Seed: seed,
		Key: key, Tenant: tenantName, done: make(chan struct{}),
	}
	co.cells[key] = c
	go co.drive(c)
	return c, nil, ""
}

// storeGetLocked is castore.Get without re-locking pitfalls: the store
// has its own mutex, so calling it under co.mu is a benign nested lock
// (never taken in the other order).
func (co *Coordinator) storeGetLocked(key string) ([]byte, string, error) {
	return co.store.Get(key)
}

// RunCell runs one grid cell to completion on behalf of a tenant:
// store hits return instantly, identical concurrent requests coalesce,
// and everything else is leased out to a worker. The returned bytes are
// the canonical JSON rendering — byte-identical to a local single-box
// run of the same key.
func (co *Coordinator) RunCell(ctx context.Context, tenantName, bench, scheme string, seed uint64) ([]byte, string, error) {
	_, key, err := co.resolve(bench, scheme, seed)
	if err != nil {
		return nil, "", err
	}
	if err := co.admit(tenantName, 1); err != nil {
		return nil, "", err
	}
	defer co.releasePending(tenantName, 1)
	c, hit, digest := co.startCell(tenantName, bench, scheme, key, seed)
	if c == nil {
		return hit, digest, nil
	}
	select {
	case <-c.done:
		if c.err != nil {
			return nil, "", c.err
		}
		return c.content, c.digest, nil
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
}

// heartbeatLoop polls every worker's /healthz on a fixed cadence,
// scrapes /debug/statsz for capacity, and pulls the latest PLUTSNAP of
// every cell leased to the worker — the coordinator-side half of
// checkpoint migration: when a worker dies, the retry resumes from the
// last pulled snapshot instead of cycle zero.
func (co *Coordinator) heartbeatLoop() {
	defer close(co.hbDone)
	tick := time.NewTicker(co.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-co.stopHB:
			return
		case <-tick.C:
		}
		co.mu.Lock()
		urls := append([]string(nil), co.order...)
		co.mu.Unlock()
		for _, url := range urls {
			co.heartbeat(url)
		}
	}
}

func (co *Coordinator) heartbeat(url string) {
	co.mu.Lock()
	w, ok := co.workers[url]
	co.mu.Unlock()
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), co.cfg.HeartbeatEvery)
	defer cancel()
	err := w.c.Health(ctx)
	var capacity int
	if err == nil {
		if sz, szErr := w.c.Statsz(ctx); szErr == nil {
			capacity = sz.Workers + sz.QueueCapacity
		}
	}

	co.mu.Lock()
	var leased []*cell
	if err != nil {
		w.missed++
		if w.missed >= co.cfg.DeadAfter && w.alive {
			w.alive = false
		}
	} else {
		w.missed = 0
		if !w.alive {
			w.alive = true
			co.cond.Broadcast()
		}
		if capacity > 0 {
			w.capacity = capacity
		}
		for _, c := range w.leases {
			leased = append(leased, c)
		}
		sort.Slice(leased, func(i, j int) bool { return leased[i].Key < leased[j].Key })
	}
	co.mu.Unlock()

	// Pull in-flight snapshots outside the lock; each pull is best
	// effort (ErrNoSnapshot just means the run hasn't checkpointed yet).
	for _, c := range leased {
		snap, serr := w.c.Snapshot(ctx, c.Benchmark, c.Scheme, c.Seed)
		if serr == nil && len(snap) > 0 {
			co.mu.Lock()
			co.snapshots[c.Key] = snap
			co.mu.Unlock()
		}
	}
}

// cachedSnapshot returns the latest pulled PLUTSNAP for a cell, nil if
// none.
func (co *Coordinator) cachedSnapshot(key string) []byte {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.snapshots[key]
}

// runRequest builds the wire request for a cell.
func (c *cell) runRequest() server.RunRequest {
	return server.RunRequest{Benchmark: c.Benchmark, Scheme: c.Scheme, Seed: c.Seed}
}
