package sim

// FuncQueue is an amortized-O(1) FIFO of closures. The MSHR-stall paths
// park blocked requests here; the previous implementation re-sliced and
// copied the whole queue on every release, which profiling showed as the
// simulator's dominant allocation site (quadratic in queue depth). Pops
// advance a head index and the backing array is reused once drained, so
// steady-state park/release cycles allocate nothing.
type FuncQueue struct {
	fns  []func()
	head int
}

// Len returns the number of queued closures.
func (q *FuncQueue) Len() int { return len(q.fns) - q.head }

// Push appends fn to the queue.
func (q *FuncQueue) Push(fn func()) {
	if q.head == len(q.fns) && q.head != 0 {
		// Fully drained: rewind so the backing array is reused.
		q.fns = q.fns[:0]
		q.head = 0
	}
	q.fns = append(q.fns, fn)
}

// Pop removes and returns the oldest closure, or nil if the queue is
// empty.
func (q *FuncQueue) Pop() func() {
	if q.head == len(q.fns) {
		return nil
	}
	fn := q.fns[q.head]
	q.fns[q.head] = nil // release for GC
	q.head++
	if q.head == len(q.fns) {
		q.fns = q.fns[:0]
		q.head = 0
	}
	return fn
}
