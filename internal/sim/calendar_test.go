package sim

import (
	"container/heap"
	"testing"
)

// refEvent and refHeap are a straightforward binary-heap scheduler
// ordered on (cycle, seq) — the specification the calendar queue must
// match event for event.
type refEvent struct {
	at  Cycle
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refScheduler mirrors the Engine's scheduling semantics with the
// reference heap: monotone clock, FIFO within a cycle via a global
// insertion sequence.
type refScheduler struct {
	now Cycle
	seq uint64
	evs refHeap
}

func (r *refScheduler) schedule(delay Cycle, id int) {
	heap.Push(&r.evs, refEvent{at: r.now + delay, seq: r.seq, id: id})
	r.seq++
}

func (r *refScheduler) step() (int, bool) {
	if r.evs.Len() == 0 {
		return 0, false
	}
	ev := heap.Pop(&r.evs).(refEvent)
	r.now = ev.at
	return ev.id, true
}

// xorshift is the test's deterministic stream generator (no math/rand:
// the simlint detrand check bans it in this tree, and a fixed generator
// keeps failures reproducible from the printed seed alone).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// TestCalendarMatchesReferenceHeap drives the calendar-queue engine and
// the reference heap with identical seeded event streams — delays on
// both sides of the ring/overflow boundary, same-cycle bursts,
// execute-time rescheduling — and requires the dispatch order to match
// exactly. This is the ordering contract every determinism guarantee in
// the tree (PDES windows, checkpoint replay, golden figures) sits on.
func TestCalendarMatchesReferenceHeap(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 0xdeadbeef, 1 << 40} {
		rng := xorshift(seed)
		eng := &Engine{}
		ref := &refScheduler{}
		var engOrder, refOrder []int

		// Delay mix: mostly inside the 4096-cycle ring, a tail far
		// beyond it to keep the overflow heap and its migration active,
		// and frequent repeats of the same cycle to exercise FIFO order.
		delay := func() Cycle {
			switch r := rng.next() % 10; {
			case r < 4:
				return Cycle(rng.next() % 8) // bursty: same/near cycles
			case r < 8:
				return Cycle(rng.next() % 4096) // inside the ring
			default:
				return Cycle(4096 + rng.next()%100000) // overflow heap
			}
		}

		id := 0
		post := func(d Cycle) {
			evID := id
			id++
			eng.Schedule(d, func() { engOrder = append(engOrder, evID) })
			ref.schedule(d, evID)
		}

		for i := 0; i < 5000; i++ {
			post(delay())
			// Interleave dispatch with scheduling so the clock advances
			// and relative delays land on a moving base.
			if rng.next()%3 == 0 {
				if eng.Step() {
					refID, ok := ref.step()
					if !ok {
						t.Fatalf("seed %d: reference empty while engine stepped", seed)
					}
					refOrder = append(refOrder, refID)
				}
			}
		}
		for eng.Step() {
			refID, ok := ref.step()
			if !ok {
				t.Fatalf("seed %d: reference drained before engine", seed)
			}
			refOrder = append(refOrder, refID)
		}
		if _, ok := ref.step(); ok {
			t.Fatalf("seed %d: engine drained before reference", seed)
		}
		if len(engOrder) != len(refOrder) {
			t.Fatalf("seed %d: dispatched %d events, reference %d", seed, len(engOrder), len(refOrder))
		}
		for i := range engOrder {
			if engOrder[i] != refOrder[i] {
				t.Fatalf("seed %d: dispatch %d: engine ran event %d, reference %d",
					seed, i, engOrder[i], refOrder[i])
			}
		}
		if eng.Now() != ref.now {
			t.Fatalf("seed %d: engine at cycle %d, reference at %d", seed, eng.Now(), ref.now)
		}
	}
}

// TestCalendarRescheduleDuringDispatch covers the hazard the migration
// proof leans on: events executing at cycle X scheduling new work both
// at X (same-cycle FIFO) and far past the ring, while the overflow heap
// is migrating entries for nearby slots.
func TestCalendarRescheduleDuringDispatch(t *testing.T) {
	rng := xorshift(99)
	eng := &Engine{}
	ref := &refScheduler{}
	var engOrder, refOrder []int

	// Every dispatched event with id divisible by 3 schedules one child
	// at delay id%5000 and one at delay 0 (same-cycle FIFO). Both sides
	// derive child ids from the parent id, so no shared state is needed.
	childID := func(parent, k int) int { return 1_000_000 + parent*2 + k }
	schedChildren := func(parent int) {
		if parent%3 != 0 || parent >= 1_000_000 {
			return
		}
		eng.Schedule(Cycle(parent%5000), func() { engOrder = append(engOrder, childID(parent, 0)) })
		eng.Schedule(0, func() { engOrder = append(engOrder, childID(parent, 1)) })
	}

	for i := 0; i < 3000; i++ {
		evID := i
		d := Cycle(rng.next() % 9000)
		eng.Schedule(d, func() {
			engOrder = append(engOrder, evID)
			schedChildren(evID)
		})
		ref.schedule(d, evID)
	}
	for eng.Step() {
	}
	// Replay the reference with the same child rule.
	for {
		evID, ok := ref.step()
		if !ok {
			break
		}
		refOrder = append(refOrder, evID)
		if evID%3 == 0 && evID < 1_000_000 {
			ref.schedule(Cycle(evID%5000), childID(evID, 0))
			ref.schedule(0, childID(evID, 1))
		}
	}
	if len(engOrder) != len(refOrder) {
		t.Fatalf("dispatched %d events, reference %d", len(engOrder), len(refOrder))
	}
	for i := range engOrder {
		if engOrder[i] != refOrder[i] {
			t.Fatalf("dispatch %d: engine ran event %d, reference %d", i, engOrder[i], refOrder[i])
		}
	}
}

// TestEventLoopSteadyStateZeroAllocs pins the pooled-event invariant: a
// warmed engine's schedule+dispatch cycle performs no heap allocation.
// This is the same accounting the benchsmoke CI gate applies; a failure
// here means someone reintroduced a per-event allocation on the hot
// path (see DESIGN.md §10).
func TestEventLoopSteadyStateZeroAllocs(t *testing.T) {
	const ops = 4096
	eng := &Engine{}
	rng := xorshift(5)
	// Deterministic warm-up: one event in every ring bucket (so each
	// bucket's slice is grown) plus a far event to size the overflow
	// heap, all drained before counting. Steady state never holds more
	// events per bucket than this, so no later append can grow anything.
	for s := Cycle(0); s < ringSize; s++ {
		eng.Schedule(s, sinkFn)
	}
	eng.Schedule(ringSize+1000, sinkFn)
	for eng.Step() {
	}
	batch := func() {
		for i := 0; i < ops; i++ {
			eng.Schedule(Cycle(rng.next()%6000), sinkFn)
			eng.Step()
		}
	}
	if got := testing.AllocsPerRun(10, batch); got != 0 {
		t.Fatalf("event loop allocates in steady state: %.1f allocs per %d-op batch", got, ops)
	}
}

// sinkFn is a top-level event body so scheduling it allocates no closure.
func sinkFn() {}

// BenchmarkEventLoop measures raw scheduler throughput and reports its
// allocation rate (0 allocs/op in steady state).
func BenchmarkEventLoop(b *testing.B) {
	eng := &Engine{}
	rng := xorshift(11)
	for i := 0; i < 4096; i++ { // warm-up: grow pools before timing
		eng.Schedule(Cycle(rng.next()%6000), sinkFn)
		eng.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(Cycle(rng.next()%6000), sinkFn)
		eng.Step()
	}
}
