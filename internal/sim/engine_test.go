package sim

import "testing"

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(10, func() { order = append(order, 3) }) // same cycle: FIFO
	for e.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %d, want 10", e.Now())
	}
}

func TestZeroDelayRunsSameCycle(t *testing.T) {
	var e Engine
	var at []Cycle
	e.Schedule(3, func() {
		e.Schedule(0, func() { at = append(at, e.Now()) })
	})
	e.Drain(0)
	if len(at) != 1 || at[0] != 3 {
		t.Fatalf("zero-delay event ran at %v, want [3]", at)
	}
}

func TestRunUntilStopsBeforeLimit(t *testing.T) {
	var e Engine
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(10, func() { ran++ })
	n := e.RunUntil(10)
	if n != 1 || ran != 1 {
		t.Fatalf("RunUntil(10) executed %d events (ran=%d), want 1", n, ran)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleTime(t *testing.T) {
	var e Engine
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("idle RunUntil should advance time: Now = %d", e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	var e Engine
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Cycle(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Errorf("RunWhile stopped at count=%d, want 4", count)
	}
}

func TestDrainBounded(t *testing.T) {
	var e Engine
	// A self-rescheduling event would livelock an unbounded drain.
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(0, loop)
	if e.Drain(100) {
		t.Error("bounded Drain of a livelock should report not-drained")
	}
}

// Same-cycle FIFO must hold across Schedule(0, …) chains: an event that
// enqueues zero-delay work runs that work after every event already
// queued for the cycle, and chains of zero-delay events preserve their
// enqueue order. The sharded mode leans on this to keep the L2-bank and
// issue-slot ladders deterministic.
func TestScheduleZeroChainFIFO(t *testing.T) {
	var e Engine
	var order []string
	e.Schedule(5, func() {
		order = append(order, "a")
		e.Schedule(0, func() {
			order = append(order, "a0")
			e.Schedule(0, func() { order = append(order, "a00") })
		})
		e.Schedule(0, func() { order = append(order, "a1") })
	})
	e.Schedule(5, func() { order = append(order, "b") })
	e.Drain(0)
	want := []string{"a", "b", "a0", "a1", "a00"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 5 || e.LastEventAt() != 5 {
		t.Errorf("Now/LastEventAt = %d/%d, want 5/5", e.Now(), e.LastEventAt())
	}
}

func TestScheduleAt(t *testing.T) {
	var e Engine
	var at []Cycle
	e.ScheduleAt(7, func() { at = append(at, e.Now()) })
	e.Schedule(7, func() { at = append(at, e.Now()+100) }) // queued later, same cycle: runs second
	e.Drain(0)
	if len(at) != 2 || at[0] != 7 || at[1] != 107 {
		t.Fatalf("ScheduleAt ordering = %v, want [7 107]", at)
	}
	defer func() {
		if recover() == nil {
			t.Error("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(3, func() {})
}

func TestNextAtAndLastEventAt(t *testing.T) {
	var e Engine
	if _, ok := e.NextAt(); ok {
		t.Error("empty engine reported a next event")
	}
	if e.LastEventAt() != 0 {
		t.Errorf("fresh engine LastEventAt = %d", e.LastEventAt())
	}
	e.Schedule(9, func() {})
	if at, ok := e.NextAt(); !ok || at != 9 {
		t.Errorf("NextAt = %d,%v, want 9,true", at, ok)
	}
	e.Drain(0)
	e.RunUntil(50) // idle horizon advance must not move LastEventAt
	if e.LastEventAt() != 9 || e.Now() != 50 {
		t.Errorf("LastEventAt/Now = %d/%d, want 9/50", e.LastEventAt(), e.Now())
	}
}

func TestCascadedScheduling(t *testing.T) {
	var e Engine
	var times []Cycle
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() {
			times = append(times, e.Now())
			e.Schedule(3, func() { times = append(times, e.Now()) })
		})
	})
	e.Drain(0)
	want := []Cycle{1, 3, 6}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("cascade times = %v, want %v", times, want)
		}
	}
}
