package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// pingPong runs a deterministic multi-shard message storm and returns
// each shard's local execution log. Every shard appends only to its own
// log, so the logs are race-free in parallel mode; any divergence
// between modes shows up as a log difference.
func pingPong(parallel bool) [][]string {
	const shards, window, tokens = 4, 5, 40
	c := NewCluster(shards, window, parallel)
	logs := make([][]string, shards)

	var bounce func(s *Shard, token int)
	bounce = func(s *Shard, token int) {
		logs[s.ID()] = append(logs[s.ID()], fmt.Sprintf("t%d@%d", token, s.Engine().Now()))
		if token >= tokens {
			return
		}
		dst := c.Shard((s.ID() + token) % shards)
		s.Send(dst, Cycle(window+token%7), func() { bounce(dst, token+1) })
		// Local follow-up work exercises intra-shard ordering too.
		s.Engine().Schedule(Cycle(token%3), func() {
			logs[s.ID()] = append(logs[s.ID()], fmt.Sprintf("local%d@%d", token, s.Engine().Now()))
		})
	}

	for i := 0; i < shards; i++ {
		s := c.Shard(i)
		s.Engine().Schedule(Cycle(i), func() { bounce(s, i) })
	}
	if !c.Run(1 << 20) {
		panic("pingPong: livelock")
	}
	c.Close()
	return logs
}

// Parallel execution must be bit-identical to sequential: same events on
// every shard, at the same cycles, in the same order.
func TestClusterParallelMatchesSequential(t *testing.T) {
	seq := pingPong(false)
	for rep := 0; rep < 3; rep++ {
		par := pingPong(true)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel run diverged from sequential:\nseq: %v\npar: %v", seq, par)
		}
	}
}

// Mail stamped exactly at a window boundary must be delivered for that
// cycle, run after the destination's already-queued same-cycle events,
// and be ordered by sender id when two shards' mail collides on one
// cycle.
func TestMailboxDeliveryAtWindowBoundary(t *testing.T) {
	const window = 10
	c := NewCluster(3, window, false)
	a, b, z := c.Shard(0), c.Shard(1), c.Shard(2)
	var order []string
	// Internal event queued for cycle 10 before any mail arrives.
	b.Engine().Schedule(window, func() { order = append(order, "internal") })
	// Both peers send mail that lands exactly at cycle 10 — the earliest
	// cycle the lookahead contract allows. Enqueue z's first to prove
	// delivery order is canonical (sender id), not enqueue order.
	z.Send(b, window, func() { order = append(order, "from2") })
	a.Send(b, window, func() { order = append(order, "from0") })
	c.Run(0)
	want := []string{"internal", "from0", "from2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("boundary delivery order = %v, want %v", order, want)
	}
	if got := b.Engine().LastEventAt(); got != window {
		t.Errorf("mail executed at %d, want %d", got, window)
	}
}

// A Send below the lookahead window would let mail land inside a window
// a shard is already executing; it must panic rather than corrupt
// determinism.
func TestSendBelowWindowPanics(t *testing.T) {
	c := NewCluster(2, 10, false)
	defer func() {
		if recover() == nil {
			t.Error("Send with delay < window did not panic")
		}
	}()
	c.Shard(0).Send(c.Shard(1), 9, func() {})
}

// Sparse event queues must not be ground through window by window: the
// cluster jumps to the earliest pending event. A million-cycle gap at
// window 5 would take 200k windows ground naively; the livelock bound
// below would trip long before that if the jump were missing.
func TestClusterSkipsIdleGaps(t *testing.T) {
	c := NewCluster(2, 5, false)
	ran := false
	c.Shard(1).Engine().Schedule(1_000_000, func() { ran = true })
	if !c.Run(1000) {
		t.Fatal("cluster did not drain within the event bound (idle jump missing?)")
	}
	if !ran || c.LastEventAt() != 1_000_000 {
		t.Errorf("ran=%v LastEventAt=%d, want true/1000000", ran, c.LastEventAt())
	}
}

// Cross-shard round trips must accumulate latency exactly: two hops of
// the minimum (window) delay land 2×window after the origin event.
func TestRoundTripLatency(t *testing.T) {
	const window = 20
	c := NewCluster(2, window, false)
	a, b := c.Shard(0), c.Shard(1)
	var reply Cycle
	a.Engine().Schedule(7, func() {
		a.Send(b, window, func() {
			b.Send(a, window, func() { reply = a.Engine().Now() })
		})
	})
	c.Run(0)
	if reply != 7+2*window {
		t.Errorf("round trip completed at %d, want %d", reply, 7+2*window)
	}
}
