package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// This file implements conservative parallel discrete-event simulation
// (classic null-message-free PDES with a fixed lookahead): a Cluster owns
// one Engine per shard and advances all shards in lockstep windows no
// wider than the minimum cross-shard latency. Within a window every shard
// executes its own events on its own goroutine; cross-shard interactions
// travel as cycle-stamped messages that are delivered at the next window
// barrier in a canonical (cycle, sender, sender-sequence) order.
//
// Because the window never exceeds the lookahead, a message generated
// inside window k is always stamped at or beyond the start of window k+1,
// so no shard can ever observe mail for a cycle it has already executed.
// The barrier order is a pure function of simulation state — not of
// goroutine scheduling — which makes parallel runs bit-identical to
// sequential ones: sequential mode runs the exact same windows and
// deliveries on a single goroutine.

// message is one cross-shard closure with its delivery cycle and the
// canonical ordering key (sender id, per-sender sequence number).
type message struct {
	at   Cycle
	from int
	seq  uint64
	fn   func()
}

// Shard is one partition of a sharded simulation: an Engine that advances
// in lockstep windows with its peers, plus an inbox for messages from
// other shards.
type Shard struct {
	id      int
	cl      *Cluster
	eng     *Engine
	sendSeq uint64 // monotone per-sender counter; orders same-cycle mail

	mu    sync.Mutex
	inbox []message

	ran uint64 // events executed in the current window
}

// ID returns the shard's index within its cluster.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's event queue. Only the shard's own events may
// schedule on it directly; other shards must use Send.
func (s *Shard) Engine() *Engine { return s.eng }

// Send schedules fn to run on shard dst, delay cycles after the sender's
// current time. The delay must be at least the cluster's lookahead window
// — that is the conservative-PDES contract that lets every shard execute
// a whole window without observing mid-window mail — and Send panics on a
// violation rather than silently corrupting determinism.
//
// Mail for the same delivery cycle is executed in (sender id, send order)
// order, after any events the destination shard had already scheduled
// for that cycle.
func (s *Shard) Send(dst *Shard, delay Cycle, fn func()) {
	if delay < s.cl.window {
		panic(fmt.Sprintf("sim: Send delay %d below lookahead window %d", delay, s.cl.window))
	}
	s.sendSeq++
	m := message{at: s.eng.Now() + delay, from: s.id, seq: s.sendSeq, fn: fn}
	dst.mu.Lock()
	dst.inbox = append(dst.inbox, m)
	dst.mu.Unlock()
}

// Cluster advances a set of shards in deterministic lockstep windows,
// optionally executing each window's shards on parallel goroutines.
type Cluster struct {
	window   Cycle
	shards   []*Shard
	parallel bool

	start []chan Cycle // per-shard worker horizon feed (parallel mode)
	wg    sync.WaitGroup
}

// NewCluster builds a cluster of n shards with the given lookahead
// window (both must be ≥ 1). When parallel is true, windows execute on
// one goroutine per shard; otherwise shards run in index order on the
// caller's goroutine. Both modes produce bit-identical simulations.
func NewCluster(n int, window Cycle, parallel bool) *Cluster {
	if n < 1 || window < 1 {
		panic(fmt.Sprintf("sim: invalid cluster (%d shards, window %d)", n, window))
	}
	c := &Cluster{window: window, parallel: parallel && runtime.GOMAXPROCS(0) > 1}
	for i := 0; i < n; i++ {
		c.shards = append(c.shards, &Shard{id: i, cl: c, eng: &Engine{}})
	}
	return c
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Window returns the lookahead window.
func (c *Cluster) Window() Cycle { return c.window }

// Parallel reports whether windows execute on parallel goroutines.
func (c *Cluster) Parallel() bool { return c.parallel }

// deliver drains every shard's inbox into its engine. It must only run at
// a barrier (no shard executing). Messages are sorted by (cycle, sender,
// sender-sequence) so delivery order is independent of the goroutine
// interleaving that enqueued them.
func (c *Cluster) deliver() {
	for _, s := range c.shards {
		if len(s.inbox) == 0 {
			continue
		}
		msgs := s.inbox
		sort.Slice(msgs, func(i, j int) bool {
			a, b := msgs[i], msgs[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.from != b.from {
				return a.from < b.from
			}
			return a.seq < b.seq
		})
		for _, m := range msgs {
			s.eng.ScheduleAt(m.at, m.fn)
		}
		s.inbox = msgs[:0]
	}
}

// RunWindow delivers pending cross-shard mail and advances every shard
// through one window. It returns the number of events executed; zero
// means the cluster is idle (no events queued and no mail in flight).
//
// The window starts at the earliest pending event across all shards, so
// idle stretches (e.g. long DRAM latencies) are skipped in one hop
// instead of being ground through window by window.
func (c *Cluster) RunWindow() uint64 {
	c.deliver()
	var earliest Cycle
	found := false
	for _, s := range c.shards {
		if at, ok := s.eng.NextAt(); ok && (!found || at < earliest) {
			earliest, found = at, true
		}
	}
	if !found {
		return 0
	}
	horizon := earliest + c.window

	if !c.parallel {
		var n uint64
		for _, s := range c.shards {
			n += s.eng.RunUntil(horizon)
		}
		return n
	}

	if c.start == nil {
		c.startWorkers()
	}
	c.wg.Add(len(c.shards))
	for _, ch := range c.start {
		ch <- horizon
	}
	c.wg.Wait()
	var n uint64
	for _, s := range c.shards {
		n += s.ran
	}
	return n
}

// startWorkers launches one persistent goroutine per shard; each waits
// for a horizon, runs its shard's window, and reports back through the
// cluster WaitGroup. Persistent workers keep the per-window barrier cost
// to a few channel operations.
func (c *Cluster) startWorkers() {
	c.start = make([]chan Cycle, len(c.shards))
	for i, s := range c.shards {
		ch := make(chan Cycle, 1)
		c.start[i] = ch
		go func(s *Shard) {
			for horizon := range ch {
				s.ran = s.eng.RunUntil(horizon)
				c.wg.Done()
			}
		}(s)
	}
}

// Run executes windows until the cluster is idle. maxEvents bounds the
// total event count as a livelock safety net (0 = no bound); Run reports
// whether the cluster drained within the bound.
func (c *Cluster) Run(maxEvents uint64) bool {
	var total uint64
	for {
		n := c.RunWindow()
		if n == 0 {
			return true
		}
		total += n
		if maxEvents != 0 && total >= maxEvents {
			return false
		}
	}
}

// LastEventAt returns the latest cycle at which any shard executed an
// event — the simulation's end time, unaffected by idle horizon advance.
func (c *Cluster) LastEventAt() Cycle {
	var last Cycle
	for _, s := range c.shards {
		if at := s.eng.LastEventAt(); at > last {
			last = at
		}
	}
	return last
}

// Close stops the cluster's worker goroutines (a no-op in sequential
// mode or before the first parallel window). The cluster must be idle.
func (c *Cluster) Close() {
	for _, ch := range c.start {
		close(ch)
	}
	c.start = nil
}
