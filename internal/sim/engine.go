// Package sim provides the discrete-event simulation kernel shared by the
// GPU model and the secure-memory engines: a deterministic event queue
// keyed by cycle, with FIFO ordering among events scheduled for the same
// cycle.
//
// All model components express time by scheduling closures. Each Engine is
// single-threaded by design — determinism matters more than parallel
// speed for reproducing the paper's figures, and runs are repeatable
// bit-for-bit for a given seed. For parallel execution the Cluster type
// (shard.go) advances several Engines in lockstep windows with
// deterministic cross-engine message delivery, so sharded runs stay
// bit-identical to single-threaded ones.
package sim

import "math/bits"

// Cycle is a point in simulated time, in core clock cycles.
type Cycle uint64

// The queue is a calendar (bucket) queue: a ring of per-cycle buckets
// covering the window [now, now+ringSize) absorbs the overwhelming
// majority of events (cache latencies, DRAM service times, crossbar hops
// are all far below ringSize), giving O(1) schedule and dispatch with no
// per-event allocation — the previous container/heap implementation boxed
// every event through an interface and was comparison-bound. Events
// beyond the window (deep DRAM bus backlog) go to a small inline overflow
// heap and migrate into the ring as time advances.
//
// Ordering invariant: dispatch is strictly (cycle, seq) — seq is the
// global monotone schedule order, so same-cycle events run FIFO. The
// overflow heap pops in (at, seq) order, and every heap event for a cycle
// X was scheduled while now ≤ X−ringSize, whereas every ring append for X
// requires now > X−ringSize; since now is monotone, all migrated heap
// events for X carry smaller seq than any direct ring append for X, and
// migration happens exactly when now first advances past X−ringSize —
// before any event at the new now executes. Appending migrated events
// ahead of future ring appends therefore preserves global (cycle, seq)
// order. The scheduler_test.go property test cross-checks this dispatch
// order against a reference heap over randomized event streams.
const (
	ringBits  = 12
	ringSize  = Cycle(1) << ringBits // bucketed scheduling window, in cycles
	ringMask  = ringSize - 1
	busyWords = int(ringSize) / 64
)

// event is one queued closure; its cycle is implied by its bucket.
type event struct {
	seq uint64
	fn  func()
}

// farEvent is an overflow-heap entry (cycle kept explicitly).
type farEvent struct {
	at  Cycle
	seq uint64
	fn  func()
}

// bucket holds one cycle's events in schedule order. head indexes the
// next unconsumed event; the backing slice is reused across cycles once
// fully drained, so steady-state scheduling never allocates.
type bucket struct {
	evs  []event
	head int
}

// Engine is the event queue. The zero value is ready to use.
type Engine struct {
	now   Cycle
	last  Cycle
	seq   uint64
	count int
	busy  [busyWords]uint64 // occupancy bitmap over ring slots
	ring  [ringSize]bucket
	far   []farEvent // min-heap on (at, seq) for events ≥ now+ringSize
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// LastEventAt returns the cycle of the most recently executed event
// (zero if none ran). Unlike Now, it never advances on idle horizons, so
// it reports the true end of activity in windowed (sharded) execution.
func (e *Engine) LastEventAt() Cycle { return e.last }

// Schedule runs fn after delay cycles. A delay of zero runs fn later in
// the current cycle, after already-queued same-cycle events.
//
//simlint:hotpath
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	if delay < ringSize {
		e.pushRing(e.now+delay, event{seq: e.seq, fn: fn})
	} else {
		e.pushFar(farEvent{at: e.now + delay, seq: e.seq, fn: fn})
	}
	e.count++
}

// ScheduleAt runs fn at absolute cycle at, which must not lie in the
// past. Among events at the same cycle it runs after everything already
// queued (same FIFO rule as Schedule). Cross-shard message delivery uses
// it to inject mail stamped with absolute delivery cycles.
//
//simlint:hotpath
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at < e.now {
		panic("sim: ScheduleAt in the past (causality violation)")
	}
	e.Schedule(at-e.now, fn)
}

//simlint:hotpath
func (e *Engine) pushRing(at Cycle, ev event) {
	s := at & ringMask
	b := &e.ring[s]
	if len(b.evs) == 0 {
		e.busy[s>>6] |= 1 << (s & 63)
	}
	b.evs = append(b.evs, ev)
}

//simlint:hotpath
func (e *Engine) pushFar(fe farEvent) {
	e.far = append(e.far, fe)
	i := len(e.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !farLess(&e.far[i], &e.far[p]) {
			break
		}
		e.far[i], e.far[p] = e.far[p], e.far[i]
		i = p
	}
}

func farLess(a, b *farEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// popFar removes and returns the earliest overflow event.
//
//simlint:hotpath
func (e *Engine) popFar() farEvent {
	fe := e.far[0]
	n := len(e.far) - 1
	e.far[0] = e.far[n]
	e.far[n].fn = nil // release the closure for GC
	e.far = e.far[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && farLess(&e.far[l], &e.far[min]) {
			min = l
		}
		if r < n && farLess(&e.far[r], &e.far[min]) {
			min = r
		}
		if min == i {
			break
		}
		e.far[i], e.far[min] = e.far[min], e.far[i]
		i = min
	}
	return fe
}

// migrateFar moves overflow events that now fall inside the ring window
// into their buckets. It must run whenever now advances, before any event
// at the new time executes (see the ordering invariant above).
//
//simlint:hotpath
func (e *Engine) migrateFar() {
	horizon := e.now + ringSize
	for len(e.far) > 0 && e.far[0].at < horizon {
		fe := e.popFar()
		e.pushRing(fe.at, event{seq: fe.seq, fn: fe.fn})
	}
}

// nextBusy returns the ring slot of the earliest nonempty bucket at or
// after cycle from, scanning the occupancy bitmap with wraparound.
//
//simlint:hotpath
func (e *Engine) nextBusy(from Cycle) (Cycle, bool) {
	s0 := from & ringMask
	w0 := int(s0 >> 6)
	if word := e.busy[w0] &^ (1<<(s0&63) - 1); word != 0 {
		return Cycle(w0<<6 + bits.TrailingZeros64(word)), true
	}
	for k := 1; k <= busyWords; k++ {
		w := (w0 + k) & (busyWords - 1)
		if e.busy[w] != 0 {
			return Cycle(w<<6 + bits.TrailingZeros64(e.busy[w])), true
		}
	}
	return 0, false
}

// nextEventAt returns the cycle of the earliest queued event. The queue
// must be nonempty. Ring events always precede overflow events: the
// migration invariant keeps far[0].at ≥ now+ringSize while every ring
// event lies below now+ringSize.
//
//simlint:hotpath
func (e *Engine) nextEventAt() Cycle {
	if slot, ok := e.nextBusy(e.now); ok {
		return e.now + ((slot - (e.now & ringMask)) & ringMask)
	}
	return e.far[0].at
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.count }

// NextAt returns the cycle of the earliest queued event; ok is false if
// the queue is empty.
func (e *Engine) NextAt() (at Cycle, ok bool) {
	if e.count == 0 {
		return 0, false
	}
	return e.nextEventAt(), true
}

// stepAt advances time to at, executes the earliest event (which must be
// at cycle at), and returns.
//
//simlint:hotpath
func (e *Engine) stepAt(at Cycle) {
	if at != e.now {
		e.now = at
		e.migrateFar()
	}
	s := at & ringMask
	b := &e.ring[s]
	ev := b.evs[b.head]
	b.evs[b.head].fn = nil // release the closure for GC
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		e.busy[s>>6] &^= 1 << (s & 63)
	}
	e.count--
	e.last = at
	ev.fn()
}

// Step executes the earliest event, advancing time to it. It reports
// whether an event was executed.
//
//simlint:hotpath
func (e *Engine) Step() bool {
	if e.count == 0 {
		return false
	}
	e.stepAt(e.nextEventAt())
	return true
}

// RunUntil executes events until the queue is empty or the next event
// would be at or beyond limit. It returns the number of events executed.
//
//simlint:hotpath
func (e *Engine) RunUntil(limit Cycle) uint64 {
	var n uint64
	for e.count > 0 {
		at := e.nextEventAt()
		if at >= limit {
			break
		}
		e.stepAt(at)
		n++
	}
	if e.now < limit && e.count == 0 {
		// Time still advances to the horizon even if nothing is queued.
		e.now = limit
	}
	return n
}

// RunWhile executes events while cond() holds and events remain.
// It returns the number of events executed.
func (e *Engine) RunWhile(cond func() bool) uint64 {
	var n uint64
	for cond() && e.Step() {
		n++
	}
	return n
}

// Drain executes all remaining events (bounded by maxEvents as a safety
// net against livelock bugs; pass 0 for no bound). It reports whether the
// queue fully drained.
func (e *Engine) Drain(maxEvents uint64) bool {
	var n uint64
	for e.Step() {
		n++
		if maxEvents != 0 && n >= maxEvents {
			return e.count == 0
		}
	}
	return true
}

// Clock returns the engine's clock state (current cycle, last executed
// event cycle) for checkpointing. It is only meaningful — and only
// deterministic — when the queue is empty: snapshots are taken at
// drained epoch boundaries.
func (e *Engine) Clock() (now, last Cycle) { return e.now, e.last }

// RestoreClock resets the clock to a checkpointed value. The queue must
// be empty: restoring under queued events would time-travel them. The
// internal FIFO sequence counter is deliberately NOT restored — with an
// empty queue only the relative order of future events matters, and
// that is preserved starting from any counter value.
func (e *Engine) RestoreClock(now, last Cycle) {
	if e.count != 0 {
		panic("sim: RestoreClock with queued events")
	}
	e.now = now
	e.last = last
}
