// Package sim provides the discrete-event simulation kernel shared by the
// GPU model and the secure-memory engines: a deterministic event queue
// keyed by cycle, with FIFO ordering among events scheduled for the same
// cycle.
//
// All model components express time by scheduling closures. Each Engine is
// single-threaded by design — determinism matters more than parallel
// speed for reproducing the paper's figures, and runs are repeatable
// bit-for-bit for a given seed. For parallel execution the Cluster type
// (shard.go) advances several Engines in lockstep windows with
// deterministic cross-engine message delivery, so sharded runs stay
// bit-identical to single-threaded ones.
package sim

import "container/heap"

// Cycle is a point in simulated time, in core clock cycles.
type Cycle uint64

type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is the event queue. The zero value is ready to use.
type Engine struct {
	now    Cycle
	last   Cycle
	seq    uint64
	events eventHeap
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// LastEventAt returns the cycle of the most recently executed event
// (zero if none ran). Unlike Now, it never advances on idle horizons, so
// it reports the true end of activity in windowed (sharded) execution.
func (e *Engine) LastEventAt() Cycle { return e.last }

// Schedule runs fn after delay cycles. A delay of zero runs fn later in
// the current cycle, after already-queued same-cycle events.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at absolute cycle at, which must not lie in the
// past. Among events at the same cycle it runs after everything already
// queued (same FIFO rule as Schedule). Cross-shard message delivery uses
// it to inject mail stamped with absolute delivery cycles.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at < e.now {
		panic("sim: ScheduleAt in the past (causality violation)")
	}
	e.Schedule(at-e.now, fn)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// NextAt returns the cycle of the earliest queued event; ok is false if
// the queue is empty.
func (e *Engine) NextAt() (at Cycle, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// Step executes the earliest event, advancing time to it. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.last = ev.at
	ev.fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event
// would be at or beyond limit. It returns the number of events executed.
func (e *Engine) RunUntil(limit Cycle) uint64 {
	var n uint64
	for len(e.events) > 0 && e.events[0].at < limit {
		e.Step()
		n++
	}
	if e.now < limit && len(e.events) == 0 {
		// Time still advances to the horizon even if nothing is queued.
		e.now = limit
	}
	return n
}

// RunWhile executes events while cond() holds and events remain.
// It returns the number of events executed.
func (e *Engine) RunWhile(cond func() bool) uint64 {
	var n uint64
	for cond() && e.Step() {
		n++
	}
	return n
}

// Drain executes all remaining events (bounded by maxEvents as a safety
// net against livelock bugs; pass 0 for no bound). It reports whether the
// queue fully drained.
func (e *Engine) Drain(maxEvents uint64) bool {
	var n uint64
	for e.Step() {
		n++
		if maxEvents != 0 && n >= maxEvents {
			return len(e.events) == 0
		}
	}
	return true
}

// Clock returns the engine's clock state (current cycle, last executed
// event cycle) for checkpointing. It is only meaningful — and only
// deterministic — when the queue is empty: snapshots are taken at
// drained epoch boundaries.
func (e *Engine) Clock() (now, last Cycle) { return e.now, e.last }

// RestoreClock resets the clock to a checkpointed value. The queue must
// be empty: restoring under queued events would time-travel them. The
// internal FIFO sequence counter is deliberately NOT restored — with an
// empty queue only the relative order of future events matters, and
// that is preserved starting from any counter value.
func (e *Engine) RestoreClock(now, last Cycle) {
	if len(e.events) != 0 {
		panic("sim: RestoreClock with queued events")
	}
	e.now = now
	e.last = last
}
