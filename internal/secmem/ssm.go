package secmem

// The ssm frontier scheme (PAPERS.md: "Secure Scattered Memory"): each
// 32 B data sector is stored as n Shamir secret shares over GF(256),
// scattered across the protected space under keyed rotations. A read
// fetches all n shares and reconstructs the plaintext from the first k
// by Lagrange interpolation at x=0; the remaining n−k shares are
// re-evaluated from the same polynomial and compared against their
// stored copies. Any single-share corruption breaks that consistency
// check — tamper detection IS reconstruction failure, so the scheme
// needs no counters, no MACs, and no integrity tree: the entire
// metadata datapath of the conventional schemes is replaced by n× data
// amplification. The share pads are refreshed from a keyed stream on
// every write (ssmVer), so ciphertext never repeats across writes.
//
// Share region 0 uses the identity placement (slot i for sector i), so
// the attack surface reachable through data addresses — exactly what
// tamper plans can target — lines up with the oracle's per-sector
// ground truth; regions 1..n−1 live beyond the protected range under
// secret rotations, which is the scheme's location-secrecy argument.

import (
	"encoding/binary"
	"fmt"

	"github.com/plutus-gpu/plutus/internal/crypto/siphash"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// --- GF(256) arithmetic (AES polynomial x^8+x^4+x^3+x+1) ---

var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		x = gfMulSlow(x, 3) // 3 generates the multiplicative group
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMulSlow is the shift-and-reduce product used only to build tables.
func gfMulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

//simlint:hotpath
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfInv(a byte) byte { return gfExp[255-int(gfLog[a])] }

func gfDiv(a, b byte) byte { return gfMul(a, gfInv(b)) }

// lagrangeAt returns the Lagrange basis value L_r(t) for interpolation
// point x_r = r+1 over the base points x_1..x_k = 1..k (addition in
// GF(2^8) is XOR, so subtraction is too).
func lagrangeAt(r, k int, t byte) byte {
	xr := byte(r + 1)
	v := byte(1)
	for j := 0; j < k; j++ {
		if j == r {
			continue
		}
		xj := byte(j + 1)
		v = gfMul(v, gfDiv(t^xj, xr^xj))
	}
	return v
}

// initSSM finishes engine construction for the ssm scheme: keys, the
// data-sector geometry, the secret share rotations, and the two
// precomputed Lagrange basis sets (reconstruction at 0, check-share
// re-evaluation at x=k+1..n).
func (e *Engine) initSSM() error {
	_, macKey, treeKey := e.cfg.keys()
	e.macKey, e.treeKey = macKey, treeKey
	e.lay.dataSectors = e.cfg.ProtectedBytes / geom.SectorSize
	if e.lay.dataSectors == 0 {
		return fmt.Errorf("secmem: ssm needs at least one protected sector")
	}

	k, n := e.cfg.SSMThreshold, e.cfg.SSMShares
	e.ssmRot = make([]uint64, n)
	for r := 1; r < n; r++ {
		var msg [8]byte
		binary.LittleEndian.PutUint64(msg[:], uint64(r))
		e.ssmRot[r] = siphash.Sum64(e.treeKey, msg[:]) % e.lay.dataSectors
	}

	e.ssmRecon = make([]byte, k)
	for r := 0; r < k; r++ {
		e.ssmRecon[r] = lagrangeAt(r, k, 0)
	}
	e.ssmCheck = make([][]byte, n-k)
	for c := 0; c < n-k; c++ {
		row := make([]byte, k)
		for r := 0; r < k; r++ {
			row[r] = lagrangeAt(r, k, byte(k+c+1))
		}
		e.ssmCheck[c] = row
	}
	return nil
}

// ssmSlot maps (share region, data sector) to its physical sector slot.
// Region 0 is the identity; regions r ≥ 1 sit past the protected range
// at a keyed rotation of the sector index.
//
//simlint:hotpath
func (e *Engine) ssmSlot(r int, i uint64) uint64 {
	if r == 0 {
		return i
	}
	return uint64(r)*e.lay.dataSectors + (i+e.ssmRot[r])%e.lay.dataSectors
}

// ssmSlotAddr is ssmSlot as a partition-local DRAM address.
//
//simlint:hotpath
func (e *Engine) ssmSlotAddr(r int, i uint64) geom.Addr {
	return geom.Addr(e.ssmSlot(r, i) * geom.SectorSize)
}

// ssmPad fills buf with the keyed coefficient pad for (sector, version,
// degree) — the fresh randomness behind every write's share polynomial.
func (e *Engine) ssmPad(buf *[geom.SectorSize]byte, i, ver uint64, d int) {
	var msg [24]byte
	binary.LittleEndian.PutUint64(msg[0:], i)
	binary.LittleEndian.PutUint64(msg[8:], ver)
	for w := 0; w < geom.SectorSize/8; w++ {
		binary.LittleEndian.PutUint64(msg[16:], uint64(d)<<32|uint64(w))
		binary.LittleEndian.PutUint64(buf[w*8:], siphash.Sum64(e.macKey, msg[:]))
	}
}

// ssmStoreShares evaluates the degree-(k−1) share polynomial of pt at
// x=1..n under sector i's current version and stores every share in its
// slot of the functional DRAM image.
func (e *Engine) ssmStoreShares(i uint64, pt []byte) {
	ver := e.ssmVer.Get(i)
	k, n := e.cfg.SSMThreshold, e.cfg.SSMShares
	var coefs [8][geom.SectorSize]byte
	for d := 1; d < k; d++ {
		e.ssmPad(&coefs[d], i, ver, d)
	}
	for r := 0; r < n; r++ {
		dst := e.mem.Put(e.ssmSlot(r, i))
		x := byte(r + 1)
		for b := 0; b < geom.SectorSize; b++ {
			v := pt[b]
			xp := x
			for d := 1; d < k; d++ {
				v ^= gfMul(coefs[d][b], xp)
				xp = gfMul(xp, x)
			}
			dst[b] = v
		}
	}
}

// ssmEnsure lazily materializes sector i's share set from the
// workload's initial contents (version 0). Region 0's slot keys the
// whole set: shares are only ever stored as a complete group.
func (e *Engine) ssmEnsure(i uint64) {
	if _, ok := e.mem.Lookup(e.ssmSlot(0, i)); ok {
		return
	}
	var pt [geom.SectorSize]byte
	if e.InitData != nil {
		copy(pt[:], e.InitData(geom.Addr(i*geom.SectorSize)))
	}
	e.ssmStoreShares(i, pt[:])
}

// ssmShare0 returns sector i's region-0 share, materializing the share
// set if needed. The slice aliases the DRAM image — this is what the
// attack primitives mutate through materialize, so data-address attacks
// hit exactly the share the oracle's ground truth tracks.
func (e *Engine) ssmShare0(i uint64) []byte {
	e.ssmEnsure(i)
	s, _ := e.mem.Lookup(e.ssmSlot(0, i))
	return s
}

// ssmReconstruct rebuilds sector i's plaintext from its first k stored
// shares and reports whether the n−k check shares are consistent with
// them. Consistency fails exactly when some share's DRAM copy no longer
// lies on the write-time polynomial — i.e. when anything was tampered.
func (e *Engine) ssmReconstruct(i uint64) ([]byte, bool) {
	e.ssmEnsure(i)
	k, n := e.cfg.SSMThreshold, e.cfg.SSMShares
	shares := make([][]byte, n)
	for r := 0; r < n; r++ {
		s, _ := e.mem.Lookup(e.ssmSlot(r, i))
		shares[r] = s
	}
	pt := make([]byte, geom.SectorSize)
	for b := 0; b < geom.SectorSize; b++ {
		var v byte
		for r := 0; r < k; r++ {
			v ^= gfMul(e.ssmRecon[r], shares[r][b])
		}
		pt[b] = v
	}
	ok := true
	for c := 0; c < n-k; c++ {
		row := e.ssmCheck[c]
		for b := 0; b < geom.SectorSize; b++ {
			var v byte
			for r := 0; r < k; r++ {
				v ^= gfMul(row[r], shares[r][b])
			}
			if v != shares[k+c][b] {
				ok = false
				break
			}
		}
	}
	return pt, ok
}

// ssmRead is the whole ssm read datapath: fetch all n share slots, then
// reconstruct and classify after the crypto-pipeline latency.
func (e *Engine) ssmRead(local geom.Addr, finish func(ReadResult)) {
	i := e.sectorIdx(local)
	j := &join{}
	j.then = func() {
		e.eng.Schedule(e.cfg.AESLatency, func() {
			e.ssmCompleteRead(i, finish)
		})
	}
	for r := 0; r < e.cfg.SSMShares; r++ {
		e.ch.Access(e.ssmSlotAddr(r, i), false, stats.Data, j.arm())
	}
	j.seal()
}

// ssmCompleteRead reconstructs and turns share inconsistency into the
// scheme's tamper verdict.
func (e *Engine) ssmCompleteRead(i uint64, finish func(ReadResult)) {
	pt, consistent := e.ssmReconstruct(i)
	e.st.Sec.SharesReconstructed++
	tainted := e.taintData.Get(i)
	if tainted {
		e.st.Sec.TaintedReads++
	}
	if !consistent {
		e.st.Sec.TamperDetected++
		e.st.Sec.Verdicts.Record(stats.VerdictDetectedByReconstruction)
		finish(ReadResult{Data: pt, OK: false})
		return
	}
	if tainted {
		// Mutated shares still lay on a consistent polynomial — the
		// scheme's analogue of a MAC collision; the oracle pins this at
		// zero (a single-share mutation provably breaks consistency).
		e.st.Sec.Verdicts.Record(stats.VerdictSilentCorruption)
	}
	finish(ReadResult{Data: pt, OK: true})
}

// ssmWrite is the whole ssm write datapath: bump the version, refresh
// the share set under new pads, then write all n slots.
func (e *Engine) ssmWrite(local geom.Addr, pt []byte, finish func()) {
	i := e.sectorIdx(local)
	e.ssmVer.Set(i, e.ssmVer.Get(i)+1)
	e.ssmWritten.Set(i)
	e.ssmStoreShares(i, pt)
	// Every share's DRAM copy is rewritten wholesale: earlier mutations
	// are gone.
	e.taintData.Clear(i)
	e.eng.Schedule(e.cfg.AESLatency, func() {
		j := &join{}
		j.then = finish
		for r := 0; r < e.cfg.SSMShares; r++ {
			e.ch.Access(e.ssmSlotAddr(r, i), true, stats.Data, j.arm())
		}
		j.seal()
	})
}

// CorruptShare flips one bit of the stored copy of sector local's share
// in the given region — the seeded-mutation probe proving every share
// (base and check alike) participates in the consistency check. Returns
// false when the engine is not running ssm or the region is out of
// range.
func (e *Engine) CorruptShare(local geom.Addr, region int) bool {
	if !e.cfg.SSM || region < 0 || region >= e.cfg.SSMShares {
		return false
	}
	i := e.sectorIdx(geom.SectorAddr(local))
	e.ssmEnsure(i)
	s, _ := e.mem.Lookup(e.ssmSlot(region, i))
	s[0] ^= 1
	e.taintData.Set(i)
	e.st.Sec.TamperInjected++
	return true
}
