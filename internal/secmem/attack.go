package secmem

// Attack primitives: the tamper-injection surface driven by the
// internal/tamper fault injector, the differential-oracle tests, and the
// tamperdetect example. Each models a physical attacker mutating this
// partition's DRAM-resident state — data ciphertext, MACs, counters, or
// tree nodes — and records ground truth (data/metadata taint, injection
// counts) so the read path can classify outcomes into stats.Verdicts.
//
// The threat model is the paper's: the adversary owns the memory bus and
// modules but not the GPU die. Primitives therefore mutate only the
// functional DRAM image; on-chip state (the trees' authoritative hashes,
// the counter stores, cache contents) is untouchable. Where a cache
// holds a verified copy of an attacked block, the primitive invalidates
// it so the next access refetches from "DRAM" and re-verifies — the
// moment real hardware would detect the attack. Every primitive is a
// pure state mutation (no events, no randomness), so an attack applied
// at a deterministic point replays byte-identically.

import "github.com/plutus-gpu/plutus/internal/geom"

// markDataTainted records that sector local's DRAM data is mutated.
func (e *Engine) markDataTainted(local geom.Addr) {
	e.taintData.Set(e.sectorIdx(local))
	e.st.Sec.TamperInjected++
}

// TamperData flips one bit of sector local's stored ciphertext
// (plaintext under the no-security baseline). AES-XTS diffusion turns
// the single flipped bit into a ~uniformly random plaintext block.
func (e *Engine) TamperData(local geom.Addr, bit uint) {
	local = geom.SectorAddr(local)
	ct := e.materialize(local)
	ct[bit/8%geom.SectorSize] ^= 1 << (bit % 8)
	e.markDataTainted(local)
}

// TamperDataWord inverts one aligned 32-bit word of sector local's
// stored ciphertext (word counts modulo the 8 words per sector).
func (e *Engine) TamperDataWord(local geom.Addr, word uint) {
	local = geom.SectorAddr(local)
	ct := e.materialize(local)
	off := int(word) % (geom.SectorSize / 4) * 4
	for k := 0; k < 4; k++ {
		ct[off+k] ^= 0xff
	}
	e.markDataTainted(local)
}

// TamperSector inverts every byte of sector local's stored ciphertext.
func (e *Engine) TamperSector(local geom.Addr) {
	local = geom.SectorAddr(local)
	ct := e.materialize(local)
	for k := range ct {
		ct[k] ^= 0xff
	}
	e.markDataTainted(local)
}

// SpliceCiphertext overwrites dst's stored ciphertext with src's — the
// splice/relocation attack: ciphertext that is valid somewhere presented
// at the wrong address. Address-tweaked encryption decrypts it to noise;
// the no-security baseline silently returns src's data as dst's. Both
// addresses must be in this partition. Splicing a sector onto itself is
// the identity and is deliberately not counted as an injection.
func (e *Engine) SpliceCiphertext(dst, src geom.Addr) {
	dst, src = geom.SectorAddr(dst), geom.SectorAddr(src)
	if dst == src {
		return
	}
	ct := e.materialize(src)
	e.materialize(dst) // fix dst's legitimate MAC in the image first
	copy(e.mem.Put(e.sectorIdx(dst)), ct)
	e.markDataTainted(dst)
}

// TamperMAC corrupts sector local's stored MAC. The data itself stays
// authentic, so a value-cache accept of this sector is a correct accept
// — the paper's point that verified values make the MAC fetch, and
// hence its integrity, unnecessary.
func (e *Engine) TamperMAC(local geom.Addr) {
	local = geom.SectorAddr(local)
	e.materialize(local)
	if e.cfg.NoSecurity || e.cfg.SSM {
		return // no MACs in memory to attack
	}
	i := e.sectorIdx(local)
	e.setMAC(i, e.macs.Get(i)^1)
	e.taintMeta.Set(i)
	e.st.Sec.TamperInjected++
}

// ReplayCounter models an attacker substituting the stale boot-image
// copy of sector local's counter unit in DRAM (a rollback to all-zero
// counters). The unit's recomputed hash then matches the initial state,
// not the tree's, so the next fetch fails freshness verification —
// unless the unit was never written, in which case the replay is the
// identity and correctly goes undetected. Schemes with compact mirrored
// counters have the covering compact unit rolled back too (the attacker
// replays the whole boot image).
func (e *Engine) ReplayCounter(local geom.Addr) {
	if e.cfg.NoSecurity || e.cfg.SSM {
		return // no counters in memory to attack
	}
	i := e.sectorIdx(geom.SectorAddr(local))
	u := e.ctrUnitOf(i)
	e.ctrReplayed.Set(u)
	// Evict the unit so the next access must refetch and verify it.
	e.ctrCache.Invalidate(e.ctrUnitAddr(u))
	if e.compact != nil {
		cu := e.cctrUnitOf(i)
		e.cctrReplayed.Set(cu)
		e.cctrCache.Invalidate(e.cctrUnitAddr(cu))
	}
	e.st.Sec.TamperInjected++
}

// CorruptBMTNode corrupts the DRAM-resident tree node covering sector
// local's counter unit (the first non-root node on its verification
// path). The next fetch of that node fails verification against its
// parent. The no-security baseline has no tree to attack; under
// NoTreeTraffic the node is never refetched, so the attack — which
// leaves data and counters intact — is vacuously survived.
func (e *Engine) CorruptBMTNode(local geom.Addr) {
	if e.cfg.NoSecurity || e.cfg.SSM {
		return // no tree in memory to attack
	}
	i := e.sectorIdx(geom.SectorAddr(local))
	u := e.ctrUnitOf(i)
	ref, ok := e.tree.LeafForUnit(u)
	if !ok {
		return // bare-root tree: the whole chain is on-chip
	}
	na := e.lay.bmtBase + e.tree.NodeAddr(ref)
	e.bmtTampered[na] = true
	e.bmtCache.Invalidate(na)
	// The walk only happens on a counter-unit miss; evict the unit so
	// the next access re-verifies through the corrupted node.
	e.ctrCache.Invalidate(e.ctrUnitAddr(u))
	e.st.Sec.TamperInjected++
}

// DataTainted reports whether sector local's DRAM data currently holds
// attacker-mutated content (oracle ground truth).
func (e *Engine) DataTainted(local geom.Addr) bool {
	return e.taintData.Get(e.sectorIdx(geom.SectorAddr(local)))
}
