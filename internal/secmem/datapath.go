package secmem

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/bmt"
	"github.com/plutus-gpu/plutus/internal/cache"
	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// join is a completion barrier: run fires then once every registered arm
// has completed. Arms may be added only before Seal.
type join struct {
	n      int
	sealed bool
	then   func()
}

func (j *join) arm() func() {
	j.n++
	return j.done
}

func (j *join) done() {
	j.n--
	if j.n == 0 && j.sealed {
		j.then()
	}
}

// seal marks arm registration complete; if everything already finished,
// the continuation runs immediately.
func (j *join) seal() {
	j.sealed = true
	if j.n == 0 {
		j.then()
	}
}

// ReadResult reports a completed secure read.
type ReadResult struct {
	// Data is the decrypted sector plaintext.
	Data []byte
	// OK is false when integrity or freshness verification failed.
	OK bool
	// ValueVerified is true when the sector was authenticated by the
	// value cache alone.
	ValueVerified bool
}

// Pending returns the number of in-flight requests (for drain loops).
func (e *Engine) Pending() int { return e.pending }

// Read performs a secure read of the 32 B sector at partition-local
// address local, invoking done with the plaintext when all security
// checks complete.
func (e *Engine) Read(local geom.Addr, done func(ReadResult)) {
	local = geom.SectorAddr(local)
	e.pending++
	finish := func(r ReadResult) {
		e.pending--
		if done != nil {
			done(r)
		}
	}

	if e.cfg.NoSecurity {
		e.ch.Access(local, false, stats.Data, func() {
			// No verification exists: a read of attacker-mutated data
			// succeeds and returns the corruption — the baseline's
			// defining failure.
			if e.taintData.Get(e.sectorIdx(local)) {
				e.st.Sec.TaintedReads++
				e.st.Sec.Verdicts.Record(stats.VerdictSilentCorruption)
			}
			finish(ReadResult{Data: e.plaintextOf(local), OK: true})
		})
		return
	}

	if e.cfg.SSM {
		e.ssmRead(local, finish)
		return
	}

	freshOK := true
	j := &join{}
	j.then = func() {
		// Data and counters have arrived; decrypt, then verify.
		e.eng.Schedule(e.cfg.AESLatency, func() {
			e.completeRead(local, freshOK, finish)
		})
	}
	// Demand data fetch.
	e.ch.Access(local, false, stats.Data, j.arm())
	// Counter acquisition (may be free, cached, or multiple fetches).
	e.acquireCounter(local, j, &freshOK)
	j.seal()
}

// completeRead runs the post-decrypt verification stage.
func (e *Engine) completeRead(local geom.Addr, freshOK bool, finish func(ReadResult)) {
	i := e.sectorIdx(local)
	pt := e.plaintextOf(local)
	tainted := e.taintData.Get(i)
	if tainted {
		e.st.Sec.TaintedReads++
	}

	if !freshOK {
		// Counter/tree verification already failed: replay detected.
		e.st.Sec.ReplayDetected++
		e.st.Sec.Verdicts.Record(stats.VerdictDetectedByBMT)
		finish(ReadResult{Data: pt, OK: false})
		return
	}

	if e.vcache != nil {
		res := e.vcache.VerifySector(pt)
		if res.Verified {
			e.st.Sec.ValueVerified++
			if tainted {
				// Mutated ciphertext decrypted to words that still
				// cleared the match threshold: a false accept, the event
				// the paper's Eq. 1 bounds.
				e.st.Sec.Verdicts.Record(stats.VerdictAcceptedByValueCache)
			}
			e.vcache.ObserveSector(pt)
			finish(ReadResult{Data: pt, OK: true, ValueVerified: true})
			return
		}
	}

	// Fall back to conventional MAC verification. The verification
	// outcome is determined by the sector's state as of decrypt time (a
	// concurrent writeback committing while the MAC block is in flight
	// must not affect this read's result), so snapshot it now; the fetch
	// and MAC-engine latency that follow are purely timing.
	stale := e.macStale.Get(i)
	mismatch := !stale && e.currentMAC(local) != e.macs.Get(i)
	e.fetchMeta(e.macCache, e.macAddrOf(i), e.macCache.MaskFor(e.macAddrOf(i)), stats.MAC, func() {
		e.eng.Schedule(e.cfg.MACLatency, func() {
			e.st.Sec.MACVerified++
			ok := true
			if stale {
				// A write-guarantee sector should always value-verify;
				// reaching the MAC path with a stale MAC means either the
				// guarantee logic is unsound or an attacker interfered.
				ok = false
				e.st.Sec.TamperDetected++
				e.st.Sec.Verdicts.Record(stats.VerdictDetectedByMAC)
				if debugGuarantee != nil {
					debugGuarantee(e, local, pt)
				}
			} else if mismatch {
				ok = false
				e.st.Sec.TamperDetected++
				e.st.Sec.Verdicts.Record(stats.VerdictDetectedByMAC)
			} else if tainted {
				// Tainted data sailed through MAC comparison — the
				// failure an integrity-enabled scheme must never produce
				// (the differential oracle asserts this stays zero).
				e.st.Sec.Verdicts.Record(stats.VerdictSilentCorruption)
			}
			if e.vcache != nil {
				e.vcache.ObserveSector(pt)
			}
			finish(ReadResult{Data: pt, OK: ok})
		})
	})
}

// Writeback performs a secure write of a dirty 32 B sector (an L2
// eviction). done (nullable) fires when the data transaction completes.
func (e *Engine) Writeback(local geom.Addr, data []byte, done func()) {
	local = geom.SectorAddr(local)
	if len(data) != geom.SectorSize {
		panic(fmt.Sprintf("secmem: writeback of %d bytes", len(data)))
	}
	e.pending++
	finish := func() {
		e.pending--
		if done != nil {
			done()
		}
	}

	if e.cfg.NoSecurity {
		copy(e.mem.Put(e.sectorIdx(local)), data)
		e.taintData.Clear(e.sectorIdx(local)) // overwritten: corruption gone
		e.ch.Access(local, true, stats.Data, func() { finish() })
		return
	}

	if e.cfg.SSM {
		pt := make([]byte, geom.SectorSize)
		copy(pt, data)
		e.ssmWrite(local, pt, finish)
		return
	}

	// The first write to a region ends its common-counter (all-zero) era.
	if e.cfg.CommonCounters {
		e.regionWritten.Set(e.regionOf(local))
	}

	pt := make([]byte, geom.SectorSize)
	copy(pt, data)

	freshOK := true
	j := &join{}
	j.then = func() {
		if !freshOK {
			// The counter fetched for this write failed freshness
			// verification. The controller raises the alarm; the write
			// itself still commits, rewriting the unit with fresh state
			// (see dirtyOriginalCounter), as real hardware would after
			// flagging the violation.
			e.st.Sec.ReplayDetected++
			e.st.Sec.Verdicts.Record(stats.VerdictDetectedByBMT)
		}
		e.commitWrite(local, pt, finish)
	}
	// The counter must be on-chip (and verified) before it is bumped.
	e.acquireCounter(local, j, &freshOK)
	j.seal()
}

// commitWrite runs once the counter is available: bump it, update trees
// and MAC, encrypt and write the data.
func (e *Engine) commitWrite(local geom.Addr, pt []byte, finish func()) {
	i := e.sectorIdx(local)

	mgxDerived := e.cfg.MGX && e.mgxDerived.Get(i)
	if mgxDerived {
		e.mgxBumpVersion(i)
	} else {
		e.bumpCounter(local)
	}
	ct := e.storeCiphertext(local, pt)
	_ = ct
	// The sector's DRAM copy (and MAC, below) is rewritten wholesale:
	// any earlier mutation of it is gone.
	e.taintData.Clear(i)
	e.taintMeta.Clear(i)

	if mgxDerived {
		// A derived sector has no stored counter to dirty and no tree
		// unit to refresh — that absence is the scheme's entire saving.
	} else if e.compact == nil {
		e.dirtyOriginalCounter(i)
	} else {
		// While a write is absorbed by the compact layer, the original
		// counters and main BMT stay untouched in memory — that is the
		// whole bandwidth saving. The original copy is written only when
		// a counter saturates (propagation), when the block is disabled,
		// or once the sector runs on original counters.
		out, justDisabled := e.compact.NoteWrite(i)
		sat := e.compact.Saturation()
		justSaturated := e.split.Minor(i) == sat && e.split.Major(e.split.GroupOf(i)) == 0
		if out == counters.ServedCompact || justSaturated {
			// The compact value changed: dirty the compact sector and
			// update the small tree. Writing the unit replaces any
			// attacker-replayed DRAM copy with fresh state.
			cca := e.cctrSectorAddr(i)
			e.handleEvictions(e.cctrCache.Insert(cca, e.cctrCache.MaskFor(cca), true), stats.CompactCounter, false)
			cu := e.cctrUnitOf(i)
			e.cctrReplayed.Clear(cu)
			e.ctree.SetUnitHash(cu, e.compactUnitHash(cu))
		}
		if out != counters.ServedCompact {
			// Saturated or disabled: this write lives in the originals.
			e.dirtyOriginalCounter(i)
		}
		if justDisabled {
			// One-time copy of the block's surviving compact counters to
			// the original store: two original counter sectors written
			// (paper §IV-D; 2× compaction), and the main tree now covers
			// the propagated values.
			e.ch.Access(e.ctrUnitAddr(e.ctrUnitOf(i)), true, stats.Counter, nil)
			e.ch.Access(e.ctrUnitAddr(e.ctrUnitOf(i))+geom.SectorSize, true, stats.Counter, nil)
			e.refreshDisabledBlockHashes(i)
		}
	}

	// Value bookkeeping and the deferred-MAC decision.
	skipMAC := false
	if e.vcache != nil {
		e.vcache.ObserveSector(pt)
		if e.vcache.WriteGuaranteed(pt) {
			skipMAC = true
		}
	}
	if skipMAC {
		e.st.Sec.MACSkippedWrites++
		e.macStale.Set(i)
	} else {
		e.st.Sec.MACWrites++
		e.setMAC(i, e.currentMAC(local))
		e.macStale.Clear(i)
		ma := e.macAddrOf(i)
		e.handleEvictions(e.macCache.Insert(ma, e.macCache.MaskFor(ma), true), stats.MAC, false)
	}

	// Encrypt latency then the data write transaction.
	e.eng.Schedule(e.cfg.AESLatency, func() {
		e.ch.Access(local, true, stats.Data, func() { finish() })
	})
}

// dirtyOriginalCounter marks sector i's original counter sector dirty
// and refreshes the main tree's hash of its unit. Under the eager-update
// scheme the whole path to the root is written back immediately instead
// of waiting for evictions.
func (e *Engine) dirtyOriginalCounter(i uint64) {
	ca := e.ctrSectorAddr(i)
	e.handleEvictions(e.ctrCache.Insert(ca, e.ctrCache.MaskFor(ca), true), stats.Counter, false)
	u := e.ctrUnitOf(i)
	// Writing the unit replaces any attacker-replayed DRAM copy.
	e.ctrReplayed.Clear(u)
	e.tree.SetUnitHash(u, e.counterUnitHash(u))
	if e.cfg.EagerTreeUpdate && !e.cfg.NoTreeTraffic {
		e.eagerWritePath(e.tree, e.lay.bmtBase, u, stats.BMT)
	}
}

// eagerWritePath charges one write per non-root tree node on unit u's
// path — the eager scheme's cost: every counter update rewrites its
// entire verification chain in memory.
func (e *Engine) eagerWritePath(t *bmt.Tree, base geom.Addr, u uint64, cl stats.Class) {
	for _, ref := range t.Path(u) {
		if t.IsRoot(ref) {
			break
		}
		e.ch.Access(geom.SectorAddr(base+t.NodeAddr(ref)), true, cl, nil)
	}
}

// refreshDisabledBlockHashes re-hashes every main-tree unit covering a
// just-disabled compact block: the disable event propagated the block's
// surviving compact counters to the original copy.
func (e *Engine) refreshDisabledBlockHashes(i uint64) {
	per := uint64(e.cfg.Compact.CountersPerSector())
	blockSectors := 4 * per // one compact block covers 4 compact sectors
	start := i / blockSectors * blockSectors
	seen := map[uint64]bool{}
	for s := start; s < start+blockSectors && s < e.lay.dataSectors; s += uint64(e.split.Config().GroupSize) {
		u := e.ctrUnitOf(s)
		if !seen[u] {
			seen[u] = true
			e.ctrReplayed.Clear(u) // propagation rewrites the unit
			e.tree.SetUnitHash(u, e.counterUnitHash(u))
		}
	}
}

// bumpCounter increments sector local's counter, capturing group
// plaintexts first so a minor overflow can re-encrypt them.
func (e *Engine) bumpCounter(local geom.Addr) {
	i := e.sectorIdx(local)
	willOverflow := e.split.Minor(i) == uint32(1)<<uint(e.split.Config().MinorBits)-1
	if willOverflow {
		clear(e.overflowPlain)
		g := e.split.GroupOf(i)
		base := g * uint64(e.split.Config().GroupSize)
		for k := 0; k < e.split.Config().GroupSize; k++ {
			if e.cfg.MGX && e.mgxDerived.Get(base+uint64(k)) {
				// Derived group-mates don't ride the split counters: the
				// major bump doesn't change their effective version, so
				// they must not be re-encrypted.
				continue
			}
			sa := geom.Addr((base + uint64(k)) * geom.SectorSize)
			if _, ok := e.mem.Lookup(base + uint64(k)); ok {
				e.overflowPlain[sa] = e.plaintextOf(sa)
			}
		}
	}
	e.split.Increment(i)
}

// --- counter acquisition ---

// ctrFetchMask is the sector mask for a counter-unit fetch: the whole
// 128 B block for GranAll128, a single 32 B sector otherwise.
func (e *Engine) ctrFetchMask(unitAddr geom.Addr) geom.SectorMask {
	if e.cfg.Granularity.CounterUnitBytes() == geom.BlockSize {
		return geom.AllSectors
	}
	return e.ctrCache.MaskFor(unitAddr)
}

func (e *Engine) cctrFetchMask(unitAddr geom.Addr) geom.SectorMask {
	if e.cfg.Granularity.CounterUnitBytes() == geom.BlockSize {
		return geom.AllSectors
	}
	return e.cctrCache.MaskFor(unitAddr)
}

// acquireCounter arranges for sector local's encryption counter to be
// on-chip and verified, joining all resulting memory activity onto j.
// freshOK is cleared if counter verification fails (replay detection).
func (e *Engine) acquireCounter(local geom.Addr, j *join, freshOK *bool) {
	i := e.sectorIdx(local)

	// mgx fast path: a derived sector's version is regenerated on-chip
	// from the stream cursor — no counter fetch, no tree walk, nothing
	// to verify. Irregular sectors fall through to the stored path.
	if e.cfg.MGX {
		if e.mgxClassify(i, local) {
			e.st.Sec.DerivedVersions++
			return
		}
		e.st.Sec.DerivedFallbacks++
	}

	// Common-counters fast path: a never-written region has all-zero
	// counters known on-chip; no counter or tree traffic at all.
	if e.cfg.CommonCounters && !e.regionWritten.Get(e.regionOf(local)) {
		return
	}

	if e.compact != nil {
		switch e.compact.Classify(i) {
		case counters.ServedCompact:
			e.st.Sec.CompactHits++
			e.fetchCompactUnit(i, j, freshOK)
			return
		case counters.ServedOverflowed:
			e.st.Sec.CompactOverflow++
			// Serial: discover saturation in the compact layer, then go
			// to the original counters (the paper's double access).
			inner := j.arm()
			cj := &join{}
			cj.then = func() {
				oj := &join{then: inner}
				e.fetchCounterUnit(i, oj, freshOK)
				oj.seal()
			}
			e.fetchCompactUnit(i, cj, freshOK)
			cj.seal()
			return
		default: // counters.ServedDisabled
			e.st.Sec.CompactDisabled++
		}
	}
	e.fetchCounterUnit(i, j, freshOK)
}

// fetchCounterUnit brings sector i's original counter unit on-chip,
// verifying it through the BMT.
func (e *Engine) fetchCounterUnit(i uint64, j *join, freshOK *bool) {
	u := e.ctrUnitOf(i)
	ua := e.ctrUnitAddr(u)
	mask := e.ctrFetchMask(ua)

	before := e.ctrCache.Probe(ua) & mask
	e.fetchMetaJoin(e.ctrCache, ua, mask, stats.Counter, j)
	if before == mask {
		return // cache hit: already verified when it was filled
	}
	// Miss path: the fetched unit must be verified against the tree.
	if !e.tree.VerifyUnit(u, e.counterUnitHash(u)) {
		*freshOK = false
	}
	if !e.cfg.NoTreeTraffic {
		e.walkTree(e.tree, e.bmtCache, e.lay.bmtBase, u, stats.BMT, j, freshOK)
	}
}

// fetchCompactUnit brings sector i's compact counter unit on-chip,
// verifying it through the compact tree.
func (e *Engine) fetchCompactUnit(i uint64, j *join, freshOK *bool) {
	u := e.cctrUnitOf(i)
	ua := e.cctrUnitAddr(u)
	mask := e.cctrFetchMask(ua)

	before := e.cctrCache.Probe(ua) & mask
	e.fetchMetaJoin(e.cctrCache, ua, mask, stats.CompactCounter, j)
	if before == mask {
		return
	}
	if !e.ctree.VerifyUnit(u, e.compactUnitHash(u)) {
		*freshOK = false
	}
	if !e.cfg.NoTreeTraffic {
		e.walkTree(e.ctree, e.cbmtCache, e.lay.cbmtBase, u, stats.CompactBMT, j, freshOK)
	}
}

// walkTree performs the verification walk for counter unit u: fetch tree
// nodes bottom-up until one hits in the (verified) metadata cache or the
// on-chip root is reached. Fetching a node whose DRAM copy an attacker
// corrupted fails verification against its parent and clears freshOK.
func (e *Engine) walkTree(t *bmt.Tree, mc *cache.Cache, base geom.Addr, u uint64, cl stats.Class, j *join, freshOK *bool) {
	for _, ref := range t.Path(u) {
		if t.IsRoot(ref) {
			break // root is on-chip: free and always trusted
		}
		na := base + t.NodeAddr(ref)
		nodeMask := e.nodeFetchMask(mc, na)
		if mc.Probe(na)&nodeMask == nodeMask {
			mc.Lookup(na, nodeMask, false, nil) // LRU touch
			break                               // verified boundary reached
		}
		e.st.Sec.BMTNodeVerifies++
		if e.bmtTampered[na] {
			*freshOK = false
		}
		e.fetchMetaJoin(mc, na, nodeMask, cl, j)
	}
}

// nodeFetchMask is the sector mask of one tree-node fetch.
func (e *Engine) nodeFetchMask(mc *cache.Cache, nodeAddr geom.Addr) geom.SectorMask {
	if e.cfg.Granularity.BMTNodeBytes() == geom.BlockSize {
		return geom.AllSectors
	}
	return mc.MaskFor(nodeAddr)
}

// fetchMetaJoin fetches (addr, mask) through metadata cache mc, arming j
// with the completion.
func (e *Engine) fetchMetaJoin(mc *cache.Cache, addr geom.Addr, mask geom.SectorMask, cl stats.Class, j *join) {
	e.fetchMeta2(mc, addr, mask, cl, j.arm())
}

// fetchMeta fetches (addr, mask) through mc and runs done when the
// requested sectors are present.
func (e *Engine) fetchMeta(mc *cache.Cache, addr geom.Addr, mask geom.SectorMask, cl stats.Class, done func()) {
	e.fetchMeta2(mc, addr, mask, cl, done)
}

func (e *Engine) fetchMeta2(mc *cache.Cache, addr geom.Addr, mask geom.SectorMask, cl stats.Class, done func()) {
	out, need, m := mc.Lookup(addr, mask, false, nil)
	switch out {
	case cache.Hit:
		e.eng.Schedule(0, done)
	case cache.MissMerged:
		m.AddWaiter(done)
	case cache.Miss:
		m.AddWaiter(done)
		e.issueMetaFill(mc, m, addr, need, cl)
	case cache.MissNoMSHR:
		// Park until some fill frees an MSHR (models MSHR-full stall
		// without polling).
		e.mshrWait.Push(func() { e.fetchMeta2(mc, addr, mask, cl, done) })
	}
}

// issueMetaFill issues DRAM reads for the needed sectors, filling the
// cache as each lands; waiters resume when the MSHR completes.
func (e *Engine) issueMetaFill(mc *cache.Cache, m *cache.MSHR, addr geom.Addr, need geom.SectorMask, cl stats.Class) {
	block := addr &^ geom.Addr(geom.BlockSize-1)
	isTree := mc == e.bmtCache || mc == e.cbmtCache
	need.Sectors(func(s int) {
		sa := block + geom.Addr(s*geom.SectorSize)
		smask := geom.SectorMask(1 << s)
		e.ch.Access(sa, false, cl, func() {
			evs, done, waiters := mc.FillSectors(m, smask, false)
			e.handleEvictions(evs, cl, isTree)
			if done {
				for _, w := range waiters {
					w()
				}
				e.releaseMSHRWaiters()
			}
		})
	})
}

// handleEvictions writes back dirty sectors of evicted metadata blocks
// and, for counter/tree blocks under lazy update, propagates the update
// to the parent tree node.
func (e *Engine) handleEvictions(evs []cache.Eviction, cl stats.Class, isTreeCache bool) {
	for _, ev := range evs {
		if ev.Dirty == 0 {
			continue
		}
		ev.Dirty.Sectors(func(s int) {
			e.ch.Access(ev.Addr+geom.Addr(s*geom.SectorSize), true, cl, nil)
		})
		switch cl {
		case stats.Counter:
			e.propagateDirty(e.tree, e.bmtCache, e.lay.bmtBase, e.unitOfCtrAddr(ev.Addr), stats.BMT)
		case stats.CompactCounter:
			e.propagateDirty(e.ctree, e.cbmtCache, e.lay.cbmtBase, e.unitOfCctrAddr(ev.Addr), stats.CompactBMT)
		case stats.BMT:
			if isTreeCache {
				e.propagateNodeDirty(e.tree, e.bmtCache, e.lay.bmtBase, ev.Addr, stats.BMT)
			}
		case stats.CompactBMT:
			if isTreeCache {
				e.propagateNodeDirty(e.ctree, e.cbmtCache, e.lay.cbmtBase, ev.Addr, stats.CompactBMT)
			}
		}
	}
}

// unitOfCtrAddr maps a counter-region local address back to a unit index.
func (e *Engine) unitOfCtrAddr(a geom.Addr) uint64 {
	return uint64(a-e.lay.ctrBase) / uint64(e.cfg.Granularity.CounterUnitBytes())
}

func (e *Engine) unitOfCctrAddr(a geom.Addr) uint64 {
	return uint64(a-e.lay.cctrBase) / uint64(e.cfg.Granularity.CounterUnitBytes())
}

// propagateDirty marks unit u's level-0 parent node dirty in the tree
// cache (the lazy-update scheme: a dirty counter writeback makes its
// parent hash stale in memory until that node is itself written back).
func (e *Engine) propagateDirty(t *bmt.Tree, mc *cache.Cache, base geom.Addr, u uint64, cl stats.Class) {
	if e.cfg.NoTreeTraffic || e.cfg.EagerTreeUpdate {
		// Eager mode already wrote the whole path at update time.
		return
	}
	path := t.Path(u)
	if len(path) == 0 || t.IsRoot(path[0]) {
		return
	}
	// Only the parent's 32 B sector holding this child's hash changes.
	slot := u % uint64(t.Config().Arity())
	na := base + t.NodeAddr(path[0]) + geom.Addr(slot*bmt.HashBytes/geom.SectorSize*geom.SectorSize)
	e.markNodeDirty(mc, na, cl)
}

// markNodeDirty dirties one tree-node sector in its cache. An absent
// sector is fetched through the cache first (read-modify-write), so
// concurrent propagations to the same node merge in the MSHRs instead of
// each paying a DRAM read.
func (e *Engine) markNodeDirty(mc *cache.Cache, na geom.Addr, cl stats.Class) {
	mask := mc.MaskFor(na)
	if mc.MarkDirty(na, mask) {
		return
	}
	e.fetchMeta2(mc, na, mask, cl, func() {
		if !mc.MarkDirty(na, mask) {
			// Filled and already evicted again (cache thrash): charge the
			// update write directly rather than loop.
			e.ch.Access(geom.SectorAddr(na), true, cl, nil)
		}
	})
}

// propagateNodeDirty handles a dirty tree-node eviction: its parent node
// becomes dirty in turn (cascading toward the root, which absorbs the
// final update on-chip for free).
func (e *Engine) propagateNodeDirty(t *bmt.Tree, mc *cache.Cache, base geom.Addr, nodeAddr geom.Addr, cl stats.Class) {
	if nodeAddr < base {
		return
	}
	ref, ok := t.RefForAddr(nodeAddr - base)
	if !ok {
		return
	}
	parent, ok := t.Parent(ref)
	if !ok || t.IsRoot(parent) {
		return
	}
	slot := ref.Index % uint64(t.Config().Arity())
	na := base + t.NodeAddr(parent) + geom.Addr(slot*bmt.HashBytes/geom.SectorSize*geom.SectorSize)
	e.markNodeDirty(mc, na, cl)
}

// FlushDirtyMetadata writes back all dirty metadata (end-of-run
// accounting so lazy updates are not silently dropped).
func (e *Engine) FlushDirtyMetadata() {
	flush := func(mc *cache.Cache, cl stats.Class) {
		if mc == nil {
			return
		}
		mc.WalkDirty(func(b geom.Addr, d geom.SectorMask) {
			d.Sectors(func(s int) {
				e.ch.Access(b+geom.Addr(s*geom.SectorSize), true, cl, nil)
			})
			mc.CleanSectors(b, d)
		})
	}
	flush(e.ctrCache, stats.Counter)
	flush(e.macCache, stats.MAC)
	flush(e.bmtCache, stats.BMT)
	flush(e.cctrCache, stats.CompactCounter)
	flush(e.cbmtCache, stats.CompactBMT)
}

// debugGuarantee, when non-nil, is invoked on a stale-MAC read (test
// diagnostics for the write-guarantee invariant).
var debugGuarantee func(e *Engine, local geom.Addr, pt []byte)

// SetDebugGuarantee installs a diagnostic hook that fires on stale-MAC
// reads with a description of the sector's verification state.
func SetDebugGuarantee(fn func(info string)) {
	if fn == nil {
		debugGuarantee = nil
		return
	}
	debugGuarantee = func(e *Engine, local geom.Addr, pt []byte) {
		res := e.vcache.VerifySector(pt)
		var detail string
		for off := 0; off < len(pt); off += 16 {
			for k := 0; k < 4; k++ {
				v := uint32(pt[off+k*4]) | uint32(pt[off+k*4+1])<<8 | uint32(pt[off+k*4+2])<<16 | uint32(pt[off+k*4+3])<<24
				hit, pinned := e.vcache.Probe(v)
				detail += fmt.Sprintf(" v=%08x hit=%v pin=%v;", v, hit, pinned)
			}
			detail += " |"
		}
		fn(fmt.Sprintf("stale-MAC read local=%#x verified=%v hits=%d:%s", local, res.Verified, res.Hits, detail))
	}
}
