package secmem

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/dram"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// testRig bundles an engine with its simulation plumbing.
type testRig struct {
	eng *sim.Engine
	ch  *dram.Channel
	st  *stats.Stats
	e   *Engine
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	r := &testRig{eng: &sim.Engine{}, st: &stats.Stats{}}
	r.ch = dram.MustNew(dram.DefaultConfig(), r.eng, &r.st.Traffic)
	var err error
	r.e, err = New(cfg, r.eng, r.ch, r.st)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// read runs a synchronous read to completion.
func (r *testRig) read(t *testing.T, a geom.Addr) ReadResult {
	t.Helper()
	var res ReadResult
	got := false
	r.e.Read(a, func(x ReadResult) { res = x; got = true })
	r.eng.Drain(1 << 20)
	if !got {
		t.Fatalf("read of %#x never completed", a)
	}
	return res
}

// write runs a synchronous writeback to completion.
func (r *testRig) write(t *testing.T, a geom.Addr, data []byte) {
	t.Helper()
	done := false
	r.e.Writeback(a, data, func() { done = true })
	r.eng.Drain(1 << 20)
	if !done {
		t.Fatalf("write of %#x never completed", a)
	}
}

func sector(vals ...uint32) []byte {
	b := make([]byte, geom.SectorSize)
	for i := 0; i < 8; i++ {
		v := uint32(0)
		if i < len(vals) {
			v = vals[i]
		}
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	return b
}

const protected = 1 << 20 // 1 MiB per-partition protected range for tests

func allSchemes() []Config {
	return []Config{
		Baseline(protected),
		PSSM(protected),
		PSSM4B(protected),
		CommonCtr(protected),
		PlutusValueOnly(protected),
		PlutusFineGrain(protected, GranCtr32BMT128),
		PlutusFineGrain(protected, GranAll32),
		PlutusCompact(protected, counters.Compact2Bit),
		PlutusCompact(protected, counters.Compact3Bit),
		PlutusCompact(protected, counters.Compact3BitAdaptive),
		Plutus(protected),
		PlutusNoTree(protected),
		MGXConfig(protected),
		SSMConfig(protected),
	}
}

// Round-trip through every scheme: what you write is what you read.
func TestWriteReadRoundTripAllSchemes(t *testing.T) {
	for _, cfg := range allSchemes() {
		cfg := cfg
		t.Run(cfg.Scheme, func(t *testing.T) {
			r := newRig(t, cfg)
			data := sector(0x11111110, 0x22222220, 0x33333330, 0x44444440,
				0x55555550, 0x66666660, 0x77777770, 0x88888880)
			r.write(t, 0x400, data)
			res := r.read(t, 0x400)
			if !res.OK {
				t.Fatal("benign read failed verification")
			}
			if !bytes.Equal(res.Data, data) {
				t.Fatalf("round trip mismatch:\n got %x\nwant %x", res.Data, data)
			}
		})
	}
}

// Reads of never-written memory return the workload's initial contents.
func TestInitialContents(t *testing.T) {
	for _, cfg := range []Config{Baseline(protected), PSSM(protected), Plutus(protected)} {
		cfg := cfg
		t.Run(cfg.Scheme, func(t *testing.T) {
			r := newRig(t, cfg)
			r.e.InitData = func(local geom.Addr) []byte {
				return sector(uint32(local), uint32(local)+1)
			}
			res := r.read(t, 0x800)
			if !res.OK {
				t.Fatal("initial read failed verification")
			}
			want := sector(0x800, 0x801)
			if !bytes.Equal(res.Data, want) {
				t.Fatalf("initial contents wrong: %x", res.Data)
			}
		})
	}
}

func TestRepeatedWritesReadBack(t *testing.T) {
	r := newRig(t, Plutus(protected))
	for k := uint32(1); k <= 70; k++ { // crosses the 6-bit minor overflow at 64
		r.write(t, 0x1000, sector(k, k*3, k*5, k*7, k*11, k*13, k*17, k*19))
	}
	res := r.read(t, 0x1000)
	if !res.OK || binary.LittleEndian.Uint32(res.Data) != 70 {
		t.Fatalf("after 70 writes: ok=%v first word=%d", res.OK, binary.LittleEndian.Uint32(res.Data))
	}
}

// Counter overflow re-encrypts the group: neighbors must still read back.
func TestCounterOverflowPreservesNeighbors(t *testing.T) {
	r := newRig(t, PSSM(protected))
	neighbor := sector(0xAAAAAAA0, 0xBBBBBBB0)
	r.write(t, 0x2020, neighbor)
	// Overflow sector 0x2000's minor (64 writes with 6-bit minors).
	for k := 0; k < 65; k++ {
		r.write(t, 0x2000, sector(uint32(k)))
	}
	res := r.read(t, 0x2020)
	if !res.OK || !bytes.Equal(res.Data, neighbor) {
		t.Fatalf("neighbor corrupted by overflow re-encryption: ok=%v data=%x", res.OK, res.Data)
	}
}

func TestTamperedDataDetected(t *testing.T) {
	for _, cfg := range []Config{PSSM(protected), Plutus(protected)} {
		cfg := cfg
		t.Run(cfg.Scheme, func(t *testing.T) {
			r := newRig(t, cfg)
			// Distinctive (non-repeating) data so Plutus's value cache
			// cannot legitimately verify the tampered plaintext.
			data := sector(0xdead0001, 0x12345678, 0x9abcdef0, 0x0fedcba9,
				0x87654321, 0x13579bdf, 0x2468ace0, 0xfdb97531)
			r.write(t, 0x3000, data)
			r.e.TamperData(0x3000, 77)
			res := r.read(t, 0x3000)
			if res.OK {
				t.Fatal("tampered data passed verification")
			}
			if r.st.Sec.TamperDetected == 0 {
				t.Fatal("tamper not counted")
			}
		})
	}
}

func TestTamperedMACDetected(t *testing.T) {
	r := newRig(t, PSSM(protected))
	r.write(t, 0x3100, sector(1, 2, 3, 4, 5, 6, 7, 8))
	r.e.TamperMAC(0x3100)
	if res := r.read(t, 0x3100); res.OK {
		t.Fatal("spoofed MAC passed verification")
	}
}

func TestReplayedCounterDetected(t *testing.T) {
	r := newRig(t, PSSM(protected))
	r.write(t, 0x3200, sector(9, 9, 9, 9))
	r.e.ReplayCounter(0x3200)
	res := r.read(t, 0x3200)
	if res.OK {
		t.Fatal("replayed counter passed verification")
	}
	if r.st.Sec.ReplayDetected == 0 {
		t.Fatal("replay not counted")
	}
}

// The no-security scheme generates exactly one transaction per access.
func TestNoSecurityTrafficIsDataOnly(t *testing.T) {
	r := newRig(t, Baseline(protected))
	r.write(t, 0x100, sector(1))
	r.read(t, 0x100)
	if got := r.st.Traffic.MetadataBytes(); got != 0 {
		t.Fatalf("no-security run moved %d metadata bytes", got)
	}
	if got := r.st.Traffic.Transactions(); got != 2 {
		t.Fatalf("transactions = %d, want 2", got)
	}
}

// PSSM cold reads move counter, MAC and BMT metadata.
func TestPSSMColdReadFetchesMetadata(t *testing.T) {
	r := newRig(t, PSSM(protected))
	r.read(t, 0x4000)
	tr := &r.st.Traffic
	if tr.Bytes(stats.Counter) == 0 {
		t.Error("no counter traffic on cold read")
	}
	if tr.Bytes(stats.MAC) == 0 {
		t.Error("no MAC traffic on cold read")
	}
	if tr.Bytes(stats.BMT) == 0 {
		t.Error("no BMT traffic on cold read")
	}
	// GranAll128: the counter fetch is a whole 128 B block = 4 sectors.
	if tr.Reads[stats.Counter] != 4 {
		t.Errorf("counter read txns = %d, want 4 (128 B unit)", tr.Reads[stats.Counter])
	}
}

// Fine-grain metadata fetches one sector per counter unit.
func TestFineGrainCounterFetchIsOneTransaction(t *testing.T) {
	r := newRig(t, PlutusFineGrain(protected, GranAll32))
	r.read(t, 0x4000)
	if got := r.st.Traffic.Reads[stats.Counter]; got != 1 {
		t.Errorf("counter read txns = %d, want 1 (32 B unit)", got)
	}
	// BMT nodes are 32 B too: each walked level costs one transaction.
	if r.st.Traffic.Reads[stats.BMT] == 0 {
		t.Error("expected BMT node fetches")
	}
}

// A metadata-cache hit on a warm read generates no new metadata traffic.
func TestWarmReadHitsMetadataCaches(t *testing.T) {
	r := newRig(t, PSSM(protected))
	r.read(t, 0x5000)
	ctr := r.st.Traffic.Bytes(stats.Counter)
	mac := r.st.Traffic.Bytes(stats.MAC)
	bmtB := r.st.Traffic.Bytes(stats.BMT)
	r.read(t, 0x5020) // same counter group, same MAC sector? (adjacent sector)
	if r.st.Traffic.Bytes(stats.Counter) != ctr {
		t.Error("warm read refetched counters")
	}
	if r.st.Traffic.Bytes(stats.MAC) != mac {
		t.Error("warm read refetched MAC")
	}
	if r.st.Traffic.Bytes(stats.BMT) != bmtB {
		t.Error("warm read refetched BMT nodes")
	}
}

// Value verification eliminates MAC fetches for value-local data.
func TestValueVerificationSkipsMAC(t *testing.T) {
	r := newRig(t, PlutusValueOnly(protected))
	// Prime the value cache with the working values via writes.
	common := sector(0x42424240, 0x42424240, 0x42424240, 0x42424240,
		0x42424240, 0x42424240, 0x42424240, 0x42424240)
	for a := geom.Addr(0); a < 64*geom.SectorSize; a += geom.SectorSize {
		r.write(t, 0x10000+a, common)
	}
	macBefore := r.st.Traffic.Bytes(stats.MAC)
	// Cold-read far addresses holding the same values.
	r.e.InitData = func(local geom.Addr) []byte { return common }
	for a := geom.Addr(0); a < 8*geom.SectorSize; a += geom.SectorSize {
		res := r.read(t, 0x40000+a)
		if !res.OK {
			t.Fatal("benign value-local read failed")
		}
		if !res.ValueVerified {
			t.Fatal("value-local read did not use value verification")
		}
	}
	if got := r.st.Traffic.Bytes(stats.MAC) - macBefore; got != 0 {
		t.Errorf("value-verified reads moved %d MAC bytes", got)
	}
	if r.st.Sec.ValueVerified < 8 {
		t.Errorf("ValueVerified = %d, want ≥ 8", r.st.Sec.ValueVerified)
	}
}

// Unique-valued data falls back to MAC verification and still succeeds.
func TestValueMissFallsBackToMAC(t *testing.T) {
	r := newRig(t, PlutusValueOnly(protected))
	uniq := sector(0x01010101, 0x23232323, 0x45454545, 0x67676767,
		0x89898989, 0xabababab, 0xcdcdcdcd, 0xefefefef)
	r.write(t, 0x6000, uniq)
	// Flood the value cache so the write's values are evicted.
	for k := uint32(0); k < 2048; k++ {
		r.write(t, 0x20000+geom.Addr(k%256)*geom.SectorSize,
			sector(k<<8|5, k<<9|7, k<<10|9, k<<11|11, k<<12|13, k<<13|15, k<<14|17, k<<15|19))
	}
	res := r.read(t, 0x6000)
	if !res.OK {
		t.Fatal("MAC fallback read failed")
	}
	if res.ValueVerified {
		t.Fatal("unique data should not value-verify after cache flood")
	}
	if r.st.Sec.MACVerified == 0 {
		t.Fatal("MAC verification not counted")
	}
}

// Common counters: reads of never-written regions move no counter/BMT
// traffic; the first write to a region ends that.
func TestCommonCountersSkipUntilFirstWrite(t *testing.T) {
	r := newRig(t, CommonCtr(protected))
	r.read(t, 0x7000)
	if r.st.Traffic.Bytes(stats.Counter) != 0 || r.st.Traffic.Bytes(stats.BMT) != 0 {
		t.Fatal("read of clean region moved counter/BMT traffic")
	}
	r.write(t, 0x7000, sector(1))
	ctrAfterWrite := r.st.Traffic.Bytes(stats.Counter)
	if ctrAfterWrite == 0 {
		t.Fatal("write should have fetched counters")
	}
	// A read in the same (now dirty) region uses the normal path; the
	// counter may be cached, but verification ran — the region flag flips.
	res := r.read(t, 0x7040)
	if !res.OK {
		t.Fatal("read after write failed")
	}
}

// Compact counters: lightly-written data is served from the compact
// layer; saturated sectors pay the double access.
func TestCompactCounterFlow(t *testing.T) {
	r := newRig(t, PlutusCompact(protected, counters.Compact3Bit))
	r.write(t, 0x8000, sector(1))
	r.read(t, 0x8000)
	if r.st.Sec.CompactHits == 0 {
		t.Fatal("lightly-written sector not served by compact layer")
	}
	if r.st.Traffic.Bytes(stats.CompactCounter) == 0 {
		t.Fatal("no compact-counter traffic")
	}
	// Saturate: 7 writes reach the 3-bit ceiling.
	for k := 0; k < 8; k++ {
		r.write(t, 0x8000, sector(uint32(k)))
	}
	if r.st.Sec.CompactOverflow == 0 {
		t.Fatal("saturated sector did not record overflow double-access")
	}
	res := r.read(t, 0x8000)
	if !res.OK {
		t.Fatal("read of saturated sector failed")
	}
}

// Adaptive compact counters disable a block after enough saturations and
// then go straight to the originals.
func TestAdaptiveCompactDisables(t *testing.T) {
	cfg := PlutusCompact(protected, counters.Compact3BitAdaptive)
	cfg.CompactThreshold = 2
	r := newRig(t, cfg)
	saturate := func(a geom.Addr) {
		for k := 0; k < 8; k++ {
			r.write(t, a, sector(uint32(k)))
		}
	}
	saturate(0x9000)
	saturate(0x9020)
	r.read(t, 0x9040) // same compact block
	if r.st.Sec.CompactDisabled == 0 {
		t.Fatal("block not disabled after threshold saturations")
	}
}

// NoTreeTraffic (Fig. 20) eliminates BMT traffic entirely.
func TestNoTreeTrafficEliminatesBMT(t *testing.T) {
	r := newRig(t, PlutusNoTree(protected))
	for a := geom.Addr(0); a < 64*geom.SectorSize; a += geom.SectorSize {
		r.write(t, 0x30000+a, sector(uint32(a)))
		r.read(t, 0x30000+a)
	}
	if got := r.st.Traffic.Bytes(stats.BMT) + r.st.Traffic.Bytes(stats.CompactBMT); got != 0 {
		t.Fatalf("NoTreeTraffic run moved %d tree bytes", got)
	}
}

// Plutus moves less metadata than PSSM on a value-local workload.
func TestPlutusReducesMetadataTraffic(t *testing.T) {
	run := func(cfg Config) uint64 {
		r := newRig(t, cfg)
		common := sector(7, 7, 7, 7, 7, 7, 7, 7)
		r.e.InitData = func(geom.Addr) []byte { return common }
		// Scattered cold reads (metadata-cache hostile).
		for k := 0; k < 400; k++ {
			r.read(t, geom.Addr(k*13)%0x8000*geom.SectorSize)
		}
		r.e.FlushDirtyMetadata()
		r.eng.Drain(1 << 22)
		return r.st.Traffic.MetadataBytes()
	}
	pssm := run(PSSM(protected))
	plutus := run(Plutus(protected))
	if plutus >= pssm {
		t.Fatalf("Plutus metadata %d ≥ PSSM %d on value-local workload", plutus, pssm)
	}
}

// MAC-update skipping: pinned-value writes defer the MAC and later reads
// still verify (by value), never consulting the stale MAC.
func TestWriteGuaranteeSkipsMACSafely(t *testing.T) {
	r := newRig(t, Plutus(protected))
	common := sector(0x5150, 0x5150, 0x5150, 0x5150, 0x5150, 0x5150, 0x5150, 0x5150)
	// Drive the common values to pinned status.
	for k := 0; k < 64; k++ {
		r.write(t, geom.Addr(0x50000+k*geom.SectorSize), common)
	}
	if r.st.Sec.MACSkippedWrites == 0 {
		t.Fatal("no MAC updates were skipped despite pinned values")
	}
	res := r.read(t, 0x50000)
	if !res.OK || !res.ValueVerified {
		t.Fatalf("guaranteed write did not value-verify on read: %+v", res)
	}
	if r.st.Sec.TamperDetected != 0 {
		t.Fatal("false tamper alarm")
	}
}

func TestConfigNormalizeRejectsValueVerifyWithCME(t *testing.T) {
	cfg := PSSM(protected)
	cfg.ValueVerify = true
	if err := cfg.Normalize(); err == nil {
		t.Fatal("value verification over CME must be rejected (malleable)")
	}
}

func TestFlushDirtyMetadataAccounts(t *testing.T) {
	r := newRig(t, PSSM(protected))
	r.write(t, 0xA000, sector(3))
	before := r.st.Traffic.WriteBytes[stats.Counter] + r.st.Traffic.WriteBytes[stats.MAC]
	r.e.FlushDirtyMetadata()
	r.eng.Drain(1 << 20)
	after := r.st.Traffic.WriteBytes[stats.Counter] + r.st.Traffic.WriteBytes[stats.MAC]
	if after <= before {
		t.Fatal("flush moved no dirty metadata")
	}
}

// Eager tree updates must write more BMT traffic than lazy updates for
// the same write stream (the reason every evaluated scheme is lazy).
func TestEagerTreeUpdateCostsMoreBMTTraffic(t *testing.T) {
	run := func(eager bool) uint64 {
		cfg := PSSM(protected)
		cfg.EagerTreeUpdate = eager
		if eager {
			cfg.Scheme = "pssm-eager"
		}
		r := newRig(t, cfg)
		for k := 0; k < 200; k++ {
			r.write(t, geom.Addr(0x1000+(k%50)*0x2000), sector(uint32(k)))
		}
		r.e.FlushDirtyMetadata()
		r.eng.Drain(1 << 22)
		return r.st.Traffic.WriteBytes[stats.BMT]
	}
	lazy, eager := run(false), run(true)
	if eager <= lazy {
		t.Fatalf("eager BMT write bytes %d should exceed lazy %d", eager, lazy)
	}
}

// Round trips must still verify under eager updates.
func TestEagerTreeUpdateRoundTrip(t *testing.T) {
	cfg := PSSM(protected)
	cfg.EagerTreeUpdate = true
	cfg.Scheme = "pssm-eager"
	r := newRig(t, cfg)
	data := sector(0xAB, 0xCD, 0xEF, 0x12)
	r.write(t, 0x9000, data)
	res := r.read(t, 0x9000)
	if !res.OK || !bytes.Equal(res.Data, data) {
		t.Fatalf("eager round trip failed: ok=%v", res.OK)
	}
	r.e.ReplayCounter(0x9000)
	if res := r.read(t, 0x9000); res.OK {
		t.Fatal("replay passed under eager updates")
	}
}

// TestSchemeRegistry pins the ByName/Names contract plutusd's discovery
// endpoint and plutussim -list rely on: every advertised name resolves,
// normalizes cleanly, and carries the requested protected size; names
// are unique; unknown names fail with the full valid set in the error.
func TestSchemeRegistry(t *testing.T) {
	const protected = 128 << 20
	names := Names()
	if len(names) == 0 {
		t.Fatal("Names() is empty")
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate scheme name %q", name)
		}
		seen[name] = true
		sc, err := ByName(name, protected)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if sc.ProtectedBytes != protected {
			t.Errorf("ByName(%q).ProtectedBytes = %d, want %d", name, sc.ProtectedBytes, protected)
		}
		if err := sc.Normalize(); err != nil {
			t.Errorf("ByName(%q) does not normalize: %v", name, err)
		}
	}
	if !seen["plutus"] || !seen["pssm"] || !seen["nosec"] {
		t.Errorf("canonical schemes missing from Names(): %v", names)
	}
	_, err := ByName("bogus", protected)
	if err == nil {
		t.Fatal("unknown scheme resolved")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-scheme error does not list %q: %v", name, err)
		}
	}
}
