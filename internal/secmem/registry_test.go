package secmem

import (
	"fmt"
	"reflect"
	"testing"
)

// TestNamesStability freezes the registry's canonical name list. The
// order is API: plutusd's discovery endpoint, plutussim -list, the
// differential tamper oracle and the figure tables all iterate schemes
// in this order, so a rename, removal or reorder must surface as a
// reviewed diff of this literal rather than as silent churn in every
// downstream artifact.
func TestNamesStability(t *testing.T) {
	want := []string{
		"nosec",
		"pssm",
		"pssm-4Bmac",
		"pssm+cc",
		"plutus-V",
		"plutus-G32",
		"plutus-G32-128",
		"plutus-C2",
		"plutus-C3",
		"plutus-C3A",
		"plutus-notree",
		"plutus",
		"mgx",
		"ssm",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() drifted from the frozen canonical list:\n got  %v\n want %v", got, want)
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() is not stable across calls: %v", got)
	}
}

// TestByNameUnknownError pins the exact shape of the unknown-scheme
// error: operators hit it from the CLI and the daemon API, and it must
// name the full valid set so a typo is self-correcting.
func TestByNameUnknownError(t *testing.T) {
	_, err := ByName("plutus-xxl", 128<<20)
	if err == nil {
		t.Fatal("unknown scheme resolved")
	}
	want := fmt.Sprintf("unknown scheme %q (valid: nosec pssm pssm-4Bmac pssm+cc plutus-V plutus-G32 "+
		"plutus-G32-128 plutus-C2 plutus-C3 plutus-C3A plutus-notree plutus mgx ssm)", "plutus-xxl")
	if err.Error() != want {
		t.Errorf("unknown-scheme error drifted:\n got  %q\n want %q", err.Error(), want)
	}
}
