package secmem

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
)

// Snapshot encodes the engine's complete mutable state: the functional
// DRAM image (ciphertexts and MACs), the stale-MAC / tamper / region
// write-tracking maps, the split and compact counter stores, both
// Merkle trees, every metadata cache, and the value cache. All maps are
// walked in sorted key order so identical state is identical bytes.
//
// The engine must be quiescent — no in-flight datapath requests and no
// fetches parked on MSHR exhaustion — because those hold closures that
// cannot be serialized; snapshots are taken at drained epoch boundaries.
// Scratch state (overflowPlain, hashScratch) is dead between drained
// epochs and is deliberately not captured.
func (e *Engine) Snapshot(enc *checkpoint.Encoder) error {
	if e.pending != 0 || len(e.mshrWait) != 0 {
		return fmt.Errorf("secmem: %d pending requests, %d MSHR waiters: %w",
			e.pending, len(e.mshrWait), checkpoint.ErrNotQuiescent)
	}
	enc.U64(uint64(len(e.mem)))
	for _, a := range checkpoint.SortedKeys(e.mem) {
		enc.U64(uint64(a))
		enc.Bytes(e.mem[a])
	}
	enc.U64(uint64(len(e.macs)))
	for _, i := range checkpoint.SortedKeys(e.macs) {
		enc.U64(i)
		enc.U64(e.macs[i])
	}
	snapshotBoolMap(enc, e.macStale)
	snapshotBoolMap(enc, e.taintData)
	snapshotBoolMap(enc, e.taintMeta)
	snapshotBoolMap(enc, e.ctrReplayed)
	snapshotBoolMap(enc, e.cctrReplayed)
	snapshotAddrBoolMap(enc, e.bmtTampered)
	snapshotBoolMap(enc, e.regionWritten)
	if e.cfg.NoSecurity {
		return nil
	}
	if err := e.split.Snapshot(enc); err != nil {
		return err
	}
	if err := e.tree.Snapshot(enc); err != nil {
		return err
	}
	for _, c := range []interface {
		Snapshot(*checkpoint.Encoder) error
	}{e.ctrCache, e.macCache, e.bmtCache} {
		if err := c.Snapshot(enc); err != nil {
			return err
		}
	}
	if e.compact != nil {
		if err := e.compact.Snapshot(enc); err != nil {
			return err
		}
		if err := e.ctree.Snapshot(enc); err != nil {
			return err
		}
		if err := e.cctrCache.Snapshot(enc); err != nil {
			return err
		}
		if err := e.cbmtCache.Snapshot(enc); err != nil {
			return err
		}
	}
	if e.vcache != nil {
		if err := e.vcache.Snapshot(enc); err != nil {
			return err
		}
	}
	return nil
}

// Restore decodes state written by Snapshot into an engine freshly
// built from the same configuration. Runtime wiring — the DRAM channel,
// stats sink, InitData hook, and the split store's OnOverflow callback —
// is left exactly as New installed it.
func (e *Engine) Restore(dec *checkpoint.Decoder) error {
	if e.pending != 0 || len(e.mshrWait) != 0 {
		return fmt.Errorf("secmem: restore into a busy engine: %w", checkpoint.ErrNotQuiescent)
	}
	nm := dec.U64()
	mem := make(map[geom.Addr][]byte, nm)
	for i := uint64(0); i < nm && dec.Err() == nil; i++ {
		a := geom.Addr(dec.U64())
		ct := dec.Bytes()
		if len(ct) != geom.SectorSize && dec.Err() == nil {
			return fmt.Errorf("secmem: sector %#x has %d bytes, want %d: %w",
				uint64(a), len(ct), geom.SectorSize, checkpoint.ErrCorrupt)
		}
		mem[a] = ct
	}
	nmac := dec.U64()
	macs := make(map[uint64]uint64, nmac)
	for i := uint64(0); i < nmac && dec.Err() == nil; i++ {
		k := dec.U64()
		macs[k] = dec.U64()
	}
	macStale := restoreBoolMap(dec)
	taintData := restoreBoolMap(dec)
	taintMeta := restoreBoolMap(dec)
	ctrReplayed := restoreBoolMap(dec)
	cctrReplayed := restoreBoolMap(dec)
	bmtTampered := restoreAddrBoolMap(dec)
	regionWritten := restoreBoolMap(dec)
	if err := dec.Err(); err != nil {
		return fmt.Errorf("secmem: %w", err)
	}
	e.mem = mem
	e.macs = macs
	e.macStale = macStale
	e.taintData = taintData
	e.taintMeta = taintMeta
	e.ctrReplayed = ctrReplayed
	e.cctrReplayed = cctrReplayed
	e.bmtTampered = bmtTampered
	e.regionWritten = regionWritten
	if e.cfg.NoSecurity {
		return nil
	}
	if err := e.split.Restore(dec); err != nil {
		return err
	}
	if err := e.tree.Restore(dec); err != nil {
		return err
	}
	for _, c := range []interface {
		Restore(*checkpoint.Decoder) error
	}{e.ctrCache, e.macCache, e.bmtCache} {
		if err := c.Restore(dec); err != nil {
			return err
		}
	}
	if e.compact != nil {
		if err := e.compact.Restore(dec); err != nil {
			return err
		}
		if err := e.ctree.Restore(dec); err != nil {
			return err
		}
		if err := e.cctrCache.Restore(dec); err != nil {
			return err
		}
		if err := e.cbmtCache.Restore(dec); err != nil {
			return err
		}
	}
	if e.vcache != nil {
		if err := e.vcache.Restore(dec); err != nil {
			return err
		}
	}
	return nil
}

// snapshotBoolMap encodes a bool-valued map with full fidelity (keys
// holding false are preserved, so a restored engine re-encodes to the
// very same bytes).
func snapshotBoolMap(enc *checkpoint.Encoder, m map[uint64]bool) {
	enc.U64(uint64(len(m)))
	for _, k := range checkpoint.SortedKeys(m) {
		enc.U64(k)
		enc.Bool(m[k])
	}
}

func restoreBoolMap(dec *checkpoint.Decoder) map[uint64]bool {
	n := dec.U64()
	m := make(map[uint64]bool, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		k := dec.U64()
		m[k] = dec.Bool()
	}
	return m
}

// snapshotAddrBoolMap is snapshotBoolMap for address-keyed taint state.
func snapshotAddrBoolMap(enc *checkpoint.Encoder, m map[geom.Addr]bool) {
	enc.U64(uint64(len(m)))
	for _, k := range checkpoint.SortedKeys(m) {
		enc.U64(uint64(k))
		enc.Bool(m[k])
	}
}

func restoreAddrBoolMap(dec *checkpoint.Decoder) map[geom.Addr]bool {
	n := dec.U64()
	m := make(map[geom.Addr]bool, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		k := geom.Addr(dec.U64())
		m[k] = dec.Bool()
	}
	return m
}
