package secmem

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/dense"
	"github.com/plutus-gpu/plutus/internal/geom"
)

// Snapshot encodes the engine's complete mutable state: the functional
// DRAM image (ciphertexts and MACs), the stale-MAC / tamper / region
// write-tracking sets, the split and compact counter stores, both
// Merkle trees, every metadata cache, and the value cache. Dense stores
// are walked in ascending index order (and the one remaining map in
// sorted key order) so identical state is identical bytes.
//
// The engine must be quiescent — no in-flight datapath requests and no
// fetches parked on MSHR exhaustion — because those hold closures that
// cannot be serialized; snapshots are taken at drained epoch boundaries.
// Scratch state (overflowPlain, hashScratch, the run buffers) is dead
// between drained epochs and is deliberately not captured.
func (e *Engine) Snapshot(enc *checkpoint.Encoder) error {
	if e.pending != 0 || e.mshrWait.Len() != 0 {
		return fmt.Errorf("secmem: %d pending requests, %d MSHR waiters: %w",
			e.pending, e.mshrWait.Len(), checkpoint.ErrNotQuiescent)
	}
	enc.U64(uint64(e.mem.Count()))
	e.mem.ForEach(func(i uint64, rec []byte) {
		enc.U64(i * geom.SectorSize)
		enc.Bytes(rec)
	})
	enc.U64(uint64(e.macsSet.Count()))
	e.macsSet.ForEach(func(i uint64) {
		enc.U64(i)
		enc.U64(e.macs.Get(i))
	})
	snapshotBitmap(enc, &e.macStale)
	snapshotBitmap(enc, &e.taintData)
	snapshotBitmap(enc, &e.taintMeta)
	snapshotBitmap(enc, &e.ctrReplayed)
	snapshotBitmap(enc, &e.cctrReplayed)
	snapshotAddrBoolMap(enc, e.bmtTampered)
	snapshotBitmap(enc, &e.regionWritten)
	if e.cfg.NoSecurity {
		return nil
	}
	if e.cfg.SSM {
		// The ssm scheme's only mutable state beyond the share image is
		// the per-sector write version.
		snapshotBitmap(enc, &e.ssmWritten)
		e.ssmWritten.ForEach(func(i uint64) {
			enc.U64(e.ssmVer.Get(i))
		})
		return nil
	}
	if e.cfg.MGX {
		snapshotBitmap(enc, &e.mgxDerived)
		snapshotBitmap(enc, &e.mgxIrregular)
		e.mgxDerived.ForEach(func(i uint64) {
			enc.U64(e.mgxVer.Get(i))
		})
	}
	if err := e.split.Snapshot(enc); err != nil {
		return err
	}
	if err := e.tree.Snapshot(enc); err != nil {
		return err
	}
	for _, c := range []interface {
		Snapshot(*checkpoint.Encoder) error
	}{e.ctrCache, e.macCache, e.bmtCache} {
		if err := c.Snapshot(enc); err != nil {
			return err
		}
	}
	if e.compact != nil {
		if err := e.compact.Snapshot(enc); err != nil {
			return err
		}
		if err := e.ctree.Snapshot(enc); err != nil {
			return err
		}
		if err := e.cctrCache.Snapshot(enc); err != nil {
			return err
		}
		if err := e.cbmtCache.Snapshot(enc); err != nil {
			return err
		}
	}
	if e.vcache != nil {
		if err := e.vcache.Snapshot(enc); err != nil {
			return err
		}
	}
	return nil
}

// Restore decodes state written by Snapshot into an engine freshly
// built from the same configuration. Runtime wiring — the DRAM channel,
// stats sink, InitData hook, and the split store's OnOverflow callback —
// is left exactly as New installed it.
func (e *Engine) Restore(dec *checkpoint.Decoder) error {
	if e.pending != 0 || e.mshrWait.Len() != 0 {
		return fmt.Errorf("secmem: restore into a busy engine: %w", checkpoint.ErrNotQuiescent)
	}
	var mem dense.Sectors
	nm := dec.U64()
	for i := uint64(0); i < nm && dec.Err() == nil; i++ {
		a := geom.Addr(dec.U64())
		ct := dec.Bytes()
		if len(ct) != geom.SectorSize && dec.Err() == nil {
			return fmt.Errorf("secmem: sector %#x has %d bytes, want %d: %w",
				uint64(a), len(ct), geom.SectorSize, checkpoint.ErrCorrupt)
		}
		if dec.Err() == nil {
			copy(mem.Put(uint64(a)/geom.SectorSize), ct)
		}
	}
	var macs dense.U64
	var macsSet dense.Bitmap
	nmac := dec.U64()
	for i := uint64(0); i < nmac && dec.Err() == nil; i++ {
		k := dec.U64()
		macsSet.Set(k)
		macs.Set(k, dec.U64())
	}
	macStale := restoreBitmap(dec)
	taintData := restoreBitmap(dec)
	taintMeta := restoreBitmap(dec)
	ctrReplayed := restoreBitmap(dec)
	cctrReplayed := restoreBitmap(dec)
	bmtTampered := restoreAddrBoolMap(dec)
	regionWritten := restoreBitmap(dec)
	if err := dec.Err(); err != nil {
		return fmt.Errorf("secmem: %w", err)
	}
	e.mem = mem
	e.macsSet = macsSet
	e.macs = macs
	e.macStale = macStale
	e.taintData = taintData
	e.taintMeta = taintMeta
	e.ctrReplayed = ctrReplayed
	e.cctrReplayed = cctrReplayed
	e.bmtTampered = bmtTampered
	e.regionWritten = regionWritten
	if e.cfg.NoSecurity {
		return nil
	}
	if e.cfg.SSM {
		ssmWritten := restoreBitmap(dec)
		var ssmVer dense.U64
		ssmWritten.ForEach(func(i uint64) {
			ssmVer.Set(i, dec.U64())
		})
		if err := dec.Err(); err != nil {
			return fmt.Errorf("secmem: %w", err)
		}
		e.ssmWritten = ssmWritten
		e.ssmVer = ssmVer
		return nil
	}
	if e.cfg.MGX {
		mgxDerived := restoreBitmap(dec)
		mgxIrregular := restoreBitmap(dec)
		var mgxVer dense.U64
		mgxDerived.ForEach(func(i uint64) {
			mgxVer.Set(i, dec.U64())
		})
		if err := dec.Err(); err != nil {
			return fmt.Errorf("secmem: %w", err)
		}
		e.mgxDerived = mgxDerived
		e.mgxIrregular = mgxIrregular
		e.mgxVer = mgxVer
	}
	if err := e.split.Restore(dec); err != nil {
		return err
	}
	if err := e.tree.Restore(dec); err != nil {
		return err
	}
	for _, c := range []interface {
		Restore(*checkpoint.Decoder) error
	}{e.ctrCache, e.macCache, e.bmtCache} {
		if err := c.Restore(dec); err != nil {
			return err
		}
	}
	if e.compact != nil {
		if err := e.compact.Restore(dec); err != nil {
			return err
		}
		if err := e.ctree.Restore(dec); err != nil {
			return err
		}
		if err := e.cctrCache.Restore(dec); err != nil {
			return err
		}
		if err := e.cbmtCache.Restore(dec); err != nil {
			return err
		}
	}
	if e.vcache != nil {
		if err := e.vcache.Restore(dec); err != nil {
			return err
		}
	}
	return nil
}

// snapshotBitmap encodes a dense index set in the same wire layout the
// old bool-valued maps used (count, then ascending key/true pairs), so a
// restored engine re-encodes to the very same bytes.
func snapshotBitmap(enc *checkpoint.Encoder, b *dense.Bitmap) {
	enc.U64(uint64(b.Count()))
	b.ForEach(func(k uint64) {
		enc.U64(k)
		enc.Bool(true)
	})
}

func restoreBitmap(dec *checkpoint.Decoder) dense.Bitmap {
	var b dense.Bitmap
	n := dec.U64()
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		k := dec.U64()
		if dec.Bool() {
			b.Set(k)
		}
	}
	return b
}

// snapshotAddrBoolMap encodes an address-keyed taint map with full
// fidelity in sorted key order.
func snapshotAddrBoolMap(enc *checkpoint.Encoder, m map[geom.Addr]bool) {
	enc.U64(uint64(len(m)))
	for _, k := range checkpoint.SortedKeys(m) {
		enc.U64(uint64(k))
		enc.Bool(m[k])
	}
}

func restoreAddrBoolMap(dec *checkpoint.Decoder) map[geom.Addr]bool {
	n := dec.U64()
	m := make(map[geom.Addr]bool, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		k := geom.Addr(dec.U64())
		m[k] = dec.Bool()
	}
	return m
}
