package secmem

import (
	"encoding/binary"
	"fmt"

	"github.com/plutus-gpu/plutus/internal/bmt"
	"github.com/plutus-gpu/plutus/internal/cache"
	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/crypto/gcipher"
	"github.com/plutus-gpu/plutus/internal/crypto/siphash"
	"github.com/plutus-gpu/plutus/internal/dense"
	"github.com/plutus-gpu/plutus/internal/dram"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/valcache"
)

// layout places the partition's metadata regions in its local address
// space, after the data region. Bases only influence DRAM bank/row
// mapping; regions never overlap.
type layout struct {
	dataSectors uint64
	ctrBase     geom.Addr
	ctrBytes    uint64
	macBase     geom.Addr
	macBytes    uint64
	bmtBase     geom.Addr
	cctrBase    geom.Addr
	cctrBytes   uint64
	cbmtBase    geom.Addr
}

// Engine is one partition's secure memory controller.
type Engine struct {
	cfg Config
	//simlint:ignore snapsym construction wiring, rebuilt by New
	eng *sim.Engine
	//simlint:ignore snapsym construction wiring, rebuilt by New
	ch *dram.Channel
	//simlint:ignore snapsym construction wiring, rebuilt by New
	st *stats.Stats

	//simlint:ignore snapsym stateless cipher, derived from the keys at construction
	enc *gcipher.Engine
	//simlint:ignore snapsym key material is part of the configuration, not mutable state
	macKey siphash.Key
	//simlint:ignore snapsym key material is part of the configuration, not mutable state
	treeKey siphash.Key

	split   *counters.SplitStore
	compact *counters.CompactView
	tree    *bmt.Tree // over the original counters
	ctree   *bmt.Tree // over the compact counters

	ctrCache  *cache.Cache
	macCache  *cache.Cache
	bmtCache  *cache.Cache
	cctrCache *cache.Cache
	cbmtCache *cache.Cache
	vcache    *valcache.Cache

	//simlint:ignore snapsym address-space layout is pure geometry derived from the configuration
	lay layout

	// Functional DRAM image, indexed by data-sector index: 32 B
	// ciphertext per sector (plaintext when NoSecurity). Presence is
	// explicit — an absent sector is lazily materialized from InitData.
	mem dense.Sectors
	// macs holds the DRAM copy of each data sector's truncated MAC;
	// macsSet tracks which entries were ever written (snapshot walks).
	// Readers rely on the zero default, exactly as the old map did.
	macs    dense.U64
	macsSet dense.Bitmap
	// macStale marks sectors whose DRAM MAC was deliberately not updated
	// because the write carried the value-verification guarantee.
	macStale dense.Bitmap
	// taintData marks data sectors whose DRAM ciphertext an attacker
	// mutated (flips, splices): their decrypted plaintext is compromised
	// until the next writeback overwrites the sector. It is the ground
	// truth the read path classifies verdicts against.
	taintData dense.Bitmap
	// taintMeta marks sectors whose DRAM MAC an attacker corrupted; the
	// data itself is still authentic.
	taintMeta dense.Bitmap
	// ctrReplayed marks counter units whose DRAM copy an attacker rolled
	// back to the boot image (all counters zero): verification recomputes
	// the stale copy's hash until the controller rewrites the unit.
	ctrReplayed dense.Bitmap
	// cctrReplayed is ctrReplayed for the compact counter region.
	cctrReplayed dense.Bitmap
	// bmtTampered marks DRAM-resident tree nodes (by local address) an
	// attacker corrupted: fetching one fails parent verification. It is
	// touched only by attack primitives and the (cold) tree walk, so it
	// stays a map.
	bmtTampered map[geom.Addr]bool
	// regionWritten is the common-counters on-chip write tracker.
	regionWritten dense.Bitmap

	// --- mgx frontier state (cfg.MGX) ---
	// mgxVer holds the on-chip derived version of every derived sector.
	mgxVer dense.U64
	// mgxDerived marks sectors classified onto a regular stream: their
	// versions come from mgxVer, never from the split store.
	mgxDerived dense.Bitmap
	// mgxIrregular marks sectors classified off-stream (stored-counter
	// fallback); classification is sticky first-touch (see mgxClassify).
	mgxIrregular dense.Bitmap

	// --- ssm frontier state (cfg.SSM) ---
	// ssmVer is the per-sector write version keying the share pads.
	ssmVer dense.U64
	// ssmWritten marks sectors ever written (snapshot enumeration).
	ssmWritten dense.Bitmap
	//simlint:ignore snapsym keyed rotations are pure geometry derived from the configuration
	ssmRot []uint64
	//simlint:ignore snapsym Lagrange reconstruction basis derived from the configuration
	ssmRecon []byte
	//simlint:ignore snapsym check-share basis matrix derived from the configuration
	ssmCheck [][]byte

	// StreamHint, when non-nil, reports whether a partition-local address
	// lies on a workload-declared regular write stream and, if so, which
	// one (the mgx secmem↔workload contract; see StreamCursorSource).
	//simlint:ignore snapsym workload wiring (a function), reattached by the embedding GPU on resume
	StreamHint func(local geom.Addr) (stream uint64, ok bool)

	// InitData supplies the initial plaintext of a never-written sector
	// (workload-defined memory contents). Nil means zero-filled.
	//simlint:ignore snapsym workload wiring (a function), reattached by the embedding GPU on resume
	InitData func(local geom.Addr) []byte

	// overflowPlain carries group plaintexts captured just before a
	// counter overflow resets the minors (see bumpCounter).
	//simlint:ignore snapsym dead between drained epochs; snapshots are taken at epoch boundaries
	overflowPlain map[geom.Addr][]byte

	// runPT/runCT/runCtrs are reusable buffers for batched re-encryption
	// of contiguous sector runs on counter overflow.
	//simlint:ignore snapsym per-operation scratch, dead between drained epochs
	runPT, runCT []byte
	//simlint:ignore snapsym per-operation scratch, dead between drained epochs
	runCtrs []uint64

	// mshrWait queues metadata fetches blocked on a full MSHR file.
	mshrWait sim.FuncQueue

	// hashScratch is the reusable serialization buffer for unit hashing
	// (the hottest per-write path).
	//simlint:ignore snapsym per-operation scratch, dead between drained epochs
	hashScratch []byte

	// pending tracks outstanding requests for drain logic.
	pending int
}

// releaseMSHRWaiters wakes a bounded batch of metadata fetches parked on
// MSHR exhaustion (each fill frees one entry; waking the whole queue
// would only re-park it).
func (e *Engine) releaseMSHRWaiters() {
	n := e.mshrWait.Len()
	if n > 8 {
		n = 8
	}
	for ; n > 0; n-- {
		e.eng.Schedule(1, e.mshrWait.Pop())
	}
}

// New builds a partition engine on eng, with its DRAM channel ch and
// statistics sink st.
func New(cfg Config, eng *sim.Engine, ch *dram.Channel, st *stats.Stats) (*Engine, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:           cfg,
		eng:           eng,
		ch:            ch,
		st:            st,
		bmtTampered:   make(map[geom.Addr]bool),
		overflowPlain: make(map[geom.Addr][]byte),
	}
	if cfg.NoSecurity {
		return e, nil
	}
	if cfg.SSM {
		// The secret-sharing datapath has no counters, MACs, trees or
		// metadata caches to build — shares are the whole scheme.
		if err := e.initSSM(); err != nil {
			return nil, err
		}
		return e, nil
	}

	encKey, macKey, treeKey := cfg.keys()
	var err error
	e.enc, err = gcipher.NewEngine(cfg.Encryption, encKey)
	if err != nil {
		return nil, err
	}
	e.macKey, e.treeKey = macKey, treeKey

	e.split = counters.MustSplitStore(counters.DefaultSplitConfig())
	e.split.OnOverflow = e.onCounterOverflow

	e.lay = computeLayout(cfg)

	unitBytes := cfg.Granularity.CounterUnitBytes()
	nodeBytes := cfg.Granularity.BMTNodeBytes()
	units := e.lay.ctrBytes / uint64(unitBytes)
	if units == 0 {
		units = 1
	}
	e.tree = bmt.MustNew(bmt.Config{
		Units: units, UnitBytes: unitBytes, NodeBytes: nodeBytes, Key: treeKey,
	}, e.freshUnitHash(0))

	e.ctrCache = cfg.metaCache("ctr", geom.BlockSize)
	e.macCache = cfg.metaCache("mac", geom.BlockSize)
	e.bmtCache = cfg.metaCache("bmt", geom.BlockSize)

	if cfg.Compact != counters.CompactOff {
		e.compact, err = counters.NewCompactView(cfg.Compact, e.split, cfg.CompactThreshold)
		if err != nil {
			return nil, err
		}
		cunits := e.lay.cctrBytes / uint64(unitBytes)
		if cunits == 0 {
			cunits = 1
		}
		e.ctree = bmt.MustNew(bmt.Config{
			Units: cunits, UnitBytes: unitBytes, NodeBytes: nodeBytes, Key: treeKey,
		}, e.freshCompactUnitHash(0))
		e.cctrCache = cfg.metaCache("cctr", geom.BlockSize)
		e.cbmtCache = cfg.metaCache("cbmt", geom.BlockSize)
	}

	if cfg.ValueVerify {
		e.vcache, err = valcache.New(cfg.Value)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// MustNew is New for static configuration.
func MustNew(cfg Config, eng *sim.Engine, ch *dram.Channel, st *stats.Stats) *Engine {
	e, err := New(cfg, eng, ch, st)
	if err != nil {
		panic(err)
	}
	return e
}

func computeLayout(cfg Config) layout {
	var l layout
	l.dataSectors = cfg.ProtectedBytes / geom.SectorSize
	groupSize := uint64(counters.DefaultSplitConfig().GroupSize)
	groups := (l.dataSectors + groupSize - 1) / groupSize
	l.ctrBytes = groups * geom.SectorSize
	l.ctrBase = geom.Addr(cfg.ProtectedBytes)

	macsPerSector := uint64(geom.SectorSize / cfg.MACBytes)
	macSectors := (l.dataSectors + macsPerSector - 1) / macsPerSector
	l.macBytes = macSectors * geom.SectorSize
	l.macBase = l.ctrBase + geom.Addr(l.ctrBytes)

	l.bmtBase = l.macBase + geom.Addr(l.macBytes)

	// The compact region sits after a generous BMT window (the tree's
	// exact size depends on its config; 2× the counter region is a safe
	// upper bound for any arity ≥ 2).
	bmtWindow := geom.Addr(2 * l.ctrBytes)
	if cfg.Compact != counters.CompactOff {
		per := uint64(cfg.Compact.CountersPerSector())
		csecs := (l.dataSectors + per - 1) / per
		l.cctrBytes = csecs * geom.SectorSize
		l.cctrBase = l.bmtBase + bmtWindow
		l.cbmtBase = l.cctrBase + geom.Addr(l.cctrBytes)
	}
	return l
}

// Config returns the engine's (normalized) configuration.
func (e *Engine) Config() Config { return e.cfg }

// ValueCache exposes the value cache for analysis (nil unless enabled).
func (e *Engine) ValueCache() *valcache.Cache { return e.vcache }

// Caches exposes metadata cache statistics collection points.
func (e *Engine) syncCacheStats() {
	if e.ctrCache != nil {
		e.st.CounterCache = e.ctrCache.Stats
	}
	if e.macCache != nil {
		e.st.MACCache = e.macCache.Stats
	}
	if e.bmtCache != nil {
		e.st.BMTCache = e.bmtCache.Stats
	}
	if e.cctrCache != nil {
		e.st.CompactCache = e.cctrCache.Stats
	}
	if e.cbmtCache != nil {
		e.st.CompactBMTC = e.cbmtCache.Stats
	}
}

// FinishStats copies cache counters into the stats record; call once at
// the end of a run.
func (e *Engine) FinishStats() { e.syncCacheStats() }

// --- index and address helpers ---

//simlint:hotpath
func (e *Engine) sectorIdx(local geom.Addr) uint64 {
	return uint64(local) / geom.SectorSize
}

// ctrUnitOf returns the BMT unit index covering data sector i's counters.
//
//simlint:hotpath
func (e *Engine) ctrUnitOf(i uint64) uint64 {
	groupBytes := e.split.GroupOf(i) * geom.SectorSize // counter-region byte offset of i's group sector
	return groupBytes / uint64(e.cfg.Granularity.CounterUnitBytes())
}

// ctrUnitAddr returns the local address of counter unit u.
//
//simlint:hotpath
func (e *Engine) ctrUnitAddr(u uint64) geom.Addr {
	return e.lay.ctrBase + geom.Addr(u*uint64(e.cfg.Granularity.CounterUnitBytes()))
}

// ctrSectorAddr returns the local address of the 32 B counter sector
// holding data sector i's minor counter (the write-dirty granularity).
//
//simlint:hotpath
func (e *Engine) ctrSectorAddr(i uint64) geom.Addr {
	return e.lay.ctrBase + geom.Addr(e.split.GroupOf(i)*geom.SectorSize)
}

// cctrSectorAddr is ctrSectorAddr for the compact layer.
//
//simlint:hotpath
func (e *Engine) cctrSectorAddr(i uint64) geom.Addr {
	return e.lay.cctrBase + geom.Addr(i/uint64(e.cfg.Compact.CountersPerSector())*geom.SectorSize)
}

// macAddrOf returns the local address of the 32 B MAC sector holding data
// sector i's MAC.
//
//simlint:hotpath
func (e *Engine) macAddrOf(i uint64) geom.Addr {
	perSector := uint64(geom.SectorSize / e.cfg.MACBytes)
	return e.lay.macBase + geom.Addr(i/perSector*geom.SectorSize)
}

// cctrUnitOf returns the compact-tree unit index covering sector i.
//
//simlint:hotpath
func (e *Engine) cctrUnitOf(i uint64) uint64 {
	secBytes := i / uint64(e.cfg.Compact.CountersPerSector()) * geom.SectorSize
	return secBytes / uint64(e.cfg.Granularity.CounterUnitBytes())
}

// cctrUnitAddr returns the local address of compact counter unit u.
//
//simlint:hotpath
func (e *Engine) cctrUnitAddr(u uint64) geom.Addr {
	return e.lay.cctrBase + geom.Addr(u*uint64(e.cfg.Granularity.CounterUnitBytes()))
}

//simlint:hotpath
func (e *Engine) regionOf(local geom.Addr) uint64 {
	return uint64(local) / uint64(e.cfg.CommonRegionBytes)
}

// --- functional counter-unit hashing ---

// freshUnitHash returns the hash of an untouched counter unit (all
// counters zero) — the tree's default leaf value.
func (e *Engine) freshUnitHash(u uint64) uint64 {
	return e.hashCounterUnit(u, true)
}

// counterUnitHash recomputes the hash of unit u's DRAM-resident copy
// from current counter state. A replayed unit hashes as the boot image
// (all counters zero) — the attacker substituted the stale initial copy
// — so verification against the tree fails exactly when the unit has
// been written since boot. The mark is cleared when the controller next
// writes the unit (see dirtyOriginalCounter), which replaces the DRAM
// copy with fresh state.
func (e *Engine) counterUnitHash(u uint64) uint64 {
	return e.hashCounterUnit(u, e.ctrReplayed.Get(u))
}

// hashCounterUnit hashes unit u's serialized counter contents as they
// exist in the ORIGINAL (in-memory) copy. The unit index is deliberately
// NOT part of the input: the tree stores hashes per unit position, which
// already binds location, and a contents-only hash lets every untouched
// unit match one default leaf.
//
// With compact mirrored counters active, a sector's writes live entirely
// in the compact layer until its compact counter saturates or its block
// is disabled — until then the original copy (and hence this hash) shows
// zero, exactly like the stale DRAM copy real hardware would hold.
//
//simlint:hotpath
func (e *Engine) hashCounterUnit(u uint64, fresh bool) uint64 {
	groupSize := e.split.Config().GroupSize
	groupsPerUnit := e.cfg.Granularity.CounterUnitBytes() / geom.SectorSize
	buf := e.hashScratch[:0]
	var tmp [8]byte
	for g := 0; g < groupsPerUnit; g++ {
		gi := u*uint64(groupsPerUnit) + uint64(g)
		var major uint64
		if !fresh {
			major = e.split.Major(gi)
		}
		binary.LittleEndian.PutUint64(tmp[:], major)
		buf = append(buf, tmp[:]...)
		base := gi * uint64(groupSize)
		for k := 0; k < groupSize; k++ {
			var m uint32
			if !fresh {
				m = e.originalMinor(base+uint64(k), major)
			}
			buf = append(buf, byte(m), byte(m>>8))
		}
	}
	e.hashScratch = buf
	return siphash.Sum64(e.treeKey, buf)
}

// originalMinor returns the minor counter as stored in the original
// in-memory copy: the live value once the sector runs on original
// counters (major bumped, compact saturated, or block disabled), zero
// while its writes are still absorbed by the compact layer.
//
//simlint:hotpath
func (e *Engine) originalMinor(i uint64, major uint64) uint32 {
	m := e.split.Minor(i)
	if e.compact == nil || major > 0 {
		return m
	}
	if m >= e.compact.Saturation() || e.compact.Disabled(i) {
		return m
	}
	return 0
}

// freshCompactUnitHash is the default leaf hash of the compact tree.
func (e *Engine) freshCompactUnitHash(u uint64) uint64 {
	return e.hashCompactUnit(u, true)
}

// compactUnitHash recomputes the hash of compact unit u's DRAM-resident
// copy; a replayed unit hashes as the boot image (see counterUnitHash).
func (e *Engine) compactUnitHash(u uint64) uint64 {
	return e.hashCompactUnit(u, e.cctrReplayed.Get(u))
}

// hashCompactUnit hashes compact unit u's counter values (contents only,
// for the same default-leaf reason as hashCounterUnit; the leading 0x43
// byte domain-separates it from the full-counter hash).
//
//simlint:hotpath
func (e *Engine) hashCompactUnit(u uint64, fresh bool) uint64 {
	per := uint64(e.cfg.Compact.CountersPerSector())
	sectorsPerUnit := uint64(e.cfg.Granularity.CounterUnitBytes()/geom.SectorSize) * per
	buf := append(e.hashScratch[:0], 0x43)
	base := u * sectorsPerUnit
	for k := uint64(0); k < sectorsPerUnit; k++ {
		var v uint32
		if !fresh && base+k < e.lay.dataSectors {
			v = e.compact.Value(base + k)
		}
		buf = append(buf, byte(v))
	}
	e.hashScratch = buf
	return siphash.Sum64(e.treeKey, buf)
}

// --- functional data-image helpers ---

// setMAC stores sector i's truncated MAC in the DRAM image.
func (e *Engine) setMAC(i uint64, mac uint64) {
	e.macs.Set(i, mac)
	e.macsSet.Set(i)
}

// materialize ensures the DRAM image holds sector local, lazily encrypting
// the workload's initial contents under the sector's current counter. The
// returned slice aliases the dense image, so attack primitives mutate the
// stored copy in place.
func (e *Engine) materialize(local geom.Addr) []byte {
	local = geom.SectorAddr(local)
	i := e.sectorIdx(local)
	if e.cfg.SSM {
		return e.ssmShare0(i)
	}
	if ct, ok := e.mem.Lookup(i); ok {
		return ct
	}
	dst := e.mem.Put(i)
	var pt [geom.SectorSize]byte
	if e.InitData != nil {
		copy(pt[:], e.InitData(local))
	}
	if e.cfg.NoSecurity {
		copy(dst, pt[:])
		return dst
	}
	ctr := e.counterOf(i)
	if err := e.enc.EncryptInto(dst, pt[:], uint64(local), ctr); err != nil {
		panic(fmt.Sprintf("secmem: encrypt: %v", err))
	}
	e.setMAC(i, siphash.Truncate(siphash.SumTagged(e.macKey, dst, uint64(local), ctr), e.cfg.MACBytes))
	return dst
}

// plaintextOf decrypts the current DRAM image of sector local. The result
// is a fresh buffer (it escapes into ReadResult.Data).
func (e *Engine) plaintextOf(local geom.Addr) []byte {
	local = geom.SectorAddr(local)
	if e.cfg.SSM {
		pt, _ := e.ssmReconstruct(e.sectorIdx(local))
		return pt
	}
	ct := e.materialize(local)
	out := make([]byte, len(ct))
	if e.cfg.NoSecurity {
		copy(out, ct)
		return out
	}
	i := e.sectorIdx(local)
	if err := e.enc.DecryptInto(out, ct, uint64(local), e.counterOf(i)); err != nil {
		panic(fmt.Sprintf("secmem: decrypt: %v", err))
	}
	return out
}

// storeCiphertext encrypts plaintext pt for sector local under its current
// counter directly into the DRAM image.
func (e *Engine) storeCiphertext(local geom.Addr, pt []byte) []byte {
	local = geom.SectorAddr(local)
	i := e.sectorIdx(local)
	ctr := e.counterOf(i)
	dst := e.mem.Put(i)
	if err := e.enc.EncryptInto(dst, pt, uint64(local), ctr); err != nil {
		panic(fmt.Sprintf("secmem: encrypt: %v", err))
	}
	return dst
}

// currentMAC computes the MAC of sector local's current ciphertext.
//
//simlint:hotpath
func (e *Engine) currentMAC(local geom.Addr) uint64 {
	local = geom.SectorAddr(local)
	ct := e.materialize(local)
	i := e.sectorIdx(local)
	return siphash.Truncate(siphash.SumTagged(e.macKey, ct, uint64(local), e.counterOf(i)), e.cfg.MACBytes)
}

// onCounterOverflow handles a split-counter minor overflow: every
// materialized sector of the group is re-encrypted under its new counter
// and its MAC refreshed, charging a read and a write per sector.
// The group's plaintexts were captured by bumpCounter before the reset.
//
// Re-encryption is batched over maximal contiguous runs of materialized
// sectors (one EncryptSectors call per run, into reused buffers); the
// per-sector MAC refresh and traffic accounting that follow run in the
// same ascending order as the old per-sector loop, so the simulation is
// bit-identical.
func (e *Engine) onCounterOverflow(gi uint64, sectors []uint64) {
	pts := e.overflowPlain
	for a := 0; a < len(sectors); a++ {
		if _, ok := pts[geom.Addr(sectors[a]*geom.SectorSize)]; !ok {
			continue // never materialized: nothing stored to re-encrypt
		}
		// Extend the contiguous materialized run starting at a.
		src, ctrs := e.runPT[:0], e.runCtrs[:0]
		b := a
		for b < len(sectors) {
			pt, ok := pts[geom.Addr(sectors[b]*geom.SectorSize)]
			if !ok {
				break
			}
			src = append(src, pt...)
			ctrs = append(ctrs, e.counterOf(sectors[b]))
			b++
		}
		if cap(e.runCT) < len(src) {
			e.runCT = make([]byte, len(src))
		}
		ct := e.runCT[:len(src)]
		base := geom.Addr(sectors[a] * geom.SectorSize)
		if err := e.enc.EncryptSectors(ct, src, uint64(base), ctrs); err != nil {
			panic(fmt.Sprintf("secmem: overflow re-encrypt: %v", err))
		}
		for k, off := a, 0; k < b; k, off = k+1, off+geom.SectorSize {
			copy(e.mem.Put(sectors[k]), ct[off:off+geom.SectorSize])
		}
		e.runPT, e.runCT, e.runCtrs = src[:0], ct[:0], ctrs[:0]
		a = b - 1
	}
	for _, s := range sectors {
		local := geom.Addr(s * geom.SectorSize)
		if _, ok := pts[local]; !ok {
			continue
		}
		e.setMAC(s, e.currentMAC(local))
		e.macStale.Clear(s)
		e.ch.Access(local, false, stats.Data, nil)
		e.ch.Access(local, true, stats.Data, nil)
		if e.macCache != nil {
			ma := e.macAddrOf(s)
			e.handleEvictions(e.macCache.Insert(ma, e.macCache.MaskFor(ma), true), stats.MAC, false)
		}
	}
}
