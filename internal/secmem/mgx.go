package secmem

// The mgx frontier scheme (PAPERS.md: "MGX: Near-Zero Overhead Memory
// Protection for Data-Intensive Accelerators"): instead of fetching
// encryption counters from DRAM, version numbers for sectors on regular
// write streams are derived deterministically from the access pattern
// the workload itself declares. The controller keeps the derived
// versions on-chip (they are a pure function of the stream cursor, so
// real hardware regenerates rather than stores them); no counter fetch,
// no tree walk, no freshness traffic. Sectors written outside any
// declared stream fall back to the stored split-counter + BMT path —
// the fallback is the unmodified Plutus-baseline machinery.
//
// The scheme needs one bit of application knowledge: whether an address
// sits on a regular stream. That is the secmem↔workload contract below
// (StreamCursorSource), wired through Engine.StreamHint by the
// embedding GPU exactly like the InitData hook.

import "github.com/plutus-gpu/plutus/internal/geom"

// StreamCursorSource is the workload side of the mgx contract: a
// workload that can map a global address onto one of its regular write
// streams returns the stream's cursor and ok=true; addresses off every
// stream return ok=false. The interface is satisfied structurally
// (workload does not import secmem).
type StreamCursorSource interface {
	StreamCursor(addr geom.Addr) (stream uint64, ok bool)
}

// counterOf returns sector i's effective encryption counter: the
// on-chip derived version for mgx-derived sectors, the split-counter
// value for everything else. Every functional-datapath counter use goes
// through this helper so the two version domains can never mix.
//
//simlint:hotpath
func (e *Engine) counterOf(i uint64) uint64 {
	if e.cfg.MGX && e.mgxDerived.Get(i) {
		return e.mgxVer.Get(i)
	}
	return e.split.Value(i)
}

// mgxClassify decides — sticky, on first touch — whether sector i rides
// a derived version stream. A sector once classified never migrates:
// versions must be monotone within one domain, and real hardware could
// not re-derive a version history that started in the other domain.
// With no stream hint wired, every sector is irregular and mgx degrades
// to the plain stored-counter scheme.
func (e *Engine) mgxClassify(i uint64, local geom.Addr) bool {
	if e.mgxDerived.Get(i) {
		return true
	}
	if e.mgxIrregular.Get(i) {
		return false
	}
	if e.StreamHint != nil {
		if _, ok := e.StreamHint(local); ok {
			e.mgxDerived.Set(i)
			return true
		}
	}
	e.mgxIrregular.Set(i)
	return false
}

// mgxBumpVersion advances a derived sector's on-chip version (the mgx
// analogue of bumpCounter; derived sectors never touch the split store,
// so stored-counter overflow handling does not apply to them).
func (e *Engine) mgxBumpVersion(i uint64) {
	e.mgxVer.Set(i, e.mgxVer.Get(i)+1)
}

// SkewDerivedVersion desynchronizes sector local's derived version from
// its stored ciphertext — the seeded-mutation probe for the oracle's CI
// gate: a version-derivation bug must surface as a MAC mismatch on the
// next read, never as silent corruption. Returns false when the sector
// is not mgx-derived (nothing to skew).
func (e *Engine) SkewDerivedVersion(local geom.Addr) bool {
	local = geom.SectorAddr(local)
	i := e.sectorIdx(local)
	if !e.cfg.MGX || !e.mgxDerived.Get(i) {
		return false
	}
	e.materialize(local) // pin the ciphertext under the current version
	e.mgxVer.Set(i, e.mgxVer.Get(i)+1)
	e.taintData.Set(i) // decryption under the skewed version is garbage
	e.st.Sec.TamperInjected++
	return true
}
