package secmem

// Registry conformance: every scheme reachable through Names() — and
// therefore through the harness, plutusd, the cluster and the tamper
// oracle — must honour the full Engine contract. A scheme added to the
// registry is tested here by construction; nothing needs opting in.

import (
	"bytes"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
)

// conformanceRig builds a registry scheme's rig with the wiring every
// embedding provides: initial contents and, for mgx, a stream hint
// splitting the working set into a declared stream and irregular space.
func conformanceRig(t *testing.T, name string) *testRig {
	t.Helper()
	cfg, err := ByName(name, protected)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	r := newRig(t, cfg)
	r.e.InitData = func(local geom.Addr) []byte {
		return sector(uint32(local)^0xdead, uint32(local)+7)
	}
	if cfg.MGX {
		r.e.StreamHint = func(local geom.Addr) (uint64, bool) {
			if local < 0x800 {
				return uint64(local) / geom.BlockSize, true
			}
			return 0, false
		}
	}
	return r
}

// driveConformance runs a deterministic mixed workload: fill, re-write,
// and read back with verification, asserting verdict-count monotonicity
// at every step.
func driveConformance(t *testing.T, r *testRig) {
	t.Helper()
	last := uint64(0)
	mono := func() {
		if tot := r.st.Sec.Verdicts.Total(); tot < last {
			t.Fatalf("verdict count went backwards: %d after %d", tot, last)
		} else {
			last = tot
		}
	}
	for i := 0; i < 48; i++ {
		a := geom.Addr(i%32) * geom.SectorSize
		if i%8 < 5 {
			r.write(t, a, sector(uint32(i)*0x01010101, uint32(i)+0x9000))
		} else {
			res := r.read(t, a)
			if !res.OK {
				t.Fatalf("benign read of %#x failed verification", uint64(a))
			}
		}
		mono()
	}
	if r.st.Sec.Verdicts.Total() != 0 {
		t.Fatalf("benign conformance run recorded verdicts: %v", r.st.Sec.Verdicts)
	}
}

func snapshotEngine(t *testing.T, e *Engine) []byte {
	t.Helper()
	enc := checkpoint.NewEncoder()
	if err := e.Snapshot(enc); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return enc.Data()
}

// TestConformanceSnapshotRoundTrip: after a mixed workload, snapshotting
// any registry scheme, restoring into a freshly built engine, and
// re-snapshotting reproduces the exact bytes — and the restored engine
// serves the same plaintext.
func TestConformanceSnapshotRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			r := conformanceRig(t, name)
			driveConformance(t, r)
			want := snapshotEngine(t, r.e)

			fresh := conformanceRig(t, name)
			dec := checkpoint.NewDecoder(want)
			if err := fresh.e.Restore(dec); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if err := dec.Finish(); err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if got := snapshotEngine(t, fresh.e); !bytes.Equal(got, want) {
				t.Fatalf("re-snapshot diverges: %d vs %d bytes", len(got), len(want))
			}
			for i := 0; i < 32; i++ {
				a := geom.Addr(i) * geom.SectorSize
				wantRes, gotRes := r.read(t, a), fresh.read(t, a)
				if !gotRes.OK || !bytes.Equal(gotRes.Data, wantRes.Data) {
					t.Fatalf("restored engine diverges at %#x", uint64(a))
				}
			}
		})
	}
}

// TestConformanceGeometry pins each scheme's address-space invariants:
// the data region's sector count, disjoint metadata regions for the
// counter-based schemes, and bijective share placement for ssm.
func TestConformanceGeometry(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			r := conformanceRig(t, name)
			e, cfg := r.e, r.e.Config()
			if cfg.ProtectedBytes%uint64(geom.BlockSize) != 0 {
				t.Fatalf("protected size %d not block aligned", cfg.ProtectedBytes)
			}
			if cfg.NoSecurity {
				return
			}
			if got, want := e.lay.dataSectors, cfg.ProtectedBytes/geom.SectorSize; got != want {
				t.Fatalf("dataSectors = %d, want %d", got, want)
			}
			if cfg.SSM {
				// Every share region must be a bijection of the data
				// sector space, and regions must never collide.
				seen := make(map[uint64]bool)
				for rgn := 0; rgn < cfg.SSMShares; rgn++ {
					lo := uint64(rgn) * e.lay.dataSectors
					hi := lo + e.lay.dataSectors
					for _, i := range []uint64{0, 1, 31, e.lay.dataSectors / 2, e.lay.dataSectors - 1} {
						s := e.ssmSlot(rgn, i)
						if s < lo || s >= hi {
							t.Fatalf("region %d slot %d outside [%d,%d)", rgn, s, lo, hi)
						}
						if seen[s] {
							t.Fatalf("slot collision at %d", s)
						}
						seen[s] = true
					}
					if e.ssmSlot(rgn, 0) == e.ssmSlot(rgn, 1) {
						t.Fatalf("region %d placement not injective", rgn)
					}
				}
				return
			}
			// Counter-based schemes: metadata regions sit past the data
			// region, in order, without overlap.
			if e.lay.ctrBase < geom.Addr(cfg.ProtectedBytes) {
				t.Fatalf("counter region overlaps data: %#x", uint64(e.lay.ctrBase))
			}
			if e.lay.macBase < e.lay.ctrBase+geom.Addr(e.lay.ctrBytes) {
				t.Fatalf("MAC region overlaps counters")
			}
			if e.lay.bmtBase < e.lay.macBase+geom.Addr(e.lay.macBytes) {
				t.Fatalf("BMT region overlaps MACs")
			}
			if e.compact != nil && e.lay.cctrBase < e.lay.bmtBase {
				t.Fatalf("compact region overlaps BMT window")
			}
		})
	}
}

// TestConformanceRegistryComplete: the in-package scheme list used by
// the older round-trip tests and the registry agree, so a scheme cannot
// be registered without also running the whole conformance suite.
func TestConformanceRegistryComplete(t *testing.T) {
	names := Names()
	if got, want := len(allSchemes()), len(names); got != want {
		t.Fatalf("allSchemes() has %d entries, registry %d — keep them in lockstep", got, want)
	}
	for _, name := range names {
		if _, err := ByName(name, protected); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
}
