// Package secmem implements the per-partition secure memory controller:
// the functional and timing model of memory encryption, MAC-based
// integrity, Bonsai-Merkle-Tree freshness, and the three Plutus
// techniques layered on top (value-based integrity verification, compact
// mirrored counters, and fine-granularity metadata blocks).
//
// One Engine serves one memory partition, as in PSSM: it owns the
// partition's metadata caches, its value cache, its split-counter state,
// its integrity trees, and its DRAM channel. The datapath is functionally
// real — writebacks truly encrypt into a simulated DRAM image and reads
// decrypt and verify it — so the security guarantees are testable, while
// the timing side charges every metadata access to the shared DRAM
// channel the way the paper's bandwidth analysis requires.
package secmem

import (
	"fmt"
	"strings"

	"github.com/plutus-gpu/plutus/internal/cache"
	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/crypto/gcipher"
	"github.com/plutus-gpu/plutus/internal/crypto/siphash"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/valcache"
)

// Granularity selects the paper's §IV-E metadata-block design space.
type Granularity int

const (
	// GranAll128 is the prior-work baseline: counters, MACs and BMT nodes
	// all live in 128 B blocks; a counter miss fetches the whole block
	// because the BMT hashes 128 B units.
	GranAll128 Granularity = iota
	// GranCtr32BMT128 shrinks counter units to 32 B but keeps 128 B
	// (16-ary) BMT nodes: more leaves, flatter tree.
	GranCtr32BMT128
	// GranAll32 uses 32 B for everything: counter units and BMT nodes
	// (4-ary), so every metadata fetch is a single DRAM transaction but
	// the tree is taller. This is the design Plutus adopts.
	GranAll32
)

// String names the design for reports.
func (g Granularity) String() string {
	switch g {
	case GranAll128:
		return "all-128B"
	case GranCtr32BMT128:
		return "ctr32-bmt128"
	case GranAll32:
		return "all-32B"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// CounterUnitBytes returns the counter fetch/hash granularity.
func (g Granularity) CounterUnitBytes() int {
	if g == GranAll128 {
		return 128
	}
	return 32
}

// BMTNodeBytes returns the tree-node block size.
func (g Granularity) BMTNodeBytes() int {
	if g == GranAll32 {
		return 32
	}
	return 128
}

// Config describes one partition's secure-memory scheme.
type Config struct {
	// Scheme is the display name used in result tables.
	Scheme string

	// NoSecurity disables everything (the normalization baseline).
	NoSecurity bool

	// Encryption selects CME (PSSM baseline) or XTS (Plutus).
	Encryption gcipher.Mode

	// MACBytes is the per-sector MAC size: 4 in PSSM, 8 in Plutus.
	MACBytes int

	// Granularity is the metadata-block design (paper §IV-E).
	Granularity Granularity

	// Compact selects the compact mirrored-counter design (§IV-D).
	Compact counters.CompactKind
	// CompactThreshold is the adaptive disable threshold (0 = default 8).
	CompactThreshold int

	// ValueVerify enables value-based integrity verification (§IV-C).
	ValueVerify bool
	// Value configures the value cache (used when ValueVerify is set).
	Value valcache.Config

	// CommonCounters models Na et al. [18]: a 16 KiB-region on-chip
	// write tracker; reads of never-written regions skip counter and
	// tree traffic entirely.
	CommonCounters bool
	// CommonRegionBytes is the tracking granularity (default 16 KiB).
	CommonRegionBytes int

	// NoTreeTraffic eliminates all integrity-tree traffic, modelling the
	// MGX/TNPU/softVN-style comparison of Fig. 20.
	NoTreeTraffic bool

	// MGX enables the mgx frontier scheme: sectors on workload-declared
	// regular write streams derive their version numbers on-chip from the
	// stream cursor (Engine.StreamHint, the secmem↔workload contract)
	// instead of fetching stored counter blocks; sectors written outside
	// a declared stream fall back to the stored split-counter + BMT path.
	MGX bool

	// SSM enables the secret-sharing frontier scheme: every data sector
	// is stored as SSMShares Shamir shares scattered across the protected
	// space, and k-of-n reconstruction replaces the counter/MAC/BMT
	// verify path entirely (tamper surfaces as reconstruction failure).
	SSM bool
	// SSMShares is n, the total shares per sector (default 3).
	SSMShares int
	// SSMThreshold is k, the shares needed to reconstruct (default 2).
	// The n-k surplus shares are the redundancy that detects tampering.
	SSMThreshold int

	// EagerTreeUpdate propagates every counter update to the tree root
	// immediately (paper §II-A3's "eager update scheme") instead of
	// riding updates on cache evictions (the lazy scheme all evaluated
	// configurations use). Exists for the lazy-vs-eager ablation.
	EagerTreeUpdate bool

	// ProtectedBytes is the partition's protected data capacity.
	ProtectedBytes uint64

	// MetaCacheBytes sizes each metadata cache (paper: 2 KiB each).
	MetaCacheBytes int
	// MetaCacheWays is the associativity (paper: 4).
	MetaCacheWays int
	// MetaMSHRs bounds outstanding metadata misses per cache.
	MetaMSHRs int

	// MACLatency is the MAC engine latency (paper Table II: 40 cycles).
	MACLatency sim.Cycle
	// AESLatency is the AES pipeline latency per sector.
	AESLatency sim.Cycle

	// Key seeds all cryptographic keys for the partition.
	Key [32]byte
}

// Default latencies and sizes from the paper's Tables I/II.
const (
	DefaultMetaCacheBytes = 2048
	DefaultMACLatency     = 40
	DefaultAESLatency     = 30
	DefaultRegionBytes    = 16 * 1024
)

// Normalize fills zero-valued fields with paper defaults and validates.
func (c *Config) Normalize() error {
	if c.MetaCacheBytes == 0 {
		c.MetaCacheBytes = DefaultMetaCacheBytes
	}
	if c.MetaCacheWays == 0 {
		c.MetaCacheWays = 4
	}
	if c.MetaMSHRs == 0 {
		c.MetaMSHRs = 256
	}
	if c.MACLatency == 0 {
		c.MACLatency = DefaultMACLatency
	}
	if c.AESLatency == 0 {
		c.AESLatency = DefaultAESLatency
	}
	if c.CommonRegionBytes == 0 {
		c.CommonRegionBytes = DefaultRegionBytes
	}
	if c.ProtectedBytes == 0 {
		c.ProtectedBytes = 64 << 20
	}
	if c.MACBytes == 0 {
		c.MACBytes = 8
	}
	if c.ValueVerify && c.Value.Entries == 0 {
		c.Value = valcache.DefaultConfig()
	}
	if c.SSM {
		if c.SSMShares == 0 {
			c.SSMShares = 3
		}
		if c.SSMThreshold == 0 {
			c.SSMThreshold = 2
		}
	}
	if c.NoSecurity {
		return nil
	}
	if c.SSM {
		switch {
		case c.MGX || c.ValueVerify || c.Compact != counters.CompactOff || c.CommonCounters:
			return fmt.Errorf("secmem: SSM composes with no counter/MAC/tree mechanism (shares are the whole datapath)")
		case c.SSMThreshold < 2 || c.SSMShares <= c.SSMThreshold || c.SSMShares > 8:
			return fmt.Errorf("secmem: SSM needs 2 ≤ k < n ≤ 8 shares; got k=%d n=%d", c.SSMThreshold, c.SSMShares)
		case c.ProtectedBytes%uint64(geom.BlockSize) != 0:
			return fmt.Errorf("secmem: protected size %d not block aligned", c.ProtectedBytes)
		}
		return nil
	}
	if c.MGX && (c.Compact != counters.CompactOff || c.CommonCounters || c.ValueVerify) {
		return fmt.Errorf("secmem: MGX derived versions compose only with the plain MAC+BMT fallback path")
	}
	switch {
	case c.MACBytes != 1 && c.MACBytes != 2 && c.MACBytes != 4 && c.MACBytes != 8:
		return fmt.Errorf("secmem: MAC size %d B not a power of two ≤ 8", c.MACBytes)
	case c.ProtectedBytes%uint64(geom.BlockSize) != 0:
		return fmt.Errorf("secmem: protected size %d not block aligned", c.ProtectedBytes)
	case c.ValueVerify && c.Encryption != gcipher.ModeXTS:
		return fmt.Errorf("secmem: value verification requires XTS (malleability resistance); got %v", c.Encryption)
	}
	if c.ValueVerify {
		if err := c.Value.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// --- canonical scheme configurations used across the evaluation ---

// Baseline returns the no-security configuration.
func Baseline(protected uint64) Config {
	return Config{Scheme: "nosec", NoSecurity: true, ProtectedBytes: protected}
}

// PSSM returns the paper's baseline: CME, sectored split counters, 8 B
// MACs (the paper upgrades PSSM's 4 B MAC to 8 B for its baseline),
// 128 B metadata blocks, 16-ary BMT.
func PSSM(protected uint64) Config {
	return Config{
		Scheme:         "pssm",
		Encryption:     gcipher.ModeCME,
		MACBytes:       8,
		Granularity:    GranAll128,
		ProtectedBytes: protected,
	}
}

// PSSM4B returns PSSM with its original truncated 4 B MAC.
func PSSM4B(protected uint64) Config {
	c := PSSM(protected)
	c.Scheme = "pssm-4Bmac"
	c.MACBytes = 4
	return c
}

// CommonCtr returns PSSM plus the common-counters tracker [18].
func CommonCtr(protected uint64) Config {
	c := PSSM(protected)
	c.Scheme = "pssm+cc"
	c.CommonCounters = true
	return c
}

// PlutusValueOnly returns PSSM plus value verification only (Fig. 15).
func PlutusValueOnly(protected uint64) Config {
	c := PSSM(protected)
	c.Scheme = "plutus-V"
	c.Encryption = gcipher.ModeXTS
	c.ValueVerify = true
	c.Value = valcache.DefaultConfig()
	return c
}

// PlutusFineGrain returns PSSM with a given metadata granularity (Fig. 16).
func PlutusFineGrain(protected uint64, g Granularity) Config {
	c := PSSM(protected)
	c.Scheme = "plutus-G-" + g.String()
	c.Granularity = g
	return c
}

// PlutusCompact returns PSSM plus one compact-counter design (Fig. 17).
func PlutusCompact(protected uint64, k counters.CompactKind) Config {
	c := PSSM(protected)
	c.Scheme = "plutus-C-" + k.String()
	c.Compact = k
	return c
}

// Plutus returns the full design: XTS, value verification, adaptive
// compact counters, all-32 B metadata.
func Plutus(protected uint64) Config {
	return Config{
		Scheme:         "plutus",
		Encryption:     gcipher.ModeXTS,
		MACBytes:       8,
		Granularity:    GranAll32,
		Compact:        counters.Compact3BitAdaptive,
		ValueVerify:    true,
		Value:          valcache.DefaultConfig(),
		ProtectedBytes: protected,
	}
}

// PlutusNoTree returns Plutus with integrity-tree traffic eliminated
// (Fig. 20's MGX-style comparison).
func PlutusNoTree(protected uint64) Config {
	c := Plutus(protected)
	c.Scheme = "plutus-notree"
	c.NoTreeTraffic = true
	return c
}

// MGXConfig returns the mgx frontier scheme (PAPERS.md: "MGX: Near-Zero
// Overhead Memory Protection for Data-Intensive Accelerators"): XTS
// encryption with 8 B MACs and all-32 B metadata, but version numbers
// for regular-stream sectors derived on-chip from workload stream
// cursors — near-zero counter and tree traffic on accelerator-style
// streaming workloads, with the stored split-counter + BMT path kept as
// the fallback for irregular writes.
func MGXConfig(protected uint64) Config {
	return Config{
		Scheme:         "mgx",
		Encryption:     gcipher.ModeXTS,
		MACBytes:       8,
		Granularity:    GranAll32,
		MGX:            true,
		ProtectedBytes: protected,
	}
}

// SSMConfig returns the secret-sharing frontier scheme (PAPERS.md:
// "Secure Scattered Memory"): each sector stored as 3 Shamir shares
// (2-of-3) scattered across the protected space under keyed rotations.
// There is no counter, MAC or tree fetch path at all — reads fetch the
// shares and reconstruct, and any single-share corruption surfaces as a
// reconstruction inconsistency. The trade-off is the inverse of
// Plutus's: zero metadata traffic, n× data amplification.
func SSMConfig(protected uint64) Config {
	return Config{
		Scheme:         "ssm",
		SSM:            true,
		SSMShares:      3,
		SSMThreshold:   2,
		ProtectedBytes: protected,
	}
}

// schemeTable is the single registry behind ByName and Names: every
// name the CLIs and plutusd's API accept, paired with its constructor,
// in the canonical report order (baseline, prior work, Plutus ablations,
// full Plutus). A slice — not a map — so enumeration order is fixed.
var schemeTable = []struct {
	name string
	make func(uint64) Config
}{
	{"nosec", Baseline},
	{"pssm", PSSM},
	{"pssm-4Bmac", PSSM4B},
	{"pssm+cc", CommonCtr},
	{"plutus-V", PlutusValueOnly},
	{"plutus-G32", func(p uint64) Config { return PlutusFineGrain(p, GranAll32) }},
	{"plutus-G32-128", func(p uint64) Config { return PlutusFineGrain(p, GranCtr32BMT128) }},
	{"plutus-C2", func(p uint64) Config { return PlutusCompact(p, counters.Compact2Bit) }},
	{"plutus-C3", func(p uint64) Config { return PlutusCompact(p, counters.Compact3Bit) }},
	{"plutus-C3A", func(p uint64) Config { return PlutusCompact(p, counters.Compact3BitAdaptive) }},
	{"plutus-notree", PlutusNoTree},
	{"plutus", Plutus},
	{"mgx", MGXConfig},
	{"ssm", SSMConfig},
}

// Names lists every scheme name ByName accepts, in canonical order.
func Names() []string {
	out := make([]string, len(schemeTable))
	for i, s := range schemeTable {
		out[i] = s.name
	}
	return out
}

// ByName resolves a command-line or API scheme name to its canonical
// configuration (the names cmd/plutussim, cmd/benchsmoke and plutusd
// accept). The error for an unknown name lists the full valid set.
func ByName(name string, protected uint64) (Config, error) {
	for _, s := range schemeTable {
		if s.name == name {
			return s.make(protected), nil
		}
	}
	return Config{}, fmt.Errorf("unknown scheme %q (valid: %s)", name, strings.Join(Names(), " "))
}

// --- attack-surface capabilities ---
//
// The tamper subsystem validates attack plans against these: an attack
// kind that targets metadata a scheme does not store in DRAM is a plan
// error, not a silent no-op (see tamper.Plan.ValidateFor).

// HasDRAMMAC reports whether the scheme stores per-sector MACs in DRAM
// (the mac-corrupt attack surface).
func (c Config) HasDRAMMAC() bool { return !c.NoSecurity && !c.SSM }

// HasDRAMCounters reports whether the scheme stores encryption counters
// in DRAM (the ctr-rollback attack surface). mgx qualifies: its
// irregular-write fallback keeps the stored split counters.
func (c Config) HasDRAMCounters() bool { return !c.NoSecurity && !c.SSM }

// HasDRAMTree reports whether the scheme maintains a DRAM-resident
// integrity tree (the bmt-corrupt attack surface). NoTreeTraffic elides
// the tree's traffic, not the tree itself.
func (c Config) HasDRAMTree() bool { return !c.NoSecurity && !c.SSM }

// keys derives the distinct engine keys from the config key material.
func (c *Config) keys() (enc [32]byte, mac siphash.Key, tree siphash.Key) {
	enc = c.Key
	var mb, tb [16]byte
	for i := 0; i < 16; i++ {
		mb[i] = c.Key[i] ^ 0x5a
		tb[i] = c.Key[16+i] ^ 0xa5
	}
	return enc, siphash.NewKey(mb), siphash.NewKey(tb)
}

// metaCache builds one metadata cache with the configured geometry.
func (c *Config) metaCache(name string, blockBytes int) *cache.Cache {
	return cache.MustNew(cache.Config{
		Name:      name,
		SizeBytes: c.MetaCacheBytes,
		BlockSize: blockBytes,
		Ways:      c.MetaCacheWays,
		MSHRs:     c.MetaMSHRs,
	})
}
