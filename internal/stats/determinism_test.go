package stats

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// Report tables key every row off SortedKeys, so its output must not
// depend on map insertion order or on the randomized iteration order of
// any particular run: pin that it is sorted and stable across shuffled
// rebuilds of the same map. (SortedKeys is the sanctioned
// collect-then-sort idiom that simlint's maporder analyzer recognises.)
func TestSortedKeysDeterministic(t *testing.T) {
	names := []string{"bfs", "sssp", "pagerank", "kcore", "mst", "hotspot", "lud", "nw"}
	rng := rand.New(rand.NewSource(3))

	var first []string
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		m := make(map[string]int, len(names))
		for i, n := range names {
			m[n] = i
		}
		keys := SortedKeys(m)
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("trial %d: keys not sorted: %v", trial, keys)
		}
		if first == nil {
			first = keys
			continue
		}
		if !reflect.DeepEqual(keys, first) {
			t.Fatalf("trial %d: keys %v differ from first trial %v", trial, keys, first)
		}
	}
}
