package stats

// The paper's Fig. 22 reports overall average power of each secure-memory
// scheme normalised to a system with no security. Power in a
// bandwidth-bound GPU is dominated by DRAM activity plus the security
// engines, so this reproduction uses an activity-based energy model: each
// event class carries an energy weight, the run's total energy is the
// weighted event sum, and power is energy divided by simulated cycles.
//
// Weights are in arbitrary units chosen from the usual ratios reported by
// DRAM/accelerator power studies (off-chip DRAM access ≈ two orders of
// magnitude above an on-chip SRAM access; AES and MAC engine operations in
// between). Only ratios matter: every figure reports power normalised to
// the no-security scheme on the same workload.

// EnergyModel holds per-event energy weights (picojoule-scale units).
type EnergyModel struct {
	DRAMPerByte   float64 // per byte moved on a DRAM pin
	DRAMPerAccess float64 // fixed per-transaction activation/IO cost
	SRAMPerAccess float64 // metadata/value-cache lookup
	AESPerBlock   float64 // one 16 B AES block operation
	MACPerOp      float64 // one MAC generation/verification
	CorePerInst   float64 // per warp-instruction baseline core energy
	StaticPerCyc  float64 // leakage/static per cycle
}

// DefaultEnergyModel returns the weights used throughout the evaluation.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		DRAMPerByte:   12.0,
		DRAMPerAccess: 120.0,
		SRAMPerAccess: 4.0,
		AESPerBlock:   18.0,
		MACPerOp:      30.0,
		CorePerInst:   45.0,
		StaticPerCyc:  220.0,
	}
}

// EnergyBreakdown is the result of applying an EnergyModel to a run.
type EnergyBreakdown struct {
	DRAM     float64
	Caches   float64
	Crypto   float64
	Core     float64
	Static   float64
	TotalRaw float64
}

// Energy applies the model to a run's statistics.
func (m EnergyModel) Energy(s *Stats) EnergyBreakdown {
	var e EnergyBreakdown
	e.DRAM = float64(s.Traffic.Total())*m.DRAMPerByte +
		float64(s.Traffic.Transactions())*m.DRAMPerAccess

	cacheAcc := s.L2.Accesses() + s.CounterCache.Accesses() + s.MACCache.Accesses() +
		s.BMTCache.Accesses() + s.CompactCache.Accesses() + s.CompactBMTC.Accesses()
	e.Caches = float64(cacheAcc) * m.SRAMPerAccess

	// Each verified or generated MAC is one MAC op; each 32 B sector
	// encrypted or decrypted is two 16 B AES block ops.
	macOps := s.Sec.MACVerified + s.Sec.MACWrites
	aesBlocks := 2 * (s.Traffic.Reads[Data] + s.Traffic.Writes[Data])
	e.Crypto = float64(macOps)*m.MACPerOp + float64(aesBlocks)*m.AESPerBlock

	e.Core = float64(s.Instructions) * m.CorePerInst
	e.Static = float64(s.Cycles) * m.StaticPerCyc
	e.TotalRaw = e.DRAM + e.Caches + e.Crypto + e.Core + e.Static
	return e
}

// Power returns average power in arbitrary units (energy per cycle).
func (m EnergyModel) Power(s *Stats) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return m.Energy(s).TotalRaw / float64(s.Cycles)
}
