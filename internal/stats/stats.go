// Package stats collects the measurements the paper's evaluation reports:
// DRAM traffic broken down by class (data vs. each kind of security
// metadata), request counts, cache hit rates, simulated cycles and
// instructions, and an activity-based energy estimate.
//
// All schemes in the reproduction write into the same Stats structure so
// the harness can print uniform tables for every figure.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Class identifies what a DRAM transaction was for.
type Class int

const (
	// Data is demand data traffic (L2 fills and writebacks).
	Data Class = iota
	// Counter is split-counter (full-size) block traffic.
	Counter
	// MAC is message-authentication-code traffic.
	MAC
	// BMT is Bonsai-Merkle-Tree node traffic for the full-size tree.
	BMT
	// CompactCounter is Plutus compact mirrored-counter traffic.
	CompactCounter
	// CompactBMT is traffic of the small tree over compact counters.
	CompactBMT
	numClasses
)

var classNames = [numClasses]string{"data", "counter", "mac", "bmt", "cctr", "cbmt"}

// String returns the short name used in report tables.
func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Classes lists all traffic classes in report order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Traffic accumulates DRAM bytes moved, per class and direction.
type Traffic struct {
	ReadBytes  [numClasses]uint64
	WriteBytes [numClasses]uint64
	Reads      [numClasses]uint64 // transaction counts
	Writes     [numClasses]uint64
}

// AddRead records a DRAM read transaction of n bytes for class c.
func (t *Traffic) AddRead(c Class, n int) {
	t.ReadBytes[c] += uint64(n)
	t.Reads[c]++
}

// AddWrite records a DRAM write transaction of n bytes for class c.
func (t *Traffic) AddWrite(c Class, n int) {
	t.WriteBytes[c] += uint64(n)
	t.Writes[c]++
}

// Bytes returns total bytes moved for class c in both directions.
func (t *Traffic) Bytes(c Class) uint64 { return t.ReadBytes[c] + t.WriteBytes[c] }

// Total returns total bytes moved across all classes.
func (t *Traffic) Total() uint64 {
	var s uint64
	for c := Class(0); c < numClasses; c++ {
		s += t.Bytes(c)
	}
	return s
}

// MetadataBytes returns bytes moved for everything except demand data.
func (t *Traffic) MetadataBytes() uint64 { return t.Total() - t.Bytes(Data) }

// Transactions returns the total DRAM transaction count.
func (t *Traffic) Transactions() uint64 {
	var s uint64
	for c := Class(0); c < numClasses; c++ {
		s += t.Reads[c] + t.Writes[c]
	}
	return s
}

// Add accumulates o into t (used to merge per-partition traffic).
func (t *Traffic) Add(o *Traffic) {
	for c := Class(0); c < numClasses; c++ {
		t.ReadBytes[c] += o.ReadBytes[c]
		t.WriteBytes[c] += o.WriteBytes[c]
		t.Reads[c] += o.Reads[c]
		t.Writes[c] += o.Writes[c]
	}
}

// CacheStats tracks hit/miss counts for one cache.
type CacheStats struct {
	Hits, Misses, MSHRMerges, Evictions, DirtyEvictions uint64
}

// Accesses returns total lookups.
func (c *CacheStats) Accesses() uint64 { return c.Hits + c.Misses + c.MSHRMerges }

// HitRate returns the fraction of lookups that hit (MSHR merges count as
// hits for this purpose: they did not generate a new DRAM request).
func (c *CacheStats) HitRate() float64 {
	a := c.Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.Hits+c.MSHRMerges) / float64(a)
}

// Add accumulates o into c.
func (c *CacheStats) Add(o *CacheStats) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.MSHRMerges += o.MSHRMerges
	c.Evictions += o.Evictions
	c.DirtyEvictions += o.DirtyEvictions
}

// Verdict classifies the outcome of one read issued while the DRAM
// image is under attack (the tamper-injection subsystem's taxonomy).
// Detection verdicts name the mechanism that caught the attack;
// acceptance verdicts record reads of data-tainted sectors that passed
// verification anyway.
type Verdict int

const (
	// VerdictDetectedByMAC is a read rejected by MAC comparison (either
	// a mismatch, or a stale write-guarantee MAC that failed to value-
	// verify — both surface as TamperDetected).
	VerdictDetectedByMAC Verdict = iota
	// VerdictDetectedByBMT is a read rejected by counter/tree freshness
	// verification (surfaces as ReplayDetected).
	VerdictDetectedByBMT
	// VerdictAcceptedByValueCache is a read of a data-tainted sector that
	// value-verified anyway: a false accept, bounded by the paper's Eq. 1
	// forgery probability.
	VerdictAcceptedByValueCache
	// VerdictSilentCorruption is a read of a data-tainted sector accepted
	// without value verification — the failure integrity-enabled schemes
	// must never produce (the no-security baseline always does).
	VerdictSilentCorruption
	// VerdictDetectedByReconstruction is a read rejected by k-of-n
	// secret-share reconstruction — the ssm scheme's only verification
	// mechanism, where tamper surfaces as inconsistent shares (also
	// counted in TamperDetected).
	VerdictDetectedByReconstruction
	numVerdicts
)

var verdictNames = [numVerdicts]string{
	"detected-by-mac", "detected-by-bmt", "accepted-by-value-cache", "silent-corruption",
	"detected-by-reconstruction",
}

// String returns the verdict's report name.
func (v Verdict) String() string {
	if v < 0 || v >= numVerdicts {
		return fmt.Sprintf("verdict(%d)", int(v))
	}
	return verdictNames[v]
}

// VerdictKinds lists all verdicts in declaration order.
func VerdictKinds() []Verdict {
	out := make([]Verdict, numVerdicts)
	for i := range out {
		out[i] = Verdict(i)
	}
	return out
}

// VerdictCounts accumulates read verdicts, indexed by Verdict.
type VerdictCounts [numVerdicts]uint64

// Record counts one verdict (out-of-range values are ignored rather
// than panicking: the tamper path must never crash the simulation).
func (c *VerdictCounts) Record(v Verdict) {
	if v >= 0 && v < numVerdicts {
		c[v]++
	}
}

// Count returns the tally for one verdict.
func (c *VerdictCounts) Count(v Verdict) uint64 {
	if v < 0 || v >= numVerdicts {
		return 0
	}
	return c[v]
}

// Total returns the sum over all verdicts.
func (c *VerdictCounts) Total() uint64 {
	var s uint64
	for _, n := range c {
		s += n
	}
	return s
}

// Add accumulates o into c.
func (c *VerdictCounts) Add(o *VerdictCounts) {
	for i := range c {
		c[i] += o[i]
	}
}

// SecStats counts security-engine events.
type SecStats struct {
	// ValueVerified counts read sectors authenticated purely by the value
	// cache (no MAC needed).
	ValueVerified uint64
	// MACVerified counts read sectors that fell back to MAC verification.
	MACVerified uint64
	// MACSkippedWrites counts dirty sectors whose MAC update was elided
	// because the write is guaranteed value-verifiable at next read.
	MACSkippedWrites uint64
	// MACWrites counts MAC updates performed on writebacks.
	MACWrites uint64
	// CompactHits counts counter fetches served by the compact layer.
	CompactHits uint64
	// CompactOverflow counts accesses that found a saturated compact
	// counter and required a second access to the original counters.
	CompactOverflow uint64
	// CompactDisabled counts accesses that went straight to original
	// counters because the adaptive enable bit was off.
	CompactDisabled uint64
	// BMTNodeVerifies counts tree-node verifications performed.
	BMTNodeVerifies uint64
	// TamperDetected counts integrity failures (should be zero in
	// benign runs; nonzero in tamper-injection tests).
	TamperDetected uint64
	// ReplayDetected counts freshness failures caught by the tree.
	ReplayDetected uint64
	// TamperInjected counts fault-injector mutations applied to this
	// partition's DRAM-resident state (ground truth for tamper runs).
	TamperInjected uint64
	// TaintedReads counts completed reads of data-tainted sectors —
	// the denominator for false-accept rates.
	TaintedReads uint64
	// DerivedVersions counts counter acquisitions served by on-chip
	// pattern-derived version numbers (the mgx scheme; no DRAM fetch).
	DerivedVersions uint64
	// DerivedFallbacks counts mgx counter acquisitions that fell back
	// to the stored split-counter path (irregular sectors).
	DerivedFallbacks uint64
	// SharesReconstructed counts reads served by k-of-n secret-share
	// reconstruction (the ssm scheme's read path).
	SharesReconstructed uint64
	// Verdicts classifies read outcomes under active attack; all zero
	// in benign runs.
	Verdicts VerdictCounts
}

// Add accumulates o into s.
func (s *SecStats) Add(o *SecStats) {
	s.ValueVerified += o.ValueVerified
	s.MACVerified += o.MACVerified
	s.MACSkippedWrites += o.MACSkippedWrites
	s.MACWrites += o.MACWrites
	s.CompactHits += o.CompactHits
	s.CompactOverflow += o.CompactOverflow
	s.CompactDisabled += o.CompactDisabled
	s.BMTNodeVerifies += o.BMTNodeVerifies
	s.TamperDetected += o.TamperDetected
	s.ReplayDetected += o.ReplayDetected
	s.TamperInjected += o.TamperInjected
	s.TaintedReads += o.TaintedReads
	s.DerivedVersions += o.DerivedVersions
	s.DerivedFallbacks += o.DerivedFallbacks
	s.SharesReconstructed += o.SharesReconstructed
	s.Verdicts.Add(&o.Verdicts)
}

// Stats is the full measurement record of one simulation run.
type Stats struct {
	Benchmark string
	Scheme    string

	Cycles       uint64
	Instructions uint64
	MemInsts     uint64
	LoadInsts    uint64
	StoreInsts   uint64

	Traffic Traffic
	Sec     SecStats

	L2           CacheStats
	CounterCache CacheStats
	MACCache     CacheStats
	BMTCache     CacheStats
	CompactCache CacheStats
	CompactBMTC  CacheStats
}

// IPC returns warp-instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Merge accumulates per-partition stats o into s (cycle counts are taken
// as the max, everything else sums).
func (s *Stats) Merge(o *Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.Instructions += o.Instructions
	s.MemInsts += o.MemInsts
	s.LoadInsts += o.LoadInsts
	s.StoreInsts += o.StoreInsts
	s.Traffic.Add(&o.Traffic)
	s.Sec.Add(&o.Sec)
	s.L2.Add(&o.L2)
	s.CounterCache.Add(&o.CounterCache)
	s.MACCache.Add(&o.MACCache)
	s.BMTCache.Add(&o.BMTCache)
	s.CompactCache.Add(&o.CompactCache)
	s.CompactBMTC.Add(&o.CompactBMTC)
}

// Table renders rows of labelled float values as an aligned text table,
// with one column per label in labels and one row per entry in rows.
// It is the shared formatter for every experiment's output.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	logSum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// SortedKeys returns the keys of m in sorted order; report tables use it
// for deterministic row ordering.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
