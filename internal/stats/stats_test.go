package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	tr.AddRead(Data, 32)
	tr.AddRead(Data, 32)
	tr.AddWrite(Data, 32)
	tr.AddRead(MAC, 32)
	tr.AddWrite(Counter, 128)

	if got := tr.Bytes(Data); got != 96 {
		t.Errorf("Bytes(Data) = %d, want 96", got)
	}
	if got := tr.Total(); got != 96+32+128 {
		t.Errorf("Total = %d, want 256", got)
	}
	if got := tr.MetadataBytes(); got != 160 {
		t.Errorf("MetadataBytes = %d, want 160", got)
	}
	if got := tr.Transactions(); got != 5 {
		t.Errorf("Transactions = %d, want 5", got)
	}
}

func TestTrafficAdd(t *testing.T) {
	var a, b Traffic
	a.AddRead(BMT, 32)
	b.AddRead(BMT, 32)
	b.AddWrite(CompactCounter, 32)
	a.Add(&b)
	if a.Bytes(BMT) != 64 || a.Bytes(CompactCounter) != 32 {
		t.Errorf("Add merged wrong: bmt=%d cctr=%d", a.Bytes(BMT), a.Bytes(CompactCounter))
	}
}

func TestCacheStatsHitRate(t *testing.T) {
	c := CacheStats{Hits: 6, Misses: 2, MSHRMerges: 2}
	if got := c.HitRate(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("HitRate = %v, want 0.8", got)
	}
	var empty CacheStats
	if empty.HitRate() != 0 {
		t.Errorf("empty HitRate = %v, want 0", empty.HitRate())
	}
}

func TestStatsIPCAndMerge(t *testing.T) {
	a := Stats{Cycles: 100, Instructions: 250}
	if got := a.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	b := Stats{Cycles: 120, Instructions: 50}
	a.Merge(&b)
	if a.Cycles != 120 {
		t.Errorf("Merge cycles = %d, want max 120", a.Cycles)
	}
	if a.Instructions != 300 {
		t.Errorf("Merge instructions = %d, want 300", a.Instructions)
	}
}

func TestClassString(t *testing.T) {
	if Data.String() != "data" || MAC.String() != "mac" {
		t.Errorf("class names wrong: %v %v", Data, MAC)
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Errorf("out-of-range class should mention its value")
	}
	if len(Classes()) != int(numClasses) {
		t.Errorf("Classes() returned %d entries", len(Classes()))
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"bench", "ipc"}, [][]string{{"bfs", "0.91"}, {"sgemm-long", "2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bench") || !strings.Contains(lines[0], "ipc") {
		t.Errorf("bad header: %q", lines[0])
	}
	// All rows must align: the "ipc" column starts at the same offset.
	idx := strings.Index(lines[0], "ipc")
	if strings.Index(lines[2], "0.91") != idx {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5, 0, -1}); math.Abs(got-5) > 1e-9 {
		t.Errorf("GeoMean should skip non-positive: got %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Errorf("GeoMean(nil) should be 0")
	}
}

func TestEnergyModelOrdering(t *testing.T) {
	m := DefaultEnergyModel()
	base := Stats{Cycles: 1000, Instructions: 4000}
	base.Traffic.AddRead(Data, 32)

	secure := base
	for i := 0; i < 50; i++ {
		secure.Traffic.AddRead(MAC, 32)
		secure.Traffic.AddRead(Counter, 32)
	}
	secure.Sec.MACVerified = 50

	if pw, pb := m.Power(&secure), m.Power(&base); pw <= pb {
		t.Errorf("secure run power %v should exceed baseline %v", pw, pb)
	}
	var zero Stats
	if m.Power(&zero) != 0 {
		t.Errorf("zero-cycle power should be 0")
	}
}

func TestEnergyBreakdownSums(t *testing.T) {
	m := DefaultEnergyModel()
	s := Stats{Cycles: 10, Instructions: 20}
	s.Traffic.AddRead(Data, 32)
	s.L2.Hits = 5
	e := m.Energy(&s)
	sum := e.DRAM + e.Caches + e.Crypto + e.Core + e.Static
	if math.Abs(sum-e.TotalRaw) > 1e-9 {
		t.Errorf("breakdown sum %v != total %v", sum, e.TotalRaw)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
