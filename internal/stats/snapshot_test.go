package stats

import (
	"bytes"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
)

// secStatsFixture returns a SecStats with every field — including each
// verdict counter — set to a distinct nonzero value, so a codec that
// drops, reorders or aliases any field cannot round-trip it.
func secStatsFixture() SecStats {
	s := SecStats{
		ValueVerified:    101,
		MACVerified:      202,
		MACSkippedWrites: 303,
		MACWrites:        404,
		CompactHits:      505,
		CompactOverflow:  606,
		CompactDisabled:  707,
		BMTNodeVerifies:  808,
		TamperDetected:   909,
		ReplayDetected:   1010,
		TamperInjected:   1111,
		TaintedReads:     1212,

		DerivedVersions:     1313,
		DerivedFallbacks:    1414,
		SharesReconstructed: 1515,
	}
	for i, v := range VerdictKinds() {
		for n := 0; n < 13+i; n++ {
			s.Verdicts.Record(v)
		}
	}
	return s
}

// TestSecStatsSnapshotRoundTrip: the verdict counters ride the same
// checkpoint codec as the rest of SecStats, and an attacked run's
// resume replay depends on them surviving encode/decode exactly.
func TestSecStatsSnapshotRoundTrip(t *testing.T) {
	want := secStatsFixture()

	enc := checkpoint.NewEncoder()
	want.Snapshot(enc)

	var got SecStats
	dec := checkpoint.NewDecoder(enc.Data())
	got.Restore(dec)
	if err := dec.Finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Errorf("SecStats round trip mutated state:\n got  %+v\n want %+v", got, want)
	}
	for i, v := range VerdictKinds() {
		if got.Verdicts.Count(v) != uint64(13+i) {
			t.Errorf("verdict %v count = %d after round trip, want %d", v, got.Verdicts.Count(v), 13+i)
		}
	}
	if got.Verdicts.Total() != want.Verdicts.Total() {
		t.Errorf("verdict total = %d after round trip, want %d", got.Verdicts.Total(), want.Verdicts.Total())
	}

	// Re-encoding the restored struct must reproduce the original bytes:
	// the byte-identical replay guarantee leans on this determinism.
	re := checkpoint.NewEncoder()
	got.Snapshot(re)
	if !bytes.Equal(re.Data(), enc.Data()) {
		t.Errorf("re-encoded snapshot differs from original (%d vs %d bytes)", re.Len(), enc.Len())
	}
}

// TestSecStatsSnapshotSize pins the encoded width so a field added to
// SecStats without a matching codec (or version bump) fails loudly
// here instead of desynchronizing resumed runs.
func TestSecStatsSnapshotSize(t *testing.T) {
	enc := checkpoint.NewEncoder()
	s := secStatsFixture()
	s.Snapshot(enc)
	const fixed = 15 // scalar uint64 fields
	want := 8 * (fixed + len(VerdictKinds()))
	if enc.Len() != want {
		t.Errorf("encoded SecStats is %d bytes, want %d — field/codec mismatch?", enc.Len(), want)
	}
}
