package stats

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
)

// Snapshot encodes a Traffic accumulator, classes in declaration order.
func (t *Traffic) Snapshot(enc *checkpoint.Encoder) {
	for c := Class(0); c < numClasses; c++ {
		enc.U64(t.ReadBytes[c])
		enc.U64(t.WriteBytes[c])
		enc.U64(t.Reads[c])
		enc.U64(t.Writes[c])
	}
}

// Restore decodes a Traffic accumulator in place. The receiver pointer
// is preserved: components such as the DRAM channel hold aliases to the
// partition's Traffic, so restoring must never replace the struct.
func (t *Traffic) Restore(dec *checkpoint.Decoder) {
	for c := Class(0); c < numClasses; c++ {
		t.ReadBytes[c] = dec.U64()
		t.WriteBytes[c] = dec.U64()
		t.Reads[c] = dec.U64()
		t.Writes[c] = dec.U64()
	}
}

// Snapshot encodes a CacheStats block.
func (c *CacheStats) Snapshot(enc *checkpoint.Encoder) {
	enc.U64(c.Hits)
	enc.U64(c.Misses)
	enc.U64(c.MSHRMerges)
	enc.U64(c.Evictions)
	enc.U64(c.DirtyEvictions)
}

// Restore decodes a CacheStats block in place.
func (c *CacheStats) Restore(dec *checkpoint.Decoder) {
	c.Hits = dec.U64()
	c.Misses = dec.U64()
	c.MSHRMerges = dec.U64()
	c.Evictions = dec.U64()
	c.DirtyEvictions = dec.U64()
}

// Snapshot encodes a SecStats block, fields in declaration order.
func (s *SecStats) Snapshot(enc *checkpoint.Encoder) {
	enc.U64(s.ValueVerified)
	enc.U64(s.MACVerified)
	enc.U64(s.MACSkippedWrites)
	enc.U64(s.MACWrites)
	enc.U64(s.CompactHits)
	enc.U64(s.CompactOverflow)
	enc.U64(s.CompactDisabled)
	enc.U64(s.BMTNodeVerifies)
	enc.U64(s.TamperDetected)
	enc.U64(s.ReplayDetected)
	enc.U64(s.TamperInjected)
	enc.U64(s.TaintedReads)
	enc.U64(s.DerivedVersions)
	enc.U64(s.DerivedFallbacks)
	enc.U64(s.SharesReconstructed)
	for i := range s.Verdicts {
		enc.U64(s.Verdicts[i])
	}
}

// Restore decodes a SecStats block in place.
func (s *SecStats) Restore(dec *checkpoint.Decoder) {
	s.ValueVerified = dec.U64()
	s.MACVerified = dec.U64()
	s.MACSkippedWrites = dec.U64()
	s.MACWrites = dec.U64()
	s.CompactHits = dec.U64()
	s.CompactOverflow = dec.U64()
	s.CompactDisabled = dec.U64()
	s.BMTNodeVerifies = dec.U64()
	s.TamperDetected = dec.U64()
	s.ReplayDetected = dec.U64()
	s.TamperInjected = dec.U64()
	s.TaintedReads = dec.U64()
	s.DerivedVersions = dec.U64()
	s.DerivedFallbacks = dec.U64()
	s.SharesReconstructed = dec.U64()
	for i := range s.Verdicts {
		s.Verdicts[i] = dec.U64()
	}
}

// Snapshot encodes a full Stats record.
func (s *Stats) Snapshot(enc *checkpoint.Encoder) {
	enc.String(s.Benchmark)
	enc.String(s.Scheme)
	enc.U64(s.Cycles)
	enc.U64(s.Instructions)
	enc.U64(s.MemInsts)
	enc.U64(s.LoadInsts)
	enc.U64(s.StoreInsts)
	s.Traffic.Snapshot(enc)
	s.Sec.Snapshot(enc)
	s.L2.Snapshot(enc)
	s.CounterCache.Snapshot(enc)
	s.MACCache.Snapshot(enc)
	s.BMTCache.Snapshot(enc)
	s.CompactCache.Snapshot(enc)
	s.CompactBMTC.Snapshot(enc)
}

// Restore decodes a full Stats record in place (see Traffic.Restore for
// why in place matters) and reports any decode error.
func (s *Stats) Restore(dec *checkpoint.Decoder) error {
	s.Benchmark = dec.String()
	s.Scheme = dec.String()
	s.Cycles = dec.U64()
	s.Instructions = dec.U64()
	s.MemInsts = dec.U64()
	s.LoadInsts = dec.U64()
	s.StoreInsts = dec.U64()
	s.Traffic.Restore(dec)
	s.Sec.Restore(dec)
	s.L2.Restore(dec)
	s.CounterCache.Restore(dec)
	s.MACCache.Restore(dec)
	s.BMTCache.Restore(dec)
	s.CompactCache.Restore(dec)
	s.CompactBMTC.Restore(dec)
	if err := dec.Err(); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	return nil
}
