package castore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	key := "bfs|plutus|2000|134217728|seed=3"
	d, err := s.Put(key, []byte(`{"cycles":42}`))
	if err != nil {
		t.Fatal(err)
	}
	if want := DigestOf([]byte(`{"cycles":42}`)); d != want {
		t.Fatalf("digest %s, want %s", d, want)
	}
	content, d2, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d || string(content) != `{"cycles":42}` {
		t.Fatalf("Get = %q/%s", content, d2)
	}
	obj, err := s.Object(d)
	if err != nil || string(obj) != `{"cycles":42}` {
		t.Fatalf("Object = %q, %v", obj, err)
	}
	if _, _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

// The digest is the plain SHA-256 of the content — pinned so the store
// layout is stable and debuggable with sha256sum.
func TestDigestIsSHA256(t *testing.T) {
	const want = "2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824"
	if got := DigestOf([]byte("hello")); got != want {
		t.Fatalf("DigestOf(hello) = %s, want %s", got, want)
	}
}

// Rebinding a key: identical content is idempotent (every worker
// producing the same bytes is the steady state); different content is
// the determinism alarm and must not clobber the original.
func TestDivergenceDetected(t *testing.T) {
	s := New()
	if _, err := s.Put("k", []byte("result-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("k", []byte("result-a")); err != nil {
		t.Fatalf("idempotent rebind failed: %v", err)
	}
	_, err := s.Put("k", []byte("result-b"))
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("err = %v, want *DivergenceError", err)
	}
	if div.Key != "k" || div.Have == div.Got {
		t.Fatalf("bad divergence detail: %+v", div)
	}
	content, _, err := s.Get("k")
	if err != nil || string(content) != "result-a" {
		t.Fatalf("original binding clobbered: %q, %v", content, err)
	}
}

// Two keys may share one object (identical results for different
// cells dedup to a single stored blob).
func TestSharedObject(t *testing.T) {
	s := New()
	d1, _ := s.Put("k1", []byte("same"))
	d2, _ := s.Put("k2", []byte("same"))
	if d1 != d2 {
		t.Fatalf("identical content got digests %s and %s", d1, d2)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"c", "a", "b"} {
		if _, err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

// A disk-backed store must reload its bindings and objects across
// reopen, verify content hashes at load, and refuse corrupted objects.
func TestPersistReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Put("stream|pssm|200|134217728", []byte("persisted"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("other", []byte("persisted")); err != nil {
		t.Fatal(err) // shared object, second index record
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", r.Len())
	}
	content, d2, err := r.Get("stream|pssm|200|134217728")
	if err != nil || string(content) != "persisted" || d2 != d {
		t.Fatalf("reopened Get = %q/%s, %v", content, d2, err)
	}
	if bad := r.Verify(); len(bad) != 0 {
		t.Fatalf("Verify flagged %v", bad)
	}

	// Corrupt the object on disk: reopen must fail loudly, not serve
	// bytes whose address lies.
	if err := os.WriteFile(filepath.Join(dir, "objects", d[:2], d), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupted object")
	}
}
