// Package castore is the cluster's content-addressed result store.
// Objects (serialized run results) are stored by the SHA-256 of their
// bytes; an index maps harness run-cache keys — the same
// "bench|scheme|maxinsts|protectedBytes[|seed=N][|tamper=FP]" strings
// the single-box Runner dedups on — to object digests. Binding a key
// twice to the same digest is the expected steady state (every worker
// that executes a cell must produce the identical bytes); binding it to
// a different digest is a determinism violation, surfaced as a
// *DivergenceError rather than silently overwritten, because a
// divergent result means either a non-deterministic simulator or a
// misbehaving worker and the sweep's output can no longer be trusted.
//
// The store is safe for concurrent use but deliberately contains no
// goroutines or channels: it stays under simlint's default rawconc
// deny, so any concurrency bug has to live in the (allowlisted,
// auditable) coordinator, never in the store that checks results.
package castore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
)

// DivergenceError reports that a key was bound to two different object
// digests — two workers (or a worker and the local oracle) disagreed on
// the bytes of the same grid cell.
type DivergenceError struct {
	Key  string
	Have string // digest already bound
	Got  string // digest of the rejected content
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("castore: divergent result for key %q: have %s, got %s", e.Key, e.Have, e.Got)
}

// ErrNotFound is returned by Get/Object when nothing is bound.
var ErrNotFound = errors.New("castore: not found")

// Store is a content-addressed object store with a key index.
// The zero value is not usable; use New or Open.
type Store struct {
	mu      sync.Mutex
	objects map[string][]byte // digest -> content
	index   map[string]string // key -> digest
	dir     string            // "" = memory-only
}

// New returns an empty in-memory store.
func New() *Store {
	return &Store{objects: map[string][]byte{}, index: map[string]string{}}
}

// Open returns a store persisted under dir, loading any existing
// objects and index. The layout is objects/<digest[:2]>/<digest> for
// content and index.jsonl (one {"key","digest"} record per binding,
// append-only) for the key index. Loading verifies every indexed
// object's digest; corruption fails Open rather than surfacing later as
// a phantom divergence.
func Open(dir string) (*Store, error) {
	s := New()
	s.dir = dir
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.indexPath())
	if errors.Is(err, fs.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec struct{ Key, Digest string }
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("castore: corrupt index record %q: %v", line, err)
		}
		content, err := os.ReadFile(s.objectPath(rec.Digest))
		if err != nil {
			return nil, fmt.Errorf("castore: indexed object %s unreadable: %v", rec.Digest, err)
		}
		if d := DigestOf(content); d != rec.Digest {
			return nil, fmt.Errorf("castore: object %s corrupt on disk (content hashes to %s)", rec.Digest, d)
		}
		// Later records win within a file only if they agree; the Put
		// path never appends a conflicting record, so disagreement here
		// means the file was edited by hand.
		if have, ok := s.index[rec.Key]; ok && have != rec.Digest {
			return nil, &DivergenceError{Key: rec.Key, Have: have, Got: rec.Digest}
		}
		s.objects[rec.Digest] = content
		s.index[rec.Key] = rec.Digest
	}
	return s, nil
}

// DigestOf returns the hex SHA-256 of content — the object address.
func DigestOf(content []byte) string {
	sum := sha256.Sum256(content)
	return hex.EncodeToString(sum[:])
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.jsonl") }

func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.dir, "objects", digest[:2], digest)
}

// Put binds key to content, storing the object by digest. Rebinding a
// key to identical content is an idempotent no-op; rebinding it to
// different content returns *DivergenceError and leaves the original
// binding intact. The returned digest addresses the stored object.
func (s *Store) Put(key string, content []byte) (string, error) {
	digest := DigestOf(content)
	s.mu.Lock()
	defer s.mu.Unlock()
	if have, ok := s.index[key]; ok {
		if have != digest {
			return "", &DivergenceError{Key: key, Have: have, Got: digest}
		}
		return digest, nil
	}
	if s.dir != "" {
		if err := s.persist(key, digest, content); err != nil {
			return "", err
		}
	}
	if _, ok := s.objects[digest]; !ok {
		s.objects[digest] = append([]byte(nil), content...)
	}
	s.index[key] = digest
	return digest, nil
}

// persist writes the object (atomically, via the checkpoint package's
// tmp+rename) and appends the index record. Called with s.mu held.
func (s *Store) persist(key, digest string, content []byte) error {
	if _, ok := s.objects[digest]; !ok {
		path := s.objectPath(digest)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := checkpoint.WriteFileAtomic(path, content); err != nil {
			return err
		}
	}
	rec, err := json.Marshal(struct{ Key, Digest string }{key, digest})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(s.indexPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(rec, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Get returns the content and digest bound to key.
func (s *Store) Get(key string) (content []byte, digest string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	digest, ok := s.index[key]
	if !ok {
		return nil, "", fmt.Errorf("%w: key %q", ErrNotFound, key)
	}
	return append([]byte(nil), s.objects[digest]...), digest, nil
}

// Digest returns the digest bound to key without copying the content.
func (s *Store) Digest(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.index[key]
	return d, ok
}

// Object returns the content stored under digest.
func (s *Store) Object(digest string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	content, ok := s.objects[digest]
	if !ok {
		return nil, fmt.Errorf("%w: object %s", ErrNotFound, digest)
	}
	return append([]byte(nil), content...), nil
}

// Keys returns every bound key in sorted order — deterministic
// iteration for manifests and reports.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of key bindings.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Verify recomputes every stored object's digest and returns the
// addresses that no longer match their content. An empty slice means
// the store is internally consistent.
func (s *Store) Verify() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bad []string
	for digest, content := range s.objects {
		if DigestOf(content) != digest {
			bad = append(bad, digest)
		}
	}
	sort.Strings(bad)
	return bad
}
