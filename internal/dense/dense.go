// Package dense provides lazily-paged dense stores indexed by small
// integer keys (sector, group, unit indices). The simulator's hot paths
// previously kept this state in Go maps, whose hashing and pointer-ful
// buckets dominated both CPU (map probes on every access) and GC cost
// (scan work proportional to resident state). These stores replace them
// with flat pages allocated on first touch: O(1) array indexing, noscan
// page payloads, and a deterministic ascending-index walk for snapshot
// encoding.
//
// All stores share the map semantics the callers relied on: a key that
// was never written reads as the zero value, and explicit presence (where
// it matters — materialized DRAM sectors, counter groups) is tracked by
// an accompanying bitmap rather than by map membership.
package dense

import "math/bits"

// pageBits sizes one page at 4096 entries: large enough that page-table
// indirection is negligible, small enough that sparse touch patterns do
// not balloon memory.
const pageBits = 12
const pageSize = 1 << pageBits
const pageMask = pageSize - 1

// Bitmap is a lazily-paged bitset over uint64 indices with a maintained
// population count. It replaces map[uint64]bool sets whose entries are
// only ever true (Set/Clear/Get; a cleared bit is indistinguishable from
// a never-set one, exactly like map delete).
type Bitmap struct {
	pages [][]uint64
	count int
}

const bitmapPageWords = pageSize / 64

// Get reports whether bit i is set.
//
//simlint:hotpath
func (b *Bitmap) Get(i uint64) bool {
	p := i >> pageBits
	if p >= uint64(len(b.pages)) || b.pages[p] == nil {
		return false
	}
	o := i & pageMask
	return b.pages[p][o>>6]&(1<<(o&63)) != 0
}

func (b *Bitmap) page(p uint64) []uint64 {
	for uint64(len(b.pages)) <= p {
		b.pages = append(b.pages, nil)
	}
	if b.pages[p] == nil {
		b.pages[p] = make([]uint64, bitmapPageWords)
	}
	return b.pages[p]
}

// Set sets bit i.
func (b *Bitmap) Set(i uint64) {
	pg := b.page(i >> pageBits)
	o := i & pageMask
	m := uint64(1) << (o & 63)
	if pg[o>>6]&m == 0 {
		pg[o>>6] |= m
		b.count++
	}
}

// Clear clears bit i.
//
//simlint:hotpath
func (b *Bitmap) Clear(i uint64) {
	p := i >> pageBits
	if p >= uint64(len(b.pages)) || b.pages[p] == nil {
		return
	}
	o := i & pageMask
	m := uint64(1) << (o & 63)
	if b.pages[p][o>>6]&m != 0 {
		b.pages[p][o>>6] &^= m
		b.count--
	}
}

// Count returns the number of set bits.
//
//simlint:hotpath
func (b *Bitmap) Count() int { return b.count }

// ForEach calls fn for every set bit in ascending index order.
func (b *Bitmap) ForEach(fn func(i uint64)) {
	for p, pg := range b.pages {
		if pg == nil {
			continue
		}
		base := uint64(p) << pageBits
		for w, word := range pg {
			for word != 0 {
				t := bits.TrailingZeros64(word)
				fn(base + uint64(w<<6+t))
				word &^= 1 << t
			}
		}
	}
}

// Reset clears the bitmap, keeping allocated pages for reuse.
func (b *Bitmap) Reset() {
	for _, pg := range b.pages {
		for w := range pg {
			pg[w] = 0
		}
	}
	b.count = 0
}

// U64 is a lazily-paged array of uint64 values; unwritten entries read
// zero. It replaces map[uint64]uint64 whose readers use the zero default.
type U64 struct {
	pages [][]uint64
}

// Get returns the value at index i (zero if never set).
//
//simlint:hotpath
func (v *U64) Get(i uint64) uint64 {
	p := i >> pageBits
	if p >= uint64(len(v.pages)) || v.pages[p] == nil {
		return 0
	}
	return v.pages[p][i&pageMask]
}

// Set stores x at index i.
func (v *U64) Set(i uint64, x uint64) {
	p := i >> pageBits
	for uint64(len(v.pages)) <= p {
		v.pages = append(v.pages, nil)
	}
	if v.pages[p] == nil {
		v.pages[p] = make([]uint64, pageSize)
	}
	v.pages[p][i&pageMask] = x
}

// U32 is U64 for uint32 values (minor and compact counters).
type U32 struct {
	pages [][]uint32
}

// Get returns the value at index i (zero if never set).
//
//simlint:hotpath
func (v *U32) Get(i uint64) uint32 {
	p := i >> pageBits
	if p >= uint64(len(v.pages)) || v.pages[p] == nil {
		return 0
	}
	return v.pages[p][i&pageMask]
}

// Set stores x at index i.
func (v *U32) Set(i uint64, x uint32) {
	p := i >> pageBits
	for uint64(len(v.pages)) <= p {
		v.pages = append(v.pages, nil)
	}
	if v.pages[p] == nil {
		v.pages[p] = make([]uint32, pageSize)
	}
	v.pages[p][i&pageMask] = x
}

// SectorBytes is the fixed record size of a Sectors store entry (one
// 32 B DRAM sector).
const SectorBytes = 32

// Sectors is a lazily-paged store of 32-byte records with explicit
// presence, replacing map[addr][]byte DRAM images. Pages are flat byte
// arrays (noscan: the GC never walks them), and Lookup returns a slice
// aliasing page storage so callers mutate records in place without
// copying.
type Sectors struct {
	pages   [][]byte
	present Bitmap
}

// Lookup returns the record at index i and whether it is present. The
// returned slice aliases store memory; it is valid until the store is
// restored over.
//
//simlint:hotpath
func (s *Sectors) Lookup(i uint64) ([]byte, bool) {
	if !s.present.Get(i) {
		return nil, false
	}
	pg := s.pages[i>>pageBits]
	o := (i & pageMask) * SectorBytes
	return pg[o : o+SectorBytes : o+SectorBytes], true
}

// Put marks record i present and returns its 32-byte slice for the
// caller to fill (zeroed if never previously written).
func (s *Sectors) Put(i uint64) []byte {
	p := i >> pageBits
	for uint64(len(s.pages)) <= p {
		s.pages = append(s.pages, nil)
	}
	if s.pages[p] == nil {
		s.pages[p] = make([]byte, pageSize*SectorBytes)
	}
	s.present.Set(i)
	o := (i & pageMask) * SectorBytes
	return s.pages[p][o : o+SectorBytes : o+SectorBytes]
}

// Delete removes record i (its bytes are zeroed so a later Put starts
// clean).
//
//simlint:hotpath
func (s *Sectors) Delete(i uint64) {
	if !s.present.Get(i) {
		return
	}
	pg := s.pages[i>>pageBits]
	o := (i & pageMask) * SectorBytes
	clear(pg[o : o+SectorBytes])
	s.present.Clear(i)
}

// Count returns the number of present records.
//
//simlint:hotpath
func (s *Sectors) Count() int { return s.present.Count() }

// ForEach calls fn for every present record in ascending index order.
// The slice passed to fn aliases store memory.
func (s *Sectors) ForEach(fn func(i uint64, rec []byte)) {
	s.present.ForEach(func(i uint64) {
		pg := s.pages[i>>pageBits]
		o := (i & pageMask) * SectorBytes
		fn(i, pg[o:o+SectorBytes:o+SectorBytes])
	})
}
