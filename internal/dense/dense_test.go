package dense

import (
	"sort"
	"testing"
)

// xorshift is the package-test PRNG (math/rand is banned in
// determinism-scoped packages by simlint's detrand analyzer).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// TestBitmapBasics: Set/Get/Clear/Count against a reference map, with
// indices spanning many pages, and ForEach visiting exactly the set
// indices in ascending order.
func TestBitmapBasics(t *testing.T) {
	var b Bitmap
	ref := map[uint64]bool{}
	rng := xorshift(42)
	for n := 0; n < 20000; n++ {
		i := rng.next() % (64 * pageSize)
		if rng.next()%3 == 0 {
			b.Clear(i)
			delete(ref, i)
		} else {
			b.Set(i)
			ref[i] = true
		}
	}
	if b.Count() != len(ref) {
		t.Fatalf("Count() = %d, want %d", b.Count(), len(ref))
	}
	for i := range ref {
		if !b.Get(i) {
			t.Fatalf("Get(%d) = false, want true", i)
		}
	}
	var got []uint64
	b.ForEach(func(i uint64) { got = append(got, i) })
	if len(got) != len(ref) {
		t.Fatalf("ForEach visited %d indices, want %d", len(got), len(ref))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatal("ForEach order is not ascending")
	}
	for _, i := range got {
		if !ref[i] {
			t.Fatalf("ForEach visited unset index %d", i)
		}
	}
	b.Reset()
	if b.Count() != 0 || b.Get(got[0]) {
		t.Fatal("Reset did not clear the bitmap")
	}
}

// TestBitmapClearUntouched: clearing an index whose page was never
// allocated must not allocate the page or disturb the count.
func TestBitmapClearUntouched(t *testing.T) {
	var b Bitmap
	b.Clear(10 * pageSize)
	if b.Count() != 0 {
		t.Fatalf("Count() = %d after clearing an untouched index", b.Count())
	}
	if b.Get(10 * pageSize) {
		t.Fatal("Get reports an index that was only ever cleared")
	}
}

// TestU64U32ZeroDefault: reads from untouched indices return zero;
// writes round-trip across page boundaries, including overwrites and
// explicit zero stores.
func TestU64U32ZeroDefault(t *testing.T) {
	var v64 U64
	var v32 U32
	if v64.Get(3*pageSize+7) != 0 || v32.Get(5*pageSize+1) != 0 {
		t.Fatal("untouched index is nonzero")
	}
	ref64 := map[uint64]uint64{}
	ref32 := map[uint64]uint32{}
	rng := xorshift(7)
	for n := 0; n < 20000; n++ {
		i := rng.next() % (32 * pageSize)
		x := rng.next()
		if n%17 == 0 {
			x = 0 // explicit zero store must also round-trip
		}
		v64.Set(i, x)
		ref64[i] = x
		v32.Set(i, uint32(x))
		ref32[i] = uint32(x)
	}
	for i, want := range ref64 {
		if got := v64.Get(i); got != want {
			t.Fatalf("U64.Get(%d) = %d, want %d", i, got, want)
		}
	}
	for i, want := range ref32 {
		if got := v32.Get(i); got != want {
			t.Fatalf("U32.Get(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestSectors: Put/Lookup/Delete/Count against a reference map, Delete
// zeroing record bytes (so a re-Put starts clean), and ForEach walking
// present records ascending with the stored contents.
func TestSectors(t *testing.T) {
	var s Sectors
	ref := map[uint64][SectorBytes]byte{}
	rng := xorshift(0xdeadbeef)
	for n := 0; n < 8000; n++ {
		i := rng.next() % (16 * pageSize)
		if rng.next()%4 == 0 {
			s.Delete(i)
			delete(ref, i)
			continue
		}
		var rec [SectorBytes]byte
		for j := range rec {
			rec[j] = byte(rng.next())
		}
		copy(s.Put(i), rec[:])
		ref[i] = rec
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count() = %d, want %d", s.Count(), len(ref))
	}
	for i, want := range ref {
		got, ok := s.Lookup(i)
		if !ok {
			t.Fatalf("Lookup(%d) missing", i)
		}
		if string(got) != string(want[:]) {
			t.Fatalf("Lookup(%d) = %x, want %x", i, got, want)
		}
	}
	var visited []uint64
	s.ForEach(func(i uint64, rec []byte) {
		visited = append(visited, i)
		want := ref[i]
		if string(rec) != string(want[:]) {
			t.Fatalf("ForEach(%d) = %x, want %x", i, rec, want)
		}
	})
	if len(visited) != len(ref) {
		t.Fatalf("ForEach visited %d records, want %d", len(visited), len(ref))
	}
	if !sort.SliceIsSorted(visited, func(a, b int) bool { return visited[a] < visited[b] }) {
		t.Fatal("Sectors.ForEach order is not ascending")
	}

	// Delete must zero the backing bytes: a later Put of the same index
	// hands out a clean record even without the caller overwriting it.
	i := visited[0]
	s.Delete(i)
	if _, ok := s.Lookup(i); ok {
		t.Fatalf("Lookup(%d) present after Delete", i)
	}
	for j, b := range s.Put(i) {
		if b != 0 {
			t.Fatalf("Put(%d) after Delete: byte %d = %#x, want 0", i, j, b)
		}
	}
}
