package valcache

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Entries: 2, PinnedFrac: 0.25, MaskBits: 4, PinThreshold: 8, MatchThreshold: 3},
		{Entries: 256, PinnedFrac: 0.95, MaskBits: 4, PinThreshold: 8, MatchThreshold: 3},
		{Entries: 256, PinnedFrac: 0.25, MaskBits: 30, PinThreshold: 8, MatchThreshold: 3},
		{Entries: 256, PinnedFrac: 0.25, MaskBits: 4, PinThreshold: 16, MatchThreshold: 3},
		{Entries: 256, PinnedFrac: 0.25, MaskBits: 4, PinThreshold: 8, MatchThreshold: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestInsertProbeAndMasking(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Insert(0x12345670)
	if hit, _ := c.Probe(0x12345670); !hit {
		t.Fatal("exact value should hit")
	}
	// 4 LSBs are masked: a nearby value hits too.
	if hit, _ := c.Probe(0x1234567f); !hit {
		t.Fatal("value differing only in masked bits should hit")
	}
	if hit, _ := c.Probe(0x12345680); hit {
		t.Fatal("value differing above the mask should miss")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 8
	cfg.PinnedFrac = 0 // pure LRU
	c := MustNew(cfg)
	for v := uint32(0); v < 8; v++ {
		c.Insert(v << 8)
	}
	c.Probe(0 << 8) // make value 0 MRU
	c.Insert(99 << 8)
	if c.Contains(1 << 8) {
		t.Fatal("LRU victim (value 1) still present")
	}
	if !c.Contains(0<<8) || !c.Contains(99<<8) {
		t.Fatal("MRU or new value missing")
	}
	if c.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Evictions)
	}
}

func TestPromotionToPinned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 8
	cfg.PinnedFrac = 0.25 // pinCap = 2
	cfg.PinThreshold = 3
	c := MustNew(cfg)
	c.Insert(0xAA0) // use=1
	c.Probe(0xAA0)  // use=2
	if c.PinnedLen() != 0 {
		t.Fatal("promoted too early")
	}
	c.Probe(0xAA0) // use=3 → promote
	if c.PinnedLen() != 1 || c.Promotions != 1 {
		t.Fatalf("pinned=%d promotions=%d, want 1/1", c.PinnedLen(), c.Promotions)
	}
	// Pinned entries survive arbitrary insertion pressure.
	for v := uint32(1); v < 1000; v++ {
		c.Insert(v << 12)
	}
	if !c.Contains(0xAA0) {
		t.Fatal("pinned value was evicted")
	}
}

func TestPinnedCapacityBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 8
	cfg.PinnedFrac = 0.25 // cap 2
	cfg.PinThreshold = 1  // promote on first touch after insert
	c := MustNew(cfg)
	for v := uint32(0); v < 6; v++ {
		c.Insert(v << 8)
		c.Probe(v << 8)
	}
	if c.PinnedLen() != 2 {
		t.Fatalf("PinnedLen = %d, want capped at 2", c.PinnedLen())
	}
}

func TestLenNeverExceedsCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 16
	c := MustNew(cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Insert(rng.Uint32())
		if c.Len() > 16 {
			t.Fatalf("Len = %d exceeds capacity", c.Len())
		}
	}
}

func sectorOf(vals [8]uint32) []byte {
	b := make([]byte, 32)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	return b
}

func TestVerifySectorThreshold(t *testing.T) {
	c := MustNew(DefaultConfig())
	known := [8]uint32{}
	for i := range known {
		known[i] = uint32(i+1) << 8
		c.Insert(known[i])
	}
	// All 8 values known: verified.
	if res := c.VerifySector(sectorOf(known)); !res.Verified {
		t.Fatal("fully-known sector should verify")
	}
	// One unknown value per half: 3 of 4 hit — still verified.
	okish := known
	okish[0] = 0xdead0000
	okish[4] = 0xbeef0000
	if res := c.VerifySector(sectorOf(okish)); !res.Verified {
		t.Fatal("3-of-4 per half should verify")
	}
	// Two unknown values in one half: that half fails.
	bad := known
	bad[0] = 0xdead0000
	bad[1] = 0xdeae0000
	if res := c.VerifySector(sectorOf(bad)); res.Verified {
		t.Fatal("2-of-4 in a half must not verify")
	}
}

func TestVerifySectorRejectsBadLength(t *testing.T) {
	c := MustNew(DefaultConfig())
	if res := c.VerifySector(make([]byte, 20)); res.Verified {
		t.Fatal("non-multiple-of-16 buffer must not verify")
	}
	if res := c.VerifySector(nil); res.Verified {
		t.Fatal("empty buffer must not verify")
	}
}

func TestWriteGuaranteedRequiresPinned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 16
	cfg.PinnedFrac = 0.5
	cfg.PinThreshold = 2
	c := MustNew(cfg)
	var vals [8]uint32
	for i := range vals {
		vals[i] = uint32(i+1) << 8
		c.Insert(vals[i])
	}
	sector := sectorOf(vals)
	if c.WriteGuaranteed(sector) {
		t.Fatal("transient hits must not give the write guarantee")
	}
	// Promote all values.
	for _, v := range vals {
		c.Probe(v)
		c.Probe(v)
	}
	if c.PinnedLen() != 8 {
		t.Fatalf("setup: pinned %d of 8", c.PinnedLen())
	}
	if !c.WriteGuaranteed(sector) {
		t.Fatal("fully-pinned sector should be write-guaranteed")
	}
}

// A tampered (uniform random) sector must essentially never verify. This
// is the Monte-Carlo check of the paper's security analysis: with 256
// entries and threshold 3-of-4 per half, the per-half pass probability is
// ~4·(256/2^28)³ ≈ 3.4e-18; over 200k trials we expect zero passes.
func TestTamperedSectorsDoNotVerify(t *testing.T) {
	c := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(42))
	// Fill the cache with a realistic working set.
	for i := 0; i < 4096; i++ {
		c.Insert(rng.Uint32())
	}
	passes := 0
	buf := make([]byte, 32)
	for trial := 0; trial < 200000; trial++ {
		rng.Read(buf)
		if res := c.VerifySector(buf); res.Verified {
			passes++
		}
	}
	if passes != 0 {
		t.Fatalf("%d of 200000 random sectors verified; bound predicts ~0", passes)
	}
}

func TestForgeryProbabilityMatchesEq1(t *testing.T) {
	// Paper's parameters: 256 entries, 28-bit match keys, 4 values per
	// 128-bit block. p = 256/2^28.
	p := HitProbability(256, 4)
	if math.Abs(p-256.0/268435456.0) > 1e-18 {
		t.Fatalf("HitProbability = %g", p)
	}
	// x=3 must satisfy the 1/256 bound; the paper derives exactly 3.
	if got := MinHitsRequired(4, p, 1.0/256); got != 1 {
		// With p ≈ 9.5e-7, even a single hit is rarer than 1/256 for a
		// *uniform* tampered block; the paper's choice of 3 additionally
		// covers adversaries who can bias some values. Verify both: the
		// bound holds at x=1 and is astronomically stronger at x=3.
		t.Fatalf("MinHitsRequired = %d, want 1 for uniform adversary", got)
	}
	if f := ForgeryProbability(4, 3, p); f > 1e-17 {
		t.Fatalf("ForgeryProbability(4,3,p) = %g, want < 1e-17", f)
	}
	// Monotonicity: raising the threshold lowers the forgery probability.
	if ForgeryProbability(4, 2, p) <= ForgeryProbability(4, 3, p) {
		t.Fatal("forgery probability must decrease with threshold")
	}
	// The 8 B MAC collision rate is 2^-64 ≈ 5.4e-20; x=3 beats it.
	if ForgeryProbability(4, 3, p) >= math.Pow(2, -52) {
		t.Fatal("x=3 should be in the same class as a strong MAC")
	}
}

func TestForgeryProbabilityEdgeCases(t *testing.T) {
	if got := ForgeryProbability(4, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("p=1 tail = %v, want 1", got)
	}
	if got := ForgeryProbability(4, 4, 0); got != 0 {
		t.Errorf("p=0 tail = %v, want 0", got)
	}
	if got := MinHitsRequired(4, 0.9, 1e-9); got != 5 {
		t.Errorf("unachievable bound should return n+1, got %d", got)
	}
}

// Property: Probe after Insert always hits (no spurious evictions of the
// just-inserted value), for any value and any prior fill pattern.
func TestInsertThenProbeProperty(t *testing.T) {
	f := func(fill []uint32, v uint32) bool {
		cfg := DefaultConfig()
		cfg.Entries = 32
		c := MustNew(cfg)
		for _, x := range fill {
			c.Insert(x)
		}
		c.Insert(v)
		hit, _ := c.Probe(v)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestObserveSector(t *testing.T) {
	c := MustNew(DefaultConfig())
	var vals [8]uint32
	for i := range vals {
		vals[i] = uint32(0x1000 * (i + 1))
	}
	c.ObserveSector(sectorOf(vals))
	for _, v := range vals {
		if !c.Contains(v) {
			t.Fatalf("value %#x not observed", v)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Insert(0x100)
	c.Probe(0x100)
	c.Probe(0x99999999)
	if c.Probes != 2 || c.Hits != 1 || c.Inserts != 1 {
		t.Errorf("stats: probes=%d hits=%d inserts=%d", c.Probes, c.Hits, c.Inserts)
	}
}
