package valcache

import (
	"fmt"
	"sort"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
)

// Snapshot encodes the cache's entries and statistics. Pinned entries
// carry no ordering (they are never evicted), so they are written in
// ascending key order; transient entries are written in exact LRU order,
// least-recent first, so Restore can rebuild the intrusive list
// identically — future evictions then pick the same victims.
func (c *Cache) Snapshot(enc *checkpoint.Encoder) error {
	var pinnedKeys []uint32
	for k, i := range c.index {
		if c.slots[i].pinned {
			pinnedKeys = append(pinnedKeys, k)
		}
	}
	// Collect-then-sort: iteration order above cannot leak.
	sort.Slice(pinnedKeys, func(i, j int) bool { return pinnedKeys[i] < pinnedKeys[j] })
	enc.U32(uint32(len(pinnedKeys)))
	for _, k := range pinnedKeys {
		enc.U32(k)
		enc.U8(c.slots[c.index[k]].use)
	}
	enc.U32(uint32(c.transient))
	for i := c.lruTail; i != nilSlot; i = c.slots[i].prev {
		enc.U32(c.slots[i].key)
		enc.U8(c.slots[i].use)
	}
	enc.U64(c.Probes)
	enc.U64(c.Hits)
	enc.U64(c.PinnedHits)
	enc.U64(c.Inserts)
	enc.U64(c.Promotions)
	enc.U64(c.Evictions)
	return nil
}

// Restore decodes state written by Snapshot into a cache of the same
// configuration, replacing all entries.
func (c *Cache) Restore(dec *checkpoint.Decoder) error {
	nPinned := dec.U32()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("valcache: %w", err)
	}
	if int(nPinned) > c.pinCap {
		return fmt.Errorf("valcache: snapshot has %d pinned entries, capacity %d: %w",
			nPinned, c.pinCap, checkpoint.ErrMismatch)
	}
	c.index = make(map[uint32]int32, c.cfg.Entries)
	c.resetSlots()
	for i := uint32(0); i < nPinned && dec.Err() == nil; i++ {
		k := dec.U32()
		c.alloc(k, dec.U8(), true)
	}
	nTrans := dec.U32()
	c.pinned = int(nPinned)
	c.transient = int(nTrans)
	// Pinned entries never enter the LRU list (alloc leaves their links
	// nil), so resetting the list here — after the pinned loop, in the
	// encoder's field order — is equivalent to resetting it up front.
	c.lruHead, c.lruTail = nilSlot, nilSlot
	// Written least-recent first; each push-front leaves earlier (older)
	// entries deeper in the list, ending with the most recent at the head.
	for i := uint32(0); i < nTrans && dec.Err() == nil; i++ {
		k := dec.U32()
		c.listPushFront(c.alloc(k, dec.U8(), false))
	}
	c.Probes = dec.U64()
	c.Hits = dec.U64()
	c.PinnedHits = dec.U64()
	c.Inserts = dec.U64()
	c.Promotions = dec.U64()
	c.Evictions = dec.U64()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("valcache: %w", err)
	}
	return nil
}
