// Package valcache implements Plutus's value cache and the value-based
// integrity-verification rule built on it (paper §IV-C).
//
// The cache bookkeeps the M-bit (32-bit) values most recently seen moving
// through a memory partition. Because AES-XTS diffuses any ciphertext
// tampering across the whole 16 B cipher block, a tampered sector decrypts
// to effectively uniform values, and the probability that enough of them
// hit this small cache is bounded by the binomial expression of the
// paper's Eq. 1 — below the forgery probability of a conventional MAC. A
// sector whose decrypted values hit sufficiently can therefore be accepted
// as authentic without fetching its MAC.
//
// Entries are 28-bit keys (the 4 least-significant bits of each 32-bit
// value are masked to also capture nearby values) with a 4-bit use
// counter. A quarter of the cache is reserved for pinned values: entries
// promoted on frequent use that are never evicted, which is what lets the
// write path *guarantee* that a dirty sector will still verify at its next
// read (all its values pinned ⇒ they cannot have been replaced meanwhile).
package valcache

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Config describes one partition's value cache.
type Config struct {
	// Entries is the total capacity (paper: 256 per partition = 1 kB).
	Entries int
	// PinnedFrac is the fraction of entries reserved for pinned values
	// (paper: 0.25).
	PinnedFrac float64
	// MaskBits is how many low bits of each 32-bit value are ignored in
	// matching (paper: 4).
	MaskBits int
	// PinThreshold is the use-counter value at which a transient entry is
	// promoted to pinned. Counters are 4 bits, so it must be ≤ 15.
	PinThreshold int
	// MatchThreshold is the minimum number of the four 32-bit values per
	// 128-bit cipher block that must hit for the block to be considered
	// verified (paper: 3, from Eq. 1 with a 256-entry cache).
	MatchThreshold int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{Entries: 256, PinnedFrac: 0.25, MaskBits: 4, PinThreshold: 8, MatchThreshold: 3}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Entries < 4:
		return fmt.Errorf("valcache: %d entries is too small", c.Entries)
	case c.PinnedFrac < 0 || c.PinnedFrac > 0.9:
		return fmt.Errorf("valcache: pinned fraction %v out of range", c.PinnedFrac)
	case c.MaskBits < 0 || c.MaskBits > 16:
		return fmt.Errorf("valcache: mask bits %d out of range", c.MaskBits)
	case c.PinThreshold < 1 || c.PinThreshold > 15:
		return fmt.Errorf("valcache: pin threshold %d out of range (4-bit counter)", c.PinThreshold)
	case c.MatchThreshold < 1 || c.MatchThreshold > ValuesPerUnit:
		return fmt.Errorf("valcache: match threshold %d out of range", c.MatchThreshold)
	}
	return nil
}

const (
	// ValueBits is M, the matched value size (32-bit values).
	ValueBits = 32
	// UnitBytes is the value-verification granularity: one 16 B AES-XTS
	// cipher block (tampering diffuses exactly this far).
	UnitBytes = 16
	// ValuesPerUnit is the number of 32-bit values per cipher block.
	ValuesPerUnit = UnitBytes / 4
	// useMax is the saturating 4-bit use counter maximum.
	useMax = 15
)

// nilSlot terminates the intrusive transient LRU list.
const nilSlot = int32(-1)

type entry struct {
	key        uint32
	use        uint8
	pinned     bool
	prev, next int32 // transient LRU list links (unused once pinned)
}

// Cache is one partition's value cache. Entries live in a flat slot
// array sized at capacity, linked by slot index, with a pointer-free
// key→slot map on top: the steady state (probe, evict, insert) touches
// no heap allocation at all, which matters because every 32-bit value of
// every verified or observed sector passes through here.
type Cache struct {
	cfg Config
	//simlint:ignore snapsym Restore rebuilds the slot array entry-by-entry through resetSlots/alloc
	slots []entry
	//simlint:ignore snapsym free-slot stack is derived; resetSlots refills it before Restore replays entries
	free      []int32 // free slot stack
	index     map[uint32]int32
	pinned    int
	pinCap    int
	lruHead   int32 // most recent
	lruTail   int32 // least recent
	transient int

	// Statistics for the Fig. 9 / Fig. 21 studies.
	Probes, Hits, PinnedHits, Inserts, Promotions, Evictions uint64
}

// New builds a value cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:     cfg,
		index:   make(map[uint32]int32, cfg.Entries),
		pinCap:  int(float64(cfg.Entries) * cfg.PinnedFrac),
		lruHead: nilSlot,
		lruTail: nilSlot,
	}
	c.resetSlots()
	return c, nil
}

// resetSlots (re)builds the empty slot array and free stack, pushed in
// reverse so slot 0 is handed out first.
func (c *Cache) resetSlots() {
	c.slots = make([]entry, c.cfg.Entries)
	c.free = c.free[:0]
	for i := c.cfg.Entries - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
}

// alloc takes a free slot for key k with use count u.
//
//simlint:hotpath
func (c *Cache) alloc(k uint32, u uint8, pinned bool) int32 {
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.slots[i] = entry{key: k, use: u, pinned: pinned, prev: nilSlot, next: nilSlot}
	c.index[k] = i
	return i
}

// MustNew is New for static configuration.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Len returns the number of cached values.
func (c *Cache) Len() int { return len(c.index) }

// PinnedLen returns the number of pinned values.
func (c *Cache) PinnedLen() int { return c.pinned }

// Key reduces a 32-bit value to its match key (upper 32−MaskBits bits).
//
//simlint:hotpath
func (c *Cache) Key(v uint32) uint32 { return v >> uint(c.cfg.MaskBits) }

// --- transient LRU list management ---

//simlint:hotpath
func (c *Cache) listRemove(i int32) {
	e := &c.slots[i]
	if e.prev != nilSlot {
		c.slots[e.prev].next = e.next
	} else {
		c.lruHead = e.next
	}
	if e.next != nilSlot {
		c.slots[e.next].prev = e.prev
	} else {
		c.lruTail = e.prev
	}
	e.prev, e.next = nilSlot, nilSlot
}

//simlint:hotpath
func (c *Cache) listPushFront(i int32) {
	e := &c.slots[i]
	e.prev, e.next = nilSlot, c.lruHead
	if c.lruHead != nilSlot {
		c.slots[c.lruHead].prev = i
	}
	c.lruHead = i
	if c.lruTail == nilSlot {
		c.lruTail = i
	}
}

// touch registers a use of slot i: LRU bump, counter bump, maybe promotion.
//
//simlint:hotpath
func (c *Cache) touch(i int32) {
	e := &c.slots[i]
	if e.use < useMax {
		e.use++
	}
	if e.pinned {
		return
	}
	if int(e.use) >= c.cfg.PinThreshold && c.pinned < c.pinCap {
		e.pinned = true
		c.pinned++
		c.transient--
		c.listRemove(i)
		c.Promotions++
		return
	}
	c.listRemove(i)
	c.listPushFront(i)
}

// Probe looks a value up, counting the use on hit. It reports the hit and
// whether the hit entry is pinned.
//
//simlint:hotpath
func (c *Cache) Probe(v uint32) (hit, pinned bool) {
	c.Probes++
	i, ok := c.index[c.Key(v)]
	if !ok {
		return false, false
	}
	if c.slots[i].pinned {
		c.PinnedHits++
	}
	c.Hits++
	c.touch(i)
	return true, c.slots[i].pinned
}

// Contains reports presence without any side effects (for tests/analysis).
func (c *Cache) Contains(v uint32) bool {
	_, ok := c.index[c.Key(v)]
	return ok
}

// Insert records a value seen on the partition's datapath. Existing
// entries are touched; new entries go to the transient region, evicting
// the LRU transient entry when full.
//
//simlint:hotpath
func (c *Cache) Insert(v uint32) {
	k := c.Key(v)
	if i, ok := c.index[k]; ok {
		c.touch(i)
		return
	}
	c.Inserts++
	transCap := c.cfg.Entries - c.pinned
	if c.transient >= transCap {
		victim := c.lruTail
		if victim == nilSlot {
			// Pinned region consumed everything (PinnedFrac near 1);
			// drop the insert rather than evict a pinned value.
			return
		}
		c.listRemove(victim)
		delete(c.index, c.slots[victim].key)
		c.free = append(c.free, victim)
		c.transient--
		c.Evictions++
	}
	c.listPushFront(c.alloc(k, 1, false))
	c.transient++
}

// Values splits a data buffer into its 32-bit little-endian values.
func Values(data []byte) []uint32 {
	out := make([]uint32, len(data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return out
}

// VerifyResult reports the outcome of value-based verification of a data
// unit (a 32 B sector: two 16 B cipher blocks).
type VerifyResult struct {
	// Verified is true when every cipher block met the match threshold.
	Verified bool
	// AllPinned is true when every *hit* backing the verification is a
	// pinned entry (the write-path guarantee condition).
	AllPinned bool
	// Hits is the total number of value-cache hits across the unit.
	Hits int
}

// VerifySector probes the cache for each 32-bit value of a decrypted
// sector and applies the paper's rule: every 128-bit cipher block needs at
// least MatchThreshold of its four values to hit. Probing counts as use
// (reads both verify against and refresh the recently-seen set).
//
//simlint:hotpath
func (c *Cache) VerifySector(data []byte) VerifyResult {
	res := VerifyResult{Verified: true, AllPinned: true}
	if len(data)%UnitBytes != 0 || len(data) == 0 {
		return VerifyResult{}
	}
	for off := 0; off < len(data); off += UnitBytes {
		hits := 0
		for k := 0; k < ValuesPerUnit; k++ {
			v := binary.LittleEndian.Uint32(data[off+k*4:])
			hit, pinned := c.Probe(v)
			if hit {
				hits++
				res.Hits++
				if !pinned {
					res.AllPinned = false
				}
			}
		}
		if hits < c.cfg.MatchThreshold {
			res.Verified = false
			res.AllPinned = false
		}
	}
	return res
}

// ObserveSector inserts every 32-bit value of a sector into the cache
// (done for all traffic, reads after verification and writes on arrival).
func (c *Cache) ObserveSector(data []byte) {
	for off := 0; off+4 <= len(data); off += 4 {
		c.Insert(binary.LittleEndian.Uint32(data[off:]))
	}
}

// WriteGuaranteed reports whether a dirty sector is guaranteed to pass
// value verification at its next read: every cipher block meets the match
// threshold using pinned entries only (paper §IV-C, write flow). Pinned
// entries are never evicted, so the guarantee holds for the lifetime of
// the run.
func (c *Cache) WriteGuaranteed(data []byte) bool {
	if len(data)%UnitBytes != 0 || len(data) == 0 {
		return false
	}
	for off := 0; off < len(data); off += UnitBytes {
		pinnedHits := 0
		for k := 0; k < ValuesPerUnit; k++ {
			v := binary.LittleEndian.Uint32(data[off+k*4:])
			if i, ok := c.index[c.Key(v)]; ok && c.slots[i].pinned {
				pinnedHits++
			}
		}
		if pinnedHits < c.cfg.MatchThreshold {
			return false
		}
	}
	return true
}

// --- Eq. 1: the forgery-probability bound ---

// binomialTerm returns C(n,x) p^x (1-p)^(n-x), the paper's P_x.
func binomialTerm(n, x int, p float64) float64 {
	// C(n,x) for the tiny n used here (≤ 8).
	c := 1.0
	for i := 0; i < x; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(x)) * math.Pow(1-p, float64(n-x))
}

// ForgeryProbability returns the probability that a *tampered* (uniformly
// re-randomized) cipher block of n values passes verification with
// threshold x, given per-value hit probability p = K/2^(ValueBits−mask):
// the upper tail P(X ≥ x) of the binomial.
func ForgeryProbability(n, x int, p float64) float64 {
	var s float64
	for k := x; k <= n; k++ {
		s += binomialTerm(n, k, p)
	}
	return s
}

// HitProbability returns p for a cache of k entries with maskBits masked:
// the chance a uniform value matches some cached key.
func HitProbability(k, maskBits int) float64 {
	return float64(k) / math.Pow(2, float64(ValueBits-maskBits))
}

// MinHitsRequired solves Eq. 1: the smallest threshold x such that a
// tampered cipher block's pass probability is below bound (the paper uses
// Gueron's 1/256 per-verification forgery bound).
func MinHitsRequired(n int, p, bound float64) int {
	for x := 1; x <= n; x++ {
		if ForgeryProbability(n, x, p) < bound {
			return x
		}
	}
	return n + 1 // unachievable
}
