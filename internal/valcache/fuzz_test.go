package valcache

import (
	"encoding/binary"
	"testing"
)

// FuzzCacheOps feeds the value cache an adversarial stream of inserts,
// probes, and sector observe/verify calls decoded from raw fuzz bytes,
// and checks the structural invariants the security argument rests on:
// capacity is never exceeded, the pinned reservation is honored, a
// verified sector really did hit MatchThreshold values, and every probe
// agrees with Contains. The paper's Eq. 1 bound assumes exactly this
// mechanical behavior under arbitrary (attacker-chosen) value streams.
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0xde, 0xad, 0xbe, 0xef})
	f.Add(append([]byte{0x02}, make([]byte, 32)...))
	seed := []byte{0x03}
	for i := byte(0); i < 32; i++ {
		seed = append(seed, i, i, i, i)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		c := MustNew(DefaultConfig())
		cfg := c.Config()
		// Decode an op stream: 1 op byte + operand bytes, repeating.
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			switch op % 4 {
			case 0, 1: // insert / probe one 32-bit value
				if len(data) < 4 {
					return
				}
				v := binary.LittleEndian.Uint32(data)
				data = data[4:]
				if op%4 == 0 {
					c.Insert(v)
					if !c.Contains(v) {
						t.Fatalf("value %#x missing immediately after insert", v)
					}
				} else {
					hit, pinned := c.Probe(v)
					if hit != c.Contains(v) {
						t.Fatalf("Probe(%#x) hit=%v disagrees with Contains", v, hit)
					}
					if pinned && !hit {
						t.Fatalf("Probe(%#x) pinned without hit", v)
					}
				}
			case 2: // observe a sector
				if len(data) < 32 {
					return
				}
				c.ObserveSector(data[:32])
				data = data[32:]
			case 3: // verify a sector
				if len(data) < 32 {
					return
				}
				sector := data[:32]
				data = data[32:]
				guaranteed := c.WriteGuaranteed(sector)
				res := c.VerifySector(sector)
				if guaranteed && !res.Verified {
					t.Fatalf("write-guaranteed sector failed verification")
				}
				if res.Hits < 0 || res.Hits > 2*ValuesPerUnit {
					t.Fatalf("VerifySector hits = %d out of range", res.Hits)
				}
				if res.Verified {
					// Recount independently: every cipher block of the
					// sector must clear the match threshold.
					for off := 0; off+UnitBytes <= len(sector); off += UnitBytes {
						hits := 0
						for _, v := range Values(sector[off : off+UnitBytes]) {
							if c.Contains(v) {
								hits++
							}
						}
						if hits < cfg.MatchThreshold {
							t.Fatalf("sector verified but block at %d has only %d hits (threshold %d)",
								off, hits, cfg.MatchThreshold)
						}
					}
				}
			}
			// Structural invariants hold after every operation.
			if c.Len() > cfg.Entries {
				t.Fatalf("cache holds %d entries, capacity %d", c.Len(), cfg.Entries)
			}
			if c.PinnedLen() > int(float64(cfg.Entries)*cfg.PinnedFrac) {
				t.Fatalf("pinned %d exceeds reservation", c.PinnedLen())
			}
		}
	})
}
