// Package valmodel defines the hash-derived value model shared by the
// synthetic workload suite, the scenario corpus, and trace replay: a
// seed plus a value profile (zero fraction, hot-pool fraction and size,
// near-value jitter) from which every 32-bit word of the memory image
// and every stored value is derived purely.
//
// The model is the unit of value fidelity for traces: a PLTR file
// embeds the source workload's Model in its header, so a replayed run
// regenerates the exact memory image and store stream of the capture —
// the property the round-trip tests pin byte for byte. The functions
// here are the single definition of that math; workload.Bench delegates
// to it, so a model extracted from a benchmark and one decoded from a
// trace header can never drift apart.
package valmodel

import (
	"math"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
)

// Splitmix64 is the deterministic hash behind all generator decisions.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 combines two words into one hash point.
func Hash2(a, b uint64) uint64 { return Splitmix64(a*0x9e3779b97f4a7c15 ^ Splitmix64(b)) }

// Salts separating the memory-image and store-value hash domains. These
// are part of the trace format: changing either breaks replay fidelity
// for existing traces and requires a format version bump.
const (
	memSalt   = 0xDA7A
	storeSalt = 0x5708E
)

// Model fully determines a workload's data contents: the initial memory
// image (MemValue) and the stored-value stream (StoreValue).
type Model struct {
	// Seed is the workload's derived seed (name hash, optionally
	// perturbed; see workload.NewBenchSeeded).
	Seed uint64
	// ZeroFrac is the fraction of 32-bit words that are zero.
	ZeroFrac float64
	// PoolFrac is the fraction drawn from a small pool of hot values
	// (on top of ZeroFrac).
	PoolFrac float64
	// PoolSize is the hot-pool cardinality; zero disables the pool.
	PoolSize uint32
	// Jitter, when true, perturbs the low 4 bits of pool values — the
	// near-value case the paper's masked matching captures.
	Jitter bool
}

// Modeler is implemented by workloads whose values derive from a Model;
// trace capture embeds the model in the trace header so replay
// reproduces the source run's values exactly.
type Modeler interface {
	ValueModel() Model
}

// ValueAt derives a 32-bit value from the profile at a hash point.
func (m Model) ValueAt(h uint64) uint32 {
	r := float64(h%10000) / 10000
	switch {
	case r < m.ZeroFrac:
		return 0
	case r < m.ZeroFrac+m.PoolFrac && m.PoolSize > 0:
		v := uint32(Hash2(m.Seed, (h>>32)%uint64(m.PoolSize))) &^ 0xf
		if m.Jitter {
			v |= uint32(h>>48) & 0xf
		}
		return v
	default:
		return uint32(Splitmix64(h) | 1)
	}
}

// MemValue gives the initial memory image's 32-bit word at addr
// (4-byte aligned). Pure in addr, so it satisfies the gpusim.Workload
// concurrency contract for MemValue.
func (m Model) MemValue(addr geom.Addr) uint32 {
	return m.ValueAt(Hash2(m.Seed^memSalt, uint64(addr)/4))
}

// StoreValue gives the value warp w stores at addr (4-byte aligned);
// stored values follow the same profile as the image.
func (m Model) StoreValue(w int, addr geom.Addr) uint32 {
	return m.ValueAt(Hash2(m.Seed^storeSalt, uint64(addr)/4^uint64(w)<<52))
}

// Encode appends the model's fixed field order to e. Floats are encoded
// as IEEE-754 bit patterns, so identical models are identical bytes.
func (m Model) Encode(e *checkpoint.Encoder) {
	e.U64(m.Seed)
	e.U64(math.Float64bits(m.ZeroFrac))
	e.U64(math.Float64bits(m.PoolFrac))
	e.U32(m.PoolSize)
	e.Bool(m.Jitter)
}

// DecodeModel reads the fields written by Encode; the caller checks the
// decoder's sticky error once afterwards.
func DecodeModel(d *checkpoint.Decoder) Model {
	return Model{
		Seed:     d.U64(),
		ZeroFrac: math.Float64frombits(d.U64()),
		PoolFrac: math.Float64frombits(d.U64()),
		PoolSize: d.U32(),
		Jitter:   d.Bool(),
	}
}
