package valmodel

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
)

func TestCodecRoundTrip(t *testing.T) {
	models := []Model{
		{},
		{Seed: 42},
		{Seed: 0xdeadbeef, ZeroFrac: 0.25, PoolFrac: 0.4, PoolSize: 64, Jitter: true},
		{Seed: ^uint64(0), ZeroFrac: 1, PoolFrac: 0, PoolSize: 1},
	}
	for _, m := range models {
		e := checkpoint.NewEncoder()
		m.Encode(e)
		d := checkpoint.NewDecoder(e.Data())
		back := DecodeModel(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("%+v: decode: %v", m, err)
		}
		if back != m {
			t.Fatalf("round trip changed model: %+v -> %+v", m, back)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	e := checkpoint.NewEncoder()
	Model{Seed: 7}.Encode(e)
	d := checkpoint.NewDecoder(e.Data()[:5])
	DecodeModel(d)
	if d.Err() == nil {
		t.Fatal("truncated model decoded without error")
	}
}

func TestValueProfileShape(t *testing.T) {
	m := Model{Seed: 99, ZeroFrac: 0.4, PoolFrac: 0.3, PoolSize: 32, Jitter: true}
	zeros, total := 0, 0
	seen := map[uint32]int{}
	for a := geom.Addr(0); a < 1<<16; a += 4 {
		v := m.MemValue(a)
		total++
		if v == 0 {
			zeros++
		}
		seen[v&^0xf]++
	}
	zf := float64(zeros) / float64(total)
	if zf < m.ZeroFrac-0.05 || zf > m.ZeroFrac+0.05 {
		t.Errorf("zero fraction %.3f, model %.3f", zf, m.ZeroFrac)
	}
	best := 0
	for v, n := range seen {
		if v != 0 && n > best {
			best = n
		}
	}
	if best < total/200 {
		t.Errorf("hot pool not visible: best repeat count %d of %d", best, total)
	}
}

func TestDeterminismAndSeedSeparation(t *testing.T) {
	a := Model{Seed: 1, PoolFrac: 0.5, PoolSize: 16}
	b := Model{Seed: 2, PoolFrac: 0.5, PoolSize: 16}
	if a.MemValue(0x1234) != a.MemValue(0x1234) {
		t.Fatal("MemValue not deterministic")
	}
	diff := 0
	for addr := geom.Addr(0); addr < 4096; addr += 4 {
		if a.MemValue(addr) != b.MemValue(addr) {
			diff++
		}
	}
	if diff < 256 {
		t.Fatalf("seeds barely separate images: %d of 1024 words differ", diff)
	}
	if a.StoreValue(1, 0x100) == a.StoreValue(2, 0x100) {
		t.Fatal("StoreValue should vary by warp")
	}
}
