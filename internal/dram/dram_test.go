package dram

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
)

func newCh(t *testing.T) (*Channel, *sim.Engine, *stats.Traffic) {
	t.Helper()
	eng := &sim.Engine{}
	tr := &stats.Traffic{}
	ch, err := New(DefaultConfig(), eng, tr)
	if err != nil {
		t.Fatal(err)
	}
	return ch, eng, tr
}

func TestValidate(t *testing.T) {
	bad := Config{Banks: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero-bank config validated")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSingleAccessLatency(t *testing.T) {
	ch, eng, tr := newCh(t)
	done := false
	fin := ch.Access(0, false, stats.Data, func() { done = true })
	cfg := ch.Config()
	// Cold access: activation (TRCD) then TCL, then the burst.
	min := cfg.TRCD + cfg.TCL
	if fin < min {
		t.Errorf("completion %d earlier than row-miss minimum %d", fin, min)
	}
	eng.Drain(0)
	if !done {
		t.Error("completion callback did not run")
	}
	if tr.Reads[stats.Data] != 1 || tr.ReadBytes[stats.Data] != 32 {
		t.Errorf("traffic not accounted: %+v", tr)
	}
}

func TestRowBufferLocality(t *testing.T) {
	ch, _, _ := newCh(t)
	ch.Access(0, false, stats.Data, nil)
	ch.Access(32*16, false, stats.Data, nil) // same bank (16 banks), next row slot?
	// Sequential sectors hit different banks; to hit the same bank+row use
	// stride banks*32 within one row.
	if ch.RowMisses == 0 {
		t.Error("cold accesses must count row misses")
	}
	before := ch.RowHits
	ch.Access(32*32, false, stats.Data, nil) // bank 0 again (32 sectors later)
	ch.Access(32*64, false, stats.Data, nil) // bank 0, same row region?
	_ = before
	if ch.RowHits+ch.RowMisses != 4 {
		t.Errorf("hits+misses = %d, want 4", ch.RowHits+ch.RowMisses)
	}
}

func TestBusSerialization(t *testing.T) {
	ch, eng, _ := newCh(t)
	// Saturate: issue 1000 transactions at time 0 across all banks.
	var last sim.Cycle
	for i := 0; i < 1000; i++ {
		fin := ch.Access(geom.Addr(i*32), false, stats.Data, nil)
		if fin > last {
			last = fin
		}
	}
	// 1000 transactions × 1.25 cycles ≈ 1250 cycles minimum on the bus.
	if last < 1200 {
		t.Errorf("1000 txns finished by cycle %d; bus should serialize to ≥1200", last)
	}
	// And not absurdly slow either (banks parallelize row activations).
	if last > 4000 {
		t.Errorf("1000 txns took %d cycles; model too pessimistic", last)
	}
	eng.Drain(0)
}

func TestWriteAccounting(t *testing.T) {
	ch, _, tr := newCh(t)
	ch.Access(64, true, stats.MAC, nil)
	if tr.Writes[stats.MAC] != 1 || tr.WriteBytes[stats.MAC] != 32 {
		t.Errorf("write traffic not accounted: %+v", tr)
	}
}

func TestCompletionOrderMatchesBus(t *testing.T) {
	ch, eng, _ := newCh(t)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		ch.Access(geom.Addr(i*32), false, stats.Data, func() { order = append(order, i) })
	}
	eng.Drain(0)
	if len(order) != 4 {
		t.Fatalf("callbacks run = %d", len(order))
	}
	for i := 1; i < 4; i++ {
		if order[i] < order[i-1] {
			t.Errorf("same-cycle issues completed out of order: %v", order)
		}
	}
}

func TestUtilizationBounded(t *testing.T) {
	ch, eng, _ := newCh(t)
	for i := 0; i < 100; i++ {
		ch.Access(geom.Addr(i*32), false, stats.Data, func() {})
	}
	eng.Drain(0)
	u := ch.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0,1]", u)
	}
}
