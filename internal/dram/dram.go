// Package dram models one memory partition's DRAM channel: banked, with
// row-buffer locality, a shared data bus, and 32 B transaction
// granularity (the sector size — in Volta-class GPUs sectors can be read
// and written independently even though a full 128 B block is reserved in
// the cache).
//
// The model is deliberately simple but captures the two effects the paper
// depends on: (1) every security-metadata transaction competes with demand
// data for the same partition bus, so metadata overhead translates into
// queueing delay for everything, and (2) row-buffer locality makes regular
// streams cheaper than scattered metadata fetches.
//
// The data bus is tracked in quarter-core-cycles so that the
// 868 GB/s ÷ 32 partitions ÷ 1132 MHz ≈ 24 B/core-cycle Volta bandwidth
// can be approximated without integer-cycle rounding error.
package dram

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// Config fixes one partition channel's organization and timing (all
// latencies in core cycles at 1132 MHz).
type Config struct {
	Banks    int
	RowBytes int // bytes covered by one open row per bank

	TRCD sim.Cycle // activate → column command
	TRP  sim.Cycle // precharge
	TCL  sim.Cycle // column access latency
	TCCD sim.Cycle // min gap between column commands on one bank

	// BusQuarterCycles is the data-bus occupancy of one 32 B transaction
	// in quarter core-cycles (5 ≈ 1.25 cycles ≈ 25.6 B/cycle, close to
	// Volta's per-partition 24 B/cycle).
	BusQuarterCycles int
}

// DefaultConfig returns Volta/HBM2-like timings: 32 banks per partition
// channel (16 banks × 2 bank-group interleave), 2 KiB rows.
func DefaultConfig() Config {
	return Config{
		Banks:            32,
		RowBytes:         2048,
		TRCD:             16,
		TRP:              16,
		TCL:              16,
		TCCD:             2,
		BusQuarterCycles: 5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Banks < 1 || c.RowBytes < geom.SectorSize || c.BusQuarterCycles < 1 {
		return fmt.Errorf("dram: invalid config %+v", c)
	}
	return nil
}

type bank struct {
	freeAt  sim.Cycle
	openRow uint64
	hasRow  bool
}

// Channel is one partition's DRAM channel.
type Channel struct {
	//simlint:ignore snapsym configuration, not mutable state
	cfg Config
	//simlint:ignore snapsym construction wiring, rebuilt by New
	eng   *sim.Engine
	banks []bank
	// busFreeQ is when the shared data bus frees, in quarter-cycles.
	busFreeQ uint64

	// Traffic is where transactions are accounted (shared with the
	// partition's other components).
	//simlint:ignore snapsym shared accounting wiring; the stats shard snapshots itself
	Traffic *stats.Traffic

	// RowHits / RowMisses measure row-buffer locality.
	RowHits, RowMisses uint64
}

// New builds a channel on engine eng, accounting into tr.
func New(cfg Config, eng *sim.Engine, tr *stats.Traffic) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg, eng: eng, banks: make([]bank, cfg.Banks), Traffic: tr}, nil
}

// MustNew is New for static configuration.
func MustNew(cfg Config, eng *sim.Engine, tr *stats.Traffic) *Channel {
	ch, err := New(cfg, eng, tr)
	if err != nil {
		panic(err)
	}
	return ch
}

// Config returns the channel's configuration.
func (c *Channel) Config() Config { return c.cfg }

// The address mapping interleaves banks at row granularity: consecutive
// addresses within one 2 KiB row share a bank (so block-sized fetches are
// row hits after the first sector), and consecutive rows rotate across
// banks (so streams exploit bank-level parallelism).
func (c *Channel) bankOf(local geom.Addr) int {
	r := uint64(local) / uint64(c.cfg.RowBytes)
	// XOR-swizzle upper row bits into the bank selector so hot regions
	// (e.g. upper integrity-tree levels) spread across banks.
	return int(r^(r/uint64(c.cfg.Banks))) % c.cfg.Banks
}

func (c *Channel) rowOf(local geom.Addr) uint64 {
	return uint64(local) / uint64(c.cfg.RowBytes) / uint64(c.cfg.Banks)
}

// BankRow exposes the address mapping: the bank and in-bank row that
// local falls in. The tamper subsystem logs it per injected fault so
// attack placement over the physical layout is auditable in tests.
func (c *Channel) BankRow(local geom.Addr) (bank int, row uint64) {
	return c.bankOf(local), c.rowOf(local)
}

// Access issues one 32 B transaction at partition-local address local and
// schedules done (nullable) at its completion. It returns the completion
// cycle. Transactions are accounted to class cl.
func (c *Channel) Access(local geom.Addr, write bool, cl stats.Class, done func()) sim.Cycle {
	if c.Traffic != nil {
		if write {
			c.Traffic.AddWrite(cl, geom.SectorSize)
		} else {
			c.Traffic.AddRead(cl, geom.SectorSize)
		}
	}

	now := c.eng.Now()
	b := &c.banks[c.bankOf(local)]
	row := c.rowOf(local)

	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	var rowDelay sim.Cycle
	switch {
	case b.hasRow && b.openRow == row:
		c.RowHits++
	case !b.hasRow:
		// Bank precharged: only the activation is on the path.
		c.RowMisses++
		rowDelay = c.cfg.TRCD
		b.openRow, b.hasRow = row, true
	default:
		// Row conflict: precharge then activate.
		c.RowMisses++
		rowDelay = c.cfg.TRP + c.cfg.TRCD
		b.openRow = row
	}
	colReady := start + rowDelay

	// The data transfer needs the shared bus; serialize in quarter-cycles.
	busStartQ := uint64(colReady+c.cfg.TCL) * 4
	if c.busFreeQ > busStartQ {
		busStartQ = c.busFreeQ
	}
	c.busFreeQ = busStartQ + uint64(c.cfg.BusQuarterCycles)

	finish := sim.Cycle((c.busFreeQ + 3) / 4)
	b.freeAt = colReady + c.cfg.TCCD
	if b.freeAt < finish {
		// Writes hold the bank until data lands; keep a small gap for
		// reads too so per-bank throughput is bounded.
		b.freeAt = colReady + c.cfg.TCCD
	}

	if done != nil {
		c.eng.Schedule(finish-now, done)
	}
	return finish
}

// Utilization returns the fraction of elapsed time the data bus has been
// busy (an upper-bound style estimate: busFreeQ relative to now).
func (c *Channel) Utilization() float64 {
	now := uint64(c.eng.Now()) * 4
	if now == 0 {
		return 0
	}
	busy := uint64(0)
	if c.Traffic != nil {
		busy = c.Traffic.Transactions() * uint64(c.cfg.BusQuarterCycles)
	}
	u := float64(busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}
