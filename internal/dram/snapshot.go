package dram

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/sim"
)

// Snapshot encodes the channel's dynamic state: per-bank timing and open
// rows (in bank-index order), the shared bus horizon, and the
// row-locality counters. Traffic is not encoded here — the *stats.Traffic
// the channel accounts into belongs to the partition's stats block, which
// is serialized by its owner; restoring must keep the existing pointer.
func (c *Channel) Snapshot(enc *checkpoint.Encoder) error {
	enc.U32(uint32(len(c.banks)))
	for i := range c.banks {
		enc.U64(uint64(c.banks[i].freeAt))
		enc.U64(c.banks[i].openRow)
		enc.Bool(c.banks[i].hasRow)
	}
	enc.U64(c.busFreeQ)
	enc.U64(c.RowHits)
	enc.U64(c.RowMisses)
	return nil
}

// Restore decodes state written by Snapshot into a channel built from
// the same configuration.
func (c *Channel) Restore(dec *checkpoint.Decoder) error {
	n := dec.U32()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("dram: %w", err)
	}
	if int(n) != len(c.banks) {
		return fmt.Errorf("dram: snapshot has %d banks, channel has %d: %w",
			n, len(c.banks), checkpoint.ErrMismatch)
	}
	for i := range c.banks {
		c.banks[i].freeAt = sim.Cycle(dec.U64())
		c.banks[i].openRow = dec.U64()
		c.banks[i].hasRow = dec.Bool()
	}
	c.busFreeQ = dec.U64()
	c.RowHits = dec.U64()
	c.RowMisses = dec.U64()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("dram: %w", err)
	}
	return nil
}
